//! Tiled-vs-untiled equivalence: every tiling driver must produce results
//! bit-identical to the untiled scalar reference — tiling reorders
//! space-time traversal but never changes a cell's accumulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::verify::{max_abs_diff1, max_abs_diff2, max_abs_diff3};
use stencil_core::{
    run1_star1, run2_box, run2_star, run3_box, run3_star, Grid1, Grid2, Grid3, Method, S1d3p,
    S1d5p, S2d5p, S2d9p, S3d27p, S3d7p,
};
use stencil_simd::Isa;
use stencil_tiling::{
    split1_star1, split2_box, split2_star, split3_box, split3_star, tessellate1_star1,
    tessellate2_box, tessellate2_star, tessellate3_box, tessellate3_star,
};

fn isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.is_available()).collect()
}

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid1::from_fn(n, halo, |_| r.random_range(-1.0..1.0))
}

fn tess_methods() -> [Method; 4] {
    [
        Method::MultiLoad,
        Method::Reorg,
        Method::TransLayout,
        Method::TransLayout2,
    ]
}

#[test]
fn tessellate1_matches_untiled_bitwise() {
    let s = S1d3p {
        w: [0.21, 0.55, 0.2],
    };
    for isa in isas() {
        for (n, w, h, t) in [
            (400usize, 80usize, 8usize, 16usize),
            (400, 80, 8, 13), // partial final chunk + odd t
            (1000, 128, 16, 32),
            (257, 64, 4, 9),
        ] {
            let init = grid1(n, n as u64);
            let mut reference = init.clone();
            run1_star1(Method::Scalar, isa, &mut reference, &s, t);
            for m in tess_methods() {
                for threads in [1usize, 4] {
                    let mut g = init.clone();
                    tessellate1_star1(m, isa, &mut g, &s, t, w, h, threads);
                    let d = max_abs_diff1(&g, &reference);
                    assert_eq!(d, 0.0, "{m}/{isa}/n={n}/w={w}/h={h}/t={t}/thr={threads}");
                }
            }
        }
    }
}

#[test]
fn tessellate1_r2_matches_untiled() {
    let s = S1d5p {
        w: [-0.04, 0.2, 0.5, 0.3, -0.02],
    };
    for isa in isas() {
        let (n, w, h, t) = (600usize, 120usize, 8usize, 17usize);
        let init = grid1(n, 9);
        let mut reference = init.clone();
        run1_star1(Method::Scalar, isa, &mut reference, &s, t);
        for m in tess_methods() {
            let mut g = init.clone();
            tessellate1_star1(m, isa, &mut g, &s, t, w, h, 4);
            assert_eq!(max_abs_diff1(&g, &reference), 0.0, "{m}/{isa}");
        }
    }
}

#[test]
fn split1_matches_untiled_bitwise() {
    let s = S1d3p {
        w: [0.3, 0.45, 0.22],
    };
    for isa in isas() {
        for (n, w, h, t) in [
            (1024usize, 32usize, 8usize, 16usize),
            (1000, 24, 6, 13),
            (520, 16, 4, 8),
        ] {
            let init = grid1(n, 31 + n as u64);
            let mut reference = init.clone();
            run1_star1(Method::Scalar, isa, &mut reference, &s, t);
            for threads in [1usize, 4] {
                let mut g = init.clone();
                split1_star1(isa, &mut g, &s, t, w, h, threads);
                let d = max_abs_diff1(&g, &reference);
                assert_eq!(d, 0.0, "split/{isa}/n={n}/w={w}/h={h}/t={t}/thr={threads}");
            }
        }
    }
}

fn grid2(nx: usize, ny: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid2::from_fn(nx, ny, 1, halo, |_, _| r.random_range(-1.0..1.0))
}

#[test]
fn tessellate2_matches_untiled() {
    let s = S2d5p {
        wx: [0.2, 0.3, 0.19],
        wy: [0.12, 0.0, 0.14],
    };
    let isa = Isa::detect_best();
    let (nx, ny, t) = (150usize, 40usize, 11usize);
    let init = grid2(nx, ny, 4);
    let mut reference = init.clone();
    run2_star(Method::Scalar, isa, &mut reference, &s, t);
    for m in tess_methods() {
        for threads in [1usize, 4] {
            let mut g = init.clone();
            tessellate2_star(m, isa, &mut g, &s, t, 48, 16, 6, threads);
            let d = max_abs_diff2(&g, &reference);
            assert_eq!(d, 0.0, "{m}/{isa}/thr={threads}");
        }
    }
}

#[test]
fn tessellate2_box_matches_untiled() {
    let mut r = StdRng::seed_from_u64(2);
    let mut w = [0.0f64; 9];
    for x in w.iter_mut() {
        *x = r.random_range(0.0..0.11);
    }
    let s = S2d9p { w };
    let isa = Isa::detect_best();
    let (nx, ny, t) = (120usize, 30usize, 7usize);
    let init = grid2(nx, ny, 6);
    let mut reference = init.clone();
    run2_box(Method::Scalar, isa, &mut reference, &s, t);
    for m in tess_methods() {
        let mut g = init.clone();
        tessellate2_box(m, isa, &mut g, &s, t, 40, 12, 5, 4);
        assert_eq!(max_abs_diff2(&g, &reference), 0.0, "{m}/{isa}");
    }
}

#[test]
fn split2_matches_untiled() {
    let s = S2d5p {
        wx: [0.21, 0.33, 0.2],
        wy: [0.1, 0.0, 0.11],
    };
    let isa = Isa::detect_best();
    let (nx, ny, t) = (130usize, 36usize, 9usize);
    let init = grid2(nx, ny, 8);
    let mut reference = init.clone();
    run2_star(Method::Scalar, isa, &mut reference, &s, t);
    let mut g = init.clone();
    split2_star(isa, &mut g, &s, t, 12, 5, 4);
    assert_eq!(max_abs_diff2(&g, &reference), 0.0);

    let mut rr = StdRng::seed_from_u64(3);
    let mut w = [0.0f64; 9];
    for x in w.iter_mut() {
        *x = rr.random_range(0.0..0.1);
    }
    let sb = S2d9p { w };
    let mut reference = init.clone();
    run2_box(Method::Scalar, isa, &mut reference, &sb, t);
    let mut g = init.clone();
    split2_box(isa, &mut g, &sb, t, 12, 5, 4);
    assert_eq!(max_abs_diff2(&g, &reference), 0.0);
}

fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid3::from_fn(nx, ny, nz, 1, halo, |_, _, _| r.random_range(-1.0..1.0))
}

#[test]
fn tessellate3_matches_untiled() {
    let s = S3d7p {
        wx: [0.1, 0.28, 0.12],
        wy: [0.09, 0.0, 0.11],
        wz: [0.08, 0.0, 0.07],
    };
    let isa = Isa::detect_best();
    let (nx, ny, nz, t) = (80usize, 20usize, 16usize, 7usize);
    let init = grid3(nx, ny, nz, 12);
    let mut reference = init.clone();
    run3_star(Method::Scalar, isa, &mut reference, &s, t);
    for m in tess_methods() {
        let mut g = init.clone();
        tessellate3_star(m, isa, &mut g, &s, t, 40, 10, 8, 4, 4);
        assert_eq!(max_abs_diff3(&g, &reference), 0.0, "{m}/{isa}");
    }
}

#[test]
fn tessellate3_box_matches_untiled() {
    let mut r = StdRng::seed_from_u64(5);
    let mut w = [0.0f64; 27];
    for x in w.iter_mut() {
        *x = r.random_range(0.0..0.037);
    }
    let s = S3d27p { w };
    let isa = Isa::detect_best();
    let (nx, ny, nz, t) = (72usize, 18usize, 12usize, 5usize);
    let init = grid3(nx, ny, nz, 14);
    let mut reference = init.clone();
    run3_box(Method::Scalar, isa, &mut reference, &s, t);
    for m in tess_methods() {
        let mut g = init.clone();
        tessellate3_box(m, isa, &mut g, &s, t, 36, 8, 6, 3, 4);
        assert_eq!(max_abs_diff3(&g, &reference), 0.0, "{m}/{isa}");
    }
}

#[test]
fn split3_matches_untiled() {
    let s = S3d7p {
        wx: [0.11, 0.3, 0.1],
        wy: [0.1, 0.0, 0.09],
        wz: [0.07, 0.0, 0.06],
    };
    let isa = Isa::detect_best();
    let (nx, ny, nz, t) = (70usize, 16usize, 14usize, 6usize);
    let init = grid3(nx, ny, nz, 21);
    let mut reference = init.clone();
    run3_star(Method::Scalar, isa, &mut reference, &s, t);
    let mut g = init.clone();
    split3_star(isa, &mut g, &s, t, 6, 3, 4);
    assert_eq!(max_abs_diff3(&g, &reference), 0.0);

    let mut rr = StdRng::seed_from_u64(6);
    let mut w = [0.0f64; 27];
    for x in w.iter_mut() {
        *x = rr.random_range(0.0..0.035);
    }
    let sb = S3d27p { w };
    let mut reference = init.clone();
    run3_box(Method::Scalar, isa, &mut reference, &sb, t);
    let mut g = init.clone();
    split3_box(isa, &mut g, &sb, t, 6, 3, 4);
    assert_eq!(max_abs_diff3(&g, &reference), 0.0);
}

#[test]
fn parallel_equals_serial_bitwise() {
    let s = S1d3p::heat();
    let isa = Isa::detect_best();
    let init = grid1(2000, 77);
    let mut serial = init.clone();
    tessellate1_star1(Method::TransLayout2, isa, &mut serial, &s, 24, 256, 16, 1);
    for threads in [2usize, 8, 16] {
        let mut par = init.clone();
        tessellate1_star1(Method::TransLayout2, isa, &mut par, &s, 24, 256, 16, threads);
        assert_eq!(max_abs_diff1(&par, &serial), 0.0, "threads={threads}");
    }
}
