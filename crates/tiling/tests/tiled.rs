//! Tiled-vs-untiled equivalence: every tiled plan must produce results
//! bit-identical to the untiled scalar reference — tiling reorders
//! space-time traversal but never changes a cell's accumulation.
//!
//! The matrix drives [`Plan`] directly (the single entry point); a final
//! section keeps the legacy wrapper functions green.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::verify::{max_abs_diff1, max_abs_diff2, max_abs_diff3};
use stencil_core::{Grid1, Grid2, Grid3, Method, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p};
use stencil_simd::Isa;
use stencil_tiling::{split1_star1, split2_box, split3_box, tessellate1_star1};

fn isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.is_available()).collect()
}

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid1::from_fn(n, halo, |_| r.random_range(-1.0..1.0))
}

fn tess_methods() -> [Method; 4] {
    [
        Method::MultiLoad,
        Method::Reorg,
        Method::TransLayout,
        Method::TransLayout2,
    ]
}

fn scalar1(init: &Grid1, s: S1d3p, t: usize, isa: Isa) -> Grid1 {
    let mut g = init.clone();
    Plan::new(Shape::d1(g.n()))
        .method(Method::Scalar)
        .isa(isa)
        .star1(s)
        .unwrap()
        .run(&mut g, t);
    g
}

#[test]
fn tessellate1_matches_untiled_bitwise() {
    let s = S1d3p {
        w: [0.21, 0.55, 0.2],
    };
    for isa in isas() {
        for (n, w, h, t) in [
            (400usize, 80usize, 8usize, 16usize),
            (400, 80, 8, 13), // partial final chunk + odd t
            (1000, 128, 16, 32),
            (257, 64, 4, 9),
        ] {
            let init = grid1(n, n as u64);
            let reference = scalar1(&init, s, t, isa);
            for m in tess_methods() {
                for threads in [1usize, 4] {
                    let mut g = init.clone();
                    Plan::new(Shape::d1(n))
                        .method(m)
                        .isa(isa)
                        .tiling(Tiling::Tessellate {
                            w: [w, 0, 0],
                            h,
                            threads,
                        })
                        .star1(s)
                        .unwrap()
                        .run(&mut g, t);
                    let d = max_abs_diff1(&g, &reference);
                    assert_eq!(d, 0.0, "{m}/{isa}/n={n}/w={w}/h={h}/t={t}/thr={threads}");
                }
            }
        }
    }
}

#[test]
fn tessellate1_r2_matches_untiled() {
    let s = S1d5p {
        w: [-0.04, 0.2, 0.5, 0.3, -0.02],
    };
    for isa in isas() {
        let (n, w, h, t) = (600usize, 120usize, 8usize, 17usize);
        let init = grid1(n, 9);
        let mut reference = init.clone();
        Plan::new(Shape::d1(n))
            .method(Method::Scalar)
            .isa(isa)
            .star1(s)
            .unwrap()
            .run(&mut reference, t);
        for m in tess_methods() {
            let mut g = init.clone();
            Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .tiling(Tiling::Tessellate {
                    w: [w, 0, 0],
                    h,
                    threads: 4,
                })
                .star1(s)
                .unwrap()
                .run(&mut g, t);
            assert_eq!(max_abs_diff1(&g, &reference), 0.0, "{m}/{isa}");
        }
    }
}

#[test]
fn split1_matches_untiled_bitwise() {
    let s = S1d3p {
        w: [0.3, 0.45, 0.22],
    };
    for isa in isas() {
        for (n, w, h, t) in [
            (1024usize, 32usize, 8usize, 16usize),
            (1000, 24, 6, 13),
            (520, 16, 4, 8),
        ] {
            let init = grid1(n, 31 + n as u64);
            let reference = scalar1(&init, s, t, isa);
            for threads in [1usize, 4] {
                let mut g = init.clone();
                Plan::new(Shape::d1(n))
                    .method(Method::Dlt)
                    .isa(isa)
                    .tiling(Tiling::Split { w, h, threads })
                    .star1(s)
                    .unwrap()
                    .run(&mut g, t);
                let d = max_abs_diff1(&g, &reference);
                assert_eq!(d, 0.0, "split/{isa}/n={n}/w={w}/h={h}/t={t}/thr={threads}");
            }
        }
    }
}

fn grid2(nx: usize, ny: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid2::from_fn(nx, ny, 1, halo, |_, _| r.random_range(-1.0..1.0))
}

#[test]
fn tessellate2_matches_untiled() {
    let s = S2d5p {
        wx: [0.2, 0.3, 0.19],
        wy: [0.12, 0.0, 0.14],
    };
    let isa = Isa::detect_best();
    let (nx, ny, t) = (150usize, 40usize, 11usize);
    let init = grid2(nx, ny, 4);
    let mut reference = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Scalar)
        .isa(isa)
        .star2(s)
        .unwrap()
        .run(&mut reference, t);
    for m in tess_methods() {
        for threads in [1usize, 4] {
            let mut g = init.clone();
            Plan::new(Shape::d2(nx, ny))
                .method(m)
                .isa(isa)
                .tiling(Tiling::Tessellate {
                    w: [48, 16, 0],
                    h: 6,
                    threads,
                })
                .star2(s)
                .unwrap()
                .run(&mut g, t);
            let d = max_abs_diff2(&g, &reference);
            assert_eq!(d, 0.0, "{m}/{isa}/thr={threads}");
        }
    }
}

#[test]
fn tessellate2_box_matches_untiled() {
    let mut r = StdRng::seed_from_u64(2);
    let mut w = [0.0f64; 9];
    for x in w.iter_mut() {
        *x = r.random_range(0.0..0.11);
    }
    let s = S2d9p { w };
    let isa = Isa::detect_best();
    let (nx, ny, t) = (120usize, 30usize, 7usize);
    let init = grid2(nx, ny, 6);
    let mut reference = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Scalar)
        .isa(isa)
        .box2(s)
        .unwrap()
        .run(&mut reference, t);
    for m in tess_methods() {
        let mut g = init.clone();
        Plan::new(Shape::d2(nx, ny))
            .method(m)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [40, 12, 0],
                h: 5,
                threads: 4,
            })
            .box2(s)
            .unwrap()
            .run(&mut g, t);
        assert_eq!(max_abs_diff2(&g, &reference), 0.0, "{m}/{isa}");
    }
}

#[test]
fn split2_matches_untiled() {
    let s = S2d5p {
        wx: [0.21, 0.33, 0.2],
        wy: [0.1, 0.0, 0.11],
    };
    let isa = Isa::detect_best();
    let (nx, ny, t) = (130usize, 36usize, 9usize);
    let init = grid2(nx, ny, 8);
    let mut reference = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Scalar)
        .isa(isa)
        .star2(s)
        .unwrap()
        .run(&mut reference, t);
    let mut g = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 12,
            h: 5,
            threads: 4,
        })
        .star2(s)
        .unwrap()
        .run(&mut g, t);
    assert_eq!(max_abs_diff2(&g, &reference), 0.0);

    let mut rr = StdRng::seed_from_u64(3);
    let mut w = [0.0f64; 9];
    for x in w.iter_mut() {
        *x = rr.random_range(0.0..0.1);
    }
    let sb = S2d9p { w };
    let mut reference = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Scalar)
        .isa(isa)
        .box2(sb)
        .unwrap()
        .run(&mut reference, t);
    let mut g = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 12,
            h: 5,
            threads: 4,
        })
        .box2(sb)
        .unwrap()
        .run(&mut g, t);
    assert_eq!(max_abs_diff2(&g, &reference), 0.0);
}

fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid3::from_fn(nx, ny, nz, 1, halo, |_, _, _| r.random_range(-1.0..1.0))
}

#[test]
fn tessellate3_matches_untiled() {
    let s = S3d7p {
        wx: [0.1, 0.28, 0.12],
        wy: [0.09, 0.0, 0.11],
        wz: [0.08, 0.0, 0.07],
    };
    let isa = Isa::detect_best();
    let (nx, ny, nz, t) = (80usize, 20usize, 16usize, 7usize);
    let init = grid3(nx, ny, nz, 12);
    let mut reference = init.clone();
    Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::Scalar)
        .isa(isa)
        .star3(s)
        .unwrap()
        .run(&mut reference, t);
    for m in tess_methods() {
        let mut g = init.clone();
        Plan::new(Shape::d3(nx, ny, nz))
            .method(m)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [40, 10, 8],
                h: 4,
                threads: 4,
            })
            .star3(s)
            .unwrap()
            .run(&mut g, t);
        assert_eq!(max_abs_diff3(&g, &reference), 0.0, "{m}/{isa}");
    }
}

#[test]
fn tessellate3_box_matches_untiled() {
    let mut r = StdRng::seed_from_u64(5);
    let mut w = [0.0f64; 27];
    for x in w.iter_mut() {
        *x = r.random_range(0.0..0.037);
    }
    let s = S3d27p { w };
    let isa = Isa::detect_best();
    let (nx, ny, nz, t) = (72usize, 18usize, 12usize, 5usize);
    let init = grid3(nx, ny, nz, 14);
    let mut reference = init.clone();
    Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::Scalar)
        .isa(isa)
        .box3(s)
        .unwrap()
        .run(&mut reference, t);
    for m in tess_methods() {
        let mut g = init.clone();
        Plan::new(Shape::d3(nx, ny, nz))
            .method(m)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [36, 8, 6],
                h: 3,
                threads: 4,
            })
            .box3(s)
            .unwrap()
            .run(&mut g, t);
        assert_eq!(max_abs_diff3(&g, &reference), 0.0, "{m}/{isa}");
    }
}

#[test]
fn split3_matches_untiled() {
    let s = S3d7p {
        wx: [0.11, 0.3, 0.1],
        wy: [0.1, 0.0, 0.09],
        wz: [0.07, 0.0, 0.06],
    };
    let isa = Isa::detect_best();
    let (nx, ny, nz, t) = (70usize, 16usize, 14usize, 6usize);
    let init = grid3(nx, ny, nz, 21);
    let mut reference = init.clone();
    Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::Scalar)
        .isa(isa)
        .star3(s)
        .unwrap()
        .run(&mut reference, t);
    let mut g = init.clone();
    Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 6,
            h: 3,
            threads: 4,
        })
        .star3(s)
        .unwrap()
        .run(&mut g, t);
    assert_eq!(max_abs_diff3(&g, &reference), 0.0);
}

#[test]
fn parallel_equals_serial_bitwise() {
    let s = S1d3p::heat();
    let isa = Isa::detect_best();
    let init = grid1(2000, 77);
    let tiled = |threads: usize| {
        let mut g = init.clone();
        Plan::new(Shape::d1(2000))
            .method(Method::TransLayout2)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [256, 0, 0],
                h: 16,
                threads,
            })
            .star1(s)
            .unwrap()
            .run(&mut g, 24);
        g
    };
    let serial = tiled(1);
    for threads in [2usize, 8, 16] {
        let par = tiled(threads);
        assert_eq!(max_abs_diff1(&par, &serial), 0.0, "threads={threads}");
    }
}

#[test]
fn sessions_amortize_tiled_stepping_exactly() {
    // One tiled session stepping 4 × 8 steps equals a single 32-step run.
    let s = S1d3p::heat();
    let isa = Isa::detect_best();
    let init = grid1(1500, 31);
    let mut plan = Plan::new(Shape::d1(1500))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [200, 0, 0],
            h: 8,
            threads: 4,
        })
        .star1(s)
        .unwrap();
    let mut g = init.clone();
    {
        let mut sess = plan.session(&mut g);
        for _ in 0..4 {
            sess.run(8);
        }
    }
    let mut once = init.clone();
    Plan::new(Shape::d1(1500))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [200, 0, 0],
            h: 8,
            threads: 4,
        })
        .star1(s)
        .unwrap()
        .run(&mut once, 32);
    assert_eq!(max_abs_diff1(&g, &once), 0.0);
}

mod legacy_wrappers {
    //! The 13 legacy free functions are thin wrappers over `Plan`; keep
    //! them green and bit-identical to the plan path.

    use super::*;

    #[test]
    fn legacy_tessellate_and_split_remain_green() {
        let s = S1d3p {
            w: [0.21, 0.55, 0.2],
        };
        let isa = Isa::detect_best();
        let (n, t) = (700usize, 12usize);
        let init = grid1(n, 19);
        let reference = scalar1(&init, s, t, isa);

        let mut g = init.clone();
        tessellate1_star1(Method::TransLayout2, isa, &mut g, &s, t, 100, 10, 4);
        assert_eq!(max_abs_diff1(&g, &reference), 0.0, "tessellate wrapper");

        let mut g = init.clone();
        split1_star1(isa, &mut g, &s, t, 24, 6, 4);
        assert_eq!(max_abs_diff1(&g, &reference), 0.0, "split wrapper");
    }

    #[test]
    fn legacy_box_wrappers_remain_green() {
        let isa = Isa::detect_best();
        let mut r = StdRng::seed_from_u64(40);
        let mut w = [0.0f64; 9];
        for x in w.iter_mut() {
            *x = r.random_range(0.0..0.1);
        }
        let sb = S2d9p { w };
        let init = grid2(96, 24, 23);
        let mut reference = init.clone();
        Plan::new(Shape::d2(96, 24))
            .method(Method::Scalar)
            .isa(isa)
            .box2(sb)
            .unwrap()
            .run(&mut reference, 6);
        let mut g = init.clone();
        split2_box(isa, &mut g, &sb, 6, 8, 4, 4);
        assert_eq!(max_abs_diff2(&g, &reference), 0.0, "split2_box wrapper");

        let mut w3 = [0.0f64; 27];
        for x in w3.iter_mut() {
            *x = r.random_range(0.0..0.035);
        }
        let s3 = S3d27p { w: w3 };
        let init = grid3(66, 12, 10, 29);
        let mut reference = init.clone();
        Plan::new(Shape::d3(66, 12, 10))
            .method(Method::Scalar)
            .isa(isa)
            .box3(s3)
            .unwrap()
            .run(&mut reference, 4);
        let mut g = init.clone();
        split3_box(isa, &mut g, &s3, 4, 5, 2, 4);
        assert_eq!(max_abs_diff3(&g, &reference), 0.0, "split3_box wrapper");
    }
}
