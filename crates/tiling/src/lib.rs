//! # stencil-tiling
//!
//! Legacy temporal-tiling entry points for the stencil-lab workspace,
//! reproducing the two tiling frameworks of the paper's evaluation:
//!
//! * [`tessellate`] — tessellate tiling (Yuan et al., SC'17), the
//!   framework the paper integrates its transpose-layout vectorization
//!   with (§3.4);
//! * [`split`] — split tiling over the DLT layout, standing in for SDSL
//!   (Henretty et al., ICS'13).
//!
//! Since the plan refactor, the actual drivers live in
//! [`stencil_core::exec`] (parameterized by a plan's pre-allocated
//! buffers and thread pool); every function here is a **thin wrapper**
//! that builds a one-shot [`Plan`](stencil_core::exec::Plan) with the
//! matching [`Tiling`](stencil_core::exec::Tiling) and runs it. Code that
//! steps repeatedly should hold the plan itself and amortize buffers,
//! layout round-trips, and pool construction.
//!
//! Every driver produces results **bit-identical** to the untiled scalar
//! reference: tiling changes only the traversal order of space-time
//! points, never the per-point accumulation order (tested in
//! `tests/tiled.rs`).

#![warn(missing_docs)]

pub mod split;
pub mod tessellate;

/// Per-dimension tile-shape algebra (re-exported from
/// [`stencil_core::exec::tile`], its home since the plan refactor).
pub mod tile {
    pub use stencil_core::exec::tile::DimTiling;
}

pub use split::{split1_star1, split2_box, split2_star, split3_box, split3_star};
pub use tessellate::{
    tessellate1_star1, tessellate2_box, tessellate2_star, tessellate3_box, tessellate3_star,
};
pub use tile::DimTiling;
