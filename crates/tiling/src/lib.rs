//! # stencil-tiling
//!
//! Temporal tiling substrates for the stencil-lab workspace, reproducing
//! the two tiling frameworks of the paper's evaluation:
//!
//! * [`tessellate`] — tessellate tiling (Yuan et al., SC'17), the
//!   framework the paper integrates its transpose-layout vectorization
//!   with (§3.4): triangles / inverted triangles in 1D, `d+1`-stage
//!   product tessellation in 2D/3D, rayon-parallel within each stage.
//!   Intra-tile vectorization is pluggable, so the same driver yields the
//!   paper's *Tessellation* baseline (`Method::MultiLoad`), *Our*
//!   (`Method::TransLayout`) and *Our (2 steps)* (`Method::TransLayout2`,
//!   with the 1D fused-pair register pipeline).
//! * [`split`] — split tiling over the DLT layout, standing in for SDSL
//!   (Henretty et al., ICS'13): column-space tiles in 1D (with per-seam
//!   scalar tiles), hybrid outer-dimension split in 2D/3D.
//!
//! Every driver produces results **bit-identical** to the untiled scalar
//! reference: tiling changes only the traversal order of space-time
//! points, never the per-point accumulation order (tested in
//! `tests/tiled.rs`).

#![warn(missing_docs)]
// Index-based loops in the kernels are deliberate: the index arithmetic
// (lane positions, set offsets) is the algorithm; iterator adapters would
// obscure it and complicate the unroll-friendly shape LLVM needs.
#![allow(clippy::needless_range_loop)]

pub mod split;
pub mod tessellate;
pub mod tile;

pub use split::{split1_star1, split2_box, split2_star, split3_box, split3_star};
pub use tessellate::{
    tessellate1_star1, tessellate2_box, tessellate2_star, tessellate3_box, tessellate3_star,
};
pub use tile::DimTiling;
