//! Legacy split-tiling entry points over the **DLT layout** — the SDSL
//! stand-in (Henretty et al., ICS'13): thin wrappers over [`Plan`] with
//! [`Tiling::Split`] and [`Method::Dlt`]. The drivers themselves live in
//! `stencil_core::exec::split`, parameterized by the plan's staging
//! buffers and worker pool.

use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::{Box2, Box3, Grid1, Grid2, Grid3, Method, Star1, Star2, Star3};
use stencil_simd::Isa;

/// Run `t` steps of a 1D star stencil under SDSL-style split tiling:
/// DLT layout, column-space triangles/inverted tiles of base `w` columns,
/// chunk height `h`, `threads` workers.
#[allow(clippy::too_many_arguments)]
pub fn split1_star1<S: Star1>(
    isa: Isa,
    g: &mut Grid1,
    s: &S,
    t: usize,
    w: usize,
    h: usize,
    threads: usize,
) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d1(g.n()))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split { w, h, threads })
        .star1(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}

macro_rules! split2_impl {
    ($name:ident, $bound:ident, $terminal:ident) => {
        /// Run `t` steps of a 2D stencil under SDSL-style hybrid tiling:
        /// split tiling over `y` (base `wy`, chunk height `h`), DLT rows
        /// along `x`.
        #[allow(clippy::too_many_arguments)]
        pub fn $name<S: $bound>(
            isa: Isa,
            g: &mut Grid2,
            s: &S,
            t: usize,
            wy: usize,
            h: usize,
            threads: usize,
        ) {
            if t == 0 {
                return;
            }
            Plan::new(Shape::d2(g.nx(), g.ny()))
                .method(Method::Dlt)
                .isa(isa)
                .tiling(Tiling::Split { w: wy, h, threads })
                .$terminal(*s)
                .unwrap_or_else(|e| panic!("{e}"))
                .run(g, t);
        }
    };
}

split2_impl!(split2_star, Star2, star2);
split2_impl!(split2_box, Box2, box2);

macro_rules! split3_impl {
    ($name:ident, $bound:ident, $terminal:ident) => {
        /// Run `t` steps of a 3D stencil under SDSL-style hybrid tiling:
        /// split tiling over `z`, DLT rows along `x`.
        #[allow(clippy::too_many_arguments)]
        pub fn $name<S: $bound>(
            isa: Isa,
            g: &mut Grid3,
            s: &S,
            t: usize,
            wz: usize,
            h: usize,
            threads: usize,
        ) {
            if t == 0 {
                return;
            }
            Plan::new(Shape::d3(g.nx(), g.ny(), g.nz()))
                .method(Method::Dlt)
                .isa(isa)
                .tiling(Tiling::Split { w: wz, h, threads })
                .$terminal(*s)
                .unwrap_or_else(|e| panic!("{e}"))
                .run(g, t);
        }
    };
}

split3_impl!(split3_star, Star3, star3);
split3_impl!(split3_box, Box3, box3);
