//! Legacy tessellate-tiling entry points (Yuan et al., SC'17 — §3.4 of
//! the paper): thin wrappers over [`Plan`] with
//! [`Tiling::Tessellate`]. The drivers themselves live in
//! `stencil_core::exec::tess`, parameterized by the plan's buffers and
//! worker pool.

use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::{Box2, Box3, Grid1, Grid2, Grid3, Method, Star1, Star2, Star3};
use stencil_simd::Isa;

/// Run `t` steps of a 1D star stencil under tessellate tiling with
/// triangle base `w`, chunk height `h`, on `threads` rayon workers.
#[allow(clippy::too_many_arguments)]
pub fn tessellate1_star1<S: Star1>(
    method: Method,
    isa: Isa,
    g: &mut Grid1,
    s: &S,
    t: usize,
    w: usize,
    h: usize,
    threads: usize,
) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d1(g.n()))
        .method(method)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [w, 0, 0],
            h,
            threads,
        })
        .star1(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}

macro_rules! tessellate2_impl {
    ($name:ident, $bound:ident, $terminal:ident) => {
        /// Run `t` steps of a 2D stencil under tessellate tiling
        /// (`wx`/`wy` triangle bases, chunk height `h`, `threads`
        /// workers). Stages execute product tiles by inverted-dimension
        /// count: (tri,tri) → (inv,tri)+(tri,inv) → (inv,inv).
        #[allow(clippy::too_many_arguments)]
        pub fn $name<S: $bound>(
            method: Method,
            isa: Isa,
            g: &mut Grid2,
            s: &S,
            t: usize,
            wx: usize,
            wy: usize,
            h: usize,
            threads: usize,
        ) {
            if t == 0 {
                return;
            }
            Plan::new(Shape::d2(g.nx(), g.ny()))
                .method(method)
                .isa(isa)
                .tiling(Tiling::Tessellate {
                    w: [wx, wy, 0],
                    h,
                    threads,
                })
                .$terminal(*s)
                .unwrap_or_else(|e| panic!("{e}"))
                .run(g, t);
        }
    };
}

tessellate2_impl!(tessellate2_star, Star2, star2);
tessellate2_impl!(tessellate2_box, Box2, box2);

macro_rules! tessellate3_impl {
    ($name:ident, $bound:ident, $terminal:ident) => {
        /// Run `t` steps of a 3D stencil under tessellate tiling (4 stages
        /// by inverted-dimension count).
        #[allow(clippy::too_many_arguments)]
        pub fn $name<S: $bound>(
            method: Method,
            isa: Isa,
            g: &mut Grid3,
            s: &S,
            t: usize,
            wx: usize,
            wy: usize,
            wz: usize,
            h: usize,
            threads: usize,
        ) {
            if t == 0 {
                return;
            }
            Plan::new(Shape::d3(g.nx(), g.ny(), g.nz()))
                .method(method)
                .isa(isa)
                .tiling(Tiling::Tessellate {
                    w: [wx, wy, wz],
                    h,
                    threads,
                })
                .$terminal(*s)
                .unwrap_or_else(|e| panic!("{e}"))
                .run(g, t);
        }
    };
}

tessellate3_impl!(tessellate3_star, Star3, star3);
tessellate3_impl!(tessellate3_box, Box3, box3);
