//! End-to-end tests of the service layer: concurrency, bit-identity
//! against the engine driven directly, cache effectiveness, weighted
//! round-robin fairness, timeout/cancel, backpressure, and shutdown.

use std::sync::Arc;
use std::time::Duration;

use stencil_core::exec::{Plan, Shape};
use stencil_core::{AnyGrid, StencilSpec};
use stencil_server::{
    CacheOutcome, JobError, JobHandle, JobSpec, Server, ServerConfig, SubmitError,
};

/// Deterministic, spec-appropriate test grid (same recipe everywhere so
/// server results can be compared bit-for-bit against direct runs).
fn grid_for(spec: &StencilSpec, shape: Shape) -> AnyGrid {
    AnyGrid::from_fn_spec(shape, spec, |z, y, x| {
        (x as f64) + 0.25 * (y as f64) - 0.125 * (z as f64)
    })
    .unwrap()
}

/// Step an identical grid by driving the engine directly (no server),
/// with the same plan knobs `JobSpec` defaults to.
fn direct(spec: &StencilSpec, shape: Shape, steps: usize) -> Vec<f64> {
    let mut plan = Plan::new(shape).stencil(spec).unwrap();
    let mut g = grid_for(spec, shape);
    plan.run(&mut g, steps);
    g.to_vec()
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Park the dispatcher on a long-running job so queue contents can be
/// arranged deterministically behind it. Returns once the dispatcher
/// has actually picked the job up (the queue is drained), so everything
/// submitted afterwards sits behind ~5×10⁷ cell-updates of work.
fn stall(server: &Server, tenant: &str) -> JobHandle {
    let spec: StencilSpec = "1d3p".parse().unwrap();
    let shape = Shape::d1(1_000_000);
    let h = server
        .submit(JobSpec::new(
            tenant,
            spec.clone(),
            grid_for(&spec, shape),
            50,
        ))
        .unwrap();
    while server.queued_jobs() > 0 {
        std::thread::sleep(Duration::from_micros(100));
    }
    h
}

#[test]
fn server_and_handles_are_send() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Server>();
    assert_sync::<Server>();
    assert_send::<JobHandle>();
    assert_send::<JobSpec>();
}

#[test]
fn submit_validates_grid_against_spec() {
    let server = Server::with_defaults();
    let s1: StencilSpec = "1d3p".parse().unwrap();
    let s2: StencilSpec = "2d5p".parse().unwrap();
    let s2f32: StencilSpec = "2d5p@f32".parse().unwrap();
    let g2 = grid_for(&s2, Shape::d2(16, 16));

    let err = server
        .submit(JobSpec::new("t", s1, grid_for(&s2, Shape::d2(16, 16)), 1))
        .unwrap_err();
    assert!(matches!(
        err,
        SubmitError::NdimMismatch { spec: 1, grid: 2 }
    ));

    let err = server.submit(JobSpec::new("t", s2f32, g2, 1)).unwrap_err();
    assert!(matches!(err, SubmitError::DtypeMismatch { .. }));
}

/// The headline contract: two tenants hammering the server from eight
/// threads with a mix of dimensionalities, dtypes, and boundaries get
/// results bit-identical to driving the engine directly — and after the
/// first sight of each configuration, (well over) 90 % of jobs are
/// served from the plan cache.
#[test]
fn concurrent_tenants_bit_identical_and_cache_effective() {
    let cases: Vec<(StencilSpec, Shape, usize)> = [
        ("1d3p", Shape::d1(96)),
        ("1d5p@periodic", Shape::d1(80)),
        ("2d5p@reflect", Shape::d2(24, 17)),
        ("2d9p@f32", Shape::d2(20, 15)),
        ("3d7p@periodic@f32", Shape::d3(12, 9, 7)),
        ("3d27p", Shape::d3(10, 8, 6)),
    ]
    .into_iter()
    .map(|(name, shape)| (name.parse().unwrap(), shape, 3))
    .collect();

    let expected: Vec<Vec<f64>> = cases
        .iter()
        .map(|(spec, shape, steps)| direct(spec, *shape, *steps))
        .collect();

    let server = Arc::new(Server::with_defaults());

    // Warmup: one cold compile per distinct configuration.
    for (spec, shape, steps) in &cases {
        let h = server
            .submit(JobSpec::new(
                "warmup",
                spec.clone(),
                grid_for(spec, *shape),
                *steps,
            ))
            .unwrap();
        let out = h.wait().unwrap();
        assert_eq!(out.trace.cache, CacheOutcome::Miss);
    }

    // Steady state: 8 threads × 15 jobs, two tenants, every job a hit.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            let cases = cases.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let tenant = if t % 2 == 0 { "alice" } else { "bob" };
                for j in 0..15 {
                    let (spec, shape, steps) = &cases[(t + j) % cases.len()];
                    let h = server
                        .submit(JobSpec::new(
                            tenant,
                            spec.clone(),
                            grid_for(spec, *shape),
                            *steps,
                        ))
                        .unwrap();
                    let out = h.wait().unwrap();
                    assert_eq!(out.trace.tenant, tenant);
                    assert!(
                        bits_equal(&out.grid.to_vec(), &expected[(t + j) % cases.len()]),
                        "server result diverged from direct run for {spec}"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = server.cache_stats();
    assert_eq!(stats.misses, cases.len() as u64, "only warmup misses");
    assert_eq!(stats.hits, 8 * 15, "every steady-state job hit the cache");
    assert_eq!(stats.evictions, 0);
    assert!(
        stats.hit_rate() >= 0.9,
        "hit rate {:.3} below the 90 % bar",
        stats.hit_rate()
    );
    assert_eq!(server.jobs_completed(), (cases.len() + 8 * 15) as u64);

    // Every completed job left a trace, in dispatch order.
    let traces = server.traces();
    assert_eq!(traces.len(), cases.len() + 8 * 15);
    assert!(traces.windows(2).all(|w| w[0].seq < w[1].seq));
}

/// Weights shape contended throughput: with the dispatcher parked and
/// queues pre-filled, a weight-3 tenant gets three jobs per rotation to
/// a weight-1 tenant's one.
#[test]
fn weighted_round_robin_order_under_contention() {
    let server = Server::with_defaults();
    let stall_h = stall(&server, "warmup");

    server.set_weight("alice", 3);
    server.set_weight("bob", 1);
    let spec: StencilSpec = "1d3p".parse().unwrap();
    let shape = Shape::d1(64);
    let mut handles = Vec::new();
    // Interleave submissions so arrival order alone cannot explain the
    // dispatch order the scheduler produces.
    for _ in 0..2 {
        for tenant in ["bob", "alice", "alice", "bob", "alice"] {
            handles.push(
                server
                    .submit(JobSpec::new(
                        tenant,
                        spec.clone(),
                        grid_for(&spec, shape),
                        1,
                    ))
                    .unwrap(),
            );
        }
    }
    stall_h.wait().unwrap();
    for h in handles {
        h.wait().unwrap();
    }

    let order: Vec<String> = server
        .traces()
        .into_iter()
        .filter(|t| t.tenant != "warmup")
        .map(|t| t.tenant)
        .collect();
    // 6 alice + 4 bob at weights 3:1 → three alice, one bob per
    // rotation, then the bob backlog drains alone.
    let expect = [
        "alice", "alice", "alice", "bob", "alice", "alice", "alice", "bob", "bob", "bob",
    ];
    assert_eq!(order, expect, "dispatch order violates weighted RR");
}

#[test]
fn cancel_and_timeout_fail_queued_jobs() {
    let server = Server::with_defaults();
    let stall_h = stall(&server, "warmup");

    let spec: StencilSpec = "1d3p".parse().unwrap();
    let shape = Shape::d1(64);
    let cancelled = server
        .submit(JobSpec::new("t", spec.clone(), grid_for(&spec, shape), 1))
        .unwrap();
    cancelled.cancel();
    let timed_out = server
        .submit(JobSpec::new("t", spec.clone(), grid_for(&spec, shape), 1).timeout(Duration::ZERO))
        .unwrap();
    let survivor = server
        .submit(
            JobSpec::new("t", spec.clone(), grid_for(&spec, shape), 1)
                .timeout(Duration::from_secs(3600)),
        )
        .unwrap();

    stall_h.wait().unwrap();
    assert_eq!(cancelled.wait().unwrap_err(), JobError::Cancelled);
    assert_eq!(timed_out.wait().unwrap_err(), JobError::TimedOut);
    assert!(survivor.wait().is_ok(), "generous deadline must not fire");
}

#[test]
fn bounded_queue_pushes_back_per_tenant() {
    let server = Server::new(ServerConfig::default().queue_capacity(2));
    let stall_h = stall(&server, "warmup");

    let spec: StencilSpec = "1d3p".parse().unwrap();
    let shape = Shape::d1(64);
    let mk = |tenant: &str| JobSpec::new(tenant, spec.clone(), grid_for(&spec, shape), 1);

    let a1 = server.submit(mk("greedy")).unwrap();
    let a2 = server.submit(mk("greedy")).unwrap();
    let err = server.submit(mk("greedy")).unwrap_err();
    assert_eq!(
        err,
        SubmitError::QueueFull {
            tenant: "greedy".to_string(),
            capacity: 2
        }
    );
    // Backpressure is per tenant: another tenant still gets in.
    let b1 = server.submit(mk("patient")).unwrap();

    stall_h.wait().unwrap();
    for h in [a1, a2, b1] {
        h.wait().unwrap();
    }
    // With the queue drained the tenant may submit again.
    server.submit(mk("greedy")).unwrap().wait().unwrap();
}

#[test]
fn plan_errors_surface_through_the_handle() {
    // A periodic boundary needs every extent ≥ the radius; 1d5p (r = 2)
    // on a 3-cell row passes grid construction (from_fn, not
    // from_fn_spec) but fails plan compilation on the dispatcher.
    let server = Server::with_defaults();
    let spec: StencilSpec = "1d5p@periodic".parse().unwrap();
    let shape = Shape::d1(1);
    let grid = AnyGrid::from_fn(shape, spec.radius(), 0.0, |_, _, x| x as f64);
    let h = server.submit(JobSpec::new("t", spec, grid, 1)).unwrap();
    match h.wait() {
        Err(JobError::Plan(_)) => {}
        other => panic!("expected a plan error, got {other:?}"),
    }
}

#[test]
fn dropping_the_server_fails_queued_jobs_cleanly() {
    let server = Server::with_defaults();
    let stall_h = stall(&server, "warmup");
    let spec: StencilSpec = "1d3p".parse().unwrap();
    let shape = Shape::d1(64);
    let queued: Vec<JobHandle> = (0..3)
        .map(|_| {
            server
                .submit(JobSpec::new("t", spec.clone(), grid_for(&spec, shape), 1))
                .unwrap()
        })
        .collect();
    drop(server);
    // The in-flight job ran to completion; the queued ones were failed.
    stall_h.wait().unwrap();
    for h in queued {
        assert_eq!(h.wait().unwrap_err(), JobError::Shutdown);
    }
}
