//! Job descriptions, handles, and the error surface of the service layer.
//!
//! A [`JobSpec`] is the unit of submission: a tenant name, a runtime
//! stencil description, the grid to step, and a step count, plus the
//! plan knobs the engine exposes. Submission returns a [`JobHandle`];
//! [`JobHandle::wait`] blocks until the dispatcher has run (or rejected)
//! the job and yields the stepped grid together with its [`RunTrace`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use stencil_core::exec::{Method, Parallelism, PlanError, Tiling};
use stencil_core::{AnyGrid, StencilSpec};
use stencil_simd::Dtype;

use crate::trace::RunTrace;

/// One unit of work: step `grid` by `steps` applications of `spec`.
///
/// Built with [`JobSpec::new`] and refined with the builder methods.
/// The plan knobs default to the engine's defaults with one exception:
/// **parallelism defaults to [`Parallelism::Off`]**, because a service
/// runs many tenants' jobs concurrently with each other and per-job
/// `Auto` would oversubscribe the machine; opt individual jobs into
/// threads explicitly with [`JobSpec::parallelism`].
pub struct JobSpec {
    pub(crate) tenant: String,
    pub(crate) spec: StencilSpec,
    pub(crate) grid: AnyGrid,
    pub(crate) steps: usize,
    pub(crate) method: Method,
    pub(crate) tiling: Tiling,
    pub(crate) parallelism: Parallelism,
    pub(crate) timeout: Option<Duration>,
}

impl JobSpec {
    /// A job for `tenant` stepping `grid` by `steps` sweeps of `spec`.
    ///
    /// The grid must match the spec's dimensionality and element type;
    /// `Server::submit` rejects mismatches with a [`SubmitError`] instead
    /// of letting the engine panic on the dispatcher thread.
    pub fn new(
        tenant: impl Into<String>,
        spec: StencilSpec,
        grid: AnyGrid,
        steps: usize,
    ) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            spec,
            grid,
            steps,
            method: Method::TransLayout2,
            tiling: Tiling::None,
            parallelism: Parallelism::Off,
            timeout: None,
        }
    }

    /// Select the vectorization scheme (default: the engine's
    /// [`Method::TransLayout2`]).
    pub fn method(mut self, m: Method) -> JobSpec {
        self.method = m;
        self
    }

    /// Select a temporal tiling framework (default: none).
    pub fn tiling(mut self, t: Tiling) -> JobSpec {
        self.tiling = t;
        self
    }

    /// Select core-level parallelism for this job (default: `Off`; see
    /// the type-level docs for why the service default differs from the
    /// engine's).
    pub fn parallelism(mut self, p: Parallelism) -> JobSpec {
        self.parallelism = p;
        self
    }

    /// Fail the job with [`JobError::TimedOut`] if it is still queued
    /// when the deadline passes. The deadline is checked when the
    /// dispatcher picks the job up; a job that has already started runs
    /// to completion.
    pub fn timeout(mut self, d: Duration) -> JobSpec {
        self.timeout = Some(d);
        self
    }
}

/// Why `Server::submit` refused a job (the job was never queued).
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The tenant's queue is at capacity — backpressure. Retry after
    /// draining some handles.
    QueueFull {
        /// Tenant whose queue is full.
        tenant: String,
        /// The per-tenant queue capacity in effect.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new work.
    Shutdown,
    /// The grid's element type does not match the spec's.
    DtypeMismatch {
        /// Element type the spec declares.
        spec: Dtype,
        /// Element type the grid holds.
        grid: Dtype,
    },
    /// The grid's dimensionality does not match the spec's.
    NdimMismatch {
        /// Dimensions the spec operates on.
        spec: usize,
        /// Dimensions the grid has.
        grid: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { tenant, capacity } => {
                write!(f, "queue for tenant '{tenant}' is full ({capacity} jobs)")
            }
            SubmitError::Shutdown => write!(f, "server is shutting down"),
            SubmitError::DtypeMismatch { spec, grid } => write!(
                f,
                "spec element type {} does not match grid element type {}",
                spec.name(),
                grid.name()
            ),
            SubmitError::NdimMismatch { spec, grid } => {
                write!(f, "spec is {spec}D but grid is {grid}D")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a queued job did not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The engine rejected the plan configuration.
    Plan(PlanError),
    /// [`JobHandle::cancel`] was called before the job started.
    Cancelled,
    /// The job's [`JobSpec::timeout`] deadline passed while it was
    /// still queued.
    TimedOut,
    /// The server was dropped while the job was still queued.
    Shutdown,
    /// The sweep panicked on the dispatcher thread; the payload is the
    /// panic message. The plan involved is discarded, not re-cached.
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Plan(e) => write!(f, "plan rejected: {e}"),
            JobError::Cancelled => write!(f, "job cancelled before it started"),
            JobError::TimedOut => write!(f, "job timed out while queued"),
            JobError::Shutdown => write!(f, "server shut down before the job ran"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

/// A finished job: the stepped grid and the trace of how it ran.
#[derive(Debug)]
pub struct JobOutput {
    /// The submitted grid after `steps` sweeps, back in natural layout.
    pub grid: AnyGrid,
    /// What ran, where, and how fast.
    pub trace: RunTrace,
}

/// Lifecycle of a job, shared between handle and dispatcher.
pub(crate) enum JobState {
    /// Queued, not yet picked up.
    Pending,
    /// The dispatcher is running the sweep.
    Running,
    /// Finished; the payload is `Some` until `wait` collects it
    /// (boxed: the outcome is ~an order of magnitude larger than the
    /// other variants, and exactly one lives per job).
    Done(Option<Box<Result<JobOutput, JobError>>>),
}

pub(crate) struct JobShared {
    pub(crate) state: Mutex<JobState>,
    pub(crate) cv: Condvar,
    pub(crate) cancel: AtomicBool,
}

impl JobShared {
    pub(crate) fn new() -> Arc<JobShared> {
        Arc::new(JobShared {
            state: Mutex::new(JobState::Pending),
            cv: Condvar::new(),
            cancel: AtomicBool::new(false),
        })
    }

    /// Dispatcher side: publish the outcome and wake the waiter.
    pub(crate) fn finish(&self, result: Result<JobOutput, JobError>) {
        let mut st = self.state.lock().unwrap();
        *st = JobState::Done(Some(Box::new(result)));
        self.cv.notify_all();
    }

    /// Dispatcher side: mark the job as running.
    pub(crate) fn start(&self) {
        let mut st = self.state.lock().unwrap();
        *st = JobState::Running;
    }
}

/// Your claim on a submitted job. Obtained from `Server::submit`.
pub struct JobHandle {
    pub(crate) shared: Arc<JobShared>,
    pub(crate) id: u64,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl JobHandle {
    /// Server-assigned job id (monotonic per server, also recorded in
    /// the job's [`RunTrace`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ask the server to drop this job. Best-effort: a job that is
    /// still queued when the dispatcher reaches it fails with
    /// [`JobError::Cancelled`]; a job already running (or finished)
    /// completes normally.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Release);
    }

    /// Whether the outcome is ready (i.e. [`JobHandle::wait`] would
    /// return without blocking).
    pub fn is_finished(&self) -> bool {
        matches!(*self.shared.state.lock().unwrap(), JobState::Done(_))
    }

    /// Block until the job finishes and return its outcome.
    pub fn wait(self) -> Result<JobOutput, JobError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let JobState::Done(payload) = &mut *st {
                return *payload.take().expect("outcome collected exactly once");
            }
            st = self.shared.cv.wait(st).unwrap();
        }
    }
}
