//! The server: a dispatcher thread draining per-tenant queues through
//! the plan cache.
//!
//! # Scheduling model
//!
//! One dispatcher thread runs jobs one at a time; *intra*-job
//! parallelism comes from the job's own plan (its persistent worker
//! pool), so the machine is never oversubscribed by two jobs' pools
//! fighting each other. Across tenants the dispatcher is a classic
//! **weighted round-robin**: each tenant has a weight (default 1), and
//! a full rotation serves up to `weight` jobs from each tenant before
//! moving on. A tenant with an empty queue forfeits the rest of its
//! quantum — weights shape *contended* throughput and never leave the
//! machine idle while any queue is non-empty.
//!
//! # Backpressure and lifecycle
//!
//! Each tenant's queue is bounded ([`ServerConfig::queue_capacity`]);
//! [`Server::submit`] fails fast with `SubmitError::QueueFull` instead
//! of buffering without limit. Cancellation and per-job timeouts are
//! checked when the dispatcher picks a job up — a job that has started
//! runs to completion. Dropping the server stops intake, finishes the
//! in-flight job, fails every still-queued job with
//! `JobError::Shutdown`, and joins the dispatcher.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use stencil_core::exec::Plan;

use crate::cache::{CacheStats, PlanCache, PlanKey};
use crate::job::{JobError, JobHandle, JobOutput, JobShared, JobSpec, SubmitError};
use crate::trace::{CacheOutcome, RunTrace};

/// Capacity knobs for a [`Server`]; start from `ServerConfig::default()`.
#[derive(Copy, Clone, Debug)]
pub struct ServerConfig {
    /// Maximum resident plans in the cache (default 32; 0 disables
    /// caching, every job compiles its own plan).
    pub cache_capacity: usize,
    /// Maximum queued jobs per tenant before `submit` returns
    /// `SubmitError::QueueFull` (default 1024; must be ≥ 1).
    pub queue_capacity: usize,
    /// Completed-trace ring size; older traces are dropped once the
    /// ring is full (default 1024).
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_capacity: 32,
            queue_capacity: 1024,
            trace_capacity: 1024,
        }
    }
}

impl ServerConfig {
    /// Set the plan-cache capacity (0 disables caching).
    pub fn cache_capacity(mut self, n: usize) -> ServerConfig {
        self.cache_capacity = n;
        self
    }

    /// Set the per-tenant queue bound (clamped to ≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> ServerConfig {
        self.queue_capacity = n.max(1);
        self
    }

    /// Set the completed-trace ring size.
    pub fn trace_capacity(mut self, n: usize) -> ServerConfig {
        self.trace_capacity = n;
        self
    }
}

/// A job as it sits in a tenant queue.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    shared: Arc<JobShared>,
    deadline: Option<Instant>,
}

struct Tenant {
    weight: u32,
    queue: VecDeque<QueuedJob>,
}

/// Scheduler state, under one mutex with the intake path.
struct Sched {
    tenants: Vec<Tenant>,
    index: HashMap<String, usize>,
    /// Tenant currently holding the quantum.
    cursor: usize,
    /// Jobs the cursor tenant may still take this rotation.
    credit: u64,
    /// Total queued jobs across tenants (wake predicate).
    queued: usize,
    shutdown: bool,
}

impl Sched {
    /// Index of `name`'s queue, registering the tenant (weight 1) on
    /// first sight. Registration order fixes round-robin order.
    fn tenant_index(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        self.tenants.push(Tenant {
            weight: 1,
            queue: VecDeque::new(),
        });
        let i = self.tenants.len() - 1;
        self.index.insert(name.to_string(), i);
        i
    }

    /// Weighted round-robin: pop the next job, advancing the cursor and
    /// refreshing credit as quanta are used up or forfeited. Returns
    /// `None` only when every queue is empty.
    fn next_job(&mut self) -> Option<QueuedJob> {
        if self.queued == 0 || self.tenants.is_empty() {
            return None;
        }
        // At most one full rotation plus the current remainder finds a
        // non-empty queue, because `queued > 0`.
        for _ in 0..=self.tenants.len() {
            if self.credit > 0 {
                if let Some(job) = self.tenants[self.cursor].queue.pop_front() {
                    self.credit -= 1;
                    self.queued -= 1;
                    return Some(job);
                }
                // Empty queue forfeits the rest of its quantum.
                self.credit = 0;
            }
            self.cursor = (self.cursor + 1) % self.tenants.len();
            self.credit = u64::from(self.tenants[self.cursor].weight.max(1));
        }
        None
    }

    /// Shutdown path: drain every queue, failing each job.
    fn fail_all(&mut self, err: JobError) {
        for t in &mut self.tenants {
            while let Some(job) = t.queue.pop_front() {
                job.shared.finish(Err(err.clone()));
            }
        }
        self.queued = 0;
    }
}

struct Inner {
    cfg: ServerConfig,
    sched: Mutex<Sched>,
    work_cv: Condvar,
    cache: Mutex<PlanCache>,
    traces: Mutex<VecDeque<RunTrace>>,
    next_id: AtomicU64,
    seq: AtomicU64,
    jobs_done: AtomicU64,
}

/// A multi-tenant stencil service: submit jobs, wait on handles.
///
/// One dispatcher thread drains bounded per-tenant queues under
/// weighted round-robin (see the crate docs for the scheduling and
/// lifecycle model, and `tests/server.rs` for end-to-end usage).
/// `Server` is `Send` and `Sync`; share it behind an `Arc` to submit
/// from many threads.
pub struct Server {
    inner: Arc<Inner>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Start a server (and its dispatcher thread) with `cfg`.
    pub fn new(cfg: ServerConfig) -> Server {
        let inner = Arc::new(Inner {
            cfg,
            sched: Mutex::new(Sched {
                tenants: Vec::new(),
                index: HashMap::new(),
                cursor: 0,
                credit: 0,
                queued: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            cache: Mutex::new(PlanCache::new(cfg.cache_capacity)),
            traces: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
        });
        let worker = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("stencil-server".to_string())
            .spawn(move || dispatcher_loop(&worker))
            .expect("spawn dispatcher thread");
        Server {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Start a server with [`ServerConfig::default`].
    pub fn with_defaults() -> Server {
        Server::new(ServerConfig::default())
    }

    /// Set a tenant's round-robin weight (clamped to ≥ 1), registering
    /// the tenant if it has not submitted yet. A tenant with weight `w`
    /// gets up to `w` jobs per rotation while its queue is non-empty.
    pub fn set_weight(&self, tenant: &str, weight: u32) {
        let mut s = self.inner.sched.lock().unwrap();
        let i = s.tenant_index(tenant);
        s.tenants[i].weight = weight.max(1);
    }

    /// Queue a job; returns immediately with a handle.
    ///
    /// Validates the grid against the spec up front (mismatches are a
    /// [`SubmitError`], not a dispatcher panic), enforces the per-tenant
    /// queue bound, and refuses work during shutdown.
    pub fn submit(&self, job: JobSpec) -> Result<JobHandle, SubmitError> {
        if job.spec.ndim() != job.grid.ndim() {
            return Err(SubmitError::NdimMismatch {
                spec: job.spec.ndim(),
                grid: job.grid.ndim(),
            });
        }
        if job.spec.dtype() != job.grid.dtype() {
            return Err(SubmitError::DtypeMismatch {
                spec: job.spec.dtype(),
                grid: job.grid.dtype(),
            });
        }
        let deadline = job.timeout.map(|d| Instant::now() + d);
        let mut s = self.inner.sched.lock().unwrap();
        if s.shutdown {
            return Err(SubmitError::Shutdown);
        }
        let i = s.tenant_index(&job.tenant);
        if s.tenants[i].queue.len() >= self.inner.cfg.queue_capacity {
            return Err(SubmitError::QueueFull {
                tenant: job.tenant.clone(),
                capacity: self.inner.cfg.queue_capacity,
            });
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let shared = JobShared::new();
        let handle = JobHandle {
            shared: Arc::clone(&shared),
            id,
        };
        s.tenants[i].queue.push_back(QueuedJob {
            id,
            spec: job,
            shared,
            deadline,
        });
        s.queued += 1;
        drop(s);
        self.inner.work_cv.notify_all();
        Ok(handle)
    }

    /// Snapshot of the plan cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().unwrap().stats()
    }

    /// Completed-job traces, oldest first (bounded by
    /// [`ServerConfig::trace_capacity`]).
    pub fn traces(&self) -> Vec<RunTrace> {
        self.inner.traces.lock().unwrap().iter().cloned().collect()
    }

    /// Dump the retained traces to `<dir>/BENCH_<name>.json` in the
    /// bench harness's artifact format; returns the path written.
    pub fn dump_traces(&self, dir: &Path, name: &str) -> io::Result<PathBuf> {
        crate::trace::dump_traces(dir, name, &self.traces())
    }

    /// Number of jobs that ran to completion (successes only).
    pub fn jobs_completed(&self) -> u64 {
        self.inner.jobs_done.load(Ordering::Relaxed)
    }

    /// Jobs currently queued across all tenants (excludes the job in
    /// flight on the dispatcher).
    pub fn queued_jobs(&self) -> usize {
        self.inner.sched.lock().unwrap().queued
    }
}

impl Drop for Server {
    /// Stop intake, fail queued jobs with `JobError::Shutdown` once the
    /// in-flight job (if any) finishes, and join the dispatcher. Wait on
    /// outstanding handles *before* dropping the server if you need
    /// their results.
    fn drop(&mut self) {
        {
            let mut s = self.inner.sched.lock().unwrap();
            s.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

fn dispatcher_loop(inner: &Inner) {
    loop {
        let job = {
            let mut s = inner.sched.lock().unwrap();
            loop {
                if s.shutdown {
                    s.fail_all(JobError::Shutdown);
                    return;
                }
                if let Some(job) = s.next_job() {
                    break job;
                }
                s = inner.work_cv.wait(s).unwrap();
            }
        };
        execute(inner, job);
    }
}

/// Run one job end to end: cancellation/deadline gate, cache checkout
/// (or compile), the sweep under `catch_unwind`, trace recording, cache
/// return, and the handle wake-up.
fn execute(inner: &Inner, q: QueuedJob) {
    let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
    if q.shared.cancel.load(Ordering::Acquire) {
        q.shared.finish(Err(JobError::Cancelled));
        return;
    }
    if let Some(deadline) = q.deadline {
        if Instant::now() >= deadline {
            q.shared.finish(Err(JobError::TimedOut));
            return;
        }
    }
    let JobSpec {
        tenant,
        spec,
        mut grid,
        steps,
        method,
        tiling,
        parallelism,
        ..
    } = q.spec;
    let key = PlanKey {
        spec,
        shape: grid.shape(),
        method,
        tiling,
        parallelism,
    };
    let (cached, outcome) = {
        let mut c = inner.cache.lock().unwrap();
        match c.take(&key) {
            Some(p) => (Some(p), CacheOutcome::Hit),
            None => (None, CacheOutcome::Miss),
        }
    };
    let mut plan = match cached {
        Some(p) => p,
        None => {
            let built = Plan::new(key.shape)
                .method(method)
                .tiling(tiling)
                .parallelism(parallelism)
                .stencil(&key.spec);
            match built {
                Ok(p) => p,
                Err(e) => {
                    q.shared.finish(Err(JobError::Plan(e)));
                    return;
                }
            }
        }
    };
    q.shared.start();
    let t0 = Instant::now();
    let swept = panic::catch_unwind(AssertUnwindSafe(|| plan.run(&mut grid, steps)));
    let seconds = t0.elapsed().as_secs_f64();
    if let Err(payload) = swept {
        // The plan's scratch state is suspect — drop it, don't re-cache.
        q.shared
            .finish(Err(JobError::Panicked(panic_message(&payload))));
        return;
    }
    let trace = make_trace(&tenant, &key, &plan, q.id, seq, steps, seconds, outcome);
    inner.cache.lock().unwrap().put(key, plan);
    {
        let mut traces = inner.traces.lock().unwrap();
        if inner.cfg.trace_capacity > 0 {
            if traces.len() >= inner.cfg.trace_capacity {
                traces.pop_front();
            }
            traces.push_back(trace.clone());
        }
    }
    inner.jobs_done.fetch_add(1, Ordering::Relaxed);
    q.shared.finish(Ok(JobOutput { grid, trace }));
}

#[allow(clippy::too_many_arguments)]
fn make_trace(
    tenant: &str,
    key: &PlanKey,
    plan: &stencil_core::exec::DynPlan,
    job: u64,
    seq: u64,
    steps: usize,
    seconds: f64,
    cache: CacheOutcome,
) -> RunTrace {
    let dims = key.shape.dims();
    let cells: usize = dims[..key.shape.ndim()].iter().product();
    let shape = dims[..key.shape.ndim()]
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x");
    let flops = key.spec.flops_per_point() as f64 * cells as f64 * steps as f64;
    let gflops = if seconds > 0.0 {
        flops / seconds / 1e9
    } else {
        0.0
    };
    let bytes = (steps * cells * key.spec.dtype().size() * 2) as u64;
    RunTrace {
        job,
        seq,
        tenant: tenant.to_string(),
        spec: key.spec.to_string(),
        shape,
        method: plan.method().name(),
        isa: plan.isa().name(),
        tiling: tiling_name(plan.tiling()),
        threads: plan.threads(),
        steps,
        cells,
        bytes,
        seconds,
        gflops,
        cache,
    }
}

fn tiling_name(t: stencil_core::exec::Tiling) -> &'static str {
    match t {
        stencil_core::exec::Tiling::None => "none",
        stencil_core::exec::Tiling::Tessellate { .. } => "tessellate",
        stencil_core::exec::Tiling::Split { .. } => "split",
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
