//! Structured run traces: one record per completed job.
//!
//! A [`RunTrace`] captures what actually ran — the resolved method/ISA/
//! tiling (not just what was asked for), the cache outcome, and the
//! measured wall time with derived GF/s — so a service operator can
//! answer "what did tenant X run, how fast, and did the cache help?"
//! without re-deriving anything from logs.
//!
//! Traces serialize through the exact same row schema the bench harness
//! uses ([`stencil_bench::save`]), so a dumped trace file is readable by
//! the same tooling as a `BENCH_*.json` artifact.

use std::io;
use std::path::{Path, PathBuf};

use stencil_bench::save::{self, Row, Value};

/// Whether the job's plan came from the cache or was compiled.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CacheOutcome {
    /// A ready plan was checked out of the cache.
    Hit,
    /// No cached plan matched; one was compiled for this job.
    Miss,
}

impl CacheOutcome {
    /// Short name for reports ("hit" / "miss").
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// One completed job, as observed by the dispatcher.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Job id (as returned by `JobHandle::id`).
    pub job: u64,
    /// Dispatch sequence number: the order the dispatcher started jobs
    /// in, across all tenants. Consecutive traces sort by this.
    pub seq: u64,
    /// Tenant the job was submitted under.
    pub tenant: String,
    /// Stencil spec display name, e.g. `2d5p@periodic@f32`.
    pub spec: String,
    /// Problem extent, e.g. `40000` or `320x200`.
    pub shape: String,
    /// Resolved vectorization scheme.
    pub method: &'static str,
    /// Resolved instruction set the kernels ran on.
    pub isa: &'static str,
    /// Temporal tiling framework name (`none`/`tessellate`/`split`).
    pub tiling: &'static str,
    /// Worker threads the plan resolved to.
    pub threads: usize,
    /// Time steps swept.
    pub steps: usize,
    /// Interior cells per step.
    pub cells: usize,
    /// Nominal bytes moved: `steps × cells × elem_size × 2` (one read
    /// stream + one write stream; halos and layout staging not counted).
    pub bytes: u64,
    /// Wall time of the sweep (excludes plan compilation).
    pub seconds: f64,
    /// Throughput derived from the spec's flops-per-point.
    pub gflops: f64,
    /// Whether the plan came from the cache.
    pub cache: CacheOutcome,
}

impl RunTrace {
    /// Flatten into the bench harness's row schema (`save::Row`), so
    /// trace dumps and bench artifacts share one JSON format.
    pub fn to_row(&self) -> Row {
        vec![
            ("job", Value::Int(self.job as i64)),
            ("seq", Value::Int(self.seq as i64)),
            ("tenant", Value::Str(self.tenant.clone())),
            ("spec", Value::Str(self.spec.clone())),
            ("shape", Value::Str(self.shape.clone())),
            ("method", Value::from(self.method)),
            ("isa", Value::from(self.isa)),
            ("tiling", Value::from(self.tiling)),
            ("threads", Value::from(self.threads)),
            ("steps", Value::from(self.steps)),
            ("cells", Value::from(self.cells)),
            ("bytes", Value::Int(self.bytes as i64)),
            ("cache", Value::from(self.cache.name())),
            ("seconds", Value::from(self.seconds)),
            ("gflops", Value::from(self.gflops)),
        ]
    }
}

/// Write `traces` to `<dir>/BENCH_<name>.json` in the bench harness's
/// artifact format; returns the path written.
pub fn dump_traces(dir: &Path, name: &str, traces: &[RunTrace]) -> io::Result<PathBuf> {
    let rows: Vec<Row> = traces.iter().map(RunTrace::to_row).collect();
    save::write_json(dir, name, &rows)
}
