//! `stencil-server` — a multi-tenant service layer over the stencil
//! engine.
//!
//! The core library answers "how do I step this stencil fast on one
//! call stack". This crate answers the next question a production
//! system asks: how do *many* callers share one machine without
//! recompiling plans per request, starving each other, or losing track
//! of what ran. It adds three pieces:
//!
//! * a **plan cache** ([`CacheStats`], [`PlanKey`]) — an LRU of ready
//!   [`DynPlan`](stencil_core::exec::DynPlan)s keyed by everything that
//!   selects a distinct compiled plan, so repeat jobs skip validation,
//!   allocation, and pool spawning;
//! * a **submission queue** ([`Server::submit`] → [`JobHandle`]) — a
//!   dispatcher thread drains bounded per-tenant queues with weighted
//!   round-robin fairness, per-job timeout/cancel, and `QueueFull`
//!   backpressure;
//! * **structured run traces** ([`RunTrace`]) — one record per
//!   completed job (resolved method/ISA/tiling, cache outcome, wall
//!   time, GF/s), dumpable in the bench harness's JSON format.
//!
//! Results are bit-identical to driving the engine directly: the server
//! adds scheduling around [`DynPlan::run`](stencil_core::exec::DynPlan),
//! never arithmetic.
//!
//! ```
//! use stencil_core::{AnyGrid, StencilSpec};
//! use stencil_server::{JobSpec, Server};
//!
//! let server = Server::with_defaults();
//! let spec: StencilSpec = "1d3p".parse().unwrap();
//! let grid = AnyGrid::from_fn_spec(
//!     stencil_core::exec::Shape::d1(128), &spec, |_, _, x| x as f64,
//! ).unwrap();
//!
//! let handle = server.submit(JobSpec::new("demo", spec, grid, 4)).unwrap();
//! let out = handle.wait().unwrap();
//! println!("{} ran at {:.2} GF/s ({})",
//!     out.trace.spec, out.trace.gflops, out.trace.cache.name());
//! ```

#![warn(missing_docs)]

mod cache;
mod job;
mod server;
mod trace;

pub use cache::{CacheStats, PlanKey};
pub use job::{JobError, JobHandle, JobOutput, JobSpec, SubmitError};
pub use server::{Server, ServerConfig};
pub use trace::{dump_traces, CacheOutcome, RunTrace};
