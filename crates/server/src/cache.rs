//! The plan cache: an LRU over compiled [`DynPlan`]s.
//!
//! Compiling a plan is the expensive part of serving a stencil job: the
//! builder validates the whole configuration, allocates the ping-pong
//! scratch grid (and the DLT staging pair or the k = 2 ring where the
//! method needs one), and spawns the persistent worker pool. Running a
//! cached plan skips all of that — the steady-state cost of a job is
//! exactly the sweep itself.
//!
//! The key is **everything that selects a distinct compiled plan**:
//! the runtime stencil description (which carries the boundary condition
//! and element type, compared bitwise — see the `StencilSpec` docs), the
//! grid shape, and the three builder knobs (method, tiling, parallelism).
//! Two jobs that agree on all of these can share one plan; anything else
//! must not.
//!
//! The cache is a *checkout* cache: [`PlanCache::take`] removes the plan
//! so the dispatcher has exclusive use of its scratch buffers while the
//! job runs, and [`PlanCache::put`] returns it afterwards. A plan that
//! panics mid-run is simply never returned, so a poisoned scratch state
//! cannot leak into the next job.

use std::collections::HashMap;

use stencil_core::exec::{DynPlan, Method, Parallelism, Shape, Tiling};
use stencil_core::StencilSpec;

/// Everything that selects a distinct compiled plan.
///
/// The boundary condition and element type ride inside `spec` (with
/// bitwise weight/boundary-value comparison), so e.g. `Dirichlet(0.0)`
/// and `Dirichlet(-0.0)` are distinct keys — matching the bit-exactness
/// contract of the engine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Runtime stencil description (shape family, radius, weights,
    /// boundary, dtype).
    pub spec: StencilSpec,
    /// Problem extent.
    pub shape: Shape,
    /// Vectorization scheme.
    pub method: Method,
    /// Temporal tiling framework.
    pub tiling: Tiling,
    /// Core-level parallelism knob.
    pub parallelism: Parallelism,
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a ready plan.
    pub hits: u64,
    /// Lookups that had to compile a plan.
    pub misses: u64,
    /// Plans dropped to make room for a newer one.
    pub evictions: u64,
    /// Plans stored (first insert and every checkout return).
    pub inserts: u64,
    /// Plans currently resident.
    pub len: usize,
    /// Maximum resident plans (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`; 0 when no
    /// lookups have happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: DynPlan,
    last_used: u64,
}

/// LRU checkout cache, used under the server's cache mutex.
pub(crate) struct PlanCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<PlanKey, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserts: u64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            inserts: 0,
        }
    }

    /// Check the plan for `key` out of the cache for exclusive use.
    /// Counts a hit or a miss either way.
    pub(crate) fn take(&mut self, key: &PlanKey) -> Option<DynPlan> {
        match self.entries.remove(key) {
            Some(e) => {
                self.hits += 1;
                Some(e.plan)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Return a plan after use (or store a freshly compiled one),
    /// evicting the least-recently-used entry if the cache is full.
    /// With `capacity == 0` the plan is simply dropped.
    pub(crate) fn put(&mut self, key: PlanKey, plan: DynPlan) {
        if self.capacity == 0 {
            return;
        }
        // A checkout return for a key that is (unexpectedly) still
        // resident just refreshes the entry; no eviction needed.
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.clock += 1;
        self.inserts += 1;
        self.entries.insert(
            key,
            Entry {
                plan,
                last_used: self.clock,
            },
        );
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            inserts: self.inserts,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_core::exec::Plan;

    fn key(name: &str, n: usize) -> PlanKey {
        PlanKey {
            spec: name.parse().unwrap(),
            shape: Shape::d1(n),
            method: Method::TransLayout2,
            tiling: Tiling::None,
            parallelism: Parallelism::Off,
        }
    }

    fn build(k: &PlanKey) -> DynPlan {
        Plan::new(k.shape)
            .method(k.method)
            .tiling(k.tiling)
            .parallelism(k.parallelism)
            .stencil(&k.spec)
            .unwrap()
    }

    #[test]
    fn take_put_round_trip_counts_hits_and_misses() {
        let mut c = PlanCache::new(4);
        let k = key("1d3p", 64);
        assert!(c.take(&k).is_none());
        c.put(k.clone(), build(&k));
        let p = c.take(&k).expect("hit after put");
        c.put(k.clone(), p);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len, s.inserts), (1, 1, 1, 2));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_oldest_entry() {
        let mut c = PlanCache::new(2);
        let (a, b, d) = (key("1d3p", 32), key("1d5p", 32), key("1d3p@periodic", 32));
        c.put(a.clone(), build(&a));
        c.put(b.clone(), build(&b));
        // Touch `a` so `b` becomes the LRU victim.
        let p = c.take(&a).unwrap();
        c.put(a.clone(), p);
        c.put(d.clone(), build(&d));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.take(&a).is_some(), "recently used entry survives");
        assert!(c.take(&b).is_none(), "LRU entry was evicted");
        assert!(c.take(&d).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        let k = key("1d3p", 32);
        c.put(k.clone(), build(&k));
        assert!(c.take(&k).is_none());
        assert_eq!(c.stats().len, 0);
    }
}
