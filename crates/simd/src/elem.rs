//! The [`Elem`] trait: the element type as a first-class parameter of
//! the SIMD substrate.
//!
//! Every layer of the stencil pipeline — vectors, buffers, grids,
//! kernels, plans — is generic over one scalar element type `T: Elem`.
//! Two instantiations exist: `f64` (the paper's setting, and the default
//! type parameter everywhere so existing code is unchanged) and `f32`,
//! which runs at **twice the lane width** for the same register width
//! (AVX2: 8 lanes, AVX-512: 16, portable fallbacks included).
//!
//! The trait carries three things:
//!
//! * scalar arithmetic (`mul_add`, `abs`, conversions) so the scalar
//!   oracle kernels stay generic and bit-compatible with the vector
//!   paths of the same element type;
//! * the per-ISA vector family (one [`Vector`] type per register-width
//!   class) so [`dispatch!`](crate::dispatch) can monomorphize a generic
//!   kernel for `(element, ISA)` pairs;
//! * layout constants ([`Elem::PAD`]) so grid geometry keeps every
//!   vector access 64-byte aligned regardless of element width.
//!
//! Stencil *weights* remain `f64` end to end; they are converted to the
//! element type once, at splat/setup time ([`Elem::from_f64`], identity
//! for `f64`), so the scalar and vector paths of an element type round
//! weights identically.

use crate::vector::Vector;

/// Runtime tag for an element type — the erased-API counterpart of the
/// `T: Elem` parameter (what `StencilSpec`'s `dtype` field and
/// `AnyGrid` variants carry).
///
/// Parses from and prints as the Rust type name:
///
/// ```
/// use stencil_simd::Dtype;
/// assert_eq!("f32".parse::<Dtype>().unwrap(), Dtype::F32);
/// assert_eq!(Dtype::F64.to_string(), "f64");
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 64-bit IEEE-754 (the paper's setting, and the default).
    #[default]
    F64,
    /// 32-bit IEEE-754, at twice the lane width.
    F32,
}

impl Dtype {
    /// Element size in bytes (8 or 4).
    #[inline]
    pub fn size(self) -> usize {
        match self {
            Dtype::F64 => 8,
            Dtype::F32 => 4,
        }
    }

    /// Short name ("f64" / "f32").
    pub fn name(self) -> &'static str {
        match self {
            Dtype::F64 => "f64",
            Dtype::F32 => "f32",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Dtype {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f64" => Ok(Dtype::F64),
            "f32" => Ok(Dtype::F32),
            _ => Err(format!("unknown dtype '{s}'")),
        }
    }
}

/// A scalar element type the whole pipeline can be instantiated at.
///
/// Implemented for `f64` and `f32`. The arithmetic super-traits let
/// generic scalar kernels use ordinary operators; [`Elem::mul_add`] is
/// the fused accumulation primitive that keeps the scalar oracle
/// bit-compatible with the FMA vector paths of the same element type.
pub trait Elem:
    Copy
    + Clone
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + std::fmt::Display
    + Default
    + 'static
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The runtime tag for this element type.
    const DTYPE: Dtype;
    /// Halo pad and row-stride quantum in **elements**: 64 bytes' worth
    /// (8 for `f64`, 16 for `f32`), which is simultaneously one cache
    /// line, the widest vector of this element type, and ≥ `MAX_R` —
    /// so interiors stay 64-byte aligned at every element width.
    const PAD: usize;

    /// The 256-bit native vector (AVX2 + FMA on x86-64; the narrow
    /// portable vector elsewhere).
    type V256: Vector<Elem = Self>;
    /// The 512-bit native vector (AVX-512F on x86-64; the wide portable
    /// vector elsewhere).
    type V512: Vector<Elem = Self>;
    /// The 256-bit-class portable vector (always available; oracle).
    type P256: Vector<Elem = Self>;
    /// The 512-bit-class portable vector (always available; oracle).
    type P512: Vector<Elem = Self>;

    /// Convert an `f64` (the weight storage type) into this element —
    /// identity for `f64`, one rounding for `f32`. This is the single
    /// conversion point for stencil weights, so every kernel of one
    /// element type sees identical weight bits.
    fn from_f64(x: f64) -> Self;

    /// Widen to `f64` (exact for both instantiations).
    fn to_f64(self) -> f64;

    /// Fused multiply-add `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;

    /// Absolute value.
    fn abs(self) -> Self;

    /// IEEE maximum of two values.
    fn max(self, o: Self) -> Self;
}

impl Elem for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: Dtype = Dtype::F64;
    const PAD: usize = 8;

    #[cfg(target_arch = "x86_64")]
    type V256 = crate::F64x4;
    #[cfg(not(target_arch = "x86_64"))]
    type V256 = crate::P4;
    #[cfg(target_arch = "x86_64")]
    type V512 = crate::F64x8;
    #[cfg(not(target_arch = "x86_64"))]
    type V512 = crate::P8;
    type P256 = crate::P4;
    type P512 = crate::P8;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        f64::max(self, o)
    }
}

impl Elem for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: Dtype = Dtype::F32;
    const PAD: usize = 16;

    #[cfg(target_arch = "x86_64")]
    type V256 = crate::F32x8;
    #[cfg(not(target_arch = "x86_64"))]
    type V256 = crate::P8f;
    #[cfg(target_arch = "x86_64")]
    type V512 = crate::F32x16;
    #[cfg(not(target_arch = "x86_64"))]
    type V512 = crate::P16f;
    type P256 = crate::P8f;
    type P512 = crate::P16f;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        f32::max(self, o)
    }
}
