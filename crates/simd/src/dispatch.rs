//! Runtime ISA selection and kernel dispatch.

/// Instruction-set architecture a kernel is monomorphized for.
///
/// `Portable4`/`Portable8` run everywhere and mirror the AVX2/AVX-512 lane
/// widths; they serve as fallbacks and as test oracles. The benchmark
/// harness selects `Avx2` and `Avx512` explicitly to reproduce the paper's
/// two instruction-set columns on one machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable 4-lane implementation (no special CPU features).
    Portable4,
    /// Portable 8-lane implementation (no special CPU features).
    Portable8,
    /// AVX2 + FMA, 4 × f64.
    Avx2,
    /// AVX-512F, 8 × f64.
    Avx512,
}

impl Isa {
    /// All ISAs, widest first.
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2, Isa::Portable8, Isa::Portable4];

    /// The best ISA available on this CPU.
    pub fn detect_best() -> Isa {
        Self::ALL
            .into_iter()
            .find(|isa| isa.is_available())
            .expect("portable ISA is always available")
    }

    /// Whether kernels dispatched for this ISA may run on this CPU.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Portable4 | Isa::Portable8 => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Vector length in f64 lanes (the paper's `vl`).
    pub fn lanes(self) -> usize {
        match self {
            Isa::Portable4 | Isa::Avx2 => 4,
            Isa::Portable8 | Isa::Avx512 => 8,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable4 => "portable4",
            Isa::Portable8 => "portable8",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Isa {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "portable4" => Ok(Isa::Portable4),
            "portable8" => Ok(Isa::Portable8),
            "avx2" => Ok(Isa::Avx2),
            "avx512" | "avx512f" => Ok(Isa::Avx512),
            _ => Err(format!("unknown ISA '{s}'")),
        }
    }
}

/// Dispatch a generic kernel over a runtime [`Isa`].
///
/// `dispatch!(isa, V => expr)` expands to a `match` whose AVX arms evaluate
/// `expr` inside a `#[target_feature]`-annotated entry function, with the
/// type alias `V` bound to the ISA's vector type. `expr` is evaluated in an
/// `unsafe`, feature-enabled context; the expression (typically a call to a
/// generic kernel monomorphized on `V`) must be `#[inline(always)]` all the
/// way down so the feature context reaches the intrinsics.
///
/// The macro asserts availability at runtime before entering an AVX arm, so
/// executing the feature-gated code is sound.
#[macro_export]
macro_rules! dispatch {
    ($isa:expr, $V:ident => $e:expr) => {{
        match $isa {
            $crate::Isa::Portable4 => {
                type $V = $crate::P4;
                #[allow(unused_unsafe)]
                unsafe {
                    $e
                }
            }
            $crate::Isa::Portable8 => {
                type $V = $crate::P8;
                #[allow(unused_unsafe)]
                unsafe {
                    $e
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx2 => {
                assert!(
                    $crate::Isa::Avx2.is_available(),
                    "AVX2+FMA not available on this CPU"
                );
                type $V = $crate::F64x4;
                #[target_feature(enable = "avx2,fma")]
                unsafe fn __avx2_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe)]
                unsafe {
                    __avx2_entry(|| $e)
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx512 => {
                assert!(
                    $crate::Isa::Avx512.is_available(),
                    "AVX-512F not available on this CPU"
                );
                type $V = $crate::F64x8;
                #[target_feature(enable = "avx512f")]
                unsafe fn __avx512_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe)]
                unsafe {
                    __avx512_entry(|| $e)
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => panic!("ISA {:?} not supported on this architecture", $isa),
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_best_returns_available() {
        let best = Isa::detect_best();
        assert!(best.is_available());
    }

    #[test]
    fn lanes_match_names() {
        assert_eq!(Isa::Avx2.lanes(), 4);
        assert_eq!(Isa::Avx512.lanes(), 8);
        assert_eq!(Isa::Portable4.lanes(), 4);
        assert_eq!(Isa::Portable8.lanes(), 8);
    }

    #[test]
    fn parse_roundtrip() {
        for isa in Isa::ALL {
            let s = isa.name();
            assert_eq!(s.parse::<Isa>().unwrap(), isa);
        }
        assert!("mmx".parse::<Isa>().is_err());
    }

    #[test]
    fn portable_always_available() {
        assert!(Isa::Portable4.is_available());
        assert!(Isa::Portable8.is_available());
    }
}
