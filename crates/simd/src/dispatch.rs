//! Runtime ISA selection and kernel dispatch.

use crate::elem::{Dtype, Elem};

/// Instruction-set architecture a kernel is monomorphized for.
///
/// An `Isa` names a **register-width class**, not a lane count: `Avx2` /
/// `Portable4` are the 256-bit class (4 × f64 or 8 × f32 lanes), `Avx512` /
/// `Portable8` the 512-bit class (8 × f64 or 16 × f32). Use
/// [`Isa::lanes_for`] / [`Isa::lanes_of`] for the element-dependent lane
/// count; the legacy [`Isa::lanes`] keeps its original f64 meaning.
///
/// `Portable4`/`Portable8` run everywhere and mirror the AVX2/AVX-512
/// register widths; they serve as fallbacks and as test oracles. The
/// benchmark harness selects `Avx2` and `Avx512` explicitly to reproduce
/// the paper's two instruction-set columns on one machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable 256-bit-class implementation (no special CPU features).
    Portable4,
    /// Portable 512-bit-class implementation (no special CPU features).
    Portable8,
    /// AVX2 + FMA: 4 × f64 / 8 × f32.
    Avx2,
    /// AVX-512F: 8 × f64 / 16 × f32.
    Avx512,
}

impl Isa {
    /// All ISAs, widest first.
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2, Isa::Portable8, Isa::Portable4];

    /// The best ISA available on this CPU.
    pub fn detect_best() -> Isa {
        Self::ALL
            .into_iter()
            .find(|isa| isa.is_available())
            .expect("portable ISA is always available")
    }

    /// Whether kernels dispatched for this ISA may run on this CPU.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Portable4 | Isa::Portable8 => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Vector register width in bytes (32 for the AVX2 class, 64 for the
    /// AVX-512 class).
    pub fn width_bytes(self) -> usize {
        match self {
            Isa::Portable4 | Isa::Avx2 => 32,
            Isa::Portable8 | Isa::Avx512 => 64,
        }
    }

    /// Vector length in **f64** lanes (the paper's `vl` in its f64
    /// setting). Kept for the f64-only call sites; element-generic code
    /// must use [`Isa::lanes_for`].
    pub fn lanes(self) -> usize {
        self.width_bytes() / 8
    }

    /// Vector length in lanes of element `T` (the paper's `vl`): twice
    /// [`Isa::lanes`] for f32.
    pub fn lanes_for<T: Elem>(self) -> usize {
        self.width_bytes() / std::mem::size_of::<T>()
    }

    /// Vector length in lanes of a runtime [`Dtype`].
    pub fn lanes_of(self, dtype: Dtype) -> usize {
        self.width_bytes() / dtype.size()
    }

    /// The next-narrower register class with the same portability
    /// (AVX-512 → AVX2, portable-8 → portable-4), or `None` from the
    /// 256-bit class. Plan building steps down this ladder when a grid
    /// row is too short to hold one full `vl²` vector set.
    pub fn narrower(self) -> Option<Isa> {
        match self {
            Isa::Avx512 => Some(Isa::Avx2),
            Isa::Portable8 => Some(Isa::Portable4),
            Isa::Avx2 | Isa::Portable4 => None,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable4 => "portable4",
            Isa::Portable8 => "portable8",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Isa {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "portable4" => Ok(Isa::Portable4),
            "portable8" => Ok(Isa::Portable8),
            "avx2" => Ok(Isa::Avx2),
            "avx512" | "avx512f" => Ok(Isa::Avx512),
            _ => Err(format!("unknown ISA '{s}'")),
        }
    }
}

/// Dispatch a generic kernel over a runtime [`Isa`] (f64 form).
///
/// `dispatch!(isa, V => expr)` expands to a `match` whose AVX arms evaluate
/// `expr` inside a `#[target_feature]`-annotated entry function, with the
/// type alias `V` bound to the ISA's **f64** vector type. `expr` is
/// evaluated in an `unsafe`, feature-enabled context; the expression
/// (typically a call to a generic kernel monomorphized on `V`) must be
/// `#[inline(always)]` all the way down so the feature context reaches the
/// intrinsics.
///
/// The macro asserts availability at runtime before entering an AVX arm, so
/// executing the feature-gated code is sound. On non-x86 targets the AVX
/// arms compile to the portable vector of the same register width instead,
/// so the same generic code builds and runs everywhere (the portable types
/// are also the test oracles — numerics are identical).
///
/// This form binds `V` with a local `type` alias, which a function generic
/// over an element type `T` cannot do (type aliases cannot capture outer
/// generics) — element-generic call sites use
/// [`dispatch_elem!`](crate::dispatch_elem) instead.
#[macro_export]
macro_rules! dispatch {
    ($isa:expr, $V:ident => $e:expr) => {{
        match $isa {
            $crate::Isa::Portable4 => {
                type $V = $crate::P4;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
            $crate::Isa::Portable8 => {
                type $V = $crate::P8;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx2 => {
                assert!(
                    $crate::Isa::Avx2.is_available(),
                    "AVX2+FMA not available on this CPU"
                );
                type $V = $crate::F64x4;
                #[target_feature(enable = "avx2,fma")]
                unsafe fn __avx2_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    __avx2_entry(|| $e)
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx512 => {
                assert!(
                    $crate::Isa::Avx512.is_available(),
                    "AVX-512F not available on this CPU"
                );
                type $V = $crate::F64x8;
                #[target_feature(enable = "avx512f")]
                unsafe fn __avx512_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    __avx512_entry(|| $e)
                }
            }
            // On non-x86 targets the AVX ISAs are never available
            // (`is_available` is false, `detect_best` skips them); if a
            // caller dispatches one anyway, fall back to the portable
            // vector of the same register width so generic code keeps
            // working — same numerics, no UB, just no intrinsics.
            #[cfg(not(target_arch = "x86_64"))]
            $crate::Isa::Avx2 => {
                type $V = $crate::P4;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            $crate::Isa::Avx512 => {
                type $V = $crate::P8;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
        }
    }};
}

/// Dispatch one generic kernel **call** over a runtime [`Isa`] for any
/// element type `T: Elem` — the element-generic sibling of
/// [`dispatch!`](crate::dispatch).
///
/// Because a `type V = <T as Elem>::V256;` alias inside a `T`-generic
/// function is rejected by the compiler (type aliases cannot capture outer
/// generics), this form takes a single *call expression* whose first
/// generic argument is the literal ident `V`, and substitutes the ISA's
/// vector type for `V` in expression position (where outer generics are
/// allowed):
///
/// ```ignore
/// dispatch_elem!(isa, T, orig::star2_orig::<V, S, true>(src, dst, rs, y0, y1, x0, x1, s))
/// ```
///
/// expands to `orig::star2_orig::<<T as Elem>::V256, S, true>(...)` in the
/// AVX2 arm (inside the `#[target_feature]` entry point), and likewise per
/// arm. Multi-statement bodies must be hoisted into a named generic
/// function first — which also guarantees the feature context propagates.
#[macro_export]
macro_rules! dispatch_elem {
    ($isa:expr, $T:ty, $($p:ident)::+ ::<V $(, $g:tt)*>($($arg:expr),* $(,)?)) => {{
        match $isa {
            $crate::Isa::Portable4 => {
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $($p)::+::<<$T as $crate::Elem>::P256 $(, $g)*>($($arg),*)
                }
            }
            $crate::Isa::Portable8 => {
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $($p)::+::<<$T as $crate::Elem>::P512 $(, $g)*>($($arg),*)
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx2 => {
                assert!(
                    $crate::Isa::Avx2.is_available(),
                    "AVX2+FMA not available on this CPU"
                );
                #[target_feature(enable = "avx2,fma")]
                unsafe fn __avx2_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    __avx2_entry(|| $($p)::+::<<$T as $crate::Elem>::V256 $(, $g)*>($($arg),*))
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx512 => {
                assert!(
                    $crate::Isa::Avx512.is_available(),
                    "AVX-512F not available on this CPU"
                );
                #[target_feature(enable = "avx512f")]
                unsafe fn __avx512_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    __avx512_entry(|| $($p)::+::<<$T as $crate::Elem>::V512 $(, $g)*>($($arg),*))
                }
            }
            // Non-x86: the Elem associated types V256/V512 already point at
            // the portable vectors, so the AVX arms compile to the same
            // fallback without any feature gate.
            #[cfg(not(target_arch = "x86_64"))]
            $crate::Isa::Avx2 => {
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $($p)::+::<<$T as $crate::Elem>::V256 $(, $g)*>($($arg),*)
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            $crate::Isa::Avx512 => {
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $($p)::+::<<$T as $crate::Elem>::V512 $(, $g)*>($($arg),*)
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_best_returns_available() {
        let best = Isa::detect_best();
        assert!(best.is_available());
    }

    #[test]
    fn lanes_match_names() {
        assert_eq!(Isa::Avx2.lanes(), 4);
        assert_eq!(Isa::Avx512.lanes(), 8);
        assert_eq!(Isa::Portable4.lanes(), 4);
        assert_eq!(Isa::Portable8.lanes(), 8);
    }

    #[test]
    fn lanes_for_doubles_at_f32() {
        for isa in Isa::ALL {
            assert_eq!(isa.lanes_for::<f64>(), isa.lanes(), "{isa}");
            assert_eq!(isa.lanes_for::<f32>(), 2 * isa.lanes(), "{isa}");
            assert_eq!(isa.lanes_of(Dtype::F64), isa.lanes_for::<f64>(), "{isa}");
            assert_eq!(isa.lanes_of(Dtype::F32), isa.lanes_for::<f32>(), "{isa}");
            assert_eq!(isa.width_bytes() % 32, 0, "{isa}");
        }
    }

    #[test]
    fn parse_roundtrip() {
        for isa in Isa::ALL {
            let s = isa.name();
            assert_eq!(s.parse::<Isa>().unwrap(), isa);
        }
        assert!("mmx".parse::<Isa>().is_err());
    }

    #[test]
    fn portable_always_available() {
        assert!(Isa::Portable4.is_available());
        assert!(Isa::Portable8.is_available());
    }

    /// A tiny generic "kernel" used to prove `dispatch_elem!` substitutes
    /// the right vector type from inside a `T`-generic function.
    unsafe fn lane_count<V: crate::Vector>() -> usize {
        V::LANES
    }

    fn lanes_via_dispatch_elem<T: crate::Elem>(isa: Isa) -> usize {
        crate::dispatch_elem!(isa, T, lane_count::<V>())
    }

    /// Cfg-matrix portability check (stands in for a cross-compile when
    /// no aarch64 toolchain is installed): on every architecture,
    /// `detect_best` must return a usable ISA, every *available* ISA must
    /// dispatch, and lane widths must be consistent. On non-x86 the AVX
    /// variants must report unavailable and `detect_best` must fall back
    /// to a portable ISA.
    #[test]
    fn cfg_matrix_dispatch_and_fallback() {
        let best = Isa::detect_best();
        assert!(best.is_available());

        #[cfg(not(target_arch = "x86_64"))]
        {
            assert!(!Isa::Avx2.is_available());
            assert!(!Isa::Avx512.is_available());
            assert!(matches!(best, Isa::Portable4 | Isa::Portable8));
        }

        // Every available ISA must round a value through dispatch with
        // the right lane count, at both element widths.
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let lanes = crate::dispatch!(isa, V => <V as crate::Vector>::LANES);
            assert_eq!(lanes, isa.lanes(), "{isa}");
            assert_eq!(
                lanes_via_dispatch_elem::<f64>(isa),
                isa.lanes(),
                "{isa} f64"
            );
            assert_eq!(
                lanes_via_dispatch_elem::<f32>(isa),
                isa.lanes_for::<f32>(),
                "{isa} f32"
            );
        }

        // On non-x86, dispatching an AVX ISA anyway must cleanly fall
        // back to the portable vector of the same width.
        #[cfg(not(target_arch = "x86_64"))]
        for isa in [Isa::Avx2, Isa::Avx512] {
            let lanes = crate::dispatch!(isa, V => <V as crate::Vector>::LANES);
            assert_eq!(lanes, isa.lanes(), "{isa} portable fallback");
            assert_eq!(
                lanes_via_dispatch_elem::<f32>(isa),
                isa.lanes_for::<f32>(),
                "{isa} f32 portable fallback"
            );
        }
    }
}
