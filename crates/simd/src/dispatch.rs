//! Runtime ISA selection and kernel dispatch.

/// Instruction-set architecture a kernel is monomorphized for.
///
/// `Portable4`/`Portable8` run everywhere and mirror the AVX2/AVX-512 lane
/// widths; they serve as fallbacks and as test oracles. The benchmark
/// harness selects `Avx2` and `Avx512` explicitly to reproduce the paper's
/// two instruction-set columns on one machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable 4-lane implementation (no special CPU features).
    Portable4,
    /// Portable 8-lane implementation (no special CPU features).
    Portable8,
    /// AVX2 + FMA, 4 × f64.
    Avx2,
    /// AVX-512F, 8 × f64.
    Avx512,
}

impl Isa {
    /// All ISAs, widest first.
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2, Isa::Portable8, Isa::Portable4];

    /// The best ISA available on this CPU.
    pub fn detect_best() -> Isa {
        Self::ALL
            .into_iter()
            .find(|isa| isa.is_available())
            .expect("portable ISA is always available")
    }

    /// Whether kernels dispatched for this ISA may run on this CPU.
    pub fn is_available(self) -> bool {
        match self {
            Isa::Portable4 | Isa::Portable8 => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Vector length in f64 lanes (the paper's `vl`).
    pub fn lanes(self) -> usize {
        match self {
            Isa::Portable4 | Isa::Avx2 => 4,
            Isa::Portable8 | Isa::Avx512 => 8,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable4 => "portable4",
            Isa::Portable8 => "portable8",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Isa {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "portable4" => Ok(Isa::Portable4),
            "portable8" => Ok(Isa::Portable8),
            "avx2" => Ok(Isa::Avx2),
            "avx512" | "avx512f" => Ok(Isa::Avx512),
            _ => Err(format!("unknown ISA '{s}'")),
        }
    }
}

/// Dispatch a generic kernel over a runtime [`Isa`].
///
/// `dispatch!(isa, V => expr)` expands to a `match` whose AVX arms evaluate
/// `expr` inside a `#[target_feature]`-annotated entry function, with the
/// type alias `V` bound to the ISA's vector type. `expr` is evaluated in an
/// `unsafe`, feature-enabled context; the expression (typically a call to a
/// generic kernel monomorphized on `V`) must be `#[inline(always)]` all the
/// way down so the feature context reaches the intrinsics.
///
/// The macro asserts availability at runtime before entering an AVX arm, so
/// executing the feature-gated code is sound. On non-x86 targets the AVX
/// arms compile to the portable vector of the same lane width instead, so
/// the same generic code builds and runs everywhere (the portable types
/// are also the test oracles — numerics are identical).
#[macro_export]
macro_rules! dispatch {
    ($isa:expr, $V:ident => $e:expr) => {{
        match $isa {
            $crate::Isa::Portable4 => {
                type $V = $crate::P4;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
            $crate::Isa::Portable8 => {
                type $V = $crate::P8;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx2 => {
                assert!(
                    $crate::Isa::Avx2.is_available(),
                    "AVX2+FMA not available on this CPU"
                );
                type $V = $crate::F64x4;
                #[target_feature(enable = "avx2,fma")]
                unsafe fn __avx2_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    __avx2_entry(|| $e)
                }
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Isa::Avx512 => {
                assert!(
                    $crate::Isa::Avx512.is_available(),
                    "AVX-512F not available on this CPU"
                );
                type $V = $crate::F64x8;
                #[target_feature(enable = "avx512f")]
                unsafe fn __avx512_entry<R, F: FnOnce() -> R>(f: F) -> R {
                    f()
                }
                // SAFETY: availability asserted above.
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    __avx512_entry(|| $e)
                }
            }
            // On non-x86 targets the AVX ISAs are never available
            // (`is_available` is false, `detect_best` skips them); if a
            // caller dispatches one anyway, fall back to the portable
            // vector of the same lane width so generic code keeps
            // working — same numerics, no UB, just no intrinsics.
            #[cfg(not(target_arch = "x86_64"))]
            $crate::Isa::Avx2 => {
                type $V = $crate::P4;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            $crate::Isa::Avx512 => {
                type $V = $crate::P8;
                #[allow(unused_unsafe, clippy::macro_metavars_in_unsafe)]
                unsafe {
                    $e
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_best_returns_available() {
        let best = Isa::detect_best();
        assert!(best.is_available());
    }

    #[test]
    fn lanes_match_names() {
        assert_eq!(Isa::Avx2.lanes(), 4);
        assert_eq!(Isa::Avx512.lanes(), 8);
        assert_eq!(Isa::Portable4.lanes(), 4);
        assert_eq!(Isa::Portable8.lanes(), 8);
    }

    #[test]
    fn parse_roundtrip() {
        for isa in Isa::ALL {
            let s = isa.name();
            assert_eq!(s.parse::<Isa>().unwrap(), isa);
        }
        assert!("mmx".parse::<Isa>().is_err());
    }

    #[test]
    fn portable_always_available() {
        assert!(Isa::Portable4.is_available());
        assert!(Isa::Portable8.is_available());
    }

    /// Cfg-matrix portability check (stands in for a cross-compile when
    /// no aarch64 toolchain is installed): on every architecture,
    /// `detect_best` must return a usable ISA, every *available* ISA must
    /// dispatch, and lane widths must be consistent. On non-x86 the AVX
    /// variants must report unavailable and `detect_best` must fall back
    /// to a portable ISA.
    #[test]
    fn cfg_matrix_dispatch_and_fallback() {
        let best = Isa::detect_best();
        assert!(best.is_available());

        #[cfg(not(target_arch = "x86_64"))]
        {
            assert!(!Isa::Avx2.is_available());
            assert!(!Isa::Avx512.is_available());
            assert!(matches!(best, Isa::Portable4 | Isa::Portable8));
        }

        // Every available ISA must round a value through dispatch with
        // the right lane count.
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let lanes = crate::dispatch!(isa, V => <V as crate::SimdF64>::LANES);
            assert_eq!(lanes, isa.lanes(), "{isa}");
        }

        // On non-x86, dispatching an AVX ISA anyway must cleanly fall
        // back to the portable vector of the same width (F64xP).
        #[cfg(not(target_arch = "x86_64"))]
        for isa in [Isa::Avx2, Isa::Avx512] {
            let lanes = crate::dispatch!(isa, V => <V as crate::SimdF64>::LANES);
            assert_eq!(lanes, isa.lanes(), "{isa} portable fallback");
        }
    }
}
