//! # stencil-simd
//!
//! SIMD substrate for the transpose-layout stencil vectorization scheme
//! (Li et al., *An Efficient Vectorization Scheme for Stencil Computation*,
//! IPDPS 2022).
//!
//! This crate provides everything the stencil kernels need from the ISA,
//! behind one element-generic trait ([`Vector`]) with per-element per-ISA
//! implementations (the element types are described by [`Elem`], with
//! `f64` and `f32` instantiations — f32 at **twice the lane width** for
//! the same register width):
//!
//! * [`F64x4`] / [`F32x8`] — AVX2 + FMA, one 256-bit register
//!   (`__m256d` / `__m256`), 4 × f64 or 8 × f32 lanes,
//! * [`F64x8`] / [`F32x16`] — AVX-512F, one 512-bit register
//!   (`__m512d` / `__m512`), 8 × f64 or 16 × f32 lanes,
//! * [`Pvec`] — portable const-generic fallback for every (element,
//!   width) pair (also the test oracle).
//!
//! The paper-specific primitives live here too:
//!
//! * the **in-register `vl × vl` transpose** (§3.5 of the paper) in two
//!   instruction schedules — the paper's *lane-crossing-first* schedule
//!   whose long-latency shuffles are hidden by the following single-cycle
//!   in-lane unpacks, and the conventional *in-lane-first* schedule used as
//!   the ablation baseline;
//! * the **`Assemble`** operation (Fig. 3 / Algorithm 1): building the
//!   left/right dependent vector of a vector set from two aligned vectors
//!   with one blend and one lane rotation (exposed as the more general
//!   [`Vector::alignr`]);
//! * 64-byte [`AlignedBuf`] allocation so every vector-set load/store is an
//!   aligned access (the paper aligns vector sets to 32-byte boundaries;
//!   we use 64 to cover AVX-512 as well — and 64 divides evenly into both
//!   element sizes);
//! * runtime [`Isa`] detection and dispatch macros that monomorphize a
//!   generic kernel for each (ISA, element) pair behind `#[target_feature]`
//!   entry points ([`dispatch!`](crate::dispatch) for the f64 default,
//!   [`dispatch_elem!`](crate::dispatch_elem) for element-generic call
//!   sites).
//!
//! ## Safety model
//!
//! All trait methods are `unsafe fn`: executing an AVX2/AVX-512 intrinsic on
//! a CPU without that feature is undefined behaviour. The contract is that a
//! value of an ISA-specific vector type is only *created and used* inside a
//! function annotated with the matching `#[target_feature]`, which the
//! dispatch macros guarantee by construction (they check
//! [`Isa::is_available`] before entering the feature-gated entry point).
//! Every call chain below the entry point is `#[inline(always)]` so the
//! feature context propagates to the intrinsics.

#![warn(missing_docs)]
// Index-based loops in the kernels are deliberate: the index arithmetic
// (lane positions, set offsets) is the algorithm; iterator adapters would
// obscure it and complicate the unroll-friendly shape LLVM needs.
#![allow(clippy::needless_range_loop)]
// Every `unsafe fn` in this crate shares the single safety contract spelled
// out in the module docs above (callers must be inside the matching
// `#[target_feature]` context; pointers valid per the kernel geometry).
// Repeating a one-line `# Safety` section on all trait methods adds
// noise, not information.
#![allow(clippy::missing_safety_doc)]

mod alloc;
#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
mod dispatch;
mod elem;
mod portable;
mod vector;

pub use alloc::{AlignedBuf, ALIGN};
#[cfg(target_arch = "x86_64")]
pub use avx2::{F32x8, F64x4};
#[cfg(target_arch = "x86_64")]
pub use avx512::{F32x16, F64x8};
pub use dispatch::Isa;
pub use elem::{Dtype, Elem};
pub use portable::{F64xP, P16f, P8f, Pvec, P4, P8};
pub use vector::Vector;

#[cfg(test)]
mod tests;
