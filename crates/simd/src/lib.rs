//! # stencil-simd
//!
//! SIMD substrate for the transpose-layout stencil vectorization scheme
//! (Li et al., *An Efficient Vectorization Scheme for Stencil Computation*,
//! IPDPS 2022).
//!
//! This crate provides everything the stencil kernels need from the ISA,
//! behind one trait ([`SimdF64`]) with three implementations:
//!
//! * [`F64x4`] — AVX2 + FMA, 4 × f64 lanes (`__m256d`),
//! * [`F64x8`] — AVX-512F, 8 × f64 lanes (`__m512d`),
//! * [`F64xP`] — portable const-generic fallback (also the test oracle).
//!
//! The paper-specific primitives live here too:
//!
//! * the **in-register `vl × vl` transpose** (§3.5 of the paper) in two
//!   instruction schedules — the paper's *lane-crossing-first* schedule
//!   whose long-latency shuffles are hidden by the following single-cycle
//!   in-lane unpacks, and the conventional *in-lane-first* schedule used as
//!   the ablation baseline;
//! * the **`Assemble`** operation (Fig. 3 / Algorithm 1): building the
//!   left/right dependent vector of a vector set from two aligned vectors
//!   with one blend and one lane rotation (exposed as the more general
//!   [`SimdF64::alignr`]);
//! * 64-byte [`AlignedBuf`] allocation so every vector-set load/store is an
//!   aligned access (the paper aligns vector sets to 32-byte boundaries;
//!   we use 64 to cover AVX-512 as well);
//! * runtime [`Isa`] detection and a dispatch macro that monomorphizes a
//!   generic kernel for each ISA behind `#[target_feature]` entry points.
//!
//! ## Safety model
//!
//! All trait methods are `unsafe fn`: executing an AVX2/AVX-512 intrinsic on
//! a CPU without that feature is undefined behaviour. The contract is that a
//! value of an ISA-specific vector type is only *created and used* inside a
//! function annotated with the matching `#[target_feature]`, which the
//! [`dispatch!`](crate::dispatch) macro guarantees by construction (it checks
//! [`Isa::is_available`] before entering the feature-gated entry point).
//! Every call chain below the entry point is `#[inline(always)]` so the
//! feature context propagates to the intrinsics.

#![warn(missing_docs)]
// Index-based loops in the kernels are deliberate: the index arithmetic
// (lane positions, set offsets) is the algorithm; iterator adapters would
// obscure it and complicate the unroll-friendly shape LLVM needs.
#![allow(clippy::needless_range_loop)]
// Every `unsafe fn` in this crate shares the single safety contract spelled
// out in the module docs above (callers must be inside the matching
// `#[target_feature]` context; pointers valid per the kernel geometry).
// Repeating a one-line `# Safety` section on all 17 trait methods adds
// noise, not information.
#![allow(clippy::missing_safety_doc)]

mod alloc;
#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
mod dispatch;
mod portable;
mod vector;

pub use alloc::{AlignedBuf, ALIGN};
#[cfg(target_arch = "x86_64")]
pub use avx2::F64x4;
#[cfg(target_arch = "x86_64")]
pub use avx512::F64x8;
pub use dispatch::Isa;
pub use portable::{F64xP, P4, P8};
pub use vector::SimdF64;

#[cfg(test)]
mod tests;
