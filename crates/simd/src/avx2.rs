//! AVX2 + FMA implementations of [`Vector`]: 4 × f64 in a `__m256d` and
//! 8 × f32 in a `__m256` (twice the lane width, same register width).
//!
//! The `Assemble` operation (paper Fig. 3) is two instructions:
//! `vblendpd` + `vpermpd` for f64, exactly as in Algorithm 1 lines 1–5
//! (`_mm256_blend_pd` followed by `_mm256_permute4x64_pd`); the f32 form
//! is the same shape at 8 lanes — `vblendps` + one lane-crossing
//! `vpermps` (`_mm256_permutevar8x32_ps` with a constant index vector).
//!
//! The `vl × vl` transpose (paper §3.5, Fig. 6) is `vl·log(vl)` shuffles:
//! 8 for f64, 24 for f32. The paper's schedule issues the 3-cycle
//! lane-crossing `vperm2f128` first and hides their latency under the
//! 1-cycle in-lane unpacks/shuffles; the conventional schedule (ablation
//! baseline) does the in-lane work first and exposes the `vperm2f128`
//! latency at the end of the dependency chain.

use core::arch::x86_64::*;

use crate::vector::Vector;

/// 4 × f64 AVX2 vector.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x4(pub __m256d);

impl std::fmt::Debug for F64x4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = [0.0f64; 4];
        // SAFETY: a value of this type only exists where AVX is available.
        unsafe { _mm256_storeu_pd(a.as_mut_ptr(), self.0) };
        write!(f, "F64x4({a:?})")
    }
}

impl Vector for F64x4 {
    type Elem = f64;
    const LANES: usize = 4;
    const NAME: &'static str = "avx2";

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        F64x4(_mm256_set1_pd(x))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        debug_assert_eq!(ptr as usize % 32, 0, "unaligned aligned-load");
        F64x4(_mm256_load_pd(ptr))
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f64) -> Self {
        F64x4(_mm256_loadu_pd(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        debug_assert_eq!(ptr as usize % 32, 0, "unaligned aligned-store");
        _mm256_store_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f64) {
        _mm256_storeu_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F64x4(_mm256_add_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F64x4(_mm256_sub_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F64x4(_mm256_mul_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        F64x4(_mm256_fmadd_pd(self.0, a.0, b.0))
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        // Each arm is the cheapest AVX2 sequence for that shift:
        //   o=1,3: blend + permute4x64 (2 ops — the paper's Assemble cost),
        //   o=2:   a single vperm2f128.
        match o {
            0 => lo,
            1 => {
                // (lo1, lo2, lo3, hi0)
                let t = _mm256_blend_pd(lo.0, hi.0, 0b0001); // (hi0,lo1,lo2,lo3)
                F64x4(_mm256_permute4x64_pd(t, 0b00_11_10_01)) // rotate left 1
            }
            2 => {
                // (lo2, lo3, hi0, hi1)
                F64x4(_mm256_permute2f128_pd(lo.0, hi.0, 0x21))
            }
            3 => {
                // (lo3, hi0, hi1, hi2)
                let t = _mm256_blend_pd(hi.0, lo.0, 0b1000); // (hi0,hi1,hi2,lo3)
                F64x4(_mm256_permute4x64_pd(t, 0b10_01_00_11)) // rotate right 1
            }
            4 => hi,
            _ => unreachable!("alignr shift out of range"),
        }
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 4);
        let (r0, r1, r2, r3) = (m[0].0, m[1].0, m[2].0, m[3].0);
        // Stage 1: lane-crossing vperm2f128 first (latency 3, all four
        // independent, issued back to back).
        let t0 = _mm256_permute2f128_pd(r0, r2, 0x20); // (a0,a1,c0,c1)
        let t1 = _mm256_permute2f128_pd(r1, r3, 0x20); // (b0,b1,d0,d1)
        let t2 = _mm256_permute2f128_pd(r0, r2, 0x31); // (a2,a3,c2,c3)
        let t3 = _mm256_permute2f128_pd(r1, r3, 0x31); // (b2,b3,d2,d3)
                                                       // Stage 2: in-lane unpacks (latency 1) finish while stage 1 drains.
        m[0] = F64x4(_mm256_unpacklo_pd(t0, t1)); // (a0,b0,c0,d0)
        m[1] = F64x4(_mm256_unpackhi_pd(t0, t1)); // (a1,b1,c1,d1)
        m[2] = F64x4(_mm256_unpacklo_pd(t2, t3)); // (a2,b2,c2,d2)
        m[3] = F64x4(_mm256_unpackhi_pd(t2, t3)); // (a3,b3,c3,d3)
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 4);
        let (r0, r1, r2, r3) = (m[0].0, m[1].0, m[2].0, m[3].0);
        // Conventional order: unpacks first, lane-crossing shuffles last,
        // leaving the 3-cycle vperm2f128 latency exposed on the critical
        // path (the +25% the paper attributes to existing transposes).
        let s0 = _mm256_unpacklo_pd(r0, r1); // (a0,b0,a2,b2)
        let s1 = _mm256_unpackhi_pd(r0, r1); // (a1,b1,a3,b3)
        let s2 = _mm256_unpacklo_pd(r2, r3); // (c0,d0,c2,d2)
        let s3 = _mm256_unpackhi_pd(r2, r3); // (c1,d1,c3,d3)
        m[0] = F64x4(_mm256_permute2f128_pd(s0, s2, 0x20)); // (a0,b0,c0,d0)
        m[1] = F64x4(_mm256_permute2f128_pd(s1, s3, 0x20)); // (a1,b1,c1,d1)
        m[2] = F64x4(_mm256_permute2f128_pd(s0, s2, 0x31)); // (a2,b2,c2,d2)
        m[3] = F64x4(_mm256_permute2f128_pd(s1, s3, 0x31)); // (a3,b3,c3,d3)
    }
}

/// 8 × f32 AVX2 vector — the f64 sibling's register at twice the lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x8(pub __m256);

impl std::fmt::Debug for F32x8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = [0.0f32; 8];
        // SAFETY: a value of this type only exists where AVX is available.
        unsafe { _mm256_storeu_ps(a.as_mut_ptr(), self.0) };
        write!(f, "F32x8({a:?})")
    }
}

/// One f32 `alignr` arm: blend the `o` low lanes from `hi` over `lo`
/// (selecting `combined[j] = if j < o { hi[j] } else { lo[j] }`), then
/// rotate left by `o` with one lane-crossing `vpermps` — the same
/// two-instruction Assemble cost as the f64 blend+permute sequence.
macro_rules! alignr_ps {
    ($hi:expr, $lo:expr, $o:literal) => {{
        let t = _mm256_blend_ps($lo, $hi, (1u32 << $o) as i32 - 1);
        let idx = _mm256_setr_epi32(
            ($o) % 8,
            (1 + $o) % 8,
            (2 + $o) % 8,
            (3 + $o) % 8,
            (4 + $o) % 8,
            (5 + $o) % 8,
            (6 + $o) % 8,
            (7 + $o) % 8,
        );
        F32x8(_mm256_permutevar8x32_ps(t, idx))
    }};
}

impl Vector for F32x8 {
    type Elem = f32;
    const LANES: usize = 8;
    const NAME: &'static str = "avx2";

    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        F32x8(_mm256_set1_ps(x))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        debug_assert_eq!(ptr as usize % 32, 0, "unaligned aligned-load");
        F32x8(_mm256_load_ps(ptr))
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f32) -> Self {
        F32x8(_mm256_loadu_ps(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        debug_assert_eq!(ptr as usize % 32, 0, "unaligned aligned-store");
        _mm256_store_ps(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f32) {
        _mm256_storeu_ps(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F32x8(_mm256_add_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F32x8(_mm256_sub_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F32x8(_mm256_mul_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        F32x8(_mm256_fmadd_ps(self.0, a.0, b.0))
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        match o {
            0 => lo,
            1 => alignr_ps!(hi.0, lo.0, 1),
            2 => alignr_ps!(hi.0, lo.0, 2),
            3 => alignr_ps!(hi.0, lo.0, 3),
            // o=4 is a half-register swap: a single vperm2f128.
            4 => F32x8(_mm256_permute2f128_ps(lo.0, hi.0, 0x21)),
            5 => alignr_ps!(hi.0, lo.0, 5),
            6 => alignr_ps!(hi.0, lo.0, 6),
            7 => alignr_ps!(hi.0, lo.0, 7),
            8 => hi,
            _ => unreachable!("alignr shift out of range"),
        }
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 8);
        let r: [__m256; 8] = [
            m[0].0, m[1].0, m[2].0, m[3].0, m[4].0, m[5].0, m[6].0, m[7].0,
        ];
        // Stage 1: all eight lane-crossing vperm2f128 first. s[k] holds
        // lanes 0-3 of rows k and k+4; s[k+4] holds their lanes 4-7.
        let s0 = _mm256_permute2f128_ps(r[0], r[4], 0x20);
        let s1 = _mm256_permute2f128_ps(r[1], r[5], 0x20);
        let s2 = _mm256_permute2f128_ps(r[2], r[6], 0x20);
        let s3 = _mm256_permute2f128_ps(r[3], r[7], 0x20);
        let s4 = _mm256_permute2f128_ps(r[0], r[4], 0x31);
        let s5 = _mm256_permute2f128_ps(r[1], r[5], 0x31);
        let s6 = _mm256_permute2f128_ps(r[2], r[6], 0x31);
        let s7 = _mm256_permute2f128_ps(r[3], r[7], 0x31);
        // Stage 2+3: in-lane unpacks and shuffles (latency 1) transpose
        // each 4×4 sub-block while stage 1 drains.
        let t0 = _mm256_unpacklo_ps(s0, s1); // (a0,b0,a1,b1 | e0,f0,e1,f1)
        let t1 = _mm256_unpacklo_ps(s2, s3); // (c0,d0,c1,d1 | g0,h0,g1,h1)
        let t2 = _mm256_unpackhi_ps(s0, s1); // (a2,b2,a3,b3 | ...)
        let t3 = _mm256_unpackhi_ps(s2, s3);
        m[0] = F32x8(_mm256_shuffle_ps(t0, t1, 0x44)); // column 0
        m[1] = F32x8(_mm256_shuffle_ps(t0, t1, 0xEE)); // column 1
        m[2] = F32x8(_mm256_shuffle_ps(t2, t3, 0x44)); // column 2
        m[3] = F32x8(_mm256_shuffle_ps(t2, t3, 0xEE)); // column 3
        let t4 = _mm256_unpacklo_ps(s4, s5);
        let t5 = _mm256_unpacklo_ps(s6, s7);
        let t6 = _mm256_unpackhi_ps(s4, s5);
        let t7 = _mm256_unpackhi_ps(s6, s7);
        m[4] = F32x8(_mm256_shuffle_ps(t4, t5, 0x44)); // column 4
        m[5] = F32x8(_mm256_shuffle_ps(t4, t5, 0xEE)); // column 5
        m[6] = F32x8(_mm256_shuffle_ps(t6, t7, 0x44)); // column 6
        m[7] = F32x8(_mm256_shuffle_ps(t6, t7, 0xEE)); // column 7
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 8);
        let r: [__m256; 8] = [
            m[0].0, m[1].0, m[2].0, m[3].0, m[4].0, m[5].0, m[6].0, m[7].0,
        ];
        // Conventional order: in-lane 4×4 transposes first, lane-crossing
        // vperm2f128 last — latency exposed on the critical path.
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpacklo_ps(r[2], r[3]);
        let t2 = _mm256_unpackhi_ps(r[0], r[1]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let u0 = _mm256_shuffle_ps(t0, t1, 0x44); // cols 0|4 of rows 0-3
        let u1 = _mm256_shuffle_ps(t0, t1, 0xEE); // cols 1|5
        let u2 = _mm256_shuffle_ps(t2, t3, 0x44); // cols 2|6
        let u3 = _mm256_shuffle_ps(t2, t3, 0xEE); // cols 3|7
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpacklo_ps(r[6], r[7]);
        let t6 = _mm256_unpackhi_ps(r[4], r[5]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let u4 = _mm256_shuffle_ps(t4, t5, 0x44); // cols 0|4 of rows 4-7
        let u5 = _mm256_shuffle_ps(t4, t5, 0xEE);
        let u6 = _mm256_shuffle_ps(t6, t7, 0x44);
        let u7 = _mm256_shuffle_ps(t6, t7, 0xEE);
        m[0] = F32x8(_mm256_permute2f128_ps(u0, u4, 0x20));
        m[1] = F32x8(_mm256_permute2f128_ps(u1, u5, 0x20));
        m[2] = F32x8(_mm256_permute2f128_ps(u2, u6, 0x20));
        m[3] = F32x8(_mm256_permute2f128_ps(u3, u7, 0x20));
        m[4] = F32x8(_mm256_permute2f128_ps(u0, u4, 0x31));
        m[5] = F32x8(_mm256_permute2f128_ps(u1, u5, 0x31));
        m[6] = F32x8(_mm256_permute2f128_ps(u2, u6, 0x31));
        m[7] = F32x8(_mm256_permute2f128_ps(u3, u7, 0x31));
    }
}
