//! AVX2 + FMA implementation of [`SimdF64`]: 4 × f64 in a `__m256d`.
//!
//! The `Assemble` operation (paper Fig. 3) is two instructions:
//! `vblendpd` + `vpermpd`, exactly as in Algorithm 1 lines 1–5
//! (`_mm256_blend_pd` followed by `_mm256_permute4x64_pd`).
//!
//! The 4×4 transpose (paper §3.5, Fig. 6) is `vl·log(vl) = 8` shuffles.
//! The paper's schedule issues the four 3-cycle lane-crossing
//! `vperm2f128` first and hides their latency under the four 1-cycle
//! in-lane `vunpcklpd`/`vunpckhpd`; the conventional schedule (ablation
//! baseline) does the unpacks first and exposes the `vperm2f128` latency
//! at the end of the dependency chain.

use core::arch::x86_64::*;

use crate::vector::SimdF64;

/// 4 × f64 AVX2 vector.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x4(pub __m256d);

impl std::fmt::Debug for F64x4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = [0.0f64; 4];
        // SAFETY: a value of this type only exists where AVX is available.
        unsafe { _mm256_storeu_pd(a.as_mut_ptr(), self.0) };
        write!(f, "F64x4({a:?})")
    }
}

impl SimdF64 for F64x4 {
    const LANES: usize = 4;
    const NAME: &'static str = "avx2";

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        F64x4(_mm256_set1_pd(x))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        debug_assert_eq!(ptr as usize % 32, 0, "unaligned aligned-load");
        F64x4(_mm256_load_pd(ptr))
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f64) -> Self {
        F64x4(_mm256_loadu_pd(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        debug_assert_eq!(ptr as usize % 32, 0, "unaligned aligned-store");
        _mm256_store_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f64) {
        _mm256_storeu_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F64x4(_mm256_add_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F64x4(_mm256_sub_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F64x4(_mm256_mul_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        F64x4(_mm256_fmadd_pd(self.0, a.0, b.0))
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        // Each arm is the cheapest AVX2 sequence for that shift:
        //   o=1,3: blend + permute4x64 (2 ops — the paper's Assemble cost),
        //   o=2:   a single vperm2f128.
        match o {
            0 => lo,
            1 => {
                // (lo1, lo2, lo3, hi0)
                let t = _mm256_blend_pd(lo.0, hi.0, 0b0001); // (hi0,lo1,lo2,lo3)
                F64x4(_mm256_permute4x64_pd(t, 0b00_11_10_01)) // rotate left 1
            }
            2 => {
                // (lo2, lo3, hi0, hi1)
                F64x4(_mm256_permute2f128_pd(lo.0, hi.0, 0x21))
            }
            3 => {
                // (lo3, hi0, hi1, hi2)
                let t = _mm256_blend_pd(hi.0, lo.0, 0b1000); // (hi0,hi1,hi2,lo3)
                F64x4(_mm256_permute4x64_pd(t, 0b10_01_00_11)) // rotate right 1
            }
            4 => hi,
            _ => unreachable!("alignr shift out of range"),
        }
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 4);
        let (r0, r1, r2, r3) = (m[0].0, m[1].0, m[2].0, m[3].0);
        // Stage 1: lane-crossing vperm2f128 first (latency 3, all four
        // independent, issued back to back).
        let t0 = _mm256_permute2f128_pd(r0, r2, 0x20); // (a0,a1,c0,c1)
        let t1 = _mm256_permute2f128_pd(r1, r3, 0x20); // (b0,b1,d0,d1)
        let t2 = _mm256_permute2f128_pd(r0, r2, 0x31); // (a2,a3,c2,c3)
        let t3 = _mm256_permute2f128_pd(r1, r3, 0x31); // (b2,b3,d2,d3)
                                                       // Stage 2: in-lane unpacks (latency 1) finish while stage 1 drains.
        m[0] = F64x4(_mm256_unpacklo_pd(t0, t1)); // (a0,b0,c0,d0)
        m[1] = F64x4(_mm256_unpackhi_pd(t0, t1)); // (a1,b1,c1,d1)
        m[2] = F64x4(_mm256_unpacklo_pd(t2, t3)); // (a2,b2,c2,d2)
        m[3] = F64x4(_mm256_unpackhi_pd(t2, t3)); // (a3,b3,c3,d3)
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 4);
        let (r0, r1, r2, r3) = (m[0].0, m[1].0, m[2].0, m[3].0);
        // Conventional order: unpacks first, lane-crossing shuffles last,
        // leaving the 3-cycle vperm2f128 latency exposed on the critical
        // path (the +25% the paper attributes to existing transposes).
        let s0 = _mm256_unpacklo_pd(r0, r1); // (a0,b0,a2,b2)
        let s1 = _mm256_unpackhi_pd(r0, r1); // (a1,b1,a3,b3)
        let s2 = _mm256_unpacklo_pd(r2, r3); // (c0,d0,c2,d2)
        let s3 = _mm256_unpackhi_pd(r2, r3); // (c1,d1,c3,d3)
        m[0] = F64x4(_mm256_permute2f128_pd(s0, s2, 0x20)); // (a0,b0,c0,d0)
        m[1] = F64x4(_mm256_permute2f128_pd(s1, s3, 0x20)); // (a1,b1,c1,d1)
        m[2] = F64x4(_mm256_permute2f128_pd(s0, s2, 0x31)); // (a2,b2,c2,d2)
        m[3] = F64x4(_mm256_permute2f128_pd(s1, s3, 0x31)); // (a3,b3,c3,d3)
    }
}
