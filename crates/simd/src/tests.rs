//! Cross-ISA tests: every intrinsic implementation must agree with the
//! portable oracle for every operation, shift, and transpose schedule —
//! at both element widths (f64 and f32).

use crate::{dispatch_elem, AlignedBuf, Elem, Isa, Vector};

unsafe fn go_alignr<V: Vector>(
    lo: *const V::Elem,
    hi: *const V::Elem,
    o: usize,
    out: *mut V::Elem,
) {
    let lo = V::loadu(lo);
    let hi = V::loadu(hi);
    V::alignr(hi, lo, o).storeu(out);
}

/// Run `alignr(hi, lo, o)` for one ISA and return the lanes.
fn alignr_via<T: Elem>(isa: Isa, lo: &[T], hi: &[T], o: usize) -> Vec<T> {
    let l = isa.lanes_for::<T>();
    assert_eq!(lo.len(), l);
    assert_eq!(hi.len(), l);
    let mut out = vec![T::ZERO; l];
    let (lp, hp, op) = (lo.as_ptr(), hi.as_ptr(), out.as_mut_ptr());
    dispatch_elem!(isa, T, go_alignr::<V>(lp, hp, o, op));
    out
}

unsafe fn go_transpose<V: Vector>(src: *const V::Elem, dst: *mut V::Elem, baseline: bool) {
    let l = V::LANES;
    let mut m: Vec<V> = (0..l).map(|i| V::load(src.add(i * l))).collect();
    if baseline {
        V::transpose_baseline(&mut m);
    } else {
        V::transpose(&mut m);
    }
    for (i, v) in m.into_iter().enumerate() {
        v.store(dst.add(i * l));
    }
}

/// Transpose an `l*l` matrix (row-major) in-register for one ISA.
fn transpose_via<T: Elem>(isa: Isa, data: &[T], baseline: bool) -> Vec<T> {
    let l = isa.lanes_for::<T>();
    assert_eq!(data.len(), l * l);
    let src = AlignedBuf::from_slice(data);
    let mut dst = AlignedBuf::zeroed(l * l);
    let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
    dispatch_elem!(isa, T, go_transpose::<V>(sp, dp, baseline));
    dst.as_slice().to_vec()
}

unsafe fn go_arith<V: Vector>(
    a: *const V::Elem,
    b: *const V::Elem,
    c: *const V::Elem,
    out: *mut V::Elem,
) {
    let l = V::LANES;
    let (a, b, c) = (V::loadu(a), V::loadu(b), V::loadu(c));
    V::add(a, b).storeu(out);
    V::sub(a, b).storeu(out.add(l));
    V::mul(a, b).storeu(out.add(2 * l));
    V::mul_add(a, b, c).storeu(out.add(3 * l));
}

fn arith_via<T: Elem>(isa: Isa, a: &[T], b: &[T], c: &[T]) -> Vec<T> {
    let l = isa.lanes_for::<T>();
    let mut out = vec![T::ZERO; 4 * l];
    let (ap, bp, cp, op) = (a.as_ptr(), b.as_ptr(), c.as_ptr(), out.as_mut_ptr());
    dispatch_elem!(isa, T, go_arith::<V>(ap, bp, cp, op));
    out
}

fn available_pairs() -> Vec<(Isa, Isa)> {
    // (intrinsic ISA, matching-width portable oracle)
    let mut v = Vec::new();
    if Isa::Avx2.is_available() {
        v.push((Isa::Avx2, Isa::Portable4));
    }
    if Isa::Avx512.is_available() {
        v.push((Isa::Avx512, Isa::Portable8));
    }
    v
}

#[test]
fn intrinsic_isas_available_on_ci_host() {
    // This repository targets x86-64 hosts with at least AVX2; if this
    // fails the remaining cross-checks silently test nothing.
    assert!(
        !available_pairs().is_empty(),
        "no intrinsic ISA available; cross-ISA tests are vacuous"
    );
}

fn check_alignr_all_shifts<T: Elem>() {
    for (isa, oracle) in available_pairs() {
        let l = isa.lanes_for::<T>();
        let lo: Vec<T> = (0..l).map(|i| T::from_f64(i as f64)).collect();
        let hi: Vec<T> = (0..l).map(|i| T::from_f64(100.0 + i as f64)).collect();
        for o in 0..=l {
            let got = alignr_via(isa, &lo, &hi, o);
            let want = alignr_via(oracle, &lo, &hi, o);
            assert_eq!(got, want, "{} isa={isa} o={o}", T::DTYPE);
        }
    }
}

#[test]
fn alignr_matches_oracle_all_shifts() {
    check_alignr_all_shifts::<f64>();
    check_alignr_all_shifts::<f32>();
}

#[test]
fn assemble_matches_paper_figure3() {
    // Fig. 3: first vector (A,E,I,M), left dependent vector (Z,D,H,L) built
    // from (*,*,*,Z) and (D,H,L,P): blend + rotate right.
    if !Isa::Avx2.is_available() {
        return;
    }
    let prev = [0.0, 0.0, 0.0, 26.0]; // (*,*,*,Z)
    let cur = [4.0, 8.0, 12.0, 16.0]; // (D,H,L,P)
    let got = alignr_via::<f64>(Isa::Avx2, &prev, &cur, 3); // assemble_left = alignr(hi=cur, lo=prev, L-1)
    assert_eq!(got, vec![26.0, 4.0, 8.0, 12.0]); // (Z,D,H,L)
}

fn check_transpose<T: Elem>() {
    for (isa, oracle) in available_pairs() {
        let l = isa.lanes_for::<T>();
        let data: Vec<T> = (0..l * l)
            .map(|i| T::from_f64(i as f64 * 1.25 - 7.0))
            .collect();
        let want = transpose_via(oracle, &data, false);
        for baseline in [false, true] {
            let got = transpose_via(isa, &data, baseline);
            assert_eq!(got, want, "{} isa={isa} baseline={baseline}", T::DTYPE);
        }
        // And it really is the mathematical transpose.
        for r in 0..l {
            for c in 0..l {
                assert_eq!(want[c * l + r], data[r * l + c]);
            }
        }
    }
}

#[test]
fn transpose_matches_oracle() {
    check_transpose::<f64>();
    check_transpose::<f32>();
}

fn check_involution<T: Elem>() {
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        let l = isa.lanes_for::<T>();
        let data: Vec<T> = (0..l * l).map(|i| T::from_f64((i as f64).sin())).collect();
        let twice = transpose_via(isa, &transpose_via(isa, &data, false), false);
        assert_eq!(twice, data, "{} isa={isa}", T::DTYPE);
    }
}

#[test]
fn transpose_is_involution() {
    check_involution::<f64>();
    check_involution::<f32>();
}

fn check_arith<T: Elem>() {
    for (isa, oracle) in available_pairs() {
        let l = isa.lanes_for::<T>();
        let a: Vec<T> = (0..l)
            .map(|i| T::from_f64(1.0 + (i as f64) * 1e-7))
            .collect();
        let b: Vec<T> = (0..l)
            .map(|i| T::from_f64(-3.0 + (i as f64) * 0.33))
            .collect();
        let c: Vec<T> = (0..l).map(|i| T::from_f64(1e-12 + i as f64)).collect();
        let got = arith_via(isa, &a, &b, &c);
        let want = arith_via(oracle, &a, &b, &c);
        // mul_add must match bitwise: both sides use a fused operation.
        assert_eq!(got, want, "{} isa={isa}", T::DTYPE);
    }
}

#[test]
fn arithmetic_matches_oracle_bitwise() {
    check_arith::<f64>();
    check_arith::<f32>();
}

unsafe fn go_roundtrip<V: Vector>(src: *const V::Elem, dst: *mut V::Elem) {
    let a = V::load(src);
    let b = V::loadu(src.add(1));
    a.store(dst);
    b.storeu(dst.add(V::LANES));
}

fn check_roundtrip<T: Elem>() {
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        let l = isa.lanes_for::<T>();
        let src = AlignedBuf::from_slice(
            &(0..2 * l)
                .map(|i| T::from_f64(i as f64))
                .collect::<Vec<_>>(),
        );
        let mut dst = AlignedBuf::zeroed(2 * l);
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        dispatch_elem!(isa, T, go_roundtrip::<V>(sp, dp));
        assert_eq!(&dst[..l], &src[..l], "{} isa={isa}", T::DTYPE);
        assert_eq!(&dst[l..2 * l], &src[1..l + 1], "{} isa={isa}", T::DTYPE);
    }
}

#[test]
fn aligned_load_store_roundtrip() {
    check_roundtrip::<f64>();
    check_roundtrip::<f32>();
}

#[test]
fn lane_extraction_matches_storeu() {
    fn check<T: Elem>() {
        unsafe fn go<V: Vector>(src: *const V::Elem, out: *mut V::Elem) {
            let v = V::loadu(src);
            for i in 0..V::LANES {
                *out.add(i) = v.lane(i);
            }
        }
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let l = isa.lanes_for::<T>();
            let src: Vec<T> = (0..l).map(|i| T::from_f64(i as f64 * 0.5 - 3.0)).collect();
            let mut out = vec![T::ZERO; l];
            let (sp, op) = (src.as_ptr(), out.as_mut_ptr());
            dispatch_elem!(isa, T, go::<V>(sp, op));
            assert_eq!(out, src, "{} isa={isa}", T::DTYPE);
        }
    }
    check::<f64>();
    check::<f32>();
}

/// Randomized cross-checks (deterministic seeds; formerly proptest-based,
/// rewritten as explicit loops so the workspace builds offline).
mod randomized {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vec_in<T: Elem>(r: &mut StdRng, len: usize, range: std::ops::Range<f64>) -> Vec<T> {
        (0..len)
            .map(|_| T::from_f64(r.random_range(range.clone())))
            .collect()
    }

    fn alignr_randomized<T: Elem>(seed: u64) {
        let mut r = StdRng::seed_from_u64(seed);
        for case in 0..64 {
            let lo: Vec<T> = vec_in(&mut r, 16, -1e6..1e6);
            let hi: Vec<T> = vec_in(&mut r, 16, -1e6..1e6);
            for (isa, oracle) in available_pairs() {
                let l = isa.lanes_for::<T>();
                for o in 0..=l {
                    let got = alignr_via(isa, &lo[..l], &hi[..l], o);
                    let want = alignr_via(oracle, &lo[..l], &hi[..l], o);
                    assert_eq!(got, want, "{} case={case} isa={isa} o={o}", T::DTYPE);
                }
            }
        }
    }

    #[test]
    fn alignr_oracle_randomized() {
        alignr_randomized::<f64>(0xA11C);
        alignr_randomized::<f32>(0xA11C + 1);
    }

    fn transpose_randomized<T: Elem>(seed: u64) {
        let mut r = StdRng::seed_from_u64(seed);
        for case in 0..64 {
            let data: Vec<T> = vec_in(&mut r, 256, -1e9..1e9);
            for (isa, oracle) in available_pairs() {
                let l = isa.lanes_for::<T>();
                let got = transpose_via(isa, &data[..l * l], false);
                let base = transpose_via(isa, &data[..l * l], true);
                let want = transpose_via(oracle, &data[..l * l], false);
                assert_eq!(got, want, "{} case={case} isa={isa}", T::DTYPE);
                assert_eq!(
                    base,
                    want,
                    "{} case={case} isa={isa} (baseline schedule)",
                    T::DTYPE
                );
            }
        }
    }

    #[test]
    fn transpose_oracle_randomized() {
        transpose_randomized::<f64>(0x7A05);
        transpose_randomized::<f32>(0x7A05 + 1);
    }

    fn fma_randomized<T: Elem>(seed: u64) {
        let mut r = StdRng::seed_from_u64(seed);
        for case in 0..64 {
            let a: Vec<T> = vec_in(&mut r, 16, -1e3..1e3);
            let b: Vec<T> = vec_in(&mut r, 16, -1e3..1e3);
            let c: Vec<T> = vec_in(&mut r, 16, -1e3..1e3);
            for (isa, oracle) in available_pairs() {
                let l = isa.lanes_for::<T>();
                let got = arith_via(isa, &a[..l], &b[..l], &c[..l]);
                let want = arith_via(oracle, &a[..l], &b[..l], &c[..l]);
                assert_eq!(got, want, "{} case={case} isa={isa}", T::DTYPE);
            }
        }
    }

    #[test]
    fn fma_oracle_randomized() {
        fma_randomized::<f64>(0xF3A);
        fma_randomized::<f32>(0xF3B);
    }
}
