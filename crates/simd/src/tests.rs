//! Cross-ISA tests: every intrinsic implementation must agree with the
//! portable oracle for every operation, shift, and transpose schedule.

use crate::{dispatch, AlignedBuf, Isa, SimdF64};

/// Run `alignr(hi, lo, o)` for one ISA and return the lanes.
fn alignr_via(isa: Isa, lo: &[f64], hi: &[f64], o: usize) -> Vec<f64> {
    let l = isa.lanes();
    assert_eq!(lo.len(), l);
    assert_eq!(hi.len(), l);
    let mut out = vec![0.0; l];
    dispatch!(isa, V => {
        #[inline(always)]
        unsafe fn go<V: SimdF64>(lo: &[f64], hi: &[f64], o: usize, out: &mut [f64]) {
            let lo = V::read_from(lo);
            let hi = V::read_from(hi);
            V::alignr(hi, lo, o).write_to(out);
        }
        go::<V>(lo, hi, o, &mut out)
    });
    out
}

/// Transpose an `l*l` matrix (row-major) in-register for one ISA.
fn transpose_via(isa: Isa, data: &[f64], baseline: bool) -> Vec<f64> {
    let l = isa.lanes();
    assert_eq!(data.len(), l * l);
    let src = AlignedBuf::from_slice(data);
    let mut dst = AlignedBuf::zeroed(l * l);
    dispatch!(isa, V => {
        #[inline(always)]
        unsafe fn go<V: SimdF64>(src: &[f64], dst: &mut [f64], baseline: bool) {
            let l = V::LANES;
            let mut m: Vec<V> = (0..l).map(|i| V::load(src.as_ptr().add(i * l))).collect();
            if baseline {
                V::transpose_baseline(&mut m);
            } else {
                V::transpose(&mut m);
            }
            for (i, v) in m.into_iter().enumerate() {
                v.store(dst.as_mut_ptr().add(i * l));
            }
        }
        go::<V>(&src, &mut dst, baseline)
    });
    dst.as_slice().to_vec()
}

fn arith_via(isa: Isa, a: &[f64], b: &[f64], c: &[f64]) -> Vec<f64> {
    let l = isa.lanes();
    let mut out = vec![0.0; 4 * l];
    dispatch!(isa, V => {
        #[inline(always)]
        unsafe fn go<V: SimdF64>(a: &[f64], b: &[f64], c: &[f64], out: &mut [f64]) {
            let l = V::LANES;
            let (a, b, c) = (V::read_from(a), V::read_from(b), V::read_from(c));
            V::add(a, b).write_to(&mut out[..l]);
            V::sub(a, b).write_to(&mut out[l..2 * l]);
            V::mul(a, b).write_to(&mut out[2 * l..3 * l]);
            V::mul_add(a, b, c).write_to(&mut out[3 * l..4 * l]);
        }
        go::<V>(a, b, c, &mut out)
    });
    out
}

fn available_pairs() -> Vec<(Isa, Isa)> {
    // (intrinsic ISA, matching-width portable oracle)
    let mut v = Vec::new();
    if Isa::Avx2.is_available() {
        v.push((Isa::Avx2, Isa::Portable4));
    }
    if Isa::Avx512.is_available() {
        v.push((Isa::Avx512, Isa::Portable8));
    }
    v
}

#[test]
fn intrinsic_isas_available_on_ci_host() {
    // This repository targets x86-64 hosts with at least AVX2; if this
    // fails the remaining cross-checks silently test nothing.
    assert!(
        !available_pairs().is_empty(),
        "no intrinsic ISA available; cross-ISA tests are vacuous"
    );
}

#[test]
fn alignr_matches_oracle_all_shifts() {
    for (isa, oracle) in available_pairs() {
        let l = isa.lanes();
        let lo: Vec<f64> = (0..l).map(|i| i as f64).collect();
        let hi: Vec<f64> = (0..l).map(|i| 100.0 + i as f64).collect();
        for o in 0..=l {
            let got = alignr_via(isa, &lo, &hi, o);
            let want = alignr_via(oracle, &lo, &hi, o);
            assert_eq!(got, want, "isa={isa} o={o}");
        }
    }
}

#[test]
fn assemble_matches_paper_figure3() {
    // Fig. 3: first vector (A,E,I,M), left dependent vector (Z,D,H,L) built
    // from (*,*,*,Z) and (D,H,L,P): blend + rotate right.
    if !Isa::Avx2.is_available() {
        return;
    }
    let prev = [0.0, 0.0, 0.0, 26.0]; // (*,*,*,Z)
    let cur = [4.0, 8.0, 12.0, 16.0]; // (D,H,L,P)
    let got = alignr_via(Isa::Avx2, &prev, &cur, 3); // assemble_left = alignr(hi=cur, lo=prev, L-1)
    assert_eq!(got, vec![26.0, 4.0, 8.0, 12.0]); // (Z,D,H,L)
}

#[test]
fn transpose_matches_oracle() {
    for (isa, oracle) in available_pairs() {
        let l = isa.lanes();
        let data: Vec<f64> = (0..l * l).map(|i| i as f64 * 1.25 - 7.0).collect();
        let want = transpose_via(oracle, &data, false);
        for baseline in [false, true] {
            let got = transpose_via(isa, &data, baseline);
            assert_eq!(got, want, "isa={isa} baseline={baseline}");
        }
        // And it really is the mathematical transpose.
        for r in 0..l {
            for c in 0..l {
                assert_eq!(want[c * l + r], data[r * l + c]);
            }
        }
    }
}

#[test]
fn transpose_is_involution() {
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        let l = isa.lanes();
        let data: Vec<f64> = (0..l * l).map(|i| (i as f64).sin()).collect();
        let twice = transpose_via(isa, &transpose_via(isa, &data, false), false);
        assert_eq!(twice, data, "isa={isa}");
    }
}

#[test]
fn arithmetic_matches_oracle_bitwise() {
    for (isa, oracle) in available_pairs() {
        let l = isa.lanes();
        let a: Vec<f64> = (0..l).map(|i| 1.0 + (i as f64) * 1e-7).collect();
        let b: Vec<f64> = (0..l).map(|i| -3.0 + (i as f64) * 0.33).collect();
        let c: Vec<f64> = (0..l).map(|i| 1e-12 + i as f64).collect();
        let got = arith_via(isa, &a, &b, &c);
        let want = arith_via(oracle, &a, &b, &c);
        // mul_add must match bitwise: both sides use a fused operation.
        assert_eq!(got, want, "isa={isa}");
    }
}

#[test]
fn aligned_load_store_roundtrip() {
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        let l = isa.lanes();
        let src = AlignedBuf::from_slice(&(0..2 * l).map(|i| i as f64).collect::<Vec<_>>());
        let mut dst = AlignedBuf::zeroed(2 * l);
        dispatch!(isa, V => {
            #[inline(always)]
            unsafe fn go<V: SimdF64>(src: &[f64], dst: &mut [f64]) {
                let a = V::load(src.as_ptr());
                let b = V::loadu(src.as_ptr().add(1));
                a.store(dst.as_mut_ptr());
                b.storeu(dst.as_mut_ptr().add(V::LANES));
            }
            go::<V>(&src, &mut dst)
        });
        assert_eq!(&dst[..l], &src[..l], "isa={isa}");
        assert_eq!(&dst[l..2 * l], &src[1..l + 1], "isa={isa}");
    }
}

/// Randomized cross-checks (deterministic seeds; formerly proptest-based,
/// rewritten as explicit loops so the workspace builds offline).
mod randomized {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn vec_in(r: &mut StdRng, len: usize, range: std::ops::Range<f64>) -> Vec<f64> {
        (0..len).map(|_| r.random_range(range.clone())).collect()
    }

    #[test]
    fn alignr_oracle_randomized() {
        let mut r = StdRng::seed_from_u64(0xA11C);
        for case in 0..64 {
            let lo = vec_in(&mut r, 8, -1e6..1e6);
            let hi = vec_in(&mut r, 8, -1e6..1e6);
            for (isa, oracle) in available_pairs() {
                let l = isa.lanes();
                for o in 0..=l {
                    let got = alignr_via(isa, &lo[..l], &hi[..l], o);
                    let want = alignr_via(oracle, &lo[..l], &hi[..l], o);
                    assert_eq!(got, want, "case={case} isa={isa} o={o}");
                }
            }
        }
    }

    #[test]
    fn transpose_oracle_randomized() {
        let mut r = StdRng::seed_from_u64(0x7A05);
        for case in 0..64 {
            let data = vec_in(&mut r, 64, -1e9..1e9);
            for (isa, oracle) in available_pairs() {
                let l = isa.lanes();
                let got = transpose_via(isa, &data[..l * l], false);
                let base = transpose_via(isa, &data[..l * l], true);
                let want = transpose_via(oracle, &data[..l * l], false);
                assert_eq!(got, want, "case={case} isa={isa}");
                assert_eq!(base, want, "case={case} isa={isa} (baseline schedule)");
            }
        }
    }

    #[test]
    fn fma_oracle_randomized() {
        let mut r = StdRng::seed_from_u64(0xF3A);
        for case in 0..64 {
            let a = vec_in(&mut r, 8, -1e3..1e3);
            let b = vec_in(&mut r, 8, -1e3..1e3);
            let c = vec_in(&mut r, 8, -1e3..1e3);
            for (isa, oracle) in available_pairs() {
                let l = isa.lanes();
                let got = arith_via(isa, &a[..l], &b[..l], &c[..l]);
                let want = arith_via(oracle, &a[..l], &b[..l], &c[..l]);
                assert_eq!(got, want, "case={case} isa={isa}");
            }
        }
    }
}
