//! AVX-512F implementation of [`SimdF64`]: 8 × f64 in a `__m512d`.
//!
//! `alignr` is a single `valignq` for every shift, so each assembled
//! dependent vector costs one instruction (even cheaper than the paper's
//! two-instruction AVX2 sequence).
//!
//! The 8×8 transpose is `vl·log(vl) = 24` shuffles in three stages. In the
//! paper's schedule (§3.5) the two lane-crossing stages (`vshuff64x2`)
//! come first and the final stage is in-lane `vunpcklpd`/`vunpckhpd`,
//! hiding the lane-crossing latency; the baseline schedule is the
//! conventional unpack-first order with a lane-crossing final stage.

use core::arch::x86_64::*;

use crate::vector::SimdF64;

/// 8 × f64 AVX-512 vector.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x8(pub __m512d);

impl std::fmt::Debug for F64x8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = [0.0f64; 8];
        // SAFETY: a value of this type only exists where AVX-512F is available.
        unsafe { _mm512_storeu_pd(a.as_mut_ptr(), self.0) };
        write!(f, "F64x8({a:?})")
    }
}

impl SimdF64 for F64x8 {
    const LANES: usize = 8;
    const NAME: &'static str = "avx512";

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        F64x8(_mm512_set1_pd(x))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        debug_assert_eq!(ptr as usize % 64, 0, "unaligned aligned-load");
        F64x8(_mm512_load_pd(ptr))
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f64) -> Self {
        F64x8(_mm512_loadu_pd(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        debug_assert_eq!(ptr as usize % 64, 0, "unaligned aligned-store");
        _mm512_store_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f64) {
        _mm512_storeu_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F64x8(_mm512_add_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F64x8(_mm512_sub_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F64x8(_mm512_mul_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        F64x8(_mm512_fmadd_pd(self.0, a.0, b.0))
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        // valignq concatenates hi:lo and shifts right by `o` qwords —
        // exactly our definition, one instruction per shift.
        let (a, b) = (_mm512_castpd_si512(hi.0), _mm512_castpd_si512(lo.0));
        let r = match o {
            0 => return lo,
            1 => _mm512_alignr_epi64(a, b, 1),
            2 => _mm512_alignr_epi64(a, b, 2),
            3 => _mm512_alignr_epi64(a, b, 3),
            4 => _mm512_alignr_epi64(a, b, 4),
            5 => _mm512_alignr_epi64(a, b, 5),
            6 => _mm512_alignr_epi64(a, b, 6),
            7 => _mm512_alignr_epi64(a, b, 7),
            8 => return hi,
            _ => unreachable!("alignr shift out of range"),
        };
        F64x8(_mm512_castsi512_pd(r))
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 8);
        let r: [__m512d; 8] = [
            m[0].0, m[1].0, m[2].0, m[3].0, m[4].0, m[5].0, m[6].0, m[7].0,
        ];
        // Stage 1 (lane-crossing, distance 2): pair rows (i, i+2); imm 0x44
        // keeps both sources' low 256-bit halves, 0xEE both high halves.
        let s0 = _mm512_shuffle_f64x2(r[0], r[2], 0x44); // rows 0,2 cols 0-3
        let s1 = _mm512_shuffle_f64x2(r[1], r[3], 0x44); // rows 1,3 cols 0-3
        let s2 = _mm512_shuffle_f64x2(r[0], r[2], 0xEE); // rows 0,2 cols 4-7
        let s3 = _mm512_shuffle_f64x2(r[1], r[3], 0xEE); // rows 1,3 cols 4-7
        let s4 = _mm512_shuffle_f64x2(r[4], r[6], 0x44); // rows 4,6 cols 0-3
        let s5 = _mm512_shuffle_f64x2(r[5], r[7], 0x44); // rows 5,7 cols 0-3
        let s6 = _mm512_shuffle_f64x2(r[4], r[6], 0xEE); // rows 4,6 cols 4-7
        let s7 = _mm512_shuffle_f64x2(r[5], r[7], 0xEE); // rows 5,7 cols 4-7
                                                         // Stage 2 (lane-crossing, distance 4): imm 0x88 picks 128-bit chunks
                                                         // 0,2 of each source; 0xDD picks chunks 1,3.
        let u0 = _mm512_shuffle_f64x2(s0, s4, 0x88); // even rows, cols 0,1
        let u1 = _mm512_shuffle_f64x2(s1, s5, 0x88); // odd rows,  cols 0,1
        let u2 = _mm512_shuffle_f64x2(s0, s4, 0xDD); // even rows, cols 2,3
        let u3 = _mm512_shuffle_f64x2(s1, s5, 0xDD); // odd rows,  cols 2,3
        let u4 = _mm512_shuffle_f64x2(s2, s6, 0x88); // even rows, cols 4,5
        let u5 = _mm512_shuffle_f64x2(s3, s7, 0x88); // odd rows,  cols 4,5
        let u6 = _mm512_shuffle_f64x2(s2, s6, 0xDD); // even rows, cols 6,7
        let u7 = _mm512_shuffle_f64x2(s3, s7, 0xDD); // odd rows,  cols 6,7
                                                     // Stage 3 (in-lane, single-cycle): interleave even/odd rows.
        m[0] = F64x8(_mm512_unpacklo_pd(u0, u1)); // column 0
        m[1] = F64x8(_mm512_unpackhi_pd(u0, u1)); // column 1
        m[2] = F64x8(_mm512_unpacklo_pd(u2, u3)); // column 2
        m[3] = F64x8(_mm512_unpackhi_pd(u2, u3)); // column 3
        m[4] = F64x8(_mm512_unpacklo_pd(u4, u5)); // column 4
        m[5] = F64x8(_mm512_unpackhi_pd(u4, u5)); // column 5
        m[6] = F64x8(_mm512_unpacklo_pd(u6, u7)); // column 6
        m[7] = F64x8(_mm512_unpackhi_pd(u6, u7)); // column 7
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 8);
        let r: [__m512d; 8] = [
            m[0].0, m[1].0, m[2].0, m[3].0, m[4].0, m[5].0, m[6].0, m[7].0,
        ];
        // Conventional order: in-lane unpacks first...
        let t0 = _mm512_unpacklo_pd(r[0], r[1]);
        let t1 = _mm512_unpackhi_pd(r[0], r[1]);
        let t2 = _mm512_unpacklo_pd(r[2], r[3]);
        let t3 = _mm512_unpackhi_pd(r[2], r[3]);
        let t4 = _mm512_unpacklo_pd(r[4], r[5]);
        let t5 = _mm512_unpackhi_pd(r[4], r[5]);
        let t6 = _mm512_unpacklo_pd(r[6], r[7]);
        let t7 = _mm512_unpackhi_pd(r[6], r[7]);
        // ...then two lane-crossing stages, leaving vshuff64x2 latency
        // exposed on the critical path.
        let u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
        let u1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
        let u2 = _mm512_shuffle_f64x2(t0, t2, 0xDD);
        let u3 = _mm512_shuffle_f64x2(t1, t3, 0xDD);
        let u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
        let u5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
        let u6 = _mm512_shuffle_f64x2(t4, t6, 0xDD);
        let u7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);
        m[0] = F64x8(_mm512_shuffle_f64x2(u0, u4, 0x88));
        m[1] = F64x8(_mm512_shuffle_f64x2(u1, u5, 0x88));
        m[2] = F64x8(_mm512_shuffle_f64x2(u2, u6, 0x88));
        m[3] = F64x8(_mm512_shuffle_f64x2(u3, u7, 0x88));
        m[4] = F64x8(_mm512_shuffle_f64x2(u0, u4, 0xDD));
        m[5] = F64x8(_mm512_shuffle_f64x2(u1, u5, 0xDD));
        m[6] = F64x8(_mm512_shuffle_f64x2(u2, u6, 0xDD));
        m[7] = F64x8(_mm512_shuffle_f64x2(u3, u7, 0xDD));
    }
}
