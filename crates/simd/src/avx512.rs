//! AVX-512F implementations of [`Vector`]: 8 × f64 in a `__m512d` and
//! 16 × f32 in a `__m512` (twice the lane width, same register width).
//!
//! `alignr` is a single `valignq` (f64) / `valignd` (f32) for every
//! shift, so each assembled dependent vector costs one instruction (even
//! cheaper than the paper's two-instruction AVX2 sequence).
//!
//! The `vl × vl` transpose is `vl·log(vl)` shuffles: 24 for f64 in three
//! stages, 64 for f32 in four. In the paper's schedule (§3.5) the
//! lane-crossing stages (`vshuff64x2`/`vshuff32x4`) come first and the
//! in-lane `vunpck*`/`vshufps` finish, hiding the lane-crossing latency;
//! the baseline schedule is the conventional in-lane-first order with
//! lane-crossing final stages.

use core::arch::x86_64::*;

use crate::vector::Vector;

/// 8 × f64 AVX-512 vector.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F64x8(pub __m512d);

impl std::fmt::Debug for F64x8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = [0.0f64; 8];
        // SAFETY: a value of this type only exists where AVX-512F is available.
        unsafe { _mm512_storeu_pd(a.as_mut_ptr(), self.0) };
        write!(f, "F64x8({a:?})")
    }
}

impl Vector for F64x8 {
    type Elem = f64;
    const LANES: usize = 8;
    const NAME: &'static str = "avx512";

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        F64x8(_mm512_set1_pd(x))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        debug_assert_eq!(ptr as usize % 64, 0, "unaligned aligned-load");
        F64x8(_mm512_load_pd(ptr))
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f64) -> Self {
        F64x8(_mm512_loadu_pd(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        debug_assert_eq!(ptr as usize % 64, 0, "unaligned aligned-store");
        _mm512_store_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f64) {
        _mm512_storeu_pd(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F64x8(_mm512_add_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F64x8(_mm512_sub_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F64x8(_mm512_mul_pd(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        F64x8(_mm512_fmadd_pd(self.0, a.0, b.0))
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        // valignq concatenates hi:lo and shifts right by `o` qwords —
        // exactly our definition, one instruction per shift.
        let (a, b) = (_mm512_castpd_si512(hi.0), _mm512_castpd_si512(lo.0));
        let r = match o {
            0 => return lo,
            1 => _mm512_alignr_epi64(a, b, 1),
            2 => _mm512_alignr_epi64(a, b, 2),
            3 => _mm512_alignr_epi64(a, b, 3),
            4 => _mm512_alignr_epi64(a, b, 4),
            5 => _mm512_alignr_epi64(a, b, 5),
            6 => _mm512_alignr_epi64(a, b, 6),
            7 => _mm512_alignr_epi64(a, b, 7),
            8 => return hi,
            _ => unreachable!("alignr shift out of range"),
        };
        F64x8(_mm512_castsi512_pd(r))
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 8);
        let r: [__m512d; 8] = [
            m[0].0, m[1].0, m[2].0, m[3].0, m[4].0, m[5].0, m[6].0, m[7].0,
        ];
        // Stage 1 (lane-crossing, distance 2): pair rows (i, i+2); imm 0x44
        // keeps both sources' low 256-bit halves, 0xEE both high halves.
        let s0 = _mm512_shuffle_f64x2(r[0], r[2], 0x44); // rows 0,2 cols 0-3
        let s1 = _mm512_shuffle_f64x2(r[1], r[3], 0x44); // rows 1,3 cols 0-3
        let s2 = _mm512_shuffle_f64x2(r[0], r[2], 0xEE); // rows 0,2 cols 4-7
        let s3 = _mm512_shuffle_f64x2(r[1], r[3], 0xEE); // rows 1,3 cols 4-7
        let s4 = _mm512_shuffle_f64x2(r[4], r[6], 0x44); // rows 4,6 cols 0-3
        let s5 = _mm512_shuffle_f64x2(r[5], r[7], 0x44); // rows 5,7 cols 0-3
        let s6 = _mm512_shuffle_f64x2(r[4], r[6], 0xEE); // rows 4,6 cols 4-7
        let s7 = _mm512_shuffle_f64x2(r[5], r[7], 0xEE); // rows 5,7 cols 4-7
                                                         // Stage 2 (lane-crossing, distance 4): imm 0x88 picks 128-bit chunks
                                                         // 0,2 of each source; 0xDD picks chunks 1,3.
        let u0 = _mm512_shuffle_f64x2(s0, s4, 0x88); // even rows, cols 0,1
        let u1 = _mm512_shuffle_f64x2(s1, s5, 0x88); // odd rows,  cols 0,1
        let u2 = _mm512_shuffle_f64x2(s0, s4, 0xDD); // even rows, cols 2,3
        let u3 = _mm512_shuffle_f64x2(s1, s5, 0xDD); // odd rows,  cols 2,3
        let u4 = _mm512_shuffle_f64x2(s2, s6, 0x88); // even rows, cols 4,5
        let u5 = _mm512_shuffle_f64x2(s3, s7, 0x88); // odd rows,  cols 4,5
        let u6 = _mm512_shuffle_f64x2(s2, s6, 0xDD); // even rows, cols 6,7
        let u7 = _mm512_shuffle_f64x2(s3, s7, 0xDD); // odd rows,  cols 6,7
                                                     // Stage 3 (in-lane, single-cycle): interleave even/odd rows.
        m[0] = F64x8(_mm512_unpacklo_pd(u0, u1)); // column 0
        m[1] = F64x8(_mm512_unpackhi_pd(u0, u1)); // column 1
        m[2] = F64x8(_mm512_unpacklo_pd(u2, u3)); // column 2
        m[3] = F64x8(_mm512_unpackhi_pd(u2, u3)); // column 3
        m[4] = F64x8(_mm512_unpacklo_pd(u4, u5)); // column 4
        m[5] = F64x8(_mm512_unpackhi_pd(u4, u5)); // column 5
        m[6] = F64x8(_mm512_unpacklo_pd(u6, u7)); // column 6
        m[7] = F64x8(_mm512_unpackhi_pd(u6, u7)); // column 7
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 8);
        let r: [__m512d; 8] = [
            m[0].0, m[1].0, m[2].0, m[3].0, m[4].0, m[5].0, m[6].0, m[7].0,
        ];
        // Conventional order: in-lane unpacks first...
        let t0 = _mm512_unpacklo_pd(r[0], r[1]);
        let t1 = _mm512_unpackhi_pd(r[0], r[1]);
        let t2 = _mm512_unpacklo_pd(r[2], r[3]);
        let t3 = _mm512_unpackhi_pd(r[2], r[3]);
        let t4 = _mm512_unpacklo_pd(r[4], r[5]);
        let t5 = _mm512_unpackhi_pd(r[4], r[5]);
        let t6 = _mm512_unpacklo_pd(r[6], r[7]);
        let t7 = _mm512_unpackhi_pd(r[6], r[7]);
        // ...then two lane-crossing stages, leaving vshuff64x2 latency
        // exposed on the critical path.
        let u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
        let u1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
        let u2 = _mm512_shuffle_f64x2(t0, t2, 0xDD);
        let u3 = _mm512_shuffle_f64x2(t1, t3, 0xDD);
        let u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
        let u5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
        let u6 = _mm512_shuffle_f64x2(t4, t6, 0xDD);
        let u7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);
        m[0] = F64x8(_mm512_shuffle_f64x2(u0, u4, 0x88));
        m[1] = F64x8(_mm512_shuffle_f64x2(u1, u5, 0x88));
        m[2] = F64x8(_mm512_shuffle_f64x2(u2, u6, 0x88));
        m[3] = F64x8(_mm512_shuffle_f64x2(u3, u7, 0x88));
        m[4] = F64x8(_mm512_shuffle_f64x2(u0, u4, 0xDD));
        m[5] = F64x8(_mm512_shuffle_f64x2(u1, u5, 0xDD));
        m[6] = F64x8(_mm512_shuffle_f64x2(u2, u6, 0xDD));
        m[7] = F64x8(_mm512_shuffle_f64x2(u3, u7, 0xDD));
    }
}

/// 16 × f32 AVX-512 vector — the f64 sibling's register at twice the lanes.
#[derive(Copy, Clone)]
#[repr(transparent)]
pub struct F32x16(pub __m512);

impl std::fmt::Debug for F32x16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = [0.0f32; 16];
        // SAFETY: a value of this type only exists where AVX-512F is available.
        unsafe { _mm512_storeu_ps(a.as_mut_ptr(), self.0) };
        write!(f, "F32x16({a:?})")
    }
}

impl Vector for F32x16 {
    type Elem = f32;
    const LANES: usize = 16;
    const NAME: &'static str = "avx512";

    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        F32x16(_mm512_set1_ps(x))
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f32) -> Self {
        debug_assert_eq!(ptr as usize % 64, 0, "unaligned aligned-load");
        F32x16(_mm512_load_ps(ptr))
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f32) -> Self {
        F32x16(_mm512_loadu_ps(ptr))
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f32) {
        debug_assert_eq!(ptr as usize % 64, 0, "unaligned aligned-store");
        _mm512_store_ps(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f32) {
        _mm512_storeu_ps(ptr, self.0)
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        F32x16(_mm512_add_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        F32x16(_mm512_sub_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        F32x16(_mm512_mul_ps(self.0, o.0))
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        F32x16(_mm512_fmadd_ps(self.0, a.0, b.0))
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        // valignd concatenates hi:lo and shifts right by `o` dwords —
        // one instruction per shift, same as the f64 valignq.
        let (a, b) = (_mm512_castps_si512(hi.0), _mm512_castps_si512(lo.0));
        let r = match o {
            0 => return lo,
            1 => _mm512_alignr_epi32(a, b, 1),
            2 => _mm512_alignr_epi32(a, b, 2),
            3 => _mm512_alignr_epi32(a, b, 3),
            4 => _mm512_alignr_epi32(a, b, 4),
            5 => _mm512_alignr_epi32(a, b, 5),
            6 => _mm512_alignr_epi32(a, b, 6),
            7 => _mm512_alignr_epi32(a, b, 7),
            8 => _mm512_alignr_epi32(a, b, 8),
            9 => _mm512_alignr_epi32(a, b, 9),
            10 => _mm512_alignr_epi32(a, b, 10),
            11 => _mm512_alignr_epi32(a, b, 11),
            12 => _mm512_alignr_epi32(a, b, 12),
            13 => _mm512_alignr_epi32(a, b, 13),
            14 => _mm512_alignr_epi32(a, b, 14),
            15 => _mm512_alignr_epi32(a, b, 15),
            16 => return hi,
            _ => unreachable!("alignr shift out of range"),
        };
        F32x16(_mm512_castsi512_ps(r))
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 16);
        let r: [__m512; 16] = std::array::from_fn(|i| m[i].0);
        // Stage 1 (lane-crossing, distance 4): pair rows (k, k+4); imm
        // 0x44 keeps both sources' low two 128-bit chunks, 0xEE the high.
        let mut a = [_mm512_setzero_ps(); 4]; // chunks 0,1 of rows k,k+4
        let mut b = [_mm512_setzero_ps(); 4]; // chunks 2,3 of rows k,k+4
        let mut c = [_mm512_setzero_ps(); 4]; // chunks 0,1 of rows k+8,k+12
        let mut d = [_mm512_setzero_ps(); 4]; // chunks 2,3 of rows k+8,k+12
        for k in 0..4 {
            a[k] = _mm512_shuffle_f32x4(r[k], r[k + 4], 0x44);
            b[k] = _mm512_shuffle_f32x4(r[k], r[k + 4], 0xEE);
            c[k] = _mm512_shuffle_f32x4(r[k + 8], r[k + 12], 0x44);
            d[k] = _mm512_shuffle_f32x4(r[k + 8], r[k + 12], 0xEE);
        }
        // Stage 2 (lane-crossing, distance 8): imm 0x88 picks chunks 0,2
        // of each source, 0xDD picks 1,3. h[i][k] now has chunk J equal to
        // row (4J + k)'s 128-bit chunk i.
        let mut h = [[_mm512_setzero_ps(); 4]; 4];
        for k in 0..4 {
            h[0][k] = _mm512_shuffle_f32x4(a[k], c[k], 0x88);
            h[1][k] = _mm512_shuffle_f32x4(a[k], c[k], 0xDD);
            h[2][k] = _mm512_shuffle_f32x4(b[k], d[k], 0x88);
            h[3][k] = _mm512_shuffle_f32x4(b[k], d[k], 0xDD);
        }
        // Stages 3+4 (in-lane, single-cycle): 4×4 transpose within every
        // 128-bit chunk while the lane-crossing stages drain.
        for i in 0..4 {
            let t0 = _mm512_unpacklo_ps(h[i][0], h[i][1]);
            let t1 = _mm512_unpacklo_ps(h[i][2], h[i][3]);
            let t2 = _mm512_unpackhi_ps(h[i][0], h[i][1]);
            let t3 = _mm512_unpackhi_ps(h[i][2], h[i][3]);
            m[4 * i] = F32x16(_mm512_shuffle_ps(t0, t1, 0x44));
            m[4 * i + 1] = F32x16(_mm512_shuffle_ps(t0, t1, 0xEE));
            m[4 * i + 2] = F32x16(_mm512_shuffle_ps(t2, t3, 0x44));
            m[4 * i + 3] = F32x16(_mm512_shuffle_ps(t2, t3, 0xEE));
        }
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        debug_assert_eq!(m.len(), 16);
        let r: [__m512; 16] = std::array::from_fn(|i| m[i].0);
        // Conventional order: in-lane 4×4 transposes first. u[4q + p] has
        // chunk C equal to column (4C + p) of row quad q.
        let mut u = [_mm512_setzero_ps(); 16];
        for q in 0..4 {
            let t0 = _mm512_unpacklo_ps(r[4 * q], r[4 * q + 1]);
            let t1 = _mm512_unpacklo_ps(r[4 * q + 2], r[4 * q + 3]);
            let t2 = _mm512_unpackhi_ps(r[4 * q], r[4 * q + 1]);
            let t3 = _mm512_unpackhi_ps(r[4 * q + 2], r[4 * q + 3]);
            u[4 * q] = _mm512_shuffle_ps(t0, t1, 0x44);
            u[4 * q + 1] = _mm512_shuffle_ps(t0, t1, 0xEE);
            u[4 * q + 2] = _mm512_shuffle_ps(t2, t3, 0x44);
            u[4 * q + 3] = _mm512_shuffle_ps(t2, t3, 0xEE);
        }
        // ...then two lane-crossing stages gather chunk I of u[4J+p]
        // across J, leaving vshuff32x4 latency exposed at the end.
        for p in 0..4 {
            let w0 = _mm512_shuffle_f32x4(u[p], u[4 + p], 0x44);
            let w1 = _mm512_shuffle_f32x4(u[8 + p], u[12 + p], 0x44);
            let w2 = _mm512_shuffle_f32x4(u[p], u[4 + p], 0xEE);
            let w3 = _mm512_shuffle_f32x4(u[8 + p], u[12 + p], 0xEE);
            m[p] = F32x16(_mm512_shuffle_f32x4(w0, w1, 0x88));
            m[4 + p] = F32x16(_mm512_shuffle_f32x4(w0, w1, 0xDD));
            m[8 + p] = F32x16(_mm512_shuffle_f32x4(w2, w3, 0x88));
            m[12 + p] = F32x16(_mm512_shuffle_f32x4(w2, w3, 0xDD));
        }
    }
}
