//! Portable const-generic implementation of [`Vector`].
//!
//! This is both the fallback for non-x86 targets and the oracle the
//! property tests compare the intrinsic implementations against. Its
//! `mul_add` uses the element's scalar `mul_add`, so accumulation is
//! bit-identical to the FMA hardware paths for the same evaluation order.
//!
//! One generic `Pvec<T, L>` covers every (element, width) pair; the
//! aliases below pin the four register-width-class instantiations.

use crate::elem::Elem;
use crate::vector::Vector;

/// Portable vector of `L` lanes of element `T`, backed by a plain array.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(C, align(32))]
pub struct Pvec<T, const L: usize>(pub [T; L]);

/// Portable f64 vector of `L` lanes (legacy name, kept for the paper-era
/// f64 call sites and tests).
pub type F64xP<const L: usize> = Pvec<f64, L>;

/// Portable 4 × f64 vector (AVX2-width oracle).
pub type P4 = Pvec<f64, 4>;
/// Portable 8 × f64 vector (AVX-512-width oracle).
pub type P8 = Pvec<f64, 8>;
/// Portable 8 × f32 vector (AVX2-width oracle, twice the f64 lane count).
pub type P8f = Pvec<f32, 8>;
/// Portable 16 × f32 vector (AVX-512-width oracle, twice the f64 lane count).
pub type P16f = Pvec<f32, 16>;

impl<T: Elem, const L: usize> Vector for Pvec<T, L> {
    type Elem = T;
    const LANES: usize = L;
    const NAME: &'static str = "portable";

    #[inline(always)]
    unsafe fn splat(x: T) -> Self {
        Pvec([x; L])
    }

    #[inline(always)]
    unsafe fn load(ptr: *const T) -> Self {
        Self::loadu(ptr)
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const T) -> Self {
        let mut a = [T::ZERO; L];
        std::ptr::copy_nonoverlapping(ptr, a.as_mut_ptr(), L);
        Pvec(a)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut T) {
        self.storeu(ptr)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut T) {
        std::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, L);
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        let mut a = self.0;
        for i in 0..L {
            a[i] += o.0[i];
        }
        Pvec(a)
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        let mut a = self.0;
        for i in 0..L {
            a[i] -= o.0[i];
        }
        Pvec(a)
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        let mut a = self.0;
        for i in 0..L {
            a[i] *= o.0[i];
        }
        Pvec(a)
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        let mut r = [T::ZERO; L];
        for i in 0..L {
            r[i] = self.0[i].mul_add(a.0[i], b.0[i]);
        }
        Pvec(r)
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        debug_assert!(o <= L);
        let mut r = [T::ZERO; L];
        for i in 0..L {
            r[i] = if i + o < L {
                lo.0[i + o]
            } else {
                hi.0[i + o - L]
            };
        }
        Pvec(r)
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), L);
        for i in 0..L {
            for j in (i + 1)..L {
                let a = m[i].0[j];
                m[i].0[j] = m[j].0[i];
                m[j].0[i] = a;
            }
        }
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        Self::transpose(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignr_matches_definition() {
        unsafe {
            let lo = Pvec([0.0, 1.0, 2.0, 3.0]);
            let hi = Pvec([4.0, 5.0, 6.0, 7.0]);
            for o in 0..=4 {
                let r = P4::alignr(hi, lo, o);
                for i in 0..4 {
                    let want = (i + o) as f64;
                    assert_eq!(r.0[i], want, "o={o} i={i}");
                }
            }
        }
    }

    #[test]
    fn alignr_matches_definition_f32x8() {
        unsafe {
            let lo = Pvec(std::array::from_fn::<f32, 8, _>(|i| i as f32));
            let hi = Pvec(std::array::from_fn::<f32, 8, _>(|i| (i + 8) as f32));
            for o in 0..=8 {
                let r = P8f::alignr(hi, lo, o);
                for i in 0..8 {
                    assert_eq!(r.0[i], (i + o) as f32, "o={o} i={i}");
                }
            }
        }
    }

    #[test]
    fn assemble_left_right() {
        unsafe {
            let prev = Pvec([10.0, 11.0, 12.0, 13.0]);
            let cur = Pvec([0.0, 1.0, 2.0, 3.0]);
            let next = Pvec([20.0, 21.0, 22.0, 23.0]);
            assert_eq!(P4::assemble_left(prev, cur).0, [13.0, 0.0, 1.0, 2.0]);
            assert_eq!(P4::assemble_right(cur, next).0, [1.0, 2.0, 3.0, 20.0]);
        }
    }

    #[test]
    fn transpose_4x4() {
        unsafe {
            let mut m = [
                Pvec([0.0, 1.0, 2.0, 3.0]),
                Pvec([4.0, 5.0, 6.0, 7.0]),
                Pvec([8.0, 9.0, 10.0, 11.0]),
                Pvec([12.0, 13.0, 14.0, 15.0]),
            ];
            P4::transpose(&mut m);
            assert_eq!(m[0].0, [0.0, 4.0, 8.0, 12.0]);
            assert_eq!(m[1].0, [1.0, 5.0, 9.0, 13.0]);
            assert_eq!(m[2].0, [2.0, 6.0, 10.0, 14.0]);
            assert_eq!(m[3].0, [3.0, 7.0, 11.0, 15.0]);
        }
    }

    #[test]
    fn transpose_16x16_f32() {
        unsafe {
            let mut m: [P16f; 16] =
                std::array::from_fn(|r| Pvec(std::array::from_fn(|c| (r * 16 + c) as f32)));
            P16f::transpose(&mut m);
            for r in 0..16 {
                for c in 0..16 {
                    assert_eq!(m[r].0[c], (c * 16 + r) as f32, "r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn mul_add_is_fused() {
        unsafe {
            // Pick values where fused vs unfused differ in the last bit.
            let a = P4::splat(1.0 + 2f64.powi(-30));
            let b = P4::splat(1.0 + 2f64.powi(-30));
            let c = P4::splat(-1.0);
            let r = P4::mul_add(a, b, c);
            let expect = (1.0 + 2f64.powi(-30)).mul_add(1.0 + 2f64.powi(-30), -1.0);
            assert_eq!(r.0[0], expect);
        }
    }

    #[test]
    fn mul_add_is_fused_f32() {
        unsafe {
            let a = P8f::splat(1.0 + 2f32.powi(-15));
            let b = P8f::splat(1.0 + 2f32.powi(-15));
            let c = P8f::splat(-1.0);
            let r = P8f::mul_add(a, b, c);
            let expect = (1.0 + 2f32.powi(-15)).mul_add(1.0 + 2f32.powi(-15), -1.0);
            assert_eq!(r.0[0], expect);
        }
    }
}
