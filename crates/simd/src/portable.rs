//! Portable const-generic implementation of [`SimdF64`].
//!
//! This is both the fallback for non-x86 targets and the oracle the
//! property tests compare the intrinsic implementations against. Its
//! `mul_add` uses `f64::mul_add`, so accumulation is bit-identical to the
//! FMA hardware paths for the same evaluation order.

use crate::vector::SimdF64;

/// Portable vector of `L` f64 lanes backed by a plain array.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(C, align(32))]
pub struct F64xP<const L: usize>(pub [f64; L]);

/// Portable 4-lane vector (AVX2-width oracle).
pub type P4 = F64xP<4>;
/// Portable 8-lane vector (AVX-512-width oracle).
pub type P8 = F64xP<8>;

impl<const L: usize> SimdF64 for F64xP<L> {
    const LANES: usize = L;
    const NAME: &'static str = "portable";

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        F64xP([x; L])
    }

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        Self::loadu(ptr)
    }

    #[inline(always)]
    unsafe fn loadu(ptr: *const f64) -> Self {
        let mut a = [0.0; L];
        std::ptr::copy_nonoverlapping(ptr, a.as_mut_ptr(), L);
        F64xP(a)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        self.storeu(ptr)
    }

    #[inline(always)]
    unsafe fn storeu(self, ptr: *mut f64) {
        std::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, L);
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        let mut a = self.0;
        for i in 0..L {
            a[i] += o.0[i];
        }
        F64xP(a)
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        let mut a = self.0;
        for i in 0..L {
            a[i] -= o.0[i];
        }
        F64xP(a)
    }

    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        let mut a = self.0;
        for i in 0..L {
            a[i] *= o.0[i];
        }
        F64xP(a)
    }

    #[inline(always)]
    unsafe fn mul_add(self, a: Self, b: Self) -> Self {
        let mut r = [0.0; L];
        for i in 0..L {
            r[i] = self.0[i].mul_add(a.0[i], b.0[i]);
        }
        F64xP(r)
    }

    #[inline(always)]
    unsafe fn alignr(hi: Self, lo: Self, o: usize) -> Self {
        debug_assert!(o <= L);
        let mut r = [0.0; L];
        for i in 0..L {
            r[i] = if i + o < L {
                lo.0[i + o]
            } else {
                hi.0[i + o - L]
            };
        }
        F64xP(r)
    }

    #[inline(always)]
    unsafe fn transpose(m: &mut [Self]) {
        debug_assert_eq!(m.len(), L);
        for i in 0..L {
            for j in (i + 1)..L {
                let a = m[i].0[j];
                m[i].0[j] = m[j].0[i];
                m[j].0[i] = a;
            }
        }
    }

    #[inline(always)]
    unsafe fn transpose_baseline(m: &mut [Self]) {
        Self::transpose(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignr_matches_definition() {
        unsafe {
            let lo = F64xP([0.0, 1.0, 2.0, 3.0]);
            let hi = F64xP([4.0, 5.0, 6.0, 7.0]);
            for o in 0..=4 {
                let r = P4::alignr(hi, lo, o);
                for i in 0..4 {
                    let want = (i + o) as f64;
                    assert_eq!(r.0[i], want, "o={o} i={i}");
                }
            }
        }
    }

    #[test]
    fn assemble_left_right() {
        unsafe {
            let prev = F64xP([10.0, 11.0, 12.0, 13.0]);
            let cur = F64xP([0.0, 1.0, 2.0, 3.0]);
            let next = F64xP([20.0, 21.0, 22.0, 23.0]);
            assert_eq!(P4::assemble_left(prev, cur).0, [13.0, 0.0, 1.0, 2.0]);
            assert_eq!(P4::assemble_right(cur, next).0, [1.0, 2.0, 3.0, 20.0]);
        }
    }

    #[test]
    fn transpose_4x4() {
        unsafe {
            let mut m = [
                F64xP([0.0, 1.0, 2.0, 3.0]),
                F64xP([4.0, 5.0, 6.0, 7.0]),
                F64xP([8.0, 9.0, 10.0, 11.0]),
                F64xP([12.0, 13.0, 14.0, 15.0]),
            ];
            P4::transpose(&mut m);
            assert_eq!(m[0].0, [0.0, 4.0, 8.0, 12.0]);
            assert_eq!(m[1].0, [1.0, 5.0, 9.0, 13.0]);
            assert_eq!(m[2].0, [2.0, 6.0, 10.0, 14.0]);
            assert_eq!(m[3].0, [3.0, 7.0, 11.0, 15.0]);
        }
    }

    #[test]
    fn mul_add_is_fused() {
        unsafe {
            // Pick values where fused vs unfused differ in the last bit.
            let a = P4::splat(1.0 + 2f64.powi(-30));
            let b = P4::splat(1.0 + 2f64.powi(-30));
            let c = P4::splat(-1.0);
            let r = P4::mul_add(a, b, c);
            let expect = (1.0 + 2f64.powi(-30)).mul_add(1.0 + 2f64.powi(-30), -1.0);
            assert_eq!(r.0[0], expect);
        }
    }
}
