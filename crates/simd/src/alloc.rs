//! 64-byte aligned element buffers.
//!
//! Vector sets must sit on vector-register-width boundaries (the paper
//! aligns them to 32 bytes for AVX2; we use 64 bytes so the same buffer
//! serves AVX-512 and avoids cache-line splits). The buffer is generic
//! over the element type — `AlignedBuf` (the `f64` default) and
//! `AlignedBuf<f32>` share one implementation; 64 is a multiple of both
//! element sizes, and the byte size is rounded up to a whole number of
//! 64-byte lines, so full-width vector stores at the tail stay in bounds
//! for 4-byte elements exactly as they did for 8-byte ones.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

use crate::elem::Elem;

/// Allocation alignment in bytes (one cache line, one 512-bit register).
pub const ALIGN: usize = 64;

/// A heap buffer of elements guaranteed to start on a 64-byte boundary.
///
/// Derefs to `[T]`. The length is fixed at construction.
pub struct AlignedBuf<T: Elem = f64> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively, like Vec<T>.
unsafe impl<T: Elem> Send for AlignedBuf<T> {}
unsafe impl<T: Elem> Sync for AlignedBuf<T> {}

impl<T: Elem> AlignedBuf<T> {
    fn layout(len: usize) -> Layout {
        // Round the byte size up to a multiple of ALIGN so reallocation-free
        // full-cache-line stores at the tail stay in bounds of the layout.
        let bytes = len.max(1) * std::mem::size_of::<T>();
        let bytes = bytes.div_ceil(ALIGN) * ALIGN;
        Layout::from_size_align(bytes, ALIGN).expect("invalid layout")
    }

    /// Allocate a zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len.max(1)).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw as *mut T) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    /// Allocate a buffer holding a copy of `src`.
    pub fn from_slice(src: &[T]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// Number of elements in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the contents.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len reads by construction.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the contents.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len writes; &mut self gives exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw base pointer (64-byte aligned).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Raw mutable base pointer (64-byte aligned).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }

    /// Fill with a constant.
    pub fn fill(&mut self, x: T) {
        self.as_mut_slice().fill(x);
    }

    /// Overwrite the contents with `src`'s, without reallocating.
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, src: &AlignedBuf<T>) {
        assert_eq!(self.len, src.len, "AlignedBuf::copy_from length mismatch");
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }
}

impl<T: Elem> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) }
    }
}

impl<T: Elem> Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Elem> DerefMut for AlignedBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Elem> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Elem> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf<{}>(len={})", T::DTYPE, self.len)
    }
}

impl<T: Elem> PartialEq for AlignedBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64() {
        for len in [1usize, 7, 16, 1000, 4096] {
            let b = AlignedBuf::<f64>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn alignment_is_64_for_f32() {
        // 4-byte elements: odd lengths must still produce 64-byte-aligned
        // storage whose layout covers a whole trailing cache line, so a
        // full 16-lane store at the last aligned slot is in bounds.
        for len in [1usize, 7, 15, 16, 17, 1000, 4095] {
            let b = AlignedBuf::<f32>::zeroed(len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0.0));
            let bytes = AlignedBuf::<f32>::layout(len).size();
            assert_eq!(bytes % ALIGN, 0, "len={len}");
            assert!(bytes >= len * 4, "len={len}");
        }
    }

    #[test]
    fn from_slice_roundtrip() {
        let v: Vec<f64> = (0..37).map(|i| i as f64 * 0.5).collect();
        let b = AlignedBuf::from_slice(&v);
        assert_eq!(b.as_slice(), &v[..]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn from_slice_roundtrip_f32() {
        let v: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b = AlignedBuf::from_slice(&v);
        assert_eq!(b.as_slice(), &v[..]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn zero_len_is_ok() {
        let b = AlignedBuf::<f64>::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice().len(), 0);
    }

    #[test]
    fn fill_overwrites() {
        let mut b = AlignedBuf::<f64>::zeroed(10);
        b.fill(3.5);
        assert!(b.iter().all(|&x| x == 3.5));
    }
}
