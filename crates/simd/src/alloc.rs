//! 64-byte aligned `f64` buffers.
//!
//! Vector sets must sit on vector-register-width boundaries (the paper
//! aligns them to 32 bytes for AVX2; we use 64 bytes so the same buffer
//! serves AVX-512 and avoids cache-line splits).

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Allocation alignment in bytes (one cache line, one `__m512d`).
pub const ALIGN: usize = 64;

/// A heap buffer of `f64` guaranteed to start on a 64-byte boundary.
///
/// Derefs to `[f64]`. The length is fixed at construction.
pub struct AlignedBuf {
    ptr: NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively, like Vec<f64>.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    fn layout(len: usize) -> Layout {
        // Round the byte size up to a multiple of ALIGN so reallocation-free
        // full-cache-line stores at the tail stay in bounds of the layout.
        let bytes = len.max(1) * std::mem::size_of::<f64>();
        let bytes = bytes.div_ceil(ALIGN) * ALIGN;
        Layout::from_size_align(bytes, ALIGN).expect("invalid layout")
    }

    /// Allocate a zero-filled buffer of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len.max(1)).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw as *mut f64) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    /// Allocate a buffer holding a copy of `src`.
    pub fn from_slice(src: &[f64]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// Number of doubles in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the contents.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: ptr is valid for len reads by construction.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the contents.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: ptr is valid for len writes; &mut self gives exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw base pointer (64-byte aligned).
    #[inline]
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr.as_ptr()
    }

    /// Raw mutable base pointer (64-byte aligned).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr.as_ptr()
    }

    /// Fill with a constant.
    pub fn fill(&mut self, x: f64) {
        self.as_mut_slice().fill(x);
    }

    /// Overwrite the contents with `src`'s, without reallocating.
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, src: &AlignedBuf) {
        assert_eq!(self.len, src.len, "AlignedBuf::copy_from length mismatch");
        self.as_mut_slice().copy_from_slice(src.as_slice());
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) }
    }
}

impl Deref for AlignedBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64() {
        for len in [1usize, 7, 16, 1000, 4096] {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn from_slice_roundtrip() {
        let v: Vec<f64> = (0..37).map(|i| i as f64 * 0.5).collect();
        let b = AlignedBuf::from_slice(&v);
        assert_eq!(b.as_slice(), &v[..]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn zero_len_is_ok() {
        let b = AlignedBuf::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice().len(), 0);
    }

    #[test]
    fn fill_overwrites() {
        let mut b = AlignedBuf::zeroed(10);
        b.fill(3.5);
        assert!(b.iter().all(|&x| x == 3.5));
    }
}
