//! Minimal, std-only stand-in for the subset of the `rand` API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over `f64` ranges.
//!
//! The build environment has no access to crates.io; test and benchmark
//! inputs only need *deterministic, well-mixed* doubles, which a SplitMix64
//! generator provides. Streams differ from the real `rand` crate — nothing
//! in the workspace depends on the exact values, only on determinism for a
//! given seed.

use std::ops::Range;

/// Mirror of `rand::SeedableRng` (the one constructor used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Mirror of `rand::Rng` (the one sampling method used here).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `[range.start, range.end)`.
    fn random_range(&mut self, range: Range<f64>) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — full-period, passes
            // BigCrush, and two lines long.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
