//! Minimal, std-only stand-in for the subset of the `criterion` API this
//! workspace uses: benchmark groups, per-group throughput and sample
//! counts, `bench_function`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! The build environment has no access to crates.io. This shim keeps
//! `cargo bench` working end to end: each benchmark is warmed up, then
//! timed for `sample_size` samples (each sample auto-scaled to a batch of
//! iterations long enough to measure), and the median per-iteration time
//! plus derived throughput are printed. No statistics beyond min/median,
//! no HTML reports.
//!
//! Set `CRITERION_SAVE_JSON=<path>` to additionally append one JSON line
//! per benchmark (`{"group":..,"bench":..,"median_ns":..,"elems_per_sec":..}`)
//! so harnesses can persist results.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1200),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            batch: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up, and discover a batch size that takes ≳ 200 µs so timer
        // resolution is irrelevant.
        let warm_deadline = Instant::now() + self.criterion.warm_up;
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_micros(200) || b.batch >= 1 << 20 {
                if Instant::now() >= warm_deadline {
                    break;
                }
            } else {
                b.batch *= 2;
            }
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        let budget = Instant::now() + self.criterion.measurement;
        for _ in 0..samples {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / b.batch as f64);
            if Instant::now() >= budget {
                break;
            }
        }
        per_iter.sort_by(|x, y| x.total_cmp(y));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];

        let mut line = format!(
            "{:<40} median {:>12}  (min {})",
            id,
            fmt_time(median),
            fmt_time(min)
        );
        let mut elems_per_sec = None;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median;
                elems_per_sec = Some(rate);
                line.push_str(&format!("  {:>12} elem/s", fmt_rate(rate)));
            }
            Some(Throughput::Bytes(n)) => {
                line.push_str(&format!("  {:>12}B/s", fmt_rate(n as f64 / median)));
            }
            None => {}
        }
        println!("{line}");
        save_json_line(&self.name, &id, median, elems_per_sec);
        self
    }

    /// End the group (purely cosmetic in the shim).
    pub fn finish(&mut self) {}
}

fn save_json_line(group: &str, id: &str, median_s: f64, elems_per_sec: Option<f64>) {
    let Ok(path) = std::env::var("CRITERION_SAVE_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut line = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1}",
        group.escape_default(),
        id.escape_default(),
        median_s * 1e9
    );
    if let Some(r) = elems_per_sec {
        line.push_str(&format!(",\"elems_per_sec\":{r:.1}"));
    }
    line.push('}');
    if let Ok(mut fh) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(fh, "{line}");
    }
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} k", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Per-benchmark timing handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `batch` iterations of `f` (the batch size is chosen by the
    /// harness during warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Mirror of `criterion_group!` — both the plain and the
/// `name = ..; config = ..; targets = ..` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn formatting_is_sane() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-5).contains("µs"));
        assert!(fmt_time(5e-2).contains("ms"));
        assert!(fmt_rate(2e9).contains('G'));
    }
}
