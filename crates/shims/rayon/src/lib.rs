//! Minimal, std-only stand-in for the subset of the `rayon` API this
//! workspace uses: `ThreadPoolBuilder` → `ThreadPool::install`, and
//! `into_par_iter().for_each(..)` over ranges and vectors.
//!
//! The build environment has no access to crates.io, so this local path
//! dependency keeps the tiling substrate genuinely parallel (scoped OS
//! threads pulling work items off a shared queue) without the real crate.
//! Semantics relied upon by the workspace and preserved here:
//!
//! * `pool.install(f)` runs `f` with the pool's thread count governing any
//!   `for_each` issued inside it;
//! * `for_each` returns only after every item has been processed (a stage
//!   barrier);
//! * with one thread, items run on the calling thread in order, so serial
//!   and parallel runs of disjoint-tile stages are bitwise identical.

use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (construction here
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = number of available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads: n })
    }
}

/// A "pool" carrying a worker count; workers are spawned per `for_each`
/// as scoped threads (coarse-grained tile work amortizes the spawn cost).
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Number of worker threads `for_each` will use inside `install`.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with this pool's thread count governing parallel iterators
    /// invoked inside it. The previous count is restored even if `f`
    /// panics (drop guard), so a caught panic cannot leak this pool's
    /// configuration into later `for_each` calls.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.threads);
            Restore(prev)
        });
        f()
    }
}

fn installed_threads() -> usize {
    let n = CURRENT_THREADS.with(|c| c.get());
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Mirror of `rayon::iter::ParallelIterator` (the one method used here).
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consume the iterator, applying `f` to every item; returns when all
    /// items are done.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync;
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the resulting parallel iterator.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an exact-size list of items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        let nitems = self.items.len();
        let workers = installed_threads().min(nitems).max(1);
        if workers <= 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        // Index-free work queue: each worker repeatedly locks the shared
        // iterator for the next item. Tiles are coarse, so contention is
        // negligible; order within a stage is irrelevant (disjoint writes).
        let queue = Mutex::new(self.items.into_iter());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Bind before matching so the guard drops before f runs.
                    let item = queue.lock().unwrap().next();
                    let Some(x) = item else { break };
                    f(x);
                });
            }
        });
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Mirror of `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..1000usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn writes_to_disjoint_slots_all_land() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let n = 257usize;
        let slots: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            (0..n).into_par_iter().for_each(|i| {
                slots[i].store(i + 1, Ordering::Relaxed);
            });
        });
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), i + 1);
        }
    }

    #[test]
    fn single_thread_runs_in_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let order = Mutex::new(Vec::new());
        pool.install(|| {
            vec![3usize, 1, 4, 1, 5].into_par_iter().for_each(|x| {
                order.lock().unwrap().push(x);
            });
        });
        assert_eq!(*order.lock().unwrap(), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(installed_threads(), 3));
    }
}
