//! Minimal, std-only stand-in for the subset of the `rayon` API this
//! workspace uses: `ThreadPoolBuilder` → `ThreadPool::install`, and
//! `into_par_iter().for_each(..)` over ranges and vectors.
//!
//! The build environment has no access to crates.io, so this local path
//! dependency keeps the tiling substrate genuinely parallel without the
//! real crate. Unlike the earlier shim (scoped threads spawned per
//! `for_each`, one mutex-guarded queue), this is a **persistent
//! work-stealing pool**:
//!
//! * `ThreadPoolBuilder::build` spawns `n − 1` long-lived workers once;
//!   the thread submitting a `for_each` acts as the n-th worker, so a
//!   pool held by a `Plan`/`Session` pays spawn cost exactly once and a
//!   steady-state stage dispatch is a condvar wake, not `n` `clone(2)`s;
//! * each `for_each` splits its items into one contiguous chunk per
//!   worker; a worker drains its own chunk through an atomic cursor and
//!   then **steals** from the other chunks (round-robin scan), so uneven
//!   tile costs still load-balance;
//! * `for_each` returns only after every worker has finished the job (a
//!   stage barrier — the mutex/condvar handshake publishes all worker
//!   writes to the submitter);
//! * with one thread, items run on the calling thread in order, so serial
//!   and parallel runs of disjoint-tile stages are bitwise identical;
//! * a panic inside the closure is caught on the worker, the barrier
//!   still completes (no deadlock, no worker death), and the panic is
//!   re-raised on the submitting thread;
//! * submissions from different threads are serialized (one job in
//!   flight per pool), and a `for_each` issued from *inside* a pool task
//!   runs inline on that thread — re-entering the pool would deadlock
//!   its own barrier.

use std::cell::{Cell, UnsafeCell};
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Pool installed on this thread (set by [`ThreadPool::install`]).
    static CURRENT_POOL: Cell<Option<*const Inner>> = const { Cell::new(None) };
    /// True while this thread is executing a pool job (worker or
    /// submitter). A nested `for_each` issued from inside a task must run
    /// inline — re-submitting to the pool the task is running on would
    /// deadlock the barrier.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with [`IN_POOL_JOB`] set, restoring it even on unwind.
fn enter_job<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_POOL_JOB.with(|c| c.set(self.0));
        }
    }
    let _restore = IN_POOL_JOB.with(|c| {
        let prev = c.get();
        c.set(true);
        Restore(prev)
    });
    f()
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (construction here
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = number of available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finish the builder, spawning the background workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool::spawn(n))
    }
}

// ---------------------------------------------------------------------------
// Job plumbing
// ---------------------------------------------------------------------------

/// Type-erased pointer to the stack-held job closure. The submitter keeps
/// the closure (and everything it borrows) alive until the barrier
/// completes, which is what makes handing workers a raw pointer sound.
#[derive(Copy, Clone)]
struct JobRef(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is Sync and outlives every worker's use of it (the
// submitter blocks on the barrier before the closure leaves scope).
unsafe impl Send for JobRef {}

struct JobSlot {
    /// Bumped per submission; workers run each epoch's job exactly once.
    epoch: u64,
    job: Option<JobRef>,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Inner {
    /// Total parallelism, including the submitting thread.
    nthreads: usize,
    /// Serializes submissions: held for a job's whole lifetime, so two
    /// threads sharing one pool cannot interleave their barrier state.
    submit: Mutex<()>,
    slot: Mutex<JobSlot>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// The submitter waits here for `active == 0`.
    done_cv: Condvar,
}

impl Inner {
    /// Run `work(wid)` on every pool member (workers get 1..n, the caller
    /// is 0) and return after all of them have finished. Submissions from
    /// different threads are serialized by `submit`; re-entrant
    /// submissions from inside a task never reach here (see
    /// [`IN_POOL_JOB`]).
    fn run_job(&self, work: &(dyn Fn(usize) + Sync)) {
        let _submission = self.submit.lock().unwrap();
        let nworkers = self.nthreads - 1;
        // SAFETY: erase the borrow's lifetime; the barrier below keeps
        // `work` alive past the last worker dereference.
        let job = JobRef(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                work as *const _,
            )
        });
        {
            let mut s = self.slot.lock().unwrap();
            debug_assert!(s.job.is_none(), "concurrent for_each on one pool");
            s.job = Some(job);
            s.epoch += 1;
            s.active = nworkers;
            self.work_cv.notify_all();
        }
        enter_job(|| work(0));
        let mut s = self.slot.lock().unwrap();
        while s.active > 0 {
            s = self.done_cv.wait(s).unwrap();
        }
        s.job = None;
    }

    fn worker_loop(&self, wid: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut s = self.slot.lock().unwrap();
                loop {
                    if s.shutdown {
                        return;
                    }
                    if s.epoch != seen {
                        if let Some(job) = s.job {
                            seen = s.epoch;
                            break job;
                        }
                    }
                    s = self.work_cv.wait(s).unwrap();
                }
            };
            // SAFETY: the submitter keeps the closure alive until `active`
            // drops to 0, which we only signal after the call returns.
            enter_job(|| unsafe { (*job.0)(wid) });
            let mut s = self.slot.lock().unwrap();
            s.active -= 1;
            if s.active == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// Persistent worker pool; see the module docs for the execution model.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    fn spawn(n: usize) -> ThreadPool {
        let n = n.max(1);
        let inner = Arc::new(Inner {
            nthreads: n,
            submit: Mutex::new(()),
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..n)
            .map(|wid| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("stencil-pool-{wid}"))
                    .spawn(move || inner.worker_loop(wid))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { inner, workers }
    }

    /// Number of threads `for_each` calls issued inside `install` use
    /// (background workers plus the submitting thread).
    pub fn current_num_threads(&self) -> usize {
        self.inner.nthreads
    }

    /// Run `f` with this pool receiving any parallel iterators invoked
    /// inside it. The previous installation is restored even if `f`
    /// panics (drop guard), so a caught panic cannot leak this pool into
    /// later `for_each` calls.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<*const Inner>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL.with(|c| c.set(self.0));
            }
        }
        let _restore = CURRENT_POOL.with(|c| {
            let prev = c.get();
            c.set(Some(Arc::as_ptr(&self.inner)));
            Restore(prev)
        });
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut s = self.inner.slot.lock().unwrap();
            s.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Chunked atomic work queue with stealing
// ---------------------------------------------------------------------------

struct Chunk {
    /// Next unclaimed index; claiming is a `fetch_add` race, so the value
    /// may overshoot `end` (harmless — reads clamp).
    pos: AtomicUsize,
    end: usize,
}

/// Items split into one contiguous chunk per worker. `pop(wid)` drains
/// the worker's own chunk first, then steals from the others.
struct ItemQueue<T> {
    items: Vec<UnsafeCell<ManuallyDrop<T>>>,
    chunks: Vec<Chunk>,
}

// SAFETY: every slot is claimed by exactly one thread (unique index from
// `fetch_add`), and the slots are fully written before the queue is shared.
unsafe impl<T: Send> Sync for ItemQueue<T> {}

impl<T> ItemQueue<T> {
    fn new(items: Vec<T>, nchunks: usize) -> Self {
        let n = items.len();
        let nchunks = nchunks.max(1).min(n.max(1));
        let items: Vec<_> = items
            .into_iter()
            .map(|x| UnsafeCell::new(ManuallyDrop::new(x)))
            .collect();
        let (base, rem) = (n / nchunks, n % nchunks);
        let mut chunks = Vec::with_capacity(nchunks);
        let mut start = 0;
        for c in 0..nchunks {
            let len = base + usize::from(c < rem);
            chunks.push(Chunk {
                pos: AtomicUsize::new(start),
                end: start + len,
            });
            start += len;
        }
        ItemQueue { items, chunks }
    }

    fn claim(&self, chunk: &Chunk) -> Option<T> {
        // Relaxed suffices: the index is unique per claimant, and the slot
        // write happened-before the queue was published to the workers.
        let i = chunk.pos.fetch_add(1, Ordering::Relaxed);
        if i < chunk.end {
            // SAFETY: index `i` is claimed exactly once (see above).
            Some(ManuallyDrop::into_inner(unsafe {
                std::ptr::read(self.items[i].get())
            }))
        } else {
            None
        }
    }

    fn pop(&self, wid: usize) -> Option<T> {
        let k = self.chunks.len();
        for step in 0..k {
            let chunk = &self.chunks[(wid + step) % k];
            if let Some(x) = self.claim(chunk) {
                return Some(x);
            }
        }
        None
    }
}

impl<T> Drop for ItemQueue<T> {
    fn drop(&mut self) {
        // Unclaimed items (only possible if a closure panicked mid-drain)
        // still need their destructors; claimed slots must not be dropped
        // twice. The barrier ran before drop, so the cursors are quiescent.
        for chunk in &self.chunks {
            let pos = chunk.pos.load(Ordering::Relaxed).min(chunk.end);
            for i in pos..chunk.end {
                unsafe { ManuallyDrop::drop(&mut *self.items[i].get()) };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel iterator facade
// ---------------------------------------------------------------------------

/// Mirror of `rayon::iter::ParallelIterator` (the one method used here).
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consume the iterator, applying `f` to every item; returns when all
    /// items are done.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync;
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type of the resulting parallel iterator.
    type Item: Send;
    /// Concrete parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an exact-size list of items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        let pool = CURRENT_POOL.with(|c| c.get());
        let nested = IN_POOL_JOB.with(|c| c.get());
        let inner = match pool {
            // SAFETY: install's drop guard clears the slot before the pool
            // can be dropped, so a present pointer is live.
            Some(p) if !nested && unsafe { (*p).nthreads } > 1 && self.items.len() > 1 => unsafe {
                &*p
            },
            _ => {
                // No pool installed, nested inside a pool task, or
                // nothing to parallelize: run on the calling thread, in
                // order.
                for item in self.items {
                    f(item);
                }
                return;
            }
        };
        let queue = ItemQueue::new(self.items, inner.nthreads);
        let panicked = AtomicBool::new(false);
        let work = |wid: usize| {
            let res = catch_unwind(AssertUnwindSafe(|| {
                while let Some(item) = queue.pop(wid) {
                    f(item);
                }
            }));
            if res.is_err() {
                panicked.store(true, Ordering::SeqCst);
            }
        };
        inner.run_job(&work);
        if panicked.load(Ordering::SeqCst) {
            panic!("a parallel task panicked inside ThreadPool::for_each");
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Mirror of `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn for_each_visits_every_item_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..1000usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn writes_to_disjoint_slots_all_land() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let n = 257usize;
        let slots: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            (0..n).into_par_iter().for_each(|i| {
                slots[i].store(i + 1, Ordering::Relaxed);
            });
        });
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), i + 1);
        }
    }

    #[test]
    fn single_thread_runs_in_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let order = Mutex::new(Vec::new());
        pool.install(|| {
            vec![3usize, 1, 4, 1, 5].into_par_iter().for_each(|x| {
                order.lock().unwrap().push(x);
            });
        });
        assert_eq!(*order.lock().unwrap(), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn install_scopes_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert!(CURRENT_POOL.with(|c| c.get()).is_some());
        });
        assert!(CURRENT_POOL.with(|c| c.get()).is_none());
    }

    #[test]
    fn pool_is_reused_across_many_dispatches() {
        // The same persistent workers must serve every for_each; a counter
        // incremented from worker threads over many rounds exercises the
        // epoch handshake (a stuck epoch would deadlock this test).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        for round in 0..200usize {
            pool.install(|| {
                (0..round % 7 + 2).into_par_iter().for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        let expected: usize = (0..200usize).map(|r| r % 7 + 2).sum();
        assert_eq!(hits.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn stealing_drains_unbalanced_chunks() {
        // One early item sleeps; the rest must migrate to other workers
        // and the barrier must still complete with every item processed.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_in_task_propagates_without_deadlock() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..32usize).into_par_iter().for_each(|i| {
                    if i == 7 {
                        panic!("boom");
                    }
                });
            });
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..16usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_for_each_runs_inline_without_deadlock() {
        // A task that itself fans out must not re-enter the pool barrier.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            (0..8usize).into_par_iter().for_each(|_| {
                (0..5usize).into_par_iter().for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn concurrent_submitters_are_serialized() {
        // Two OS threads sharing one pool: submissions must not corrupt
        // the barrier state (release-mode regression guard).
        let pool = std::sync::Arc::new(ThreadPoolBuilder::new().num_threads(3).build().unwrap());
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let pool = std::sync::Arc::clone(&pool);
            let hits = std::sync::Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    pool.install(|| {
                        (0..10usize).into_par_iter().for_each(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 2 * 50 * 10);
    }

    #[test]
    fn for_each_without_install_runs_inline() {
        let order = Mutex::new(Vec::new());
        vec![9usize, 8, 7].into_par_iter().for_each(|x| {
            order.lock().unwrap().push(x);
        });
        assert_eq!(*order.lock().unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn queue_drop_releases_unclaimed_items() {
        // Construct a queue, claim only part of it, and drop: remaining
        // Arc items must be released (strong count back to 1).
        let tracker = Arc::new(());
        {
            let items: Vec<Arc<()>> = (0..10).map(|_| Arc::clone(&tracker)).collect();
            let q = ItemQueue::new(items, 3);
            let _a = q.pop(0);
            let _b = q.pop(1);
            assert_eq!(Arc::strong_count(&tracker), 11);
            drop(q);
            // _a/_b still alive here
            assert_eq!(Arc::strong_count(&tracker), 3);
        }
        assert_eq!(Arc::strong_count(&tracker), 1);
    }
}
