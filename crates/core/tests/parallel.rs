//! Parallelism-knob coverage: domain-decomposed runs must be bit-exact
//! against the scalar oracle for every Method × stencil family at several
//! thread counts (including counts that do not divide the grid), identical
//! run-to-run, and identical to sequential execution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::exec::{Parallelism, Plan, PlanError, Shape, Tiling};
use stencil_core::verify::{max_abs_diff1, max_abs_diff2, max_abs_diff3};
use stencil_core::{Grid1, Grid2, Grid3, Method, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p};
use stencil_simd::Isa;

/// Thread counts exercised everywhere: sequential, even, and a prime that
/// does not divide any of the grid extents below (uneven bands).
const THREADS: [usize; 3] = [1, 2, 7];

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid1::from_fn(n, halo, |_| r.random_range(-1.0..1.0))
}

fn grid2(nx: usize, ny: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid2::from_fn(nx, ny, 1, halo, |_, _| r.random_range(-1.0..1.0))
}

fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid3::from_fn(nx, ny, nz, 1, halo, |_, _, _| r.random_range(-1.0..1.0))
}

// ---------------------------------------------------------------------------
// Oracle bit-exactness, every method × stencil × thread count
// ---------------------------------------------------------------------------

#[test]
fn parallel_1d_every_method_matches_scalar_oracle() {
    let isa = Isa::detect_best();
    // 257 and 601 are prime-ish and never divisible by 2 or 7 bands.
    for n in [257usize, 601] {
        for t in [1usize, 2, 5] {
            let init = grid1(n, 13 + n as u64);

            let s3 = S1d3p {
                w: [0.3, 0.45, 0.2],
            };
            let mut oracle = init.clone();
            Plan::new(Shape::d1(n))
                .method(Method::Scalar)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .star1(s3)
                .unwrap()
                .run(&mut oracle, t);
            for m in Method::ALL {
                for k in THREADS {
                    let mut g = init.clone();
                    Plan::new(Shape::d1(n))
                        .method(m)
                        .isa(isa)
                        .parallelism(Parallelism::Threads(k))
                        .star1(s3)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff1(&g, &oracle),
                        0.0,
                        "1d3p/{m}/threads={k}/n={n}/t={t}"
                    );
                }
            }

            let s5 = S1d5p {
                w: [-0.04, 0.22, 0.5, 0.28, -0.02],
            };
            let mut oracle = init.clone();
            Plan::new(Shape::d1(n))
                .method(Method::Scalar)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .star1(s5)
                .unwrap()
                .run(&mut oracle, t);
            for m in Method::ALL {
                for k in THREADS {
                    let mut g = init.clone();
                    Plan::new(Shape::d1(n))
                        .method(m)
                        .isa(isa)
                        .parallelism(Parallelism::Threads(k))
                        .star1(s5)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff1(&g, &oracle),
                        0.0,
                        "1d5p/{m}/threads={k}/n={n}/t={t}"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_2d_every_method_matches_scalar_oracle() {
    let isa = Isa::detect_best();
    // ny = 13: 7 bands of uneven height; ny = 5 < 7 threads (band clamp).
    for (nx, ny) in [(130usize, 13usize), (97, 5)] {
        for t in [1usize, 3] {
            let init = grid2(nx, ny, 21);

            let s = S2d5p {
                wx: [0.2, 0.31, 0.18],
                wy: [0.11, 0.0, 0.14],
            };
            let mut oracle = init.clone();
            Plan::new(Shape::d2(nx, ny))
                .method(Method::Scalar)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .star2(s)
                .unwrap()
                .run(&mut oracle, t);
            for m in Method::ALL {
                for k in THREADS {
                    let mut g = init.clone();
                    Plan::new(Shape::d2(nx, ny))
                        .method(m)
                        .isa(isa)
                        .parallelism(Parallelism::Threads(k))
                        .star2(s)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff2(&g, &oracle),
                        0.0,
                        "2d5p/{m}/threads={k}/ny={ny}/t={t}"
                    );
                }
            }

            let s = S2d9p {
                w: [0.1, 0.12, 0.09, 0.13, 0.07, 0.11, 0.1, 0.08, 0.1],
            };
            let mut oracle = init.clone();
            Plan::new(Shape::d2(nx, ny))
                .method(Method::Scalar)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .box2(s)
                .unwrap()
                .run(&mut oracle, t);
            for m in Method::ALL {
                for k in THREADS {
                    let mut g = init.clone();
                    Plan::new(Shape::d2(nx, ny))
                        .method(m)
                        .isa(isa)
                        .parallelism(Parallelism::Threads(k))
                        .box2(s)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff2(&g, &oracle),
                        0.0,
                        "2d9p/{m}/threads={k}/ny={ny}/t={t}"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_3d_every_method_matches_scalar_oracle() {
    let isa = Isa::detect_best();
    // nz = 5 and 3: fewer planes than the 7-thread band request.
    for (nx, ny, nz) in [(70usize, 6usize, 5usize), (66, 4, 3)] {
        for t in [1usize, 2] {
            let init = grid3(nx, ny, nz, 31);

            let s = S3d7p {
                wx: [0.1, 0.3, 0.12],
                wy: [0.09, 0.0, 0.11],
                wz: [0.08, 0.0, 0.07],
            };
            let mut oracle = init.clone();
            Plan::new(Shape::d3(nx, ny, nz))
                .method(Method::Scalar)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .star3(s)
                .unwrap()
                .run(&mut oracle, t);
            for m in Method::ALL {
                for k in THREADS {
                    let mut g = init.clone();
                    Plan::new(Shape::d3(nx, ny, nz))
                        .method(m)
                        .isa(isa)
                        .parallelism(Parallelism::Threads(k))
                        .star3(s)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff3(&g, &oracle),
                        0.0,
                        "3d7p/{m}/threads={k}/nz={nz}/t={t}"
                    );
                }
            }

            let mut w = [0.0f64; 27];
            let mut r = StdRng::seed_from_u64(33);
            for x in w.iter_mut() {
                *x = r.random_range(0.0..0.037);
            }
            let s = S3d27p { w };
            let mut oracle = init.clone();
            Plan::new(Shape::d3(nx, ny, nz))
                .method(Method::Scalar)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .box3(s)
                .unwrap()
                .run(&mut oracle, t);
            for m in Method::ALL {
                for k in THREADS {
                    let mut g = init.clone();
                    Plan::new(Shape::d3(nx, ny, nz))
                        .method(m)
                        .isa(isa)
                        .parallelism(Parallelism::Threads(k))
                        .box3(s)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff3(&g, &oracle),
                        0.0,
                        "3d27p/{m}/threads={k}/nz={nz}/t={t}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism and sequential equivalence
// ---------------------------------------------------------------------------

#[test]
fn two_identical_parallel_runs_produce_identical_bits() {
    let isa = Isa::detect_best();
    for m in Method::ALL {
        let n = 1001usize;
        let init = grid1(n, 99);
        let s = S1d3p {
            w: [0.28, 0.5, 0.21],
        };
        let run = || {
            let mut g = init.clone();
            Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .parallelism(Parallelism::Threads(7))
                .star1(s)
                .unwrap()
                .run(&mut g, 9);
            g
        };
        let (a, b) = (run(), run());
        assert_eq!(
            max_abs_diff1(&a, &b),
            0.0,
            "{m}: parallel run not deterministic"
        );
    }

    let (nx, ny) = (150usize, 41usize);
    let init = grid2(nx, ny, 17);
    let s = S2d5p::heat();
    let run = || {
        let mut g = init.clone();
        Plan::new(Shape::d2(nx, ny))
            .method(Method::TransLayout2)
            .isa(isa)
            .parallelism(Parallelism::Threads(7))
            .star2(s)
            .unwrap()
            .run(&mut g, 6);
        g
    };
    let (a, b) = (run(), run());
    assert_eq!(
        max_abs_diff2(&a, &b),
        0.0,
        "2d parallel run not deterministic"
    );
}

#[test]
fn off_equals_threads_one_equals_threads_many() {
    let isa = Isa::detect_best();
    let n = 517usize;
    let init = grid1(n, 5);
    let s = S1d3p::heat();
    for m in Method::ALL {
        let mut results = Vec::new();
        for par in [
            Parallelism::Off,
            Parallelism::Threads(1),
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            let mut g = init.clone();
            Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .parallelism(par)
                .star1(s)
                .unwrap()
                .run(&mut g, 7);
            results.push(g);
        }
        for g in &results[1..] {
            assert_eq!(
                max_abs_diff1(g, &results[0]),
                0.0,
                "{m}: parallelism changed the result"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions and reuse under parallelism
// ---------------------------------------------------------------------------

#[test]
fn parallel_session_runs_compose_exactly() {
    let isa = Isa::detect_best();
    for m in Method::ALL {
        let (n, t) = (513usize, 3usize);
        let init = grid1(n, 101);
        let s = S1d3p {
            w: [0.33, 0.34, 0.32],
        };

        let mut plan = Plan::new(Shape::d1(n))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Threads(3))
            .star1(s)
            .unwrap();
        let mut resident = init.clone();
        {
            let mut sess = plan.session(&mut resident);
            sess.run(t);
            sess.run(t);
        }

        let mut once = init.clone();
        Plan::new(Shape::d1(n))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star1(s)
            .unwrap()
            .run(&mut once, 2 * t);

        assert_eq!(
            max_abs_diff1(&resident, &once),
            0.0,
            "{m}: parallel session composition changed the result"
        );
    }
}

#[test]
fn pool_is_reused_across_plan_runs() {
    // Repeated runs on one plan must keep working (the persistent pool is
    // built once at plan compile time and survives across dispatches).
    let isa = Isa::detect_best();
    let (nx, ny) = (96usize, 24usize);
    let init = grid2(nx, ny, 3);
    let s = S2d5p::heat();
    let mut plan = Plan::new(Shape::d2(nx, ny))
        .method(Method::TransLayout)
        .isa(isa)
        .parallelism(Parallelism::Threads(4))
        .star2(s)
        .unwrap();
    let mut twice = init.clone();
    plan.run(&mut twice, 2);
    plan.run(&mut twice, 2);
    let mut once = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::TransLayout)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .star2(s)
        .unwrap()
        .run(&mut once, 4);
    assert_eq!(max_abs_diff2(&twice, &once), 0.0);
}

// ---------------------------------------------------------------------------
// Knob interaction with tiling
// ---------------------------------------------------------------------------

#[test]
fn parallelism_overrides_tiled_thread_count() {
    let isa = Isa::detect_best();
    let (n, t) = (1000usize, 13usize);
    let s = S1d3p {
        w: [0.21, 0.55, 0.2],
    };
    let init = grid1(n, 4);
    let mut oracle = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::Scalar)
        .isa(isa)
        .star1(s)
        .unwrap()
        .run(&mut oracle, t);

    for par in [Parallelism::Off, Parallelism::Threads(2), Parallelism::Auto] {
        let mut plan = Plan::new(Shape::d1(n))
            .method(Method::TransLayout2)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [128, 0, 0],
                h: 16,
                threads: 4,
            })
            .parallelism(par)
            .star1(s)
            .unwrap();
        let expected = match par {
            Parallelism::Off => 1,
            Parallelism::Threads(k) => k,
            Parallelism::Auto => 4, // defers to the tiling's field
        };
        assert_eq!(plan.threads(), expected, "{par:?}");
        let mut g = init.clone();
        plan.run(&mut g, t);
        assert_eq!(max_abs_diff1(&g, &oracle), 0.0, "{par:?}");
    }
}

// ---------------------------------------------------------------------------
// Build-time validation
// ---------------------------------------------------------------------------

#[test]
fn builder_rejects_zero_threads() {
    let err = Plan::new(Shape::d1(128))
        .parallelism(Parallelism::Threads(0))
        .star1(S1d3p::heat())
        .unwrap_err();
    assert!(matches!(err, PlanError::BadParallelism(_)), "{err}");
}

#[test]
fn builder_rejects_absurd_thread_counts() {
    let err = Plan::new(Shape::d1(128))
        .parallelism(Parallelism::Threads(1_000_000))
        .star1(S1d3p::heat())
        .unwrap_err();
    assert!(matches!(err, PlanError::BadParallelism(_)), "{err}");
}

#[test]
fn parallel_session_drop_restores_natural_layout() {
    let isa = Isa::detect_best();
    for m in Method::ALL {
        let n = 300usize;
        let init = grid1(n, 55);
        let mut plan = Plan::new(Shape::d1(n))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Threads(5))
            .star1(S1d3p::heat())
            .unwrap();
        let mut g = init.clone();
        drop(plan.session(&mut g));
        assert_eq!(
            max_abs_diff1(&g, &init),
            0.0,
            "{m}: empty parallel session not identity"
        );
    }
}
