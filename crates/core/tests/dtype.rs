//! Single-precision oracle suite.
//!
//! The element-generic engine promises that `@f32` plans are verified
//! the same way the f64 engine is: a naive scalar reference computes
//! every step **natively in f32** — per-axis boundary folds into a flat
//! vector, weights rounded from their `f64` spec values exactly once
//! per use (the same single rounding point `Elem::from_f64` /
//! `Vector::splat_f64` give the engine), `mul_add` accumulation in the
//! family's canonical order — and every `Method × stencil × boundary ×
//! threads` combination must match it to 0 ULP. Widening f32 to f64 is
//! lossless, so the comparisons go through the same
//! [`max_abs_diff_ref`] used by the f64 suites with an exact-zero
//! assertion: any deviation is a bug, not rounding.
//!
//! Plus the cross-precision contracts: f32 results track their f64
//! siblings within single-precision rounding (bounded relative drift,
//! NOT bit equality), and the typed `star1_elem::<f32>` terminal is
//! bit-identical to the erased `@f32` spec path.

use stencil_core::exec::{Boundary, Parallelism, Plan, Shape};
use stencil_core::grid::AnyGrid;
use stencil_core::spec::{StencilShape, StencilSpec};
use stencil_core::verify::max_abs_diff_ref;
use stencil_core::{Grid1, Method, S1d3p};
use stencil_simd::{Dtype, Isa};

// ---------------------------------------------------------------------------
// The naive f32 reference
// ---------------------------------------------------------------------------

/// Fold one axis index into `[0, n)` per the boundary, or `None` for a
/// Dirichlet read outside the interior (same folds as tests/boundary.rs).
fn fold(i: isize, n: usize, b: Boundary) -> Option<usize> {
    let n_i = n as isize;
    if (0..n_i).contains(&i) {
        return Some(i as usize);
    }
    match b {
        Boundary::Dirichlet(_) => None,
        Boundary::Periodic => Some((i.rem_euclid(n_i)) as usize),
        Boundary::Reflect => Some(if i < 0 {
            (-i - 1) as usize
        } else {
            (2 * n_i - 1 - i) as usize
        }),
    }
}

/// Flat-vector f32 state with direct boundary folding. Arithmetic is
/// native `f32`: each `f64` spec weight is rounded at the point of use
/// (`w as f32` ≡ `Elem::from_f64`), accumulation is `f32::mul_add` in
/// the canonical kernel order, so the engine's f32 kernels must agree
/// bit for bit.
struct NaiveF32 {
    spec: StencilSpec,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl NaiveF32 {
    fn new(spec: &StencilSpec, shape: Shape) -> NaiveF32 {
        let [nx, ny, nz] = shape.dims();
        NaiveF32 {
            spec: spec.clone(),
            nx,
            ny: ny.max(1),
            nz: nz.max(1),
        }
    }

    fn at(&self, src: &[f32], z: isize, y: isize, x: isize) -> f32 {
        let b = self.spec.boundary();
        match (
            fold(x, self.nx, b),
            fold(y, self.ny, b),
            fold(z, self.nz, b),
        ) {
            (Some(x), Some(y), Some(z)) => src[(z * self.ny + y) * self.nx + x],
            _ => b.halo_fill() as f32,
        }
    }

    // Index loops mirror the canonical kernel order — same stance as the
    // crate-level allow in stencil-core.
    #[allow(clippy::needless_range_loop)]
    fn step(&self, src: &[f32]) -> Vec<f32> {
        let r = self.spec.radius() as isize;
        let mut dst = vec![0.0f32; src.len()];
        for z in 0..self.nz as isize {
            for y in 0..self.ny as isize {
                for x in 0..self.nx as isize {
                    let acc = match (self.spec.shape(), self.spec.ndim()) {
                        (StencilShape::Star, nd) => {
                            let wx = self.spec.axis_weights(0).unwrap();
                            let mut acc = (wx[0] as f32) * self.at(src, z, y, x - r);
                            for o in 1..wx.len() {
                                acc = self
                                    .at(src, z, y, x - r + o as isize)
                                    .mul_add(wx[o] as f32, acc);
                            }
                            if nd >= 2 {
                                let wy = self.spec.axis_weights(1).unwrap();
                                for d in 1..=r {
                                    let du = d as usize;
                                    acc = self
                                        .at(src, z, y - d, x)
                                        .mul_add(wy[r as usize - du] as f32, acc);
                                    acc = self
                                        .at(src, z, y + d, x)
                                        .mul_add(wy[r as usize + du] as f32, acc);
                                }
                            }
                            if nd == 3 {
                                let wz = self.spec.axis_weights(2).unwrap();
                                for d in 1..=r {
                                    let du = d as usize;
                                    acc = self
                                        .at(src, z - d, y, x)
                                        .mul_add(wz[r as usize - du] as f32, acc);
                                    acc = self
                                        .at(src, z + d, y, x)
                                        .mul_add(wz[r as usize + du] as f32, acc);
                                }
                            }
                            acc
                        }
                        (StencilShape::Box, 2) => {
                            let w = self.spec.box_weights().unwrap();
                            let mut acc = (w[0] as f32) * self.at(src, z, y - r, x - r);
                            let mut k = 1;
                            for dy in -r..=r {
                                let dx0 = if dy == -r { -r + 1 } else { -r };
                                for dx in dx0..=r {
                                    acc = self.at(src, z, y + dy, x + dx).mul_add(w[k] as f32, acc);
                                    k += 1;
                                }
                            }
                            acc
                        }
                        (StencilShape::Box, _) => {
                            let w = self.spec.box_weights().unwrap();
                            let mut acc = (w[0] as f32) * self.at(src, z - r, y - r, x - r);
                            let mut k = 1;
                            let mut first = true;
                            for dz in -r..=r {
                                for dy in -r..=r {
                                    for dx in -r..=r {
                                        if first {
                                            first = false;
                                            continue;
                                        }
                                        acc = self
                                            .at(src, z + dz, y + dy, x + dx)
                                            .mul_add(w[k] as f32, acc);
                                        k += 1;
                                    }
                                }
                            }
                            acc
                        }
                    };
                    dst[((z * self.ny as isize + y) * self.nx as isize + x) as usize] = acc;
                }
            }
        }
        dst
    }

    fn run(&self, mut state: Vec<f32>, t: usize) -> Vec<f32> {
        for _ in 0..t {
            state = self.step(&state);
        }
        state
    }
}

/// Deterministic pseudo-random f32 interior (seeded-`StdRng` idiom of
/// the sibling suites, drawn natively in f32).
fn seeded_f32(shape: Shape, seed: u64) -> Vec<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let [nx, ny, nz] = shape.dims();
    let cells = nx * ny.max(1) * nz.max(1);
    let mut r = StdRng::seed_from_u64(seed);
    (0..cells)
        .map(|_| r.random_range(0.0..1.0) as f32)
        .collect()
}

fn shape_for(spec: &StencilSpec) -> Shape {
    // x extents cover whole vector sets plus a tail for every ISA —
    // f32 doubles the lane width, so the 1D extent covers 16-lane
    // AVX-512 sets (block size 256) plus a ragged tail, and still
    // splits unevenly over 7 threads.
    match spec.ndim() {
        1 => Shape::d1(273),
        2 => Shape::d2(81, 13),
        _ => Shape::d3(72, 10, 7),
    }
}

/// The full engine matrix against the naive f32 reference, exact
/// equality (widening f32→f64 on both sides is lossless).
fn check_matrix_f32(base: &StencilSpec, boundaries: &[Boundary], methods: &[Method], isa: Isa) {
    let t = 5; // odd: covers the final parity swap
    for &b in boundaries {
        let spec = base.clone().with_boundary(b).with_dtype(Dtype::F32);
        let shape = shape_for(&spec);
        let init = seeded_f32(shape, 0xF32F32 ^ spec.points() as u64);
        let naive = NaiveF32::new(&spec, shape);
        let want: Vec<f64> = naive
            .run(init.clone(), t)
            .into_iter()
            .map(f64::from)
            .collect();
        for &method in methods {
            for par in [
                Parallelism::Off,
                Parallelism::Threads(2),
                Parallelism::Threads(7),
            ] {
                let mut plan = Plan::new(shape)
                    .method(method)
                    .isa(isa)
                    .parallelism(par)
                    .stencil(&spec)
                    .unwrap_or_else(|e| panic!("{spec} {method} {par:?}: {e}"));
                let mut g = AnyGrid::from_vec_spec_f32(shape, &spec, init.clone()).unwrap();
                plan.run(&mut g, t);
                assert_eq!(
                    max_abs_diff_ref(&g, &want),
                    0.0,
                    "{spec} {method} {isa} {par:?}"
                );
            }
        }
    }
}

const ALL_BOUNDARIES: [Boundary; 3] = [
    Boundary::Dirichlet(0.25),
    Boundary::Periodic,
    Boundary::Reflect,
];

#[test]
fn oracle_1d_f32_paper_stencils() {
    let isa = Isa::detect_best();
    for name in ["1d3p", "1d5p"] {
        check_matrix_f32(&name.parse().unwrap(), &ALL_BOUNDARIES, &Method::ALL, isa);
    }
}

#[test]
fn oracle_2d_f32_paper_stencils() {
    let isa = Isa::detect_best();
    for name in ["2d5p", "2d9p"] {
        check_matrix_f32(&name.parse().unwrap(), &ALL_BOUNDARIES, &Method::ALL, isa);
    }
}

#[test]
fn oracle_3d_f32_paper_stencils() {
    let isa = Isa::detect_best();
    for name in ["3d7p", "3d27p"] {
        check_matrix_f32(&name.parse().unwrap(), &ALL_BOUNDARIES, &Method::ALL, isa);
    }
}

#[test]
fn oracle_f32_across_isas() {
    // Every available ISA at its f32 lane width (portable 1, AVX2 8,
    // AVX-512 16) must agree with the naive f32 reference — the layout
    // maps, set geometry, and halo refresh all derive from
    // `lanes_for::<f32>`, so a stale f64 lane count anywhere shows up
    // here as a wrong answer, not a perf bug.
    let methods = [Method::Reorg, Method::Dlt, Method::TransLayout2];
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        check_matrix_f32(
            &"2d5p".parse().unwrap(),
            &[Boundary::Periodic],
            &methods,
            isa,
        );
        check_matrix_f32(
            &"1d5p".parse().unwrap(),
            &[Boundary::Reflect],
            &methods,
            isa,
        );
    }
}

// ---------------------------------------------------------------------------
// Cross-precision contracts
// ---------------------------------------------------------------------------

#[test]
fn f32_tracks_f64_within_single_precision() {
    // The same diffusion, run natively in each precision from a shared
    // initial state (f32 values widen losslessly, so both runs start
    // from identical data). Results must agree to single-precision
    // rounding scaled by step count — close enough that the f32 path is
    // clearly computing the same stencil, loose enough to absorb the
    // legitimate drift. Exact equality is NOT expected here.
    let t = 10;
    for name in ["1d3p", "2d5p", "2d9p", "3d7p"] {
        let spec64: StencilSpec = format!("{name}@periodic").parse().unwrap();
        let spec32 = spec64.clone().with_dtype(Dtype::F32);
        let shape = shape_for(&spec64);
        let init32 = seeded_f32(shape, 0xD81F7 ^ spec64.points() as u64);
        let init64: Vec<f64> = init32.iter().map(|&x| f64::from(x)).collect();

        let mut g64 = AnyGrid::from_vec_spec(shape, &spec64, init64).unwrap();
        Plan::new(shape).stencil(&spec64).unwrap().run(&mut g64, t);
        let mut g32 = AnyGrid::from_vec_spec_f32(shape, &spec32, init32).unwrap();
        Plan::new(shape).stencil(&spec32).unwrap().run(&mut g32, t);

        let want = g64.to_vec();
        let scale = want.iter().fold(1.0f64, |m, x| m.max(x.abs()));
        let drift = max_abs_diff_ref(&g32, &want);
        let bound = scale * (f32::EPSILON as f64) * 8.0 * t as f64;
        assert!(
            drift <= bound,
            "{name}: f32 drifted {drift:e} from f64 (bound {bound:e})"
        );
        // And the drift is genuine rounding, not a frozen grid.
        assert!(drift > 0.0, "{name}: suspiciously exact");
    }
}

#[test]
fn typed_f32_terminal_matches_erased_spec_path() {
    // `star1_elem::<f32>` and the erased `@f32` spec route dispatch into
    // the same monomorphized kernels — bit-identical results, whichever
    // door you walk through.
    let n = 273;
    let t = 6;
    let spec: StencilSpec = "1d3p@f32".parse().unwrap();
    let init = seeded_f32(Shape::d1(n), 42);

    let mut typed = Grid1::<f32>::from_fn(n, 0.0, |i| init[i]);
    let mut plan = Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .star1_elem::<f32, _>(S1d3p::heat())
        .unwrap();
    plan.run(&mut typed, t);

    let mut erased = AnyGrid::from_vec_spec_f32(Shape::d1(n), &spec, init).unwrap();
    let mut eplan = Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .stencil(&spec)
        .unwrap();
    eplan.run(&mut erased, t);

    let want: Vec<f64> = typed.interior().iter().map(|&x| f64::from(x)).collect();
    assert_eq!(max_abs_diff_ref(&erased, &want), 0.0);
}

#[test]
fn dtype_mismatch_is_rejected_loudly() {
    // An f64 grid handed to an f32 plan (or vice versa) must fail at
    // the validated constructors, not silently reinterpret memory.
    let spec32: StencilSpec = "1d3p@f32".parse().unwrap();
    let spec64: StencilSpec = "1d3p".parse().unwrap();
    let shape = Shape::d1(64);
    assert!(AnyGrid::from_vec_spec(shape, &spec32, vec![0.0f64; 64]).is_err());
    assert!(AnyGrid::from_vec_spec_f32(shape, &spec64, vec![0.0f32; 64]).is_err());
}

#[test]
fn short_rows_narrow_the_isa_instead_of_running_scalar() {
    // A TransLayout set spans vl² cells along x. At f32's 16 lanes on
    // a 512-bit ISA that is 256 cells — on a 64-wide grid every cell
    // would land in the scalar tail, so the builder steps down one
    // register class (portable8 → portable4 here, avx512 → avx2 on
    // hardware) where a 64-cell set fits exactly.
    use stencil_core::S3d7p;

    let shape = Shape::d3(64, 64, 64);
    let narrowed = Plan::new(shape)
        .method(Method::TransLayout)
        .isa(Isa::Portable8)
        .star3_elem::<f32, _>(S3d7p::heat())
        .unwrap();
    assert_eq!(narrowed.isa(), Isa::Portable4);

    // f64 at 8 lanes needs exactly 64 cells per set: no narrowing.
    let f64_plan = Plan::new(shape)
        .method(Method::TransLayout)
        .isa(Isa::Portable8)
        .star3_elem::<f64, _>(S3d7p::heat())
        .unwrap();
    assert_eq!(f64_plan.isa(), Isa::Portable8);

    // MultiLoad has per-vector (not per-set) geometry: no narrowing.
    let ml_plan = Plan::new(shape)
        .method(Method::MultiLoad)
        .isa(Isa::Portable8)
        .star3_elem::<f32, _>(S3d7p::heat())
        .unwrap();
    assert_eq!(ml_plan.isa(), Isa::Portable8);

    // Once narrowed past the bottom of the ladder the plan keeps the
    // 256-bit class and lets the tail handle what's left.
    let tiny = Plan::new(Shape::d1(12))
        .method(Method::TransLayout)
        .isa(Isa::Portable8)
        .star1_elem::<f32, _>(S1d3p::heat())
        .unwrap();
    assert_eq!(tiny.isa(), Isa::Portable4);
}
