//! Boundary-condition oracle suite.
//!
//! A naive scalar reference implements each [`Boundary`] **directly** —
//! per-axis index folding into a flat vector, no halo cells, no layout,
//! no engine code — and every `Boundary × Method × stencil × threads`
//! combination of the real engine must match it to 0 ULP: the engine's
//! layout-aware halo refresh must feed the kernels exactly the neighbor
//! values the direct folds produce, and the kernels accumulate in the
//! family's canonical order, so any deviation is a bug, not rounding.
//!
//! Plus the build-time contracts: every boundary composes with every
//! tiling framework (the wavefront drivers refresh halos per tile
//! step), folds reject extents below the radius, sessions stay
//! consistent across reuse (2 × t ≡ 2t), and the legacy `run*` surface
//! pins Dirichlet semantics.

use stencil_core::exec::{Boundary, BoundaryReason, Parallelism, Plan, PlanError, Shape, Tiling};
use stencil_core::grid::AnyGrid;
use stencil_core::spec::{StencilShape, StencilSpec};
use stencil_core::verify::max_abs_diff_ref;
use stencil_core::{run1_star1, run_spec, Grid1, Method, S1d3p};
use stencil_simd::Isa;

// ---------------------------------------------------------------------------
// The naive reference
// ---------------------------------------------------------------------------

/// Fold one axis index into `[0, n)` per the boundary, or `None` for a
/// Dirichlet read outside the interior.
fn fold(i: isize, n: usize, b: Boundary) -> Option<usize> {
    let n_i = n as isize;
    if (0..n_i).contains(&i) {
        return Some(i as usize);
    }
    match b {
        Boundary::Dirichlet(_) => None,
        Boundary::Periodic => Some((i.rem_euclid(n_i)) as usize),
        Boundary::Reflect => Some(if i < 0 {
            (-i - 1) as usize
        } else {
            (2 * n_i - 1 - i) as usize
        }),
    }
}

/// Flat-vector state with direct boundary folding — the reference the
/// engine is measured against.
struct Naive {
    spec: StencilSpec,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl Naive {
    fn new(spec: &StencilSpec, shape: Shape) -> Naive {
        let [nx, ny, nz] = shape.dims();
        Naive {
            spec: spec.clone(),
            nx,
            ny: ny.max(1),
            nz: nz.max(1),
        }
    }

    /// Read cell `(z, y, x)` with per-axis folding; Dirichlet reads
    /// outside the interior yield the boundary constant.
    fn at(&self, src: &[f64], z: isize, y: isize, x: isize) -> f64 {
        let b = self.spec.boundary();
        match (
            fold(x, self.nx, b),
            fold(y, self.ny, b),
            fold(z, self.nz, b),
        ) {
            (Some(x), Some(y), Some(z)) => src[(z * self.ny + y) * self.nx + x],
            _ => b.halo_fill(),
        }
    }

    /// One Jacobi step in the stencil family's canonical accumulation
    /// order (see `kernels::scalar`): x axis ascending, then y pairs,
    /// then z pairs for stars; row-major for boxes. `mul_add`
    /// throughout, so agreement with the engine is exact or not at all.
    // Index loops mirror the canonical kernel order — same stance as the
    // crate-level allow in stencil-core.
    #[allow(clippy::needless_range_loop)]
    fn step(&self, src: &[f64]) -> Vec<f64> {
        let r = self.spec.radius() as isize;
        let mut dst = vec![0.0; src.len()];
        for z in 0..self.nz as isize {
            for y in 0..self.ny as isize {
                for x in 0..self.nx as isize {
                    let acc = match (self.spec.shape(), self.spec.ndim()) {
                        (StencilShape::Star, nd) => {
                            let wx = self.spec.axis_weights(0).unwrap();
                            let mut acc = wx[0] * self.at(src, z, y, x - r);
                            for o in 1..wx.len() {
                                acc = self.at(src, z, y, x - r + o as isize).mul_add(wx[o], acc);
                            }
                            if nd >= 2 {
                                let wy = self.spec.axis_weights(1).unwrap();
                                for d in 1..=r {
                                    let du = d as usize;
                                    acc =
                                        self.at(src, z, y - d, x).mul_add(wy[r as usize - du], acc);
                                    acc =
                                        self.at(src, z, y + d, x).mul_add(wy[r as usize + du], acc);
                                }
                            }
                            if nd == 3 {
                                let wz = self.spec.axis_weights(2).unwrap();
                                for d in 1..=r {
                                    let du = d as usize;
                                    acc =
                                        self.at(src, z - d, y, x).mul_add(wz[r as usize - du], acc);
                                    acc =
                                        self.at(src, z + d, y, x).mul_add(wz[r as usize + du], acc);
                                }
                            }
                            acc
                        }
                        (StencilShape::Box, 2) => {
                            let w = self.spec.box_weights().unwrap();
                            let mut acc = w[0] * self.at(src, z, y - r, x - r);
                            let mut k = 1;
                            for dy in -r..=r {
                                let dx0 = if dy == -r { -r + 1 } else { -r };
                                for dx in dx0..=r {
                                    acc = self.at(src, z, y + dy, x + dx).mul_add(w[k], acc);
                                    k += 1;
                                }
                            }
                            acc
                        }
                        (StencilShape::Box, _) => {
                            let w = self.spec.box_weights().unwrap();
                            let mut acc = w[0] * self.at(src, z - r, y - r, x - r);
                            let mut k = 1;
                            let mut first = true;
                            for dz in -r..=r {
                                for dy in -r..=r {
                                    for dx in -r..=r {
                                        if first {
                                            first = false;
                                            continue;
                                        }
                                        acc =
                                            self.at(src, z + dz, y + dy, x + dx).mul_add(w[k], acc);
                                        k += 1;
                                    }
                                }
                            }
                            acc
                        }
                    };
                    dst[((z * self.ny as isize + y) * self.nx as isize + x) as usize] = acc;
                }
            }
        }
        dst
    }

    fn run(&self, mut state: Vec<f64>, t: usize) -> Vec<f64> {
        for _ in 0..t {
            state = self.step(&state);
        }
        state
    }
}

/// Deterministic pseudo-random interior (same seeded-`StdRng` idiom as
/// the sibling suites).
fn seeded(shape: Shape, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let [nx, ny, nz] = shape.dims();
    let cells = nx * ny.max(1) * nz.max(1);
    let mut r = StdRng::seed_from_u64(seed);
    (0..cells).map(|_| r.random_range(0.0..1.0)).collect()
}

fn shape_for(spec: &StencilSpec) -> Shape {
    // x extents cover whole vector sets plus a tail for every ISA
    // (lanes ≤ 8 → block size ≤ 64), plus non-divisible thread splits.
    match spec.ndim() {
        1 => Shape::d1(137),
        2 => Shape::d2(81, 13),
        _ => Shape::d3(72, 10, 7),
    }
}

/// The full engine matrix against the naive reference, exact equality.
fn check_matrix(base: &StencilSpec, boundaries: &[Boundary], methods: &[Method], isa: Isa) {
    let t = 5; // odd: covers the final parity swap
    for &b in boundaries {
        let spec = base.clone().with_boundary(b);
        let shape = shape_for(&spec);
        let init = seeded(shape, 0xC0FFEE ^ spec.points() as u64);
        let naive = Naive::new(&spec, shape);
        let want = naive.run(init.clone(), t);
        for &method in methods {
            for par in [
                Parallelism::Off,
                Parallelism::Threads(2),
                Parallelism::Threads(7),
            ] {
                let mut plan = Plan::new(shape)
                    .method(method)
                    .isa(isa)
                    .parallelism(par)
                    .stencil(&spec)
                    .unwrap_or_else(|e| panic!("{spec} {method} {par:?}: {e}"));
                let mut g = AnyGrid::from_vec_spec(shape, &spec, init.clone()).unwrap();
                plan.run(&mut g, t);
                assert_eq!(
                    max_abs_diff_ref(&g, &want),
                    0.0,
                    "{spec} {method} {isa} {par:?}"
                );
            }
        }
    }
}

const ALL_BOUNDARIES: [Boundary; 3] = [
    Boundary::Dirichlet(0.25),
    Boundary::Periodic,
    Boundary::Reflect,
];

#[test]
fn oracle_1d_paper_stencils() {
    let isa = Isa::detect_best();
    for name in ["1d3p", "1d5p"] {
        check_matrix(&name.parse().unwrap(), &ALL_BOUNDARIES, &Method::ALL, isa);
    }
}

#[test]
fn oracle_2d_paper_stencils() {
    let isa = Isa::detect_best();
    for name in ["2d5p", "2d9p"] {
        check_matrix(&name.parse().unwrap(), &ALL_BOUNDARIES, &Method::ALL, isa);
    }
}

#[test]
fn oracle_3d_paper_stencils() {
    let isa = Isa::detect_best();
    for name in ["3d7p", "3d27p"] {
        check_matrix(&name.parse().unwrap(), &ALL_BOUNDARIES, &Method::ALL, isa);
    }
}

#[test]
fn oracle_custom_radii() {
    // Wider-than-paper radii exercise the packed carrier arms and the
    // r > 1 halo folds (multiple wrapped cells per side).
    let isa = Isa::detect_best();
    let star1_r3 = StencilSpec::star1(&[0.05, 0.1, 0.15, 0.4, 0.15, 0.1, 0.05]).unwrap();
    let star2_r2 =
        StencilSpec::star2(&[0.1, 0.2, 0.4, 0.15, 0.15], &[0.12, 0.18, 0.0, 0.22, 0.08]).unwrap();
    let w25: Vec<f64> = (0..25).map(|i| 1.0 / (25.0 + i as f64)).collect();
    let box2_r2 = StencilSpec::box2(&w25).unwrap();
    let boundaries = [Boundary::Periodic, Boundary::Reflect];
    let methods = [
        Method::Scalar,
        Method::MultiLoad,
        Method::Dlt,
        Method::TransLayout2,
    ];
    for spec in [star1_r3, star2_r2, box2_r2] {
        check_matrix(&spec, &boundaries, &methods, isa);
    }
}

#[test]
fn oracle_across_isas() {
    // Every available ISA must agree with the naive reference under the
    // refreshed boundaries (the refresh reads through per-ISA layout
    // maps, so lane width is load-bearing here).
    let methods = [Method::Reorg, Method::Dlt, Method::TransLayout2];
    for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
        check_matrix(
            &"2d5p".parse().unwrap(),
            &[Boundary::Periodic],
            &methods,
            isa,
        );
        check_matrix(
            &"1d5p".parse().unwrap(),
            &[Boundary::Reflect],
            &methods,
            isa,
        );
    }
}

#[test]
fn fused_k2_matches_two_sequential_k1_steps() {
    // The TL2 fused fast path needs a grid with 2r-wide halos (the outer
    // half stages the t+1 level); a grid with the plain r-wide halo falls
    // back to per-step k = 1 refreshes. Running the same plan over both
    // allocations must agree to 0 ULP — the fused pass is two sequential
    // k = 1 steps, bit for bit. Every method rides along (the extra halo
    // rows must be inert for the non-fused paths), over non-divisible
    // thread splits (137 = 7·19 + 4; ny = 13 over 7 bands) and both time
    // parities (t = 4 exercises only fused pairs, t = 5 the trailing
    // single step).
    let isa = Isa::detect_best();
    for name in ["1d3p", "1d5p", "2d5p", "2d9p", "3d7p", "3d27p"] {
        for b in [Boundary::Periodic, Boundary::Reflect] {
            let spec = name.parse::<StencilSpec>().unwrap().with_boundary(b);
            let shape = shape_for(&spec);
            let init = seeded(shape, 0xFACADE ^ spec.points() as u64);
            for &method in &Method::ALL {
                for par in [
                    Parallelism::Off,
                    Parallelism::Threads(2),
                    Parallelism::Threads(7),
                ] {
                    for t in [4, 5] {
                        let run = |g: &mut AnyGrid| {
                            Plan::new(shape)
                                .method(method)
                                .isa(isa)
                                .parallelism(par)
                                .stencil(&spec)
                                .unwrap()
                                .run(g, t)
                        };
                        let mut wide = AnyGrid::from_vec_spec(shape, &spec, init.clone()).unwrap();
                        let mut narrow =
                            AnyGrid::from_vec(shape, spec.radius(), b.halo_fill(), init.clone())
                                .unwrap();
                        run(&mut wide);
                        run(&mut narrow);
                        assert_eq!(
                            max_abs_diff_ref(&wide, &narrow.to_vec()),
                            0.0,
                            "{spec} {method} {par:?} t={t}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Build-time contracts
// ---------------------------------------------------------------------------

#[test]
fn temporal_tiling_accepts_every_boundary() {
    // PR 7 lifted the Tiling × Boundary rejection: the wavefront drivers
    // refresh halos per tile step, so every boundary now builds (and
    // runs — see tests/wavefront.rs for the bit-identity matrix).
    let tess = Tiling::Tessellate {
        w: [128, 0, 0],
        h: 8,
        threads: 2,
    };
    assert!(Plan::new(Shape::d1(1024))
        .method(Method::TransLayout2)
        .tiling(tess)
        .boundary(Boundary::Periodic)
        .star1(S1d3p::heat())
        .is_ok());

    assert!(Plan::new(Shape::d1(1024))
        .method(Method::Dlt)
        .tiling(Tiling::Split {
            w: 64,
            h: 8,
            threads: 2,
        })
        .boundary(Boundary::Reflect)
        .star1(S1d3p::heat())
        .is_ok());

    // The erased path with the spec's own boundary builds too (no
    // builder knob involved).
    let spec: StencilSpec = "1d3p@periodic".parse().unwrap();
    assert!(Plan::new(Shape::d1(1024))
        .tiling(tess)
        .stencil(&spec)
        .is_ok());

    // Dirichlet (any value) composes as before.
    assert!(Plan::new(Shape::d1(1024))
        .tiling(tess)
        .boundary(Boundary::Dirichlet(3.5))
        .star1(S1d3p::heat())
        .is_ok());

    // The shape-level fold restriction still fires under tiling: a
    // 1-cell interior cannot wrap, tiled or not.
    let narrow: StencilSpec = "1d5p@periodic".parse().unwrap();
    let err = Plan::new(Shape::d1(1))
        .tiling(tess)
        .stencil(&narrow)
        .unwrap_err();
    assert!(matches!(err, PlanError::Boundary { .. }), "{err}");
}

#[test]
fn folds_reject_extents_below_the_radius() {
    // 1d5p has r = 2; a 1-cell interior cannot wrap or mirror.
    let spec: StencilSpec = "1d5p@periodic".parse().unwrap();
    let err = Plan::new(Shape::d1(1)).stencil(&spec).unwrap_err();
    assert!(matches!(err, PlanError::Boundary { .. }), "{err}");
    // ...but is fine under Dirichlet (today's behavior).
    assert!(Plan::new(Shape::d1(1))
        .stencil(&"1d5p".parse().unwrap())
        .is_ok());
    // And exactly-radius extents are accepted.
    assert!(Plan::new(Shape::d1(2)).stencil(&spec).is_ok());
}

#[test]
fn boundary_rejections_name_the_restriction() {
    // Each PlanError::Boundary carries a structured BoundaryReason whose
    // message says exactly which restriction fired — not a generic
    // "cannot run here".
    //
    // The fold restriction names the axis, its extent, and the radius.
    let r2 = StencilSpec::star2(&[0.1, 0.2, 0.4, 0.15, 0.15], &[0.12, 0.18, 0.0, 0.22, 0.08])
        .unwrap()
        .with_boundary(Boundary::Periodic);
    let err = Plan::new(Shape::d2(64, 1)).stencil(&r2).unwrap_err();
    assert!(
        matches!(
            err,
            PlanError::Boundary {
                boundary: Boundary::Periodic,
                reason: BoundaryReason::ExtentBelowRadius {
                    axis: 1,
                    extent: 1,
                    radius: 2
                },
            }
        ),
        "{err}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("axis 1 extent 1 is smaller than the stencil radius 2"),
        "{msg}"
    );

    // The legacy surface points at the Plan API.
    let mut g = Grid1::from_fn(16, 0.0, |_| 0.0);
    let err = run_spec(
        Method::Scalar,
        Isa::detect_best(),
        &mut g,
        &"1d3p@reflect".parse().unwrap(),
        1,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            PlanError::Boundary {
                reason: BoundaryReason::LegacySurface,
                ..
            }
        ),
        "{err}"
    );
    let msg = err.to_string();
    assert!(msg.contains("legacy run*"), "{msg}");
    assert!(msg.contains("Plan::stencil"), "{msg}");
}

#[test]
fn builder_knob_overrides_spec_boundary() {
    let spec: StencilSpec = "2d5p@periodic".parse().unwrap();
    let plan = Plan::new(Shape::d2(32, 16))
        .boundary(Boundary::Dirichlet(0.0))
        .stencil(&spec)
        .unwrap();
    assert!(plan.boundary().is_dirichlet());
    let plan = Plan::new(Shape::d2(32, 16)).stencil(&spec).unwrap();
    assert_eq!(plan.boundary(), Boundary::Periodic);
    // Typed terminals default to constant-zero halos.
    let plan = Plan::new(Shape::d1(64)).star1(S1d3p::heat()).unwrap();
    assert_eq!(plan.boundary(), Boundary::Dirichlet(0.0));
}

// ---------------------------------------------------------------------------
// Sessions and the legacy surface
// ---------------------------------------------------------------------------

#[test]
fn session_reuse_is_consistent_under_periodic() {
    // Two 3-step session calls ≡ one 6-step run: the refresh state is
    // fully derived from the grid, so chunked stepping changes nothing.
    let spec: StencilSpec = "2d5p@periodic".parse().unwrap();
    let shape = Shape::d2(81, 13);
    let init = seeded(shape, 7);
    for method in [Method::TransLayout2, Method::Dlt, Method::MultiLoad] {
        let mut plan = Plan::new(shape)
            .method(method)
            .parallelism(Parallelism::Off)
            .stencil(&spec)
            .unwrap();
        let mut chunked = AnyGrid::from_vec_spec(shape, &spec, init.clone()).unwrap();
        {
            let mut sess = plan.session(&mut chunked);
            sess.run(3);
            sess.run(3);
        }
        let mut whole = AnyGrid::from_vec_spec(shape, &spec, init.clone()).unwrap();
        let mut plan2 = Plan::new(shape)
            .method(method)
            .parallelism(Parallelism::Off)
            .stencil(&spec)
            .unwrap();
        plan2.run(&mut whole, 6);
        assert_eq!(max_abs_diff_ref(&chunked, &whole.to_vec()), 0.0, "{method}");
        // And both equal the naive reference.
        let want = Naive::new(&spec, shape).run(init.clone(), 6);
        assert_eq!(max_abs_diff_ref(&whole, &want), 0.0, "{method} vs naive");
    }
}

#[test]
fn legacy_run_surface_pins_dirichlet() {
    let isa = Isa::detect_best();
    let n = 256;
    let mut g = Grid1::from_fn(n, 0.0, |i| (i % 17) as f64);

    // A refreshed boundary is rejected with PlanError::Boundary...
    let periodic: StencilSpec = "1d3p@periodic".parse().unwrap();
    let err = run_spec(Method::MultiLoad, isa, &mut g, &periodic, 4).unwrap_err();
    assert!(
        matches!(
            err,
            PlanError::Boundary {
                boundary: Boundary::Periodic,
                ..
            }
        ),
        "{err}"
    );
    assert!(err.to_string().contains("legacy"), "{err}");

    // ...the grid is untouched by the failed call...
    assert_eq!(g.get(5), 5.0);

    // ...and the Dirichlet path is bit-identical to the typed wrapper.
    let dirichlet: StencilSpec = "1d3p".parse().unwrap();
    run_spec(Method::MultiLoad, isa, &mut g, &dirichlet, 4).unwrap();
    let mut h = Grid1::from_fn(n, 0.0, |i| (i % 17) as f64);
    run1_star1(Method::MultiLoad, isa, &mut h, &S1d3p::heat(), 4).unwrap();
    assert_eq!(stencil_core::verify::max_abs_diff1(&g, &h), 0.0);
}

#[test]
fn periodic_diffusion_conserves_the_field_total() {
    // Physics smoke: with normalized weights and no open boundary, the
    // total field is conserved (up to rounding) — the scenario Dirichlet
    // halos could never express.
    let spec: StencilSpec = "2d5p@periodic".parse().unwrap();
    let shape = Shape::d2(64, 32);
    let mut g = AnyGrid::from_fn_spec(
        shape,
        &spec,
        |_, y, x| {
            if (x, y) == (13, 9) {
                1000.0
            } else {
                0.0
            }
        },
    )
    .unwrap();
    let mut plan = Plan::new(shape).stencil(&spec).unwrap();
    plan.run(&mut g, 50);
    let total: f64 = g.to_vec().iter().sum();
    assert!((total - 1000.0).abs() < 1e-9, "total drifted: {total}");
}
