//! Erased-API coverage: [`DynPlan`] must be **bit-identical** to the
//! typed plans across the full Method × stencil × threads matrix, specs
//! must validate exactly the documented failure modes, and the
//! string-facing surface (`FromStr`/`Display`) must round-trip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::spec::{SpecError, StencilSpec};
use stencil_core::verify::{max_abs_diff1, max_abs_diff2, max_abs_diff3, max_abs_diff_any};
use stencil_core::{
    AnyGrid, Grid1, Grid2, Grid3, Method, PlanError, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p,
    Star1, MAX_R,
};
use stencil_simd::Isa;

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid1::from_fn(n, 0.2, |_| r.random_range(-1.0..1.0))
}

fn grid2(nx: usize, ny: usize, ry: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid2::from_fn(nx, ny, ry, 0.2, |_, _| r.random_range(-1.0..1.0))
}

fn grid3(nx: usize, ny: usize, nz: usize, rr: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    Grid3::from_fn(nx, ny, nz, rr, 0.2, |_, _, _| r.random_range(-1.0..1.0))
}

/// Thread counts for the oracle matrix: sequential, an even split, and
/// a deliberately non-dividing worker count.
const THREADS: [usize; 3] = [1, 2, 7];

// ---------------------------------------------------------------------------
// DynPlan ≡ typed plan, full Method × stencil × threads matrix
// ---------------------------------------------------------------------------

/// Drive the same (method, parallelism, steps) through a typed terminal
/// and through `Plan::stencil`, returning both grids' difference.
macro_rules! typed_vs_erased {
    ($shape:expr, $terminal:ident, $stencil:expr, $spec:expr, $grid:expr,
     $m:expr, $k:expr, $t:expr, $diff:ident) => {{
        let init = $grid;
        let mut typed_g = init.clone();
        Plan::new($shape)
            .method($m)
            .isa(Isa::detect_best())
            .parallelism(Parallelism::Threads($k))
            .$terminal($stencil)
            .unwrap()
            .run(&mut typed_g, $t);
        let mut erased_g = init.clone();
        Plan::new($shape)
            .method($m)
            .isa(Isa::detect_best())
            .parallelism(Parallelism::Threads($k))
            .stencil(&$spec)
            .unwrap()
            .run(&mut erased_g, $t);
        $diff(&typed_g, &erased_g)
    }};
}

#[test]
fn erased_matches_typed_1d() {
    for (spec, s) in [
        (StencilSpec::heat_1d3p(), S1d3p::heat().w.to_vec()),
        (StencilSpec::heat_1d5p(), S1d5p::heat().w.to_vec()),
    ] {
        let name = spec.to_string();
        for m in Method::ALL {
            for k in THREADS {
                for t in [1usize, 4] {
                    let d = if s.len() == 3 {
                        typed_vs_erased!(
                            Shape::d1(601),
                            star1,
                            S1d3p::heat(),
                            spec,
                            grid1(601, 5),
                            m,
                            k,
                            t,
                            max_abs_diff1
                        )
                    } else {
                        typed_vs_erased!(
                            Shape::d1(601),
                            star1,
                            S1d5p::heat(),
                            spec,
                            grid1(601, 5),
                            m,
                            k,
                            t,
                            max_abs_diff1
                        )
                    };
                    assert_eq!(d, 0.0, "{name}/{m}/threads={k}/t={t}");
                }
            }
        }
    }
}

#[test]
fn erased_matches_typed_2d() {
    for m in Method::ALL {
        for k in THREADS {
            for t in [1usize, 3] {
                let d = typed_vs_erased!(
                    Shape::d2(130, 11),
                    star2,
                    S2d5p::heat(),
                    StencilSpec::heat_2d5p(),
                    grid2(130, 11, 1, 6),
                    m,
                    k,
                    t,
                    max_abs_diff2
                );
                assert_eq!(d, 0.0, "2d5p/{m}/threads={k}/t={t}");
                let d = typed_vs_erased!(
                    Shape::d2(130, 11),
                    box2,
                    S2d9p::blur(),
                    StencilSpec::blur_2d9p(),
                    grid2(130, 11, 1, 7),
                    m,
                    k,
                    t,
                    max_abs_diff2
                );
                assert_eq!(d, 0.0, "2d9p/{m}/threads={k}/t={t}");
            }
        }
    }
}

#[test]
fn erased_matches_typed_3d() {
    for m in Method::ALL {
        for k in THREADS {
            for t in [1usize, 3] {
                let d = typed_vs_erased!(
                    Shape::d3(72, 10, 9),
                    star3,
                    S3d7p::heat(),
                    StencilSpec::heat_3d7p(),
                    grid3(72, 10, 9, 1, 8),
                    m,
                    k,
                    t,
                    max_abs_diff3
                );
                assert_eq!(d, 0.0, "3d7p/{m}/threads={k}/t={t}");
                let d = typed_vs_erased!(
                    Shape::d3(72, 10, 9),
                    box3,
                    S3d27p::blur(),
                    StencilSpec::blur_3d27p(),
                    grid3(72, 10, 9, 1, 9),
                    m,
                    k,
                    t,
                    max_abs_diff3
                );
                assert_eq!(d, 0.0, "3d27p/{m}/threads={k}/t={t}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Custom weights and radii the typed surface has no concrete type for
// ---------------------------------------------------------------------------

#[test]
fn custom_radii_agree_with_scalar_oracle() {
    // Radii 3 and 4 exist only through the erased path; every vectorized
    // method must still match the scalar oracle bit-for-bit.
    let isa = Isa::detect_best();
    for r in [3usize, 4] {
        let mut rng = StdRng::seed_from_u64(r as u64);
        let w: Vec<f64> = (0..2 * r + 1)
            .map(|_| rng.random_range(-0.2..0.4))
            .collect();
        let spec = StencilSpec::star1(&w).unwrap();
        assert_eq!(spec.radius(), r);
        let init = grid1(700, 40 + r as u64);
        let mut oracle = init.clone();
        Plan::new(Shape::d1(700))
            .method(Method::Scalar)
            .isa(isa)
            .stencil(&spec)
            .unwrap()
            .run(&mut oracle, 3);
        for m in Method::ALL {
            let mut g = init.clone();
            Plan::new(Shape::d1(700))
                .method(m)
                .isa(isa)
                .stencil(&spec)
                .unwrap()
                .run(&mut g, 3);
            assert_eq!(max_abs_diff1(&g, &oracle), 0.0, "star1 r={r}/{m}");
        }
    }

    // A radius-2 2D star — no typed S-type exists for it either.
    let spec =
        StencilSpec::star2(&[0.01, 0.2, 0.3, 0.2, 0.01], &[0.02, 0.1, 0.0, 0.1, 0.02]).unwrap();
    let init = grid2(90, 9, 2, 11);
    let mut oracle = init.clone();
    Plan::new(Shape::d2(90, 9))
        .method(Method::Scalar)
        .isa(isa)
        .stencil(&spec)
        .unwrap()
        .run(&mut oracle, 2);
    for m in Method::ALL {
        let mut g = init.clone();
        Plan::new(Shape::d2(90, 9))
            .method(m)
            .isa(isa)
            .stencil(&spec)
            .unwrap()
            .run(&mut g, 2);
        assert_eq!(max_abs_diff2(&g, &oracle), 0.0, "star2 r=2/{m}");
    }
}

// ---------------------------------------------------------------------------
// Sessions: reuse and layout residency through the erased surface
// ---------------------------------------------------------------------------

#[test]
fn dyn_session_two_halves_equal_one_run() {
    let isa = Isa::detect_best();
    for name in StencilSpec::NAMES {
        let spec: StencilSpec = name.parse().unwrap();
        let shape = match spec.ndim() {
            1 => Shape::d1(400),
            2 => Shape::d2(70, 9),
            _ => Shape::d3(40, 8, 6),
        };
        let init = AnyGrid::from_fn(shape, spec.radius(), 0.1, |z, y, x| {
            ((3 * x + 5 * y + 7 * z) % 11) as f64 * 0.125
        });

        let mut whole = init.clone();
        Plan::new(shape)
            .method(Method::TransLayout2)
            .isa(isa)
            .stencil(&spec)
            .unwrap()
            .run(&mut whole, 6);

        let mut halves = init.clone();
        let mut plan = Plan::new(shape)
            .method(Method::TransLayout2)
            .isa(isa)
            .stencil(&spec)
            .unwrap();
        {
            let mut sess = plan.session(&mut halves);
            sess.run(3);
            sess.run(3);
        }
        assert_eq!(max_abs_diff_any(&whole, &halves), 0.0, "{name}");
    }
}

// ---------------------------------------------------------------------------
// Validation: SpecError / PlanError surfaces
// ---------------------------------------------------------------------------

#[test]
fn spec_validation_errors() {
    // Radius past MAX_R.
    assert!(matches!(
        StencilSpec::star1(&[0.1; 2 * MAX_R + 3]),
        Err(SpecError::RadiusTooLarge { max: MAX_R, .. })
    ));
    // Even / undersized weight slices.
    assert!(matches!(
        StencilSpec::star1(&[1.0]),
        Err(SpecError::WeightLen { .. })
    ));
    assert!(matches!(
        StencilSpec::star3(&[0.1; 3], &[0.1; 3], &[0.1; 4]),
        Err(SpecError::WeightLen { axis: "z", .. })
    ));
    // Box lengths that are no (2r+1)^ndim.
    assert!(matches!(
        StencilSpec::box3(&[0.1; 26]),
        Err(SpecError::WeightLen { .. })
    ));
    // Star axes disagreeing on the radius.
    assert!(matches!(
        StencilSpec::star2(&[0.1; 5], &[0.1; 3]),
        Err(SpecError::AxisRadiusMismatch { x: 2, other: 1 })
    ));
}

#[test]
fn plan_rejects_spec_shape_mismatch() {
    // Shape ndim ≠ spec ndim → the same DimMismatch the typed path gives.
    let spec = StencilSpec::heat_1d3p();
    let err = Plan::new(Shape::d2(32, 32)).stencil(&spec).unwrap_err();
    assert_eq!(
        err,
        PlanError::DimMismatch {
            shape: 2,
            stencil: 1
        }
    );
    let spec = StencilSpec::heat_3d7p();
    let err = Plan::new(Shape::d1(128)).stencil(&spec).unwrap_err();
    assert_eq!(
        err,
        PlanError::DimMismatch {
            shape: 1,
            stencil: 3
        }
    );
    // Empty shapes are still rejected.
    let err = Plan::new(Shape::d1(0))
        .stencil(&StencilSpec::heat_1d3p())
        .unwrap_err();
    assert_eq!(err, PlanError::EmptyShape);
}

#[test]
fn legacy_free_fns_report_spec_errors() {
    // A stencil type whose weights imply a radius past MAX_R: the
    // Result-returning free functions surface it as PlanError::Spec
    // instead of panicking mid-run.
    #[derive(Copy, Clone)]
    struct TooWide;
    impl Star1 for TooWide {
        const R: usize = MAX_R + 1;
        const NAME: &'static str = "toowide";
        fn w(&self) -> &[f64] {
            &[0.1; 2 * (MAX_R + 1) + 1]
        }
    }
    let mut g = Grid1::filled(64, 0.0);
    let err = stencil_core::run1_star1(Method::Scalar, Isa::detect_best(), &mut g, &TooWide, 2)
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::Spec(SpecError::RadiusTooLarge { .. })
    ));
    assert!(err.to_string().contains("radius"));

    // A stencil whose w() length disagrees with its declared R (e.g.
    // zero-padded storage) must error, not silently run at the radius
    // the slice length implies.
    #[derive(Copy, Clone)]
    struct PaddedR1;
    impl Star1 for PaddedR1 {
        const R: usize = 1;
        const NAME: &'static str = "padded";
        fn w(&self) -> &[f64] {
            &[0.0, 0.3, 0.4, 0.3, 0.0] // length says r = 2, R says 1
        }
    }
    let err = stencil_core::run1_star1(Method::Scalar, Isa::detect_best(), &mut g, &PaddedR1, 2)
        .unwrap_err();
    assert!(matches!(err, PlanError::Spec(SpecError::WeightLen { .. })));

    // And a valid call still succeeds (t = 0 early-out included).
    stencil_core::run1_star1(
        Method::Scalar,
        Isa::detect_best(),
        &mut g,
        &S1d3p::heat(),
        0,
    )
    .unwrap();
    stencil_core::run1_star1(
        Method::Scalar,
        Isa::detect_best(),
        &mut g,
        &S1d3p::heat(),
        2,
    )
    .unwrap();
}

#[test]
#[should_panic(expected = "1D f64 stencil but the grid is 2D f64")]
fn dyn_plan_panics_on_grid_dim_mismatch() {
    let spec = StencilSpec::heat_1d3p();
    let mut plan = Plan::new(Shape::d1(64)).stencil(&spec).unwrap();
    let mut g = AnyGrid::filled(Shape::d2(8, 8), 1, 0.0);
    plan.run(&mut g, 1);
}

// ---------------------------------------------------------------------------
// AnyGrid and the string-facing surface
// ---------------------------------------------------------------------------

#[test]
fn any_grid_from_vec_runs_like_typed() {
    let isa = Isa::detect_best();
    let spec = StencilSpec::heat_2d5p();
    let (nx, ny) = (65usize, 7usize);
    let data: Vec<f64> = (0..nx * ny).map(|i| ((i * 13) % 29) as f64 * 0.1).collect();

    let mut typed = Grid2::from_fn(nx, ny, 1, 0.0, |y, x| data[y * nx + x]);
    Plan::new(Shape::d2(nx, ny))
        .method(Method::TransLayout2)
        .isa(isa)
        .star2(S2d5p::heat())
        .unwrap()
        .run(&mut typed, 4);

    let mut any = AnyGrid::from_vec(Shape::d2(nx, ny), 1, 0.0, data).unwrap();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::TransLayout2)
        .isa(isa)
        .stencil(&spec)
        .unwrap()
        .run(&mut any, 4);

    assert_eq!(max_abs_diff2(any.as_grid2().unwrap(), &typed), 0.0);
    // And the row-major export matches the typed interior.
    let exported = any.to_vec();
    for y in 0..ny {
        for x in 0..nx {
            assert_eq!(exported[y * nx + x], typed.get(y as isize, x as isize));
        }
    }
}

#[test]
fn names_round_trip_across_the_string_surface() {
    // StencilSpec names.
    for name in StencilSpec::NAMES {
        let spec: StencilSpec = name.parse().unwrap();
        assert_eq!(spec.to_string(), name);
    }
    assert!("2d7p".parse::<StencilSpec>().is_err());
    // Method names.
    for m in Method::ALL {
        assert_eq!(m.to_string().parse::<Method>().unwrap(), m);
    }
    assert!("sse42".parse::<Method>().is_err());
    // Isa names.
    for isa in Isa::ALL {
        assert_eq!(isa.to_string().parse::<Isa>().unwrap(), isa);
    }
    assert!("mmx".parse::<Isa>().is_err());
}

#[test]
fn dyn_plan_reports_its_configuration() {
    let spec = StencilSpec::blur_3d27p();
    let mut plan = Plan::new(Shape::d3(24, 8, 6))
        .method(Method::MultiLoad)
        .isa(Isa::detect_best())
        .parallelism(Parallelism::Threads(2))
        .stencil(&spec)
        .unwrap();
    assert_eq!(plan.method(), Method::MultiLoad);
    assert_eq!(plan.threads(), 2);
    assert_eq!(plan.shape(), Shape::d3(24, 8, 6));
    assert_eq!(plan.spec(), &spec);
    let dbg = format!("{plan:?}");
    assert!(dbg.contains("3d27p"), "{dbg}");
    // And it runs.
    let mut g = AnyGrid::filled(Shape::d3(24, 8, 6), 1, 1.0);
    plan.run(&mut g, 2);
}
