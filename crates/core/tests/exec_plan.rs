//! Plan-engine coverage: every (method × stencil family) combination
//! routed through [`Plan`] must be bit-identical to the `Method::Scalar`
//! oracle, and buffer reuse across consecutive `run`/`session` calls must
//! not change results — two `t`-step runs equal one `2t`-step run exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::verify::{max_abs_diff1, max_abs_diff2, max_abs_diff3};
use stencil_core::{Grid1, Grid2, Grid3, Method, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p};
use stencil_simd::Isa;

fn isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.is_available()).collect()
}

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid1::from_fn(n, halo, |_| r.random_range(-1.0..1.0))
}

fn grid2(nx: usize, ny: usize, seed: u64) -> Grid2 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid2::from_fn(nx, ny, 1, halo, |_, _| r.random_range(-1.0..1.0))
}

fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid3::from_fn(nx, ny, nz, 1, halo, |_, _, _| r.random_range(-1.0..1.0))
}

// ---------------------------------------------------------------------------
// Method × stencil oracle matrix, all through Plan
// ---------------------------------------------------------------------------

#[test]
fn plan_star1_every_method_matches_scalar_oracle() {
    for isa in isas() {
        for n in [65usize, 257, 600] {
            for t in [1usize, 2, 5] {
                let init = grid1(n, 11 + n as u64);

                // 1d3p
                let s = S1d3p {
                    w: [0.3, 0.45, 0.2],
                };
                let mut oracle = init.clone();
                Plan::new(Shape::d1(n))
                    .method(Method::Scalar)
                    .isa(isa)
                    .star1(s)
                    .unwrap()
                    .run(&mut oracle, t);
                for m in Method::ALL {
                    let mut g = init.clone();
                    Plan::new(Shape::d1(n))
                        .method(m)
                        .isa(isa)
                        .star1(s)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff1(&g, &oracle),
                        0.0,
                        "1d3p/{m}/{isa}/n={n}/t={t}"
                    );
                }

                // 1d5p
                let s = S1d5p {
                    w: [-0.04, 0.22, 0.5, 0.28, -0.02],
                };
                let mut oracle = init.clone();
                Plan::new(Shape::d1(n))
                    .method(Method::Scalar)
                    .isa(isa)
                    .star1(s)
                    .unwrap()
                    .run(&mut oracle, t);
                for m in Method::ALL {
                    let mut g = init.clone();
                    Plan::new(Shape::d1(n))
                        .method(m)
                        .isa(isa)
                        .star1(s)
                        .unwrap()
                        .run(&mut g, t);
                    assert_eq!(
                        max_abs_diff1(&g, &oracle),
                        0.0,
                        "1d5p/{m}/{isa}/n={n}/t={t}"
                    );
                }
            }
        }
    }
}

#[test]
fn plan_2d_every_method_matches_scalar_oracle() {
    let isa = Isa::detect_best();
    let (nx, ny) = (130usize, 7usize);
    for t in [1usize, 2, 3] {
        let init = grid2(nx, ny, 5);

        let s = S2d5p {
            wx: [0.2, 0.31, 0.18],
            wy: [0.11, 0.0, 0.14],
        };
        let mut oracle = init.clone();
        Plan::new(Shape::d2(nx, ny))
            .method(Method::Scalar)
            .isa(isa)
            .star2(s)
            .unwrap()
            .run(&mut oracle, t);
        for m in Method::ALL {
            let mut g = init.clone();
            Plan::new(Shape::d2(nx, ny))
                .method(m)
                .isa(isa)
                .star2(s)
                .unwrap()
                .run(&mut g, t);
            assert_eq!(max_abs_diff2(&g, &oracle), 0.0, "2d5p/{m}/t={t}");
        }

        let s = S2d9p {
            w: [0.1, 0.12, 0.09, 0.13, 0.07, 0.11, 0.1, 0.08, 0.1],
        };
        let mut oracle = init.clone();
        Plan::new(Shape::d2(nx, ny))
            .method(Method::Scalar)
            .isa(isa)
            .box2(s)
            .unwrap()
            .run(&mut oracle, t);
        for m in Method::ALL {
            let mut g = init.clone();
            Plan::new(Shape::d2(nx, ny))
                .method(m)
                .isa(isa)
                .box2(s)
                .unwrap()
                .run(&mut g, t);
            assert_eq!(max_abs_diff2(&g, &oracle), 0.0, "2d9p/{m}/t={t}");
        }
    }
}

#[test]
fn plan_3d_every_method_matches_scalar_oracle() {
    let isa = Isa::detect_best();
    let (nx, ny, nz) = (70usize, 4usize, 3usize);
    for t in [1usize, 2, 3] {
        let init = grid3(nx, ny, nz, 9);

        let s = S3d7p {
            wx: [0.1, 0.3, 0.12],
            wy: [0.09, 0.0, 0.11],
            wz: [0.08, 0.0, 0.07],
        };
        let mut oracle = init.clone();
        Plan::new(Shape::d3(nx, ny, nz))
            .method(Method::Scalar)
            .isa(isa)
            .star3(s)
            .unwrap()
            .run(&mut oracle, t);
        for m in Method::ALL {
            let mut g = init.clone();
            Plan::new(Shape::d3(nx, ny, nz))
                .method(m)
                .isa(isa)
                .star3(s)
                .unwrap()
                .run(&mut g, t);
            assert_eq!(max_abs_diff3(&g, &oracle), 0.0, "3d7p/{m}/t={t}");
        }

        let mut w = [0.0f64; 27];
        let mut r = StdRng::seed_from_u64(33);
        for x in w.iter_mut() {
            *x = r.random_range(0.0..0.037);
        }
        let s = S3d27p { w };
        let mut oracle = init.clone();
        Plan::new(Shape::d3(nx, ny, nz))
            .method(Method::Scalar)
            .isa(isa)
            .box3(s)
            .unwrap()
            .run(&mut oracle, t);
        for m in Method::ALL {
            let mut g = init.clone();
            Plan::new(Shape::d3(nx, ny, nz))
                .method(m)
                .isa(isa)
                .box3(s)
                .unwrap()
                .run(&mut g, t);
            assert_eq!(max_abs_diff3(&g, &oracle), 0.0, "3d27p/{m}/t={t}");
        }
    }
}

// ---------------------------------------------------------------------------
// Scratch-reuse correctness: two t-step runs == one 2t-step run, exactly
// ---------------------------------------------------------------------------

#[test]
fn two_consecutive_runs_equal_one_double_run_every_method() {
    for isa in isas() {
        for m in Method::ALL {
            for (n, t) in [(257usize, 3usize), (600, 4)] {
                let init = grid1(n, 77 + n as u64);
                let s = S1d3p {
                    w: [0.28, 0.5, 0.21],
                };

                let mut plan = Plan::new(Shape::d1(n)).method(m).isa(isa).star1(s).unwrap();
                let mut twice = init.clone();
                plan.run(&mut twice, t);
                plan.run(&mut twice, t); // reuses scratch from the first call

                let mut once = init.clone();
                Plan::new(Shape::d1(n))
                    .method(m)
                    .isa(isa)
                    .star1(s)
                    .unwrap()
                    .run(&mut once, 2 * t);

                assert_eq!(
                    max_abs_diff1(&twice, &once),
                    0.0,
                    "{m}/{isa}/n={n}/t={t}: scratch reuse changed the result"
                );
            }
        }
    }
}

#[test]
fn two_consecutive_runs_equal_one_double_run_2d_3d() {
    let isa = Isa::detect_best();
    for m in Method::ALL {
        let (nx, ny, t) = (96usize, 6usize, 2usize);
        let init = grid2(nx, ny, 3);
        let s = S2d5p {
            wx: [0.2, 0.3, 0.19],
            wy: [0.12, 0.0, 0.14],
        };
        let mut plan = Plan::new(Shape::d2(nx, ny))
            .method(m)
            .isa(isa)
            .star2(s)
            .unwrap();
        let mut twice = init.clone();
        plan.run(&mut twice, t);
        plan.run(&mut twice, t);
        let mut once = init.clone();
        Plan::new(Shape::d2(nx, ny))
            .method(m)
            .isa(isa)
            .star2(s)
            .unwrap()
            .run(&mut once, 2 * t);
        assert_eq!(max_abs_diff2(&twice, &once), 0.0, "2d/{m}");

        let (nx, ny, nz) = (66usize, 4usize, 3usize);
        let init = grid3(nx, ny, nz, 8);
        let s = S3d7p {
            wx: [0.1, 0.29, 0.12],
            wy: [0.1, 0.0, 0.11],
            wz: [0.07, 0.0, 0.06],
        };
        let mut plan = Plan::new(Shape::d3(nx, ny, nz))
            .method(m)
            .isa(isa)
            .star3(s)
            .unwrap();
        let mut twice = init.clone();
        plan.run(&mut twice, t);
        plan.run(&mut twice, t);
        let mut once = init.clone();
        Plan::new(Shape::d3(nx, ny, nz))
            .method(m)
            .isa(isa)
            .star3(s)
            .unwrap()
            .run(&mut once, 2 * t);
        assert_eq!(max_abs_diff3(&twice, &once), 0.0, "3d/{m}");
    }
}

#[test]
fn session_runs_compose_exactly() {
    for isa in isas() {
        for m in Method::ALL {
            let n = 513usize;
            let t = 3usize;
            let init = grid1(n, 101);
            let s = S1d3p {
                w: [0.33, 0.34, 0.32],
            };

            // Layout-resident: two runs inside one session (one transform
            // round-trip total).
            let mut plan = Plan::new(Shape::d1(n)).method(m).isa(isa).star1(s).unwrap();
            let mut resident = init.clone();
            {
                let mut sess = plan.session(&mut resident);
                sess.run(t);
                sess.run(t);
            }

            let mut once = init.clone();
            Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .star1(s)
                .unwrap()
                .run(&mut once, 2 * t);

            assert_eq!(
                max_abs_diff1(&resident, &once),
                0.0,
                "{m}/{isa}: session composition changed the result"
            );
        }
    }
}

#[test]
fn empty_session_restores_natural_layout() {
    let isa = Isa::detect_best();
    for m in Method::ALL {
        let n = 300usize;
        let init = grid1(n, 55);
        let mut plan = Plan::new(Shape::d1(n))
            .method(m)
            .isa(isa)
            .star1(S1d3p::heat())
            .unwrap();
        let mut g = init.clone();
        drop(plan.session(&mut g)); // enter + exit, no stepping
        assert_eq!(
            max_abs_diff1(&g, &init),
            0.0,
            "{m}: empty session not identity"
        );
    }
}

#[test]
fn plan_is_reusable_across_grids_of_the_same_shape() {
    let isa = Isa::detect_best();
    let n = 400usize;
    let s = S1d3p::heat();
    let mut plan = Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .star1(s)
        .unwrap();
    for seed in [1u64, 2, 3] {
        let init = grid1(n, seed);
        let mut via_plan = init.clone();
        plan.run(&mut via_plan, 5);
        let mut fresh = init.clone();
        Plan::new(Shape::d1(n))
            .method(Method::TransLayout2)
            .isa(isa)
            .star1(s)
            .unwrap()
            .run(&mut fresh, 5);
        assert_eq!(max_abs_diff1(&via_plan, &fresh), 0.0, "seed={seed}");
    }
}

// ---------------------------------------------------------------------------
// Tiled plans through the Plan API directly
// ---------------------------------------------------------------------------

#[test]
fn tiled_plans_match_scalar_oracle() {
    let isa = Isa::detect_best();
    let n = 1000usize;
    let t = 13usize;
    let s = S1d3p {
        w: [0.21, 0.55, 0.2],
    };
    let init = grid1(n, 4);
    let mut oracle = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::Scalar)
        .isa(isa)
        .star1(s)
        .unwrap()
        .run(&mut oracle, t);

    for m in [
        Method::MultiLoad,
        Method::Reorg,
        Method::TransLayout,
        Method::TransLayout2,
    ] {
        let mut plan = Plan::new(Shape::d1(n))
            .method(m)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [128, 0, 0],
                h: 16,
                threads: 4,
            })
            .star1(s)
            .unwrap();
        let mut g = init.clone();
        plan.run(&mut g, t);
        assert_eq!(max_abs_diff1(&g, &oracle), 0.0, "tessellate/{m}");
    }

    let mut plan = Plan::new(Shape::d1(n))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 24,
            h: 6,
            threads: 4,
        })
        .star1(s)
        .unwrap();
    let mut g = init.clone();
    plan.run(&mut g, t);
    assert_eq!(max_abs_diff1(&g, &oracle), 0.0, "split/dlt");
}

#[test]
fn tiled_plan_reuse_matches_fresh_plans() {
    // A tessellate plan (pool + scratch held) run twice equals one 2t run.
    let isa = Isa::detect_best();
    let (n, t) = (800usize, 8usize);
    let s = S1d3p::heat();
    let init = grid1(n, 6);

    let mut plan = Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [100, 0, 0],
            h: 10,
            threads: 2,
        })
        .star1(s)
        .unwrap();
    let mut twice = init.clone();
    plan.run(&mut twice, t);
    plan.run(&mut twice, t);

    let mut once = init.clone();
    Plan::new(Shape::d1(n))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [100, 0, 0],
            h: 10,
            threads: 2,
        })
        .star1(s)
        .unwrap()
        .run(&mut once, 2 * t);

    assert_eq!(max_abs_diff1(&twice, &once), 0.0);
}

#[test]
fn tiled_2d_3d_plans_match_scalar_oracle() {
    let isa = Isa::detect_best();

    let (nx, ny, t) = (150usize, 40usize, 11usize);
    let s = S2d5p {
        wx: [0.2, 0.3, 0.19],
        wy: [0.12, 0.0, 0.14],
    };
    let init = grid2(nx, ny, 4);
    let mut oracle = init.clone();
    Plan::new(Shape::d2(nx, ny))
        .method(Method::Scalar)
        .isa(isa)
        .star2(s)
        .unwrap()
        .run(&mut oracle, t);
    let mut plan = Plan::new(Shape::d2(nx, ny))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [48, 16, 0],
            h: 6,
            threads: 4,
        })
        .star2(s)
        .unwrap();
    let mut g = init.clone();
    plan.run(&mut g, t);
    assert_eq!(max_abs_diff2(&g, &oracle), 0.0, "tessellate2");
    let mut plan = Plan::new(Shape::d2(nx, ny))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 12,
            h: 5,
            threads: 4,
        })
        .star2(s)
        .unwrap();
    let mut g = init.clone();
    plan.run(&mut g, t);
    assert_eq!(max_abs_diff2(&g, &oracle), 0.0, "split2");

    let (nx, ny, nz, t) = (80usize, 20usize, 16usize, 7usize);
    let s = S3d7p {
        wx: [0.1, 0.28, 0.12],
        wy: [0.09, 0.0, 0.11],
        wz: [0.08, 0.0, 0.07],
    };
    let init = grid3(nx, ny, nz, 12);
    let mut oracle = init.clone();
    Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::Scalar)
        .isa(isa)
        .star3(s)
        .unwrap()
        .run(&mut oracle, t);
    let mut plan = Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::TransLayout2)
        .isa(isa)
        .tiling(Tiling::Tessellate {
            w: [40, 10, 8],
            h: 4,
            threads: 4,
        })
        .star3(s)
        .unwrap();
    let mut g = init.clone();
    plan.run(&mut g, t);
    assert_eq!(max_abs_diff3(&g, &oracle), 0.0, "tessellate3");
    let mut plan = Plan::new(Shape::d3(nx, ny, nz))
        .method(Method::Dlt)
        .isa(isa)
        .tiling(Tiling::Split {
            w: 6,
            h: 3,
            threads: 4,
        })
        .star3(s)
        .unwrap();
    let mut g = init.clone();
    plan.run(&mut g, t);
    assert_eq!(max_abs_diff3(&g, &oracle), 0.0, "split3");
}

#[test]
fn zero_steps_is_identity_through_plan() {
    let isa = Isa::detect_best();
    let init = grid1(128, 2);
    for m in Method::ALL {
        let mut plan = Plan::new(Shape::d1(128))
            .method(m)
            .isa(isa)
            .star1(S1d3p::heat())
            .unwrap();
        let mut g = init.clone();
        plan.run(&mut g, 0);
        assert_eq!(max_abs_diff1(&g, &init), 0.0, "{m}");
    }
}

#[test]
#[should_panic(expected = "does not match the plan's shape")]
fn mismatched_grid_panics() {
    let mut plan = Plan::new(Shape::d1(128)).star1(S1d3p::heat()).unwrap();
    let mut g = Grid1::filled(64, 0.0);
    plan.run(&mut g, 1);
}
