//! Cross-method equivalence through the **legacy wrapper surface**: every
//! vectorized scheme must reproduce the scalar oracle for every stencil
//! family, ISA, grid size (full sets, tails, tiny grids), and step count
//! (even/odd, so the k=2 pipeline's trailing k=1 step is exercised).
//!
//! This suite deliberately drives the `run*` free functions — they are
//! thin wrappers over [`stencil_core::exec::Plan`] since the plan
//! refactor, and this coverage keeps them green. The same matrix driven
//! through `Plan` directly lives in `tests/exec_plan.rs`.
//!
//! Because every kernel follows the canonical accumulation order with
//! fused multiply-adds, agreement is expected to be *bit-exact*; we assert
//! a 1e-13 relative bound to stay robust and additionally pin a few cases
//! to exact equality.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::verify::{assert_close1, assert_close2, assert_close3, max_abs_diff1};
use stencil_core::{
    run1_star1, run2_box, run2_star, run3_box, run3_star, Grid1, Grid2, Grid3, Method, S1d3p,
    S1d5p, S2d5p, S2d9p, S3d27p, S3d7p,
};
use stencil_simd::Isa;

const TOL: f64 = 1e-13;

fn isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.is_available()).collect()
}

fn vec_methods() -> [Method; 5] {
    [
        Method::MultiLoad,
        Method::Reorg,
        Method::Dlt,
        Method::TransLayout,
        Method::TransLayout2,
    ]
}

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = rng(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid1::from_fn(n, halo, |_| r.random_range(-1.0..1.0))
}

#[test]
fn star1_1d3p_matches_scalar() {
    let s = S1d3p {
        w: [0.31, 0.52, 0.17],
    };
    for isa in isas() {
        for n in [5usize, 16, 63, 64, 65, 129, 200, 513] {
            for t in [1usize, 2, 3, 4, 7] {
                let init = grid1(n, 42 + n as u64);
                let mut reference = init.clone();
                run1_star1(Method::Scalar, isa, &mut reference, &s, t).unwrap();
                for m in vec_methods() {
                    let mut g = init.clone();
                    run1_star1(m, isa, &mut g, &s, t).unwrap();
                    assert_close1(&g, &reference, TOL, &format!("{m}/{isa}/n={n}/t={t}"));
                }
            }
        }
    }
}

#[test]
fn star1_1d5p_matches_scalar() {
    let s = S1d5p {
        w: [-0.05, 0.25, 0.55, 0.28, -0.03],
    };
    for isa in isas() {
        for n in [7usize, 64, 130, 257] {
            for t in [1usize, 2, 5] {
                let init = grid1(n, 7 + n as u64);
                let mut reference = init.clone();
                run1_star1(Method::Scalar, isa, &mut reference, &s, t).unwrap();
                for m in vec_methods() {
                    let mut g = init.clone();
                    run1_star1(m, isa, &mut g, &s, t).unwrap();
                    assert_close1(&g, &reference, TOL, &format!("{m}/{isa}/n={n}/t={t}"));
                }
            }
        }
    }
}

#[test]
fn star1_methods_are_bitwise_equal_to_scalar() {
    // Same canonical fma order everywhere ⇒ exactly zero difference.
    let s = S1d3p::heat();
    for isa in isas() {
        let init = grid1(257, 99);
        let mut reference = init.clone();
        run1_star1(Method::Scalar, isa, &mut reference, &s, 6).unwrap();
        for m in vec_methods() {
            let mut g = init.clone();
            run1_star1(m, isa, &mut g, &s, 6).unwrap();
            assert_eq!(
                max_abs_diff1(&g, &reference),
                0.0,
                "{m}/{isa} not bitwise-identical"
            );
        }
    }
}

fn grid2(nx: usize, ny: usize, ry: usize, seed: u64) -> Grid2 {
    let mut r = rng(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid2::from_fn(nx, ny, ry, halo, |_, _| r.random_range(-1.0..1.0))
}

#[test]
fn star2_2d5p_matches_scalar() {
    let s = S2d5p {
        wx: [0.22, 0.3, 0.18],
        wy: [0.12, 0.0, 0.15],
    };
    for isa in isas() {
        for (nx, ny) in [(9usize, 3usize), (64, 1), (70, 5), (150, 8)] {
            for t in [1usize, 2, 3, 4] {
                let init = grid2(nx, ny, 1, 5 + nx as u64);
                let mut reference = init.clone();
                run2_star(Method::Scalar, isa, &mut reference, &s, t).unwrap();
                for m in vec_methods() {
                    let mut g = init.clone();
                    run2_star(m, isa, &mut g, &s, t).unwrap();
                    assert_close2(
                        &g,
                        &reference,
                        TOL,
                        &format!("{m}/{isa}/nx={nx}/ny={ny}/t={t}"),
                    );
                }
            }
        }
    }
}

#[test]
fn box2_2d9p_matches_scalar() {
    let mut r = rng(11);
    let mut w = [0.0f64; 9];
    for x in w.iter_mut() {
        *x = r.random_range(0.0..0.12);
    }
    let s = S2d9p { w };
    for isa in isas() {
        for (nx, ny) in [(10usize, 2usize), (66, 4), (140, 6)] {
            for t in [1usize, 2, 3] {
                let init = grid2(nx, ny, 1, 77 + nx as u64);
                let mut reference = init.clone();
                run2_box(Method::Scalar, isa, &mut reference, &s, t).unwrap();
                for m in vec_methods() {
                    let mut g = init.clone();
                    run2_box(m, isa, &mut g, &s, t).unwrap();
                    assert_close2(
                        &g,
                        &reference,
                        TOL,
                        &format!("{m}/{isa}/nx={nx}/ny={ny}/t={t}"),
                    );
                }
            }
        }
    }
}

fn grid3(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3 {
    let mut r = rng(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid3::from_fn(nx, ny, nz, 1, halo, |_, _, _| r.random_range(-1.0..1.0))
}

#[test]
fn star3_3d7p_matches_scalar() {
    let s = S3d7p {
        wx: [0.11, 0.3, 0.13],
        wy: [0.1, 0.0, 0.12],
        wz: [0.09, 0.0, 0.08],
    };
    for isa in isas() {
        for (nx, ny, nz) in [(9usize, 2usize, 2usize), (70, 4, 3), (130, 3, 4)] {
            for t in [1usize, 2, 3] {
                let init = grid3(nx, ny, nz, 3 + nx as u64);
                let mut reference = init.clone();
                run3_star(Method::Scalar, isa, &mut reference, &s, t).unwrap();
                for m in vec_methods() {
                    let mut g = init.clone();
                    run3_star(m, isa, &mut g, &s, t).unwrap();
                    assert_close3(
                        &g,
                        &reference,
                        TOL,
                        &format!("{m}/{isa}/nx={nx}/ny={ny}/nz={nz}/t={t}"),
                    );
                }
            }
        }
    }
}

#[test]
fn box3_3d27p_matches_scalar() {
    let mut r = rng(23);
    let mut w = [0.0f64; 27];
    for x in w.iter_mut() {
        *x = r.random_range(0.0..0.04);
    }
    let s = S3d27p { w };
    for isa in isas() {
        for (nx, ny, nz) in [(9usize, 2usize, 2usize), (66, 3, 3), (129, 4, 2)] {
            for t in [1usize, 2, 3] {
                let init = grid3(nx, ny, nz, 17 + nx as u64);
                let mut reference = init.clone();
                run3_box(Method::Scalar, isa, &mut reference, &s, t).unwrap();
                for m in vec_methods() {
                    let mut g = init.clone();
                    run3_box(m, isa, &mut g, &s, t).unwrap();
                    assert_close3(
                        &g,
                        &reference,
                        TOL,
                        &format!("{m}/{isa}/nx={nx}/ny={ny}/nz={nz}/t={t}"),
                    );
                }
            }
        }
    }
}

#[test]
fn k2_equals_two_k1_steps_exactly() {
    // §3.3: the pipelined double step must equal two single steps — same
    // summation order by construction, hence bitwise.
    let s = S1d3p { w: [0.2, 0.6, 0.2] };
    for isa in isas() {
        for n in [64usize, 200, 513] {
            let init = grid1(n, 1000 + n as u64);
            let mut a = init.clone();
            run1_star1(Method::TransLayout, isa, &mut a, &s, 2).unwrap();
            let mut b = init.clone();
            run1_star1(Method::TransLayout2, isa, &mut b, &s, 2).unwrap();
            assert_eq!(max_abs_diff1(&a, &b), 0.0, "{isa}/n={n}");
        }
    }
}

#[test]
fn zero_steps_is_identity() {
    let s = S1d3p::heat();
    let init = grid1(100, 5);
    for m in Method::ALL {
        let mut g = init.clone();
        run1_star1(m, Isa::detect_best(), &mut g, &s, 0).unwrap();
        assert_eq!(max_abs_diff1(&g, &init), 0.0, "{m}");
    }
}

#[test]
fn halo_cells_never_updated() {
    let s = S1d3p::heat();
    for isa in isas() {
        for m in Method::ALL {
            let mut g = Grid1::from_fn(130, 7.25, |i| i as f64 * 0.01);
            run1_star1(m, isa, &mut g, &s, 5).unwrap();
            assert_eq!(g.get(-1), 7.25, "{m}/{isa} left halo");
            assert_eq!(g.get(130), 7.25, "{m}/{isa} right halo");
        }
    }
}

mod randomized {
    use super::*;

    /// Randomized sizes/steps/weights (deterministic seed; formerly a
    /// proptest, rewritten as an explicit loop so the workspace builds
    /// offline).
    #[test]
    fn star1_any_size_any_steps() {
        let mut r = rng(0x51A);
        let isa = Isa::detect_best();
        for case in 0..24 {
            let n = 3 + (r.next_u64() % 297) as usize;
            let t = 1 + (r.next_u64() % 5) as usize;
            let seed = r.next_u64() % 1000;
            let s = S1d3p {
                w: [
                    r.random_range(-0.4..0.4),
                    r.random_range(-0.4..0.4),
                    r.random_range(-0.4..0.4),
                ],
            };
            let init = grid1(n, seed);
            let mut reference = init.clone();
            run1_star1(Method::Scalar, isa, &mut reference, &s, t).unwrap();
            for m in vec_methods() {
                let mut g = init.clone();
                run1_star1(m, isa, &mut g, &s, t).unwrap();
                let d = max_abs_diff1(&g, &reference);
                assert!(
                    d == 0.0,
                    "case={case}: {m} differs by {d:.3e} (n={n}, t={t})"
                );
            }
        }
    }
}
