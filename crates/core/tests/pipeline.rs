//! Focused tests for the k = 2 unroll-and-jam machinery: the in-place
//! full-row pipeline (Algorithm 1), the tiled range pipeline, and the
//! 2D/3D ring pipelines — exercised on adversarial geometries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stencil_core::kernels::{scalar, tl, tl2};
use stencil_core::layout::{tl_grid1, SetGeo};
use stencil_core::verify::max_abs_diff1;
use stencil_core::{
    run1_star1, run2_box, run3_star, Grid1, Grid2, Grid3, Method, S1d3p, S1d5p, S2d9p, S3d7p,
};
use stencil_simd::{dispatch, Isa};

fn isas() -> Vec<Isa> {
    Isa::ALL.into_iter().filter(|i| i.is_available()).collect()
}

fn grid1(n: usize, seed: u64) -> Grid1 {
    let mut r = StdRng::seed_from_u64(seed);
    let halo = r.random_range(-1.0..1.0);
    Grid1::from_fn(n, halo, |_| r.random_range(-1.0..1.0))
}

/// The full-row pipeline at the minimum supported set count (2), with and
/// without tails, for both radii.
#[test]
fn pipeline_minimum_geometries() {
    for isa in isas() {
        let bs = isa.lanes() * isa.lanes();
        for n in [2 * bs, 2 * bs + 1, 2 * bs + isa.lanes(), 3 * bs - 1] {
            let s1 = S1d3p {
                w: [0.3, 0.4, 0.29],
            };
            let init = grid1(n, n as u64);
            let mut a = init.clone();
            run1_star1(Method::Scalar, isa, &mut a, &s1, 2).unwrap();
            let mut b = init.clone();
            run1_star1(Method::TransLayout2, isa, &mut b, &s1, 2).unwrap();
            assert_eq!(max_abs_diff1(&a, &b), 0.0, "{isa}/n={n}/r1");

            let s2 = S1d5p {
                w: [0.05, 0.2, 0.45, 0.22, 0.06],
            };
            let mut a = init.clone();
            run1_star1(Method::Scalar, isa, &mut a, &s2, 2).unwrap();
            let mut b = init.clone();
            run1_star1(Method::TransLayout2, isa, &mut b, &s2, 2).unwrap();
            assert_eq!(max_abs_diff1(&a, &b), 0.0, "{isa}/n={n}/r2");
        }
    }
}

/// Below two sets the API must fall back to k=1 stepping and stay exact.
#[test]
fn pipeline_fallback_below_two_sets() {
    for isa in isas() {
        let bs = isa.lanes() * isa.lanes();
        for n in [3, bs - 1, bs, bs + 3, 2 * bs - 1] {
            let s = S1d3p::heat();
            let init = grid1(n, 5);
            let mut a = init.clone();
            run1_star1(Method::Scalar, isa, &mut a, &s, 4).unwrap();
            let mut b = init.clone();
            run1_star1(Method::TransLayout2, isa, &mut b, &s, 4).unwrap();
            assert_eq!(max_abs_diff1(&a, &b), 0.0, "{isa}/n={n}");
        }
    }
}

/// The range pipeline over an interior window must equal two k=1 steps
/// over the same window, including the t+1 exports of its first/last sets.
#[test]
fn range_pipeline_matches_two_k1_steps() {
    let s = S1d3p {
        w: [0.25, 0.5, 0.24],
    };
    for isa in isas() {
        let l = isa.lanes();
        let bs = l * l;
        let nsets = 8usize;
        let n = nsets * bs + 7;
        let mut base = grid1(n, 99);
        tl_grid1(&mut base, isa);

        for (sa, sb) in [(0usize, 2usize), (1, 4), (3, 8), (0, 8)] {
            // Reference: two k=1 steps of the whole row.
            let mut ra = base.clone();
            let mut rb = base.clone();
            let n_ = n;
            let (pa, pb) = (ra.ptr_mut(), rb.ptr_mut());
            dispatch!(isa, V => {
                tl::star1_tl::<V, S1d3p>(pa as *const f64, pb, n_, 0, n_, &s);
                tl::star1_tl::<V, S1d3p>(pb as *const f64, pa, n_, 0, n_, &s);
            });

            // Range pipeline with margins prepared exactly like the tiled
            // driver: step-1 margins into parity B first.
            let mut ga = base.clone();
            let mut gb = base.clone();
            let (qa, qb) = (ga.ptr_mut(), gb.ptr_mut());
            let (a, b) = (sa * bs, sb * bs);
            dispatch!(isa, V => {
                tl::star1_tl::<V, S1d3p>(qa as *const f64, qb, n_, 0, a, &s);
                tl::star1_tl::<V, S1d3p>(qa as *const f64, qb, n_, b, n_, &s);
                tl2::star1_tl2_range::<V, S1d3p>(qa, qb, n_, sa, sb, &s);
                tl::star1_tl::<V, S1d3p>(qb as *const f64, qa, n_, 0, a, &s);
                tl::star1_tl::<V, S1d3p>(qb as *const f64, qa, n_, b, n_, &s);
            });
            // parity A holds t+2 everywhere
            assert_eq!(
                max_abs_diff1(&ga, &ra),
                0.0,
                "{isa}/sa={sa}/sb={sb} (t+2 values)"
            );
        }
    }
}

/// Ring pipelines: single-row and single-plane grids (every y/z neighbour
/// is a halo) and ny == 2R corner cases.
#[test]
fn ring_pipelines_thin_grids() {
    let isa = Isa::detect_best();
    let s = S2d9p {
        w: [0.1, 0.11, 0.09, 0.12, 0.08, 0.1, 0.11, 0.09, 0.1],
    };
    for ny in [1usize, 2, 3] {
        let mut r = StdRng::seed_from_u64(ny as u64);
        let init = Grid2::from_fn(70, ny, 1, 0.3, |_, _| r.random_range(-1.0..1.0));
        let mut a = init.clone();
        run2_box(Method::Scalar, isa, &mut a, &s, 4).unwrap();
        let mut b = init.clone();
        run2_box(Method::TransLayout2, isa, &mut b, &s, 4).unwrap();
        assert_eq!(stencil_core::verify::max_abs_diff2(&a, &b), 0.0, "ny={ny}");
    }
    let s3 = S3d7p::heat();
    for nz in [1usize, 2] {
        let mut r = StdRng::seed_from_u64(40 + nz as u64);
        let init = Grid3::from_fn(66, 2, nz, 1, -0.2, |_, _, _| r.random_range(-1.0..1.0));
        let mut a = init.clone();
        run3_star(Method::Scalar, isa, &mut a, &s3, 4).unwrap();
        let mut b = init.clone();
        run3_star(Method::TransLayout2, isa, &mut b, &s3, 4).unwrap();
        assert_eq!(stencil_core::verify::max_abs_diff3(&a, &b), 0.0, "nz={nz}");
    }
}

/// Long odd step counts: pairs of pipelined steps plus one trailing k=1.
#[test]
fn odd_step_counts_long_run() {
    let s = S1d3p::heat();
    for isa in isas() {
        let init = grid1(777, 1);
        for t in [1usize, 3, 9, 25] {
            let mut a = init.clone();
            run1_star1(Method::Scalar, isa, &mut a, &s, t).unwrap();
            let mut b = init.clone();
            run1_star1(Method::TransLayout2, isa, &mut b, &s, t).unwrap();
            assert_eq!(max_abs_diff1(&a, &b), 0.0, "{isa}/t={t}");
        }
    }
}

/// Pipeline correctness is not weight-dependent: stress with extreme and
/// signed weights (no stability requirement at t ≤ 2).
#[test]
fn pipeline_weight_stress() {
    for isa in isas() {
        for (i, w) in [
            [1e8, -2e8, 1e8],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0],
            [-1.0, 2.0, -1.0],
        ]
        .into_iter()
        .enumerate()
        {
            let s = S1d3p { w };
            let init = grid1(300, 7 + i as u64);
            let mut a = init.clone();
            run1_star1(Method::Scalar, isa, &mut a, &s, 2).unwrap();
            let mut b = init.clone();
            run1_star1(Method::TransLayout2, isa, &mut b, &s, 2).unwrap();
            assert_eq!(max_abs_diff1(&a, &b), 0.0, "{isa}/w={w:?}");
        }
    }
}

/// The tl k=1 kernel on arbitrary sub-ranges must agree with the scalar
/// kernel restricted to the same cells (everything else untouched).
#[test]
fn tl_subrange_updates_exactly_the_requested_cells() {
    let s = S1d3p {
        w: [0.2, 0.5, 0.28],
    };
    for isa in isas() {
        let n = 5 * isa.lanes() * isa.lanes() + 11;
        let mut src = grid1(n, 3);
        tl_grid1(&mut src, isa);
        let geo = SetGeo::new(n, isa.lanes());
        for (lo, hi) in [
            (0usize, n),
            (7, n - 3),
            (geo.bs, 3 * geo.bs),
            (1, geo.bs - 1),
        ] {
            let mut dst = Grid1::filled(n, -9.0);
            let (sp, dp) = (src.ptr(), dst.ptr_mut());
            dispatch!(isa, V => tl::star1_tl::<V, S1d3p>(sp, dp, n, lo, hi, &s));
            // compare against scalar on a natural-order copy
            let mut nat = src.clone();
            tl_grid1(&mut nat, isa);
            let mut want = Grid1::filled(n, -9.0);
            unsafe { scalar::star1_range(nat.ptr(), want.ptr_mut(), lo, hi, &s) };
            for i in 0..n {
                let got = unsafe { stencil_core::layout::tl_read(dst.ptr(), i as isize, &geo) };
                let expect = if (lo..hi).contains(&i) {
                    want.get(i as isize)
                } else {
                    -9.0
                };
                assert_eq!(got, expect, "{isa}/[{lo},{hi})/i={i}");
            }
        }
    }
}
