//! Compile-time auto-trait assertions for the execution engine.
//!
//! The service layer (`stencil-server`) moves plans, sessions, and grids
//! onto dispatcher threads, so `Send` is part of the public contract of
//! these types — not an accident of their current fields. If a future
//! change smuggles an `Rc`, a non-`Send` raw pointer, or a thread-bound
//! handle into any of them, this file stops compiling in CI instead of
//! breaking a downstream user at link- or run-time.

use stencil_core::exec::{DynPlan, DynSession, Plan, Plan1, Session1, Shape};
use stencil_core::{AnyGrid, Grid1, Grid2, Grid3, S1d3p, StencilSpec};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn engine_types_are_send() {
    // The plan builder and both plan surfaces (typed + erased).
    assert_send::<Plan>();
    assert_send::<Plan1<S1d3p>>();
    assert_send::<DynPlan>();
    // Sessions borrow the plan and the grid mutably; they are Send iff
    // both are, which is exactly what a dispatcher thread needs.
    assert_send::<Session1<'static, S1d3p>>();
    assert_send::<DynSession<'static>>();
    // Grids (the job payload the service layer ships between threads).
    assert_send::<Grid1>();
    assert_send::<Grid2<f32>>();
    assert_send::<Grid3>();
    assert_send::<AnyGrid>();
    // The cache key.
    assert_send::<StencilSpec>();
    assert_sync::<StencilSpec>();
}

#[test]
fn a_dyn_plan_actually_crosses_a_thread() {
    // The static assertion above plus one dynamic smoke test: build a
    // plan on this thread, run it on another, hand the grid back.
    let spec: StencilSpec = "1d3p".parse().unwrap();
    let n = 64;
    let mut plan = Plan::new(Shape::d1(n)).stencil(&spec).unwrap();
    let mut grid = AnyGrid::from_fn(Shape::d1(n), spec.radius(), 0.0, |_, _, x| x as f64);
    let mut expect = AnyGrid::from_fn(Shape::d1(n), spec.radius(), 0.0, |_, _, x| x as f64);
    let grid = std::thread::spawn(move || {
        plan.run(&mut grid, 3);
        grid
    })
    .join()
    .unwrap();
    Plan::new(Shape::d1(n))
        .stencil(&spec)
        .unwrap()
        .run(&mut expect, 3);
    let (a, b) = (grid.to_vec(), expect.to_vec());
    assert_eq!(a.len(), b.len());
    assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
}
