//! Wavefront-scheduler determinism suite.
//!
//! The tessellate/split drivers hand their tiles to the dependency-
//! counted wavefront scheduler (`core::exec::wave`), whose contract is
//! that **every admitted schedule is bit-identical to the sequential
//! tiled order**. This suite pins that contract end to end:
//!
//! * tiled-parallel ≡ tiled-sequential ≡ untiled oracle, to 0 ULP,
//! * across the six paper stencils × {dirichlet, periodic, reflect}
//!   × threads {1, 2, 7} × {Tessellate, Split},
//! * on non-divisible tile grids (every extent is chosen so the tile
//!   width does not divide it), and
//! * with a run-to-run determinism repeat (same plan, same input, many
//!   runs, exactly one output).
//!
//! The untiled oracle uses the *same* method as the tiled run, so a
//! failure here isolates the scheduler/tiling layer; cross-method and
//! vs-naive agreement is owned by `tests/boundary.rs`.

use stencil_core::exec::{Boundary, Parallelism, Plan, Shape, Tiling};
use stencil_core::grid::AnyGrid;
use stencil_core::spec::StencilSpec;
use stencil_core::Method;
use stencil_simd::Isa;

/// Deterministic pseudo-random interior (same seeded-`StdRng` idiom as
/// the sibling suites).
fn seeded(shape: Shape, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let [nx, ny, nz] = shape.dims();
    let cells = nx * ny.max(1) * nz.max(1);
    let mut r = StdRng::seed_from_u64(seed);
    (0..cells).map(|_| r.random_range(0.0..1.0)).collect()
}

/// Extents chosen so no tile width below divides them: non-divisible
/// tile grids exercise the shrunken last triangle and the uneven
/// stage-1 tiles.
fn shape_for(ndim: usize) -> Shape {
    match ndim {
        1 => Shape::d1(137),
        2 => Shape::d2(81, 13),
        _ => Shape::d3(70, 10, 7),
    }
}

/// The tiled configurations under test for one dimensionality:
/// tessellation over a natural-layout method and both transpose-layout
/// methods (which run the tile-resident staging arena — every tile
/// transposes its footprint in, computes the chunk, and writes natural
/// layout back), split over DLT (its required layout).
fn tilings(ndim: usize) -> Vec<(Method, Tiling)> {
    let tess = match ndim {
        1 => Tiling::Tessellate {
            w: [48, 0, 0],
            h: 2,
            threads: 1,
        },
        2 => Tiling::Tessellate {
            w: [32, 6, 0],
            h: 2,
            threads: 1,
        },
        _ => Tiling::Tessellate {
            w: [24, 6, 4],
            h: 2,
            threads: 1,
        },
    };
    let split = Tiling::Split {
        w: if ndim == 1 { 8 } else { 6 },
        h: 2,
        threads: 1,
    };
    vec![
        (Method::MultiLoad, tess),
        (Method::TransLayout, tess),
        (Method::TransLayout2, tess),
        (Method::Dlt, split),
    ]
}

const ALL_BOUNDARIES: [Boundary; 3] = [
    Boundary::Dirichlet(0.25),
    Boundary::Periodic,
    Boundary::Reflect,
];

/// One stencil through the full boundary × tiling × threads matrix:
/// the untiled sequential run of the same method is the oracle (itself
/// pinned to the scalar oracle below), the tiled sequential schedule
/// must match it exactly, and every parallel wavefront schedule must
/// match the tiled sequential one exactly.
fn check(name: &str) {
    let isa = Isa::detect_best();
    let t = 5; // odd (covers the final parity swap), > h (crosses chunks)
    for b in ALL_BOUNDARIES {
        let spec = name.parse::<StencilSpec>().unwrap().with_boundary(b);
        let shape = shape_for(spec.ndim());
        let init = seeded(shape, 0x57A7E ^ spec.points() as u64);
        let run_with = |method: Method, tiling: Option<Tiling>, par: Parallelism| -> Vec<f64> {
            let mut plan = Plan::new(shape).method(method).isa(isa);
            if let Some(tl) = tiling {
                plan = plan.tiling(tl);
            }
            let mut plan = plan
                .parallelism(par)
                .stencil(&spec)
                .unwrap_or_else(|e| panic!("{spec} {method} {par:?}: {e}"));
            let mut g = AnyGrid::from_vec_spec(shape, &spec, init.clone()).unwrap();
            plan.run(&mut g, t);
            g.to_vec()
        };
        let scalar = run_with(Method::Scalar, None, Parallelism::Off);
        for (method, tiling) in tilings(spec.ndim()) {
            let run = |tiling: Option<Tiling>, par: Parallelism| -> Vec<f64> {
                run_with(method, tiling, par)
            };
            let untiled = run(None, Parallelism::Off);
            assert_eq!(untiled, scalar, "untiled vs scalar oracle: {spec} {method}");
            let seq = run(Some(tiling), Parallelism::Off);
            assert_eq!(
                seq, untiled,
                "tiled-sequential vs untiled: {spec} {method} {tiling:?}"
            );
            for threads in [1, 2, 7] {
                let par = run(Some(tiling), Parallelism::Threads(threads));
                assert_eq!(
                    par, seq,
                    "wavefront vs tiled-sequential: {spec} {method} {tiling:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn wavefront_1d_paper_stencils() {
    check("1d3p");
    check("1d5p");
}

#[test]
fn wavefront_2d_paper_stencils() {
    check("2d5p");
    check("2d9p");
}

#[test]
fn wavefront_3d_paper_stencils() {
    check("3d7p");
    check("3d27p");
}

#[test]
fn tess_narrowing_keys_off_tile_extent() {
    // Under tessellation the transpose methods stage tile footprints,
    // so the extent that picks the register class is the staged tile
    // width (w + 2r), not the grid's. Portable8's vl²-cell sets span
    // 64 cells: a 30-wide tile stages 32-cell rows that cannot hold
    // even one set (let alone the two the rule asks for, so an
    // interior set exists), so the plan steps down to Portable4 —
    // while the untiled plan over the same 4096-cell grid and a
    // wide-tiled plan both keep the configured class.
    let shape = Shape::d1(4096);
    let spec: StencilSpec = "1d3p".parse().unwrap();
    let plan = |tiling: Option<Tiling>| {
        let mut p = Plan::new(shape)
            .method(Method::TransLayout)
            .isa(Isa::Portable8);
        if let Some(tl) = tiling {
            p = p.tiling(tl);
        }
        p.stencil(&spec).unwrap()
    };
    let tess = |w: usize| Tiling::Tessellate {
        w: [w, 0, 0],
        h: 2,
        threads: 1,
    };
    assert_eq!(plan(Some(tess(30))).isa(), Isa::Portable4);
    assert_eq!(plan(None).isa(), Isa::Portable8);
    assert_eq!(plan(Some(tess(2048))).isa(), Isa::Portable8);
}

#[test]
fn wavefront_runs_are_deterministic() {
    // Same plan object, same input, eight runs with a 7-thread pool on a
    // non-divisible tile grid: exactly one output. Scheduling jitter must
    // never reach the numbers.
    let isa = Isa::detect_best();
    for (name, method, tiling) in [
        (
            "2d5p@periodic",
            Method::TransLayout2,
            Tiling::Tessellate {
                w: [32, 6, 0],
                h: 2,
                threads: 1,
            },
        ),
        (
            "2d9p@reflect",
            Method::Dlt,
            Tiling::Split {
                w: 6,
                h: 2,
                threads: 1,
            },
        ),
    ] {
        let spec: StencilSpec = name.parse().unwrap();
        let shape = shape_for(2);
        let init = seeded(shape, 0xD1CE ^ spec.points() as u64);
        let mut plan = Plan::new(shape)
            .method(method)
            .isa(isa)
            .tiling(tiling)
            .parallelism(Parallelism::Threads(7))
            .stencil(&spec)
            .unwrap();
        let mut first: Option<Vec<f64>> = None;
        for rep in 0..8 {
            let mut g = AnyGrid::from_vec_spec(shape, &spec, init.clone()).unwrap();
            plan.run(&mut g, 5);
            let out = g.to_vec();
            match &first {
                None => first = Some(out),
                Some(want) => assert_eq!(&out, want, "{spec} {method} rep {rep}"),
            }
        }
    }
}
