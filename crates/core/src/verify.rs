//! Grid comparison utilities used by tests, examples, and the benchmark
//! harness's self-checks.

use crate::grid::{AnyGrid, Grid1, Grid2, Grid3};

/// Maximum absolute difference over the interiors of two 1D grids.
pub fn max_abs_diff1(a: &Grid1, b: &Grid1) -> f64 {
    assert_eq!(a.n(), b.n());
    a.interior()
        .iter()
        .zip(b.interior())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Maximum absolute difference over the interiors of two 2D grids.
pub fn max_abs_diff2(a: &Grid2, b: &Grid2) -> f64 {
    assert_eq!((a.nx(), a.ny()), (b.nx(), b.ny()));
    let mut m = 0.0f64;
    for y in 0..a.ny() {
        for (x, y2) in a.row(y).iter().zip(b.row(y)) {
            m = m.max((x - y2).abs());
        }
    }
    m
}

/// Maximum absolute difference over the interiors of two 3D grids.
pub fn max_abs_diff3(a: &Grid3, b: &Grid3) -> f64 {
    assert_eq!((a.nx(), a.ny(), a.nz()), (b.nx(), b.ny(), b.nz()));
    let mut m = 0.0f64;
    for z in 0..a.nz() {
        for y in 0..a.ny() {
            for x in 0..a.nx() {
                let (zi, yi, xi) = (z as isize, y as isize, x as isize);
                m = m.max((a.get(zi, yi, xi) - b.get(zi, yi, xi)).abs());
            }
        }
    }
    m
}

/// Maximum absolute difference over the interiors of two [`AnyGrid`]s
/// (erased API). Panics if the dimensionalities differ.
pub fn max_abs_diff_any(a: &AnyGrid, b: &AnyGrid) -> f64 {
    match (a, b) {
        (AnyGrid::D1(a), AnyGrid::D1(b)) => max_abs_diff1(a, b),
        (AnyGrid::D2(a), AnyGrid::D2(b)) => max_abs_diff2(a, b),
        (AnyGrid::D3(a), AnyGrid::D3(b)) => max_abs_diff3(a, b),
        _ => panic!(
            "cannot compare a {}D grid with a {}D grid",
            a.ndim(),
            b.ndim()
        ),
    }
}

/// Maximum absolute difference between an [`AnyGrid`]'s interior and a
/// flat row-major (x fastest) reference slice — the natural comparison
/// for naive reference implementations that live in plain vectors (e.g.
/// the boundary-condition oracles). Panics if the lengths differ.
pub fn max_abs_diff_ref(a: &AnyGrid, reference: &[f64]) -> f64 {
    let v = a.to_vec();
    assert_eq!(
        v.len(),
        reference.len(),
        "reference slice does not cover the grid interior"
    );
    v.iter()
        .zip(reference)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Largest interior magnitude of a 1D grid (scale for relative tolerances).
pub fn max_abs1(a: &Grid1) -> f64 {
    a.interior().iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// Panic with a helpful message unless two 1D grids agree within
/// `tol` (absolute, relative to the larger grid's scale).
pub fn assert_close1(a: &Grid1, b: &Grid1, tol: f64, ctx: &str) {
    let scale = max_abs1(a).max(max_abs1(b)).max(1.0);
    let d = max_abs_diff1(a, b);
    assert!(
        d <= tol * scale,
        "{ctx}: grids differ by {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"
    );
}

/// Panic unless two 2D grids agree within `tol` (scaled).
pub fn assert_close2(a: &Grid2, b: &Grid2, tol: f64, ctx: &str) {
    let mut scale = 1.0f64;
    for y in 0..a.ny() {
        for x in a.row(y) {
            scale = scale.max(x.abs());
        }
    }
    let d = max_abs_diff2(a, b);
    assert!(
        d <= tol * scale,
        "{ctx}: grids differ by {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"
    );
}

/// Panic unless two 3D grids agree within `tol` (scaled).
pub fn assert_close3(a: &Grid3, b: &Grid3, tol: f64, ctx: &str) {
    let d = max_abs_diff3(a, b);
    let mut scale = 1.0f64;
    for z in 0..a.nz() {
        for y in 0..a.ny() {
            for x in 0..a.nx() {
                scale = scale.max(a.get(z as isize, y as isize, x as isize).abs());
            }
        }
    }
    assert!(
        d <= tol * scale,
        "{ctx}: grids differ by {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"
    );
}
