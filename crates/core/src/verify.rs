//! Grid comparison utilities used by tests, examples, and the benchmark
//! harness's self-checks.

use stencil_simd::Elem;

use crate::grid::{AnyGrid, Grid1, Grid2, Grid3};

/// Maximum absolute difference over the interiors of two 1D grids
/// (any element type; differences are accumulated in `f64`).
pub fn max_abs_diff1<T: Elem>(a: &Grid1<T>, b: &Grid1<T>) -> f64 {
    assert_eq!(a.n(), b.n());
    a.interior()
        .iter()
        .zip(b.interior())
        .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// Maximum absolute difference over the interiors of two 2D grids.
pub fn max_abs_diff2<T: Elem>(a: &Grid2<T>, b: &Grid2<T>) -> f64 {
    assert_eq!((a.nx(), a.ny()), (b.nx(), b.ny()));
    let mut m = 0.0f64;
    for y in 0..a.ny() {
        for (x, y2) in a.row(y).iter().zip(b.row(y)) {
            m = m.max((x.to_f64() - y2.to_f64()).abs());
        }
    }
    m
}

/// Maximum absolute difference over the interiors of two 3D grids.
pub fn max_abs_diff3<T: Elem>(a: &Grid3<T>, b: &Grid3<T>) -> f64 {
    assert_eq!((a.nx(), a.ny(), a.nz()), (b.nx(), b.ny(), b.nz()));
    let mut m = 0.0f64;
    for z in 0..a.nz() {
        for y in 0..a.ny() {
            for x in 0..a.nx() {
                let (zi, yi, xi) = (z as isize, y as isize, x as isize);
                m = m.max((a.get(zi, yi, xi).to_f64() - b.get(zi, yi, xi).to_f64()).abs());
            }
        }
    }
    m
}

/// Maximum absolute difference over the interiors of two [`AnyGrid`]s
/// (erased API). Panics if the dimensionalities or element types differ.
pub fn max_abs_diff_any(a: &AnyGrid, b: &AnyGrid) -> f64 {
    match (a, b) {
        (AnyGrid::D1(a), AnyGrid::D1(b)) => max_abs_diff1(a, b),
        (AnyGrid::D2(a), AnyGrid::D2(b)) => max_abs_diff2(a, b),
        (AnyGrid::D3(a), AnyGrid::D3(b)) => max_abs_diff3(a, b),
        (AnyGrid::D1F32(a), AnyGrid::D1F32(b)) => max_abs_diff1(a, b),
        (AnyGrid::D2F32(a), AnyGrid::D2F32(b)) => max_abs_diff2(a, b),
        (AnyGrid::D3F32(a), AnyGrid::D3F32(b)) => max_abs_diff3(a, b),
        _ => panic!(
            "cannot compare a {}D {} grid with a {}D {} grid",
            a.ndim(),
            a.dtype(),
            b.ndim(),
            b.dtype()
        ),
    }
}

/// Maximum absolute difference between an [`AnyGrid`]'s interior and a
/// flat row-major (x fastest) reference slice — the natural comparison
/// for naive reference implementations that live in plain vectors (e.g.
/// the boundary-condition oracles). Panics if the lengths differ.
pub fn max_abs_diff_ref(a: &AnyGrid, reference: &[f64]) -> f64 {
    let v = a.to_vec();
    assert_eq!(
        v.len(),
        reference.len(),
        "reference slice does not cover the grid interior"
    );
    v.iter()
        .zip(reference)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Largest interior magnitude of a 1D grid (scale for relative tolerances).
pub fn max_abs1<T: Elem>(a: &Grid1<T>) -> f64 {
    a.interior()
        .iter()
        .fold(0.0f64, |m, x| m.max(x.to_f64().abs()))
}

/// Panic with a helpful message unless two 1D grids agree within
/// `tol` (absolute, relative to the larger grid's scale).
pub fn assert_close1<T: Elem>(a: &Grid1<T>, b: &Grid1<T>, tol: f64, ctx: &str) {
    let scale = max_abs1(a).max(max_abs1(b)).max(1.0);
    let d = max_abs_diff1(a, b);
    assert!(
        d <= tol * scale,
        "{ctx}: grids differ by {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"
    );
}

/// Panic unless two 2D grids agree within `tol` (scaled).
pub fn assert_close2<T: Elem>(a: &Grid2<T>, b: &Grid2<T>, tol: f64, ctx: &str) {
    let mut scale = 1.0f64;
    for y in 0..a.ny() {
        for x in a.row(y) {
            scale = scale.max(x.to_f64().abs());
        }
    }
    let d = max_abs_diff2(a, b);
    assert!(
        d <= tol * scale,
        "{ctx}: grids differ by {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"
    );
}

/// Panic unless two 3D grids agree within `tol` (scaled).
pub fn assert_close3<T: Elem>(a: &Grid3<T>, b: &Grid3<T>, tol: f64, ctx: &str) {
    let d = max_abs_diff3(a, b);
    let mut scale = 1.0f64;
    for z in 0..a.nz() {
        for y in 0..a.ny() {
            for x in 0..a.nx() {
                scale = scale.max(a.get(z as isize, y as isize, x as isize).to_f64().abs());
            }
        }
    }
    assert!(
        d <= tol * scale,
        "{ctx}: grids differ by {d:.3e} (scale {scale:.3e}, tol {tol:.1e})"
    );
}
