//! Tile-resident transposed staging for the tessellate drivers.
//!
//! Under `TransLayout`/`TransLayout2` the global grid used to live in
//! transposed layout, so every wavefront tile step re-entered the
//! `*_tl` kernels against grid-global vl² sets — tile ranges rarely
//! align with set boundaries, so small tiles paid the scalar
//! `tl_read`/`tl_write` edge path on most of their cells, every step.
//! Staging inverts that: the global grid stays **natural**, and each
//! tile transposes its radius-extended footprint into a per-worker
//! arena slot once per time chunk, runs all `hh` chunk steps against
//! tile-local set geometry (where the `*_tl` interiors are wide again
//! and the 1D TL2 fused pair applies), and transposes back once on
//! chunk exit — O(tiles) transpose traffic per chunk instead of
//! O(tiles × hh).
//!
//! # Arena lifetime and coherence
//!
//! The arena is built once at plan compile time from the tessellation
//! geometry (the widest per-dimension [`reach1`] extent over every tile
//! shape) and reused across chunks and runs like the ring/DLT scratch.
//! Each worker owns one slot holding **both** time parities; a tile
//! stages in both global ping-pong buffers because its reads at chunk
//! step `ss` come from the parity of `tau + ss`, and cells it never
//! rewrites (e.g. the TL2 pipeline's in-register interiors) must write
//! back exactly the values the unstaged schedule would have left there.
//! Write-back copies only the tile's *owned* per-row, per-parity span
//! (the union of the tile's step ranges landing on that parity), so
//! concurrent same-stage tiles never touch the same cells; overlapping
//! spans across stages are ordered by the wavefront's footprint edges,
//! exactly like the unstaged writes they replace.
//!
//! [`reach1`]: super::tess::reach1

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use stencil_simd::{dispatch_elem, AlignedBuf, Elem, Isa, Vector};

use super::tess::Shape;
use super::tile::DimTiling;
use crate::layout::tl_transform_row;

/// Wall-time totals (nanoseconds) accumulated by the tiled staged
/// drivers, split by phase — see `PhaseCounters`. Retrieved via the
/// plans' `phase_totals()` accessors and the `scaling` bin's
/// `--phases` flag.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Natural → tile-local transposed layout (chunk entry).
    pub stage_in_ns: u64,
    /// Kernel steps (staged tiles and edge-group members).
    pub compute_ns: u64,
    /// Tile-local transposed → natural write-back (chunk exit).
    pub stage_out_ns: u64,
    /// Whole-grid halo refreshes interleaved by the edge group.
    pub halo_ns: u64,
}

/// Cheap per-plan phase attribution for the tiled drivers: four atomic
/// nanosecond counters bumped once per tile phase / edge chunk-step, so
/// the staging win is measurable rather than inferred. Totals persist
/// across runs until [`PhaseCounters::reset`].
#[derive(Debug, Default)]
pub(crate) struct PhaseCounters {
    stage_in: AtomicU64,
    compute: AtomicU64,
    stage_out: AtomicU64,
    halo: AtomicU64,
}

impl PhaseCounters {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn add_stage_in(&self, since: Instant) {
        self.stage_in
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_compute(&self, since: Instant) {
        self.compute
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_stage_out(&self, since: Instant) {
        self.stage_out
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_halo(&self, since: Instant) {
        self.halo
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn totals(&self) -> PhaseTotals {
        PhaseTotals {
            stage_in_ns: self.stage_in.load(Ordering::Relaxed),
            compute_ns: self.compute.load(Ordering::Relaxed),
            stage_out_ns: self.stage_out.load(Ordering::Relaxed),
            halo_ns: self.halo.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.stage_in.store(0, Ordering::Relaxed);
        self.compute.store(0, Ordering::Relaxed);
        self.stage_out.store(0, Ordering::Relaxed);
        self.halo.store(0, Ordering::Relaxed);
    }
}

/// One worker's staging buffers: both time parities of the largest tile
/// footprint, plus reusable write-back span scratch.
pub(crate) struct ArenaSlot<T: Elem> {
    /// Ping-pong staged buffers, indexed by **global** time parity
    /// (`bufs[p]` mirrors the global buffer of parity `p`). Each buffer
    /// carries `T::PAD` extra elements (one 64-byte line) at both ends:
    /// the `*_tl` kernels' edge-set overhangs read raw cells `±r`
    /// around the transposed region of the first and last staged rows
    /// even when those lanes are discarded, so the pad keeps them
    /// in-allocation. Access goes through [`ArenaSlot::origin`].
    bufs: [AlignedBuf<T>; 2],
    /// Per-row owned write-back spans in local x coordinates, reused
    /// across tiles (`(u32::MAX, 0)` marks an empty row).
    pub(crate) spans: Vec<(u32, u32)>,
}

impl<T: Elem> ArenaSlot<T> {
    /// The staged origin of parity `p`: row 0's first interior element,
    /// one pad line into the allocation (still 64-byte aligned — the
    /// pad is exactly `T::PAD` elements).
    #[inline]
    pub(crate) fn origin(&mut self, p: usize) -> *mut T {
        unsafe { self.bufs[p].as_mut_ptr().add(T::PAD) }
    }
}

/// The per-plan staging arena: one [`ArenaSlot`] per pool worker, sized
/// at plan build time for the widest tile footprint the tessellation
/// can produce. The mutexes are uncontended (each wavefront worker
/// locks only its own slot); they exist to hand out `&mut` access from
/// the `&self` the drivers share across threads.
pub(crate) struct TileArena<T: Elem> {
    /// Staged row stride in elements (64-byte multiple, so every staged
    /// row starts cache-line-aligned for the in-register transpose).
    pub(crate) sxs: usize,
    /// Staged plane stride in elements (`sxs ×` max staged y-extent).
    pub(crate) sys: usize,
    slots: Vec<Mutex<ArenaSlot<T>>>,
}

impl<T: Elem> TileArena<T> {
    /// Size the arena for a tessellation: per dimension, the widest
    /// radius-extended reach over every tile shape (triangles absorb up
    /// to `n mod w` extra cells; inverted triangles grow with `h`).
    pub(crate) fn for_tess(dims: &[DimTiling], h: usize, r: usize, workers: usize) -> Self {
        let wmax: Vec<usize> = dims.iter().map(|d| max_reach_width(d, h, r)).collect();
        let sxs = wmax[0].div_ceil(T::PAD) * T::PAD;
        let hy = wmax.get(1).copied().unwrap_or(1);
        let hz = wmax.get(2).copied().unwrap_or(1);
        let sys = sxs * hy;
        // One pad line at each end for the kernels' raw edge-set reads
        // (see [`ArenaSlot::bufs`]).
        let len = sys * hz + 2 * T::PAD;
        let slots = (0..workers.max(1))
            .map(|_| {
                Mutex::new(ArenaSlot {
                    bufs: [AlignedBuf::zeroed(len), AlignedBuf::zeroed(len)],
                    spans: Vec::new(),
                })
            })
            .collect();
        TileArena { sxs, sys, slots }
    }

    /// Borrow worker `w`'s slot for the duration of one tile chunk.
    pub(crate) fn slot(&self, w: usize) -> MutexGuard<'_, ArenaSlot<T>> {
        self.slots[w % self.slots.len()]
            .lock()
            .expect("tile arena slot")
    }

    /// Bytes held by the staged buffers (for capacity introspection).
    #[allow(dead_code)]
    pub(crate) fn bytes(&self) -> usize {
        self.slots.len() * 2 * self.sys * std::mem::size_of::<T>()
    }
}

/// Widest radius-extended footprint any tile shape reaches along `d`
/// over a chunk of `h` steps.
fn max_reach_width(d: &DimTiling, h: usize, r: usize) -> usize {
    let mut w = 1i64;
    for inverted in [false, true] {
        for shape in Shape::all(d, inverted) {
            let (lo, hi) = super::tess::reach1(d, shape, h, r);
            w = w.max(hi - lo);
        }
    }
    w as usize
}

#[allow(clippy::too_many_arguments)]
unsafe fn stage_in_impl<V: Vector>(
    src: *const V::Elem,
    rs: usize,
    ps: usize,
    dst: *mut V::Elem,
    sxs: usize,
    sys: usize,
    wx: usize,
    cx: (usize, usize),
    cy: (usize, usize),
    cz: (usize, usize),
) {
    for z in cz.0..cz.1 {
        for y in cy.0..cy.1 {
            let s = src.add(z * ps + y * rs + cx.0);
            let d = dst.add(z * sys + y * sxs);
            std::ptr::copy_nonoverlapping(s, d.add(cx.0), cx.1 - cx.0);
            tl_transform_row::<V>(d, wx);
        }
    }
}

/// Copy the natural-layout sub-box `cz × cy × cx` (local coordinates)
/// of a tile footprint rooted at `src` (global row stride `rs`, plane
/// stride `ps`) into the arena rooted at `dst`, then transform every
/// touched staged row — full `wx` width — into tile-local transposed
/// layout for `isa`'s lane width. The copy box is per-parity tight:
/// cells outside it stay garbage in the arena, which is safe because
/// compute reads and write-back spans are subsets of the copied box
/// (and copying them would race with same-stage neighbors' write-backs
/// at this parity).
///
/// # Safety
/// `src` must be readable over the copy box (halo cells included),
/// `dst` writable over `cz.1 × sys` elements with `sxs ≥ wx ≥ cx.1`,
/// and staged rows 64-byte aligned (the arena guarantees this).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn stage_in<T: Elem>(
    isa: Isa,
    src: *const T,
    rs: usize,
    ps: usize,
    dst: *mut T,
    sxs: usize,
    sys: usize,
    wx: usize,
    cx: (usize, usize),
    cy: (usize, usize),
    cz: (usize, usize),
) {
    dispatch_elem!(
        isa,
        T,
        stage_in_impl::<V>(src, rs, ps, dst, sxs, sys, wx, cx, cy, cz)
    );
}

#[allow(clippy::too_many_arguments)]
unsafe fn unstage_impl<V: Vector>(
    arena: *mut V::Elem,
    sxs: usize,
    sys: usize,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    wx: usize,
    hy: usize,
    spans: &[(u32, u32)],
) {
    for (idx, &(x0, x1)) in spans.iter().enumerate() {
        if x0 >= x1 {
            continue;
        }
        let (z, y) = (idx / hy, idx % hy);
        let row = arena.add(z * sys + y * sxs);
        // The transform is an involution: one pass restores natural
        // order, then the owned span is a straight copy. Rows are only
        // ever listed once per parity, so in-place is safe.
        tl_transform_row::<V>(row, wx);
        std::ptr::copy_nonoverlapping(
            row.add(x0 as usize),
            dst.add(z * ps + y * rs + x0 as usize),
            (x1 - x0) as usize,
        );
    }
}

/// Write one parity of a staged tile back to the natural global grid:
/// rows with a non-empty owned span (indexed `z·hy + y`, local x
/// coordinates) are transformed back to natural order in place, then
/// the span is copied to `dst` (rooted at the tile's local origin).
///
/// # Safety
/// Same bounds contract as [`stage_in`]; spans must lie within
/// `[0, wx)` and rows must still hold the tile-local transposed layout
/// (each row is transformed exactly once per call).
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn unstage<T: Elem>(
    isa: Isa,
    arena: *mut T,
    sxs: usize,
    sys: usize,
    dst: *mut T,
    rs: usize,
    ps: usize,
    wx: usize,
    hy: usize,
    spans: &[(u32, u32)],
) {
    dispatch_elem!(
        isa,
        T,
        unstage_impl::<V>(arena, sxs, sys, dst, rs, ps, wx, hy, spans)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SetGeo;

    #[test]
    fn arena_sizing_covers_widest_reach() {
        // n=125, w=24 → last triangle base is 24 + 5 spare; with r=1 and
        // h=6 the widest tri reach is (24 + 5) + 2r and the widest inv
        // reach is 2·r·(h−1) + 2r.
        let d = DimTiling::new(125, 24, 1, true);
        let a = TileArena::<f64>::for_tess(&[d], 6, 1, 2);
        assert!(a.sxs >= 31, "sxs {} too small for widest triangle", a.sxs);
        assert_eq!(a.sxs % f64::PAD, 0);
        assert_eq!(a.sys, a.sxs);
        assert!(a.bytes() >= 2 * 2 * a.sxs * 8);
    }

    #[test]
    fn stage_roundtrip_is_identity_on_owned_span() {
        let isa = Isa::Portable4;
        let n = 53usize;
        let src: Vec<f64> = (0..n).map(|i| i as f64 + 0.25).collect();
        let sxs = n.div_ceil(f64::PAD) * f64::PAD;
        let mut arena = AlignedBuf::<f64>::zeroed(sxs);
        let mut out = vec![0.0f64; n];
        unsafe {
            stage_in::<f64>(
                isa,
                src.as_ptr(),
                0,
                0,
                arena.as_mut_ptr(),
                sxs,
                0,
                n,
                (0, n),
                (0, 1),
                (0, 1),
            );
            // Staged row really is in transposed layout.
            let g = SetGeo::new(n, isa.lanes_for::<f64>());
            for i in 0..n {
                assert_eq!(
                    crate::layout::tl_read(arena.as_ptr(), i as isize, &g),
                    src[i]
                );
            }
            unstage::<f64>(
                isa,
                arena.as_mut_ptr(),
                sxs,
                0,
                out.as_mut_ptr(),
                0,
                0,
                n,
                1,
                &[(3, 47)],
            );
        }
        for i in 0..n {
            let expect = if (3..47).contains(&i) { src[i] } else { 0.0 };
            assert_eq!(out[i], expect, "cell {i}");
        }
    }
}
