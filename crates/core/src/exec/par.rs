//! Parallel untiled drivers: spatial domain decomposition over the
//! persistent worker pool.
//!
//! A plan with [`super::Parallelism`] resolved to `k > 1` threads and no
//! temporal tiling partitions its grid into `k` contiguous subdomains
//! along the outermost dimension (`x` in 1D, `y` in 2D, `z` in 3D — DLT
//! plans partition the DLT *column space* instead, see below). Each time
//! step dispatches one work item per subdomain onto the pool; the
//! `for_each` barrier at the end of the step is the halo synchronization
//! point — the ping-pong source buffer is shared and immutable within a
//! step, so a subdomain's boundary reads (its halo rows) see the
//! neighbour's *previous-step* values by construction, and no cells are
//! ever exchanged or copied.
//!
//! Bit-exactness falls out of the same property the tessellate drivers
//! rely on: every kernel in this workspace produces identical bits for a
//! cell regardless of the range it was invoked over, so carving the
//! domain into bands (any bands) cannot change the result, and a fixed
//! band layout per plan makes parallel runs deterministic run-to-run.
//!
//! DLT (1D): the vector core runs over interior DLT columns `[R,
//! cols−R)`, which are seam-free and can be banded arbitrarily; the seam
//! columns (cross-lane reads through the index map) and the natural tail
//! strip form one extra scalar work item. 2D/3D DLT bands the outermost
//! dimension like the other methods, with full DLT rows inside — the same
//! hybrid the split-tiling driver uses.
//!
//! Non-Dirichlet [`Boundary`] conditions are **fused into the band work
//! items**: each band refreshes exactly the halo cells its own compute
//! reads (see `halo::refresh*_band`) immediately before computing, while
//! those cache lines are hot — there is no serial refresh pre-pass and
//! no extra barrier. Bands overlap by the stencil radius, so adjacent
//! bands may write the same halo cell; every writer derives the value
//! from the step's shared *source* interior (immutable within the step),
//! so all writes store bit-identical doubles and the overlap is a benign
//! race on identical values. The 1D DLT driver folds the refresh into
//! its scalar `Edges` item instead — the seam-free `Cols` items never
//! read halo cells.

use rayon::prelude::*;
use stencil_simd::{dispatch_elem, Elem, Isa};

use super::halo::{self, Boundary, RowMap};
use super::tess::{step1, step2_box, step2_star, step3_box, step3_star, SyncPtr};
use crate::api::Method;
use crate::kernels::dlt;
use crate::layout::DltGeo;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Split `[0, n)` into `k.min(n)` contiguous bands whose sizes differ by
/// at most one. Deterministic in `(n, k)`, which (with a fixed thread
/// count in the plan) makes parallel runs reproducible bit-for-bit.
pub(crate) fn bands(n: usize, k: usize) -> Vec<(usize, usize)> {
    let k = k.max(1).min(n.max(1));
    let (base, rem) = (n / k, n % k);
    let mut out = Vec::with_capacity(k);
    let mut lo = 0;
    for b in 0..k {
        let hi = lo + base + usize::from(b < rem);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Step `t` levels of a 1D stencil (any non-DLT method) over pre-prepared
/// ping-pong buffers, one band per pool thread, barrier per step. The
/// step-`t` result lands in `bufs[t % 2]` — the caller owns the parity
/// swap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive1<T: Elem, S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    n: usize,
    t: usize,
    s: &S,
    pool: &rayon::ThreadPool,
    nthreads: usize,
    b: Boundary,
) {
    let bands = bands(n, nthreads);
    let map = RowMap::for_method::<T>(method, isa, n);
    pool.install(|| {
        for time in 0..t {
            bands.clone().into_par_iter().for_each(|(lo, hi)| {
                // Fused wrap/mirror refresh of the halo cells this band
                // reads (no-op under Dirichlet); overlapping bands write
                // identical bits from the shared immutable source.
                unsafe { halo::refresh1_band(bufs[time % 2].0, n, S::R, b, &map, lo, hi) };
                step1(method, isa, bufs, n, lo, hi, time, s);
            });
        }
    });
}

/// One work item of the decomposed 1D DLT step.
#[derive(Copy, Clone)]
enum DltItem {
    /// Seam-free vector columns `[j0, j1)`.
    Cols(usize, usize),
    /// The scalar remainder: seam columns of every lane + the tail strip.
    Edges,
}

/// Step `t` levels of a 1D star stencil over pre-transformed DLT staging
/// buffers, banded in DLT column space. Caller guarantees
/// `geo.cols > 2·R` (the plan falls back to sequential stepping below
/// that). The step-`t` result lands in `bufs[t % 2]`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive1_dlt<T: Elem, S: Star1>(
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    geo: &DltGeo,
    t: usize,
    s: &S,
    pool: &rayon::ThreadPool,
    nthreads: usize,
    b: Boundary,
) {
    let r = S::R;
    let map = RowMap::Dlt(*geo);
    let mut items: Vec<DltItem> = bands(geo.cols - 2 * r, nthreads)
        .into_iter()
        .map(|(lo, hi)| DltItem::Cols(r + lo, r + hi))
        .collect();
    items.push(DltItem::Edges);
    pool.install(|| {
        for time in 0..t {
            items.clone().into_par_iter().for_each(|item| unsafe {
                let src = bufs[time % 2].0.cast_const();
                let dst = bufs[(time + 1) % 2].0;
                match item {
                    DltItem::Cols(j0, j1) => {
                        dispatch_elem!(isa, T, dlt::star1_dlt_cols::<V, S>(src, dst, j0, j1, s));
                    }
                    DltItem::Edges => {
                        // The interior Cols items are seam-free and never
                        // read halo cells, so the wrap/mirror refresh is
                        // fused into the one item that does.
                        halo::refresh1(bufs[time % 2].0, geo.n, S::R, b, &map);
                        dlt::star1_dlt_seams(src, dst, geo, s);
                        dlt::star1_dlt_scalar(src, dst, geo.region, geo.n, geo, s);
                    }
                }
            });
        }
    });
}

macro_rules! drive2_impl {
    ($name:ident, $bound:ident, $step:ident, $dlt_k:ident) => {
        /// Step `t` levels of a 2D stencil over pre-prepared ping-pong
        /// buffers, one `y`-band per pool thread, barrier per step. DLT
        /// plans step full DLT rows inside each band. The step-`t` result
        /// lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<T: Elem, S: $bound>(
            method: Method,
            isa: Isa,
            bufs: [SyncPtr<T>; 2],
            rs: usize,
            nx: usize,
            ny: usize,
            t: usize,
            s: &S,
            pool: &rayon::ThreadPool,
            nthreads: usize,
            b: Boundary,
        ) {
            let bands = bands(ny, nthreads);
            let map = RowMap::for_method::<T>(method, isa, nx);
            pool.install(|| {
                for time in 0..t {
                    bands.clone().into_par_iter().for_each(|(y0, y1)| {
                        // Fused wrap/mirror refresh of the rows this band
                        // reads (no-op under Dirichlet); seam overlaps
                        // write identical bits from the shared source.
                        unsafe {
                            halo::refresh2_band(bufs[time % 2].0, rs, nx, ny, S::R, b, &map, y0, y1)
                        };
                        if method == Method::Dlt {
                            let src = bufs[time % 2].0.cast_const();
                            let dst = bufs[(time + 1) % 2].0;
                            dispatch_elem!(
                                isa,
                                T,
                                dlt::$dlt_k::<V, S>(src, dst, rs, nx, y0, y1, s)
                            );
                        } else {
                            $step(method, isa, bufs, rs, nx, (y0, y1), (0, nx), time, s);
                        }
                    });
                }
            });
        }
    };
}

drive2_impl!(drive2_star, Star2, step2_star, star2_dlt);
drive2_impl!(drive2_box, Box2, step2_box, box2_dlt);

macro_rules! drive3_impl {
    ($name:ident, $bound:ident, $step:ident, $dlt_k:ident) => {
        /// Step `t` levels of a 3D stencil over pre-prepared ping-pong
        /// buffers, one `z`-band per pool thread, barrier per step. DLT
        /// plans step full DLT rows inside each band. The step-`t` result
        /// lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<T: Elem, S: $bound>(
            method: Method,
            isa: Isa,
            bufs: [SyncPtr<T>; 2],
            rs: usize,
            ps: usize,
            nx: usize,
            ny: usize,
            nz: usize,
            t: usize,
            s: &S,
            pool: &rayon::ThreadPool,
            nthreads: usize,
            b: Boundary,
        ) {
            let bands = bands(nz, nthreads);
            let map = RowMap::for_method::<T>(method, isa, nx);
            pool.install(|| {
                for time in 0..t {
                    bands.clone().into_par_iter().for_each(|(z0, z1)| {
                        // Fused wrap/mirror refresh of the planes this
                        // band reads (no-op under Dirichlet); seam
                        // overlaps write identical bits.
                        unsafe {
                            halo::refresh3_band(
                                bufs[time % 2].0,
                                rs,
                                ps,
                                nx,
                                ny,
                                nz,
                                S::R,
                                b,
                                &map,
                                z0,
                                z1,
                            )
                        };
                        if method == Method::Dlt {
                            let src = bufs[time % 2].0.cast_const();
                            let dst = bufs[(time + 1) % 2].0;
                            dispatch_elem!(
                                isa,
                                T,
                                dlt::$dlt_k::<V, S>(src, dst, rs, ps, nx, ny, z0, z1, s)
                            );
                        } else {
                            $step(
                                method,
                                isa,
                                bufs,
                                rs,
                                ps,
                                nx,
                                (z0, z1),
                                (0, ny),
                                (0, nx),
                                time,
                                s,
                            );
                        }
                    });
                }
            });
        }
    };
}

drive3_impl!(drive3_star, Star3, step3_star, star3_dlt);
drive3_impl!(drive3_box, Box3, step3_box, box3_dlt);

#[cfg(test)]
mod tests {
    use super::bands;

    #[test]
    fn bands_partition_exactly() {
        for (n, k) in [(10usize, 3usize), (7, 7), (5, 8), (1, 4), (64, 1), (257, 6)] {
            let b = bands(n, k);
            assert_eq!(b.len(), k.min(n));
            assert_eq!(b.first().unwrap().0, 0);
            assert_eq!(b.last().unwrap().1, n);
            for w in b.windows(2) {
                assert_eq!(w[0].1, w[1].0, "bands must tile contiguously");
            }
            let sizes: Vec<usize> = b.iter().map(|(lo, hi)| hi - lo).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} k={k}: uneven bands {sizes:?}");
        }
    }
}
