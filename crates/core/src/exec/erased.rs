//! The type-erased plan surface: [`DynPlan`] / [`DynSession`] over a
//! runtime [`StencilSpec`].
//!
//! The typed terminals ([`Plan::star1`] … [`Plan::box3`]) return five
//! different plan types, one per stencil family — zero-overhead, but a
//! caller that picks the stencil at runtime ends up writing a 5-way
//! match everywhere a plan flows. [`Plan::stencil`] erases that axis:
//! the spec's `(shape, ndim, radius)` is matched **once, at compile
//! time of the plan**, re-attaching the runtime weights to a
//! const-radius carrier type and boxing the resulting typed plan behind
//! a vtable. Every hot loop below the erasure boundary is the same
//! fully monomorphized kernel the typed path runs — the only dynamic
//! dispatch is one virtual call per `run`/`session` invocation, so
//! results are bit-identical to the typed plans and the steady-state
//! cost is unmeasurable (see the `plan_reuse` bench's `dyn_session`
//! row).
//!
//! ```
//! use stencil_core::exec::{Plan, Shape};
//! use stencil_core::grid::AnyGrid;
//! use stencil_core::spec::StencilSpec;
//!
//! // Strings + numbers at runtime → a running plan, no generics named.
//! let spec: StencilSpec = "2d5p".parse().unwrap();
//! let shape = Shape::d2(320, 200);
//! let mut plan = Plan::new(shape).stencil(&spec).unwrap();
//! let mut grid = AnyGrid::from_fn(shape, spec.radius(), 0.0, |_, y, x| {
//!     (x + y) as f64
//! });
//! plan.run(&mut grid, 4); // one-shot
//!
//! let mut sess = plan.session(&mut grid); // layout-resident
//! sess.run(2);
//! sess.run(2);
//! drop(sess);
//! # assert_eq!(grid.ndim(), 2);
//! ```

use stencil_simd::{Dtype, Elem, Isa};

use super::{
    Boundary, Method, Parallelism, PhaseTotals, Plan, Plan1, Plan2Box, Plan2Star, Plan3Box,
    Plan3Star, PlanError, Session1, Session2Box, Session2Star, Session3Box, Session3Star, Shape,
    Tiling,
};
use crate::grid::{AnyGrid, Grid1, Grid2, Grid3};
use crate::spec::{DynBox2, DynBox3, DynStar1, DynStar2, DynStar3, StencilShape, StencilSpec};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// A mutable borrow of a grid of any dimensionality — what the erased
/// entry points ([`DynPlan::run`], [`DynPlan::session`]) accept.
///
/// Both worlds convert in via `From`: `&mut AnyGrid` for fully dynamic
/// callers, and `&mut Grid1`/`Grid2`/`Grid3` so typed containers can be
/// driven by an erased plan without re-wrapping.
pub enum AnyGridMut<'a> {
    /// A borrowed 1D `f64` grid.
    D1(&'a mut Grid1),
    /// A borrowed 2D `f64` grid.
    D2(&'a mut Grid2),
    /// A borrowed 3D `f64` grid.
    D3(&'a mut Grid3),
    /// A borrowed 1D `f32` grid.
    D1F32(&'a mut Grid1<f32>),
    /// A borrowed 2D `f32` grid.
    D2F32(&'a mut Grid2<f32>),
    /// A borrowed 3D `f32` grid.
    D3F32(&'a mut Grid3<f32>),
}

impl AnyGridMut<'_> {
    /// Number of spatial dimensions (1–3).
    pub fn ndim(&self) -> usize {
        match self {
            AnyGridMut::D1(_) | AnyGridMut::D1F32(_) => 1,
            AnyGridMut::D2(_) | AnyGridMut::D2F32(_) => 2,
            AnyGridMut::D3(_) | AnyGridMut::D3F32(_) => 3,
        }
    }

    /// The element type the borrowed grid carries.
    pub fn dtype(&self) -> Dtype {
        match self {
            AnyGridMut::D1(_) | AnyGridMut::D2(_) | AnyGridMut::D3(_) => Dtype::F64,
            AnyGridMut::D1F32(_) | AnyGridMut::D2F32(_) | AnyGridMut::D3F32(_) => Dtype::F32,
        }
    }

    /// The borrowed grid's interior extents as a [`Shape`].
    pub fn shape(&self) -> Shape {
        match self {
            AnyGridMut::D1(g) => Shape::d1(g.n()),
            AnyGridMut::D2(g) => Shape::d2(g.nx(), g.ny()),
            AnyGridMut::D3(g) => Shape::d3(g.nx(), g.ny(), g.nz()),
            AnyGridMut::D1F32(g) => Shape::d1(g.n()),
            AnyGridMut::D2F32(g) => Shape::d2(g.nx(), g.ny()),
            AnyGridMut::D3F32(g) => Shape::d3(g.nx(), g.ny(), g.nz()),
        }
    }
}

impl<'a> From<&'a mut Grid1> for AnyGridMut<'a> {
    fn from(g: &'a mut Grid1) -> Self {
        AnyGridMut::D1(g)
    }
}

impl<'a> From<&'a mut Grid2> for AnyGridMut<'a> {
    fn from(g: &'a mut Grid2) -> Self {
        AnyGridMut::D2(g)
    }
}

impl<'a> From<&'a mut Grid3> for AnyGridMut<'a> {
    fn from(g: &'a mut Grid3) -> Self {
        AnyGridMut::D3(g)
    }
}

impl<'a> From<&'a mut Grid1<f32>> for AnyGridMut<'a> {
    fn from(g: &'a mut Grid1<f32>) -> Self {
        AnyGridMut::D1F32(g)
    }
}

impl<'a> From<&'a mut Grid2<f32>> for AnyGridMut<'a> {
    fn from(g: &'a mut Grid2<f32>) -> Self {
        AnyGridMut::D2F32(g)
    }
}

impl<'a> From<&'a mut Grid3<f32>> for AnyGridMut<'a> {
    fn from(g: &'a mut Grid3<f32>) -> Self {
        AnyGridMut::D3F32(g)
    }
}

impl<'a> From<&'a mut AnyGrid> for AnyGridMut<'a> {
    fn from(g: &'a mut AnyGrid) -> Self {
        match g {
            AnyGrid::D1(g) => AnyGridMut::D1(g),
            AnyGrid::D2(g) => AnyGridMut::D2(g),
            AnyGrid::D3(g) => AnyGridMut::D3(g),
            AnyGrid::D1F32(g) => AnyGridMut::D1F32(g),
            AnyGrid::D2F32(g) => AnyGridMut::D2F32(g),
            AnyGrid::D3F32(g) => AnyGridMut::D3F32(g),
        }
    }
}

/// Object-safe face of the five typed plan types. The method names are
/// prefixed to stay distinct from the inherent accessors they forward
/// to.
trait ErasedPlan: Send {
    fn run_any(&mut self, g: AnyGridMut<'_>, t: usize);
    fn session_any<'p>(&'p mut self, g: AnyGridMut<'p>) -> Box<dyn ErasedSession + 'p>;
    fn plan_method(&self) -> Method;
    fn plan_isa(&self) -> Isa;
    fn plan_tiling(&self) -> Tiling;
    fn plan_parallelism(&self) -> Parallelism;
    fn plan_threads(&self) -> usize;
    fn plan_shape(&self) -> Shape;
    fn plan_boundary(&self) -> Boundary;
    fn plan_phase_totals(&self) -> PhaseTotals;
    fn plan_reset_phase_totals(&self);
}

/// Object-safe face of the five typed session types. `Send` is a
/// supertrait (like [`ErasedPlan`]'s) so [`DynSession`] stays movable
/// across threads — the service layer in `stencil-server` runs sessions
/// on dispatcher threads, and `crates/core/tests/auto_traits.rs` pins
/// the guarantee at compile time.
trait ErasedSession: Send {
    fn run_steps(&mut self, t: usize);
}

macro_rules! erased_impl {
    ($Plan:ident, $Session:ident, $bound:ident, $ty:ty, $var:ident, $ndim:literal) => {
        impl<S: $bound> ErasedPlan for $Plan<S, $ty> {
            fn run_any(&mut self, g: AnyGridMut<'_>, t: usize) {
                let AnyGridMut::$var(g) = g else {
                    panic!(
                        "plan was compiled for a {}D {} stencil but the grid is {}D {}",
                        $ndim,
                        <$ty as Elem>::DTYPE,
                        g.ndim(),
                        g.dtype()
                    )
                };
                self.run(g, t);
            }

            fn session_any<'p>(&'p mut self, g: AnyGridMut<'p>) -> Box<dyn ErasedSession + 'p> {
                let AnyGridMut::$var(g) = g else {
                    panic!(
                        "plan was compiled for a {}D {} stencil but the grid is {}D {}",
                        $ndim,
                        <$ty as Elem>::DTYPE,
                        g.ndim(),
                        g.dtype()
                    )
                };
                Box::new(self.session(g))
            }

            fn plan_method(&self) -> Method {
                self.method()
            }
            fn plan_isa(&self) -> Isa {
                self.isa()
            }
            fn plan_tiling(&self) -> Tiling {
                self.tiling()
            }
            fn plan_parallelism(&self) -> Parallelism {
                self.parallelism()
            }
            fn plan_threads(&self) -> usize {
                self.threads()
            }
            fn plan_shape(&self) -> Shape {
                self.shape()
            }
            fn plan_boundary(&self) -> Boundary {
                self.boundary()
            }
            fn plan_phase_totals(&self) -> PhaseTotals {
                self.phase_totals()
            }
            fn plan_reset_phase_totals(&self) {
                self.reset_phase_totals()
            }
        }

        impl<S: $bound> ErasedSession for $Session<'_, S, $ty> {
            fn run_steps(&mut self, t: usize) {
                self.run(t)
            }
        }
    };
}

erased_impl!(Plan1, Session1, Star1, f64, D1, 1);
erased_impl!(Plan2Star, Session2Star, Star2, f64, D2, 2);
erased_impl!(Plan2Box, Session2Box, Box2, f64, D2, 2);
erased_impl!(Plan3Star, Session3Star, Star3, f64, D3, 3);
erased_impl!(Plan3Box, Session3Box, Box3, f64, D3, 3);
erased_impl!(Plan1, Session1, Star1, f32, D1F32, 1);
erased_impl!(Plan2Star, Session2Star, Star2, f32, D2F32, 2);
erased_impl!(Plan2Box, Session2Box, Box2, f32, D2F32, 2);
erased_impl!(Plan3Star, Session3Star, Star3, f32, D3F32, 3);
erased_impl!(Plan3Box, Session3Box, Box3, f32, D3F32, 3);

/// A compiled execution plan whose stencil was described at runtime by
/// a [`StencilSpec`] — the type-erased sibling of [`Plan1`],
/// [`Plan2Star`], …
///
/// Built by [`Plan::stencil`]. Internally this *is* one of the typed
/// plans (the spec's family and radius select the instantiation), so
/// buffers, pool, validation, and the kernels themselves are exactly
/// the typed machinery; see the [module docs](self) for the dispatch
/// accounting.
pub struct DynPlan {
    inner: Box<dyn ErasedPlan + Send>,
    spec: StencilSpec,
}

impl std::fmt::Debug for DynPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynPlan")
            .field("spec", &self.spec.to_string())
            .field("method", &self.method())
            .field("isa", &self.isa())
            .field("tiling", &self.tiling())
            .field("shape", &self.shape())
            .finish_non_exhaustive()
    }
}

impl DynPlan {
    /// Run `t` Jacobi steps on `g` (natural layout in, natural layout
    /// out), like the typed `run`. Accepts `&mut AnyGrid` or a typed
    /// `&mut Grid1`/`Grid2`/`Grid3`.
    ///
    /// # Panics
    /// If the grid's dimensionality or extents do not match the shape
    /// the plan was compiled for (same contract as the typed plans).
    pub fn run<'a>(&mut self, g: impl Into<AnyGridMut<'a>>, t: usize) {
        self.inner.run_any(g.into(), t);
    }

    /// Open a layout-resident stepping session on `g`; see
    /// [`Plan1::session`]. Dropping the [`DynSession`] restores natural
    /// order.
    ///
    /// # Panics
    /// If the grid does not match the plan's shape (see
    /// [`DynPlan::run`]).
    pub fn session<'p>(&'p mut self, g: impl Into<AnyGridMut<'p>>) -> DynSession<'p> {
        DynSession {
            inner: self.inner.session_any(g.into()),
        }
    }

    /// The stencil description this plan was compiled from.
    pub fn spec(&self) -> &StencilSpec {
        &self.spec
    }

    /// The element type the plan's grids carry (from the spec's
    /// [`StencilSpec::dtype`]).
    pub fn dtype(&self) -> Dtype {
        self.spec.dtype()
    }

    /// The plan's vectorization method.
    pub fn method(&self) -> Method {
        self.inner.plan_method()
    }

    /// The plan's instruction set.
    pub fn isa(&self) -> Isa {
        self.inner.plan_isa()
    }

    /// The plan's tiling framework.
    pub fn tiling(&self) -> Tiling {
        self.inner.plan_tiling()
    }

    /// The plan's parallelism knob.
    pub fn parallelism(&self) -> Parallelism {
        self.inner.plan_parallelism()
    }

    /// Worker count the parallelism knob resolved to at build time (≥ 1).
    pub fn threads(&self) -> usize {
        self.inner.plan_threads()
    }

    /// The shape the plan was compiled for.
    pub fn shape(&self) -> Shape {
        self.inner.plan_shape()
    }

    /// The plan's boundary condition (resolved from the spec's
    /// [`StencilSpec::boundary`] unless an explicit [`Plan::boundary`]
    /// knob overrode it).
    pub fn boundary(&self) -> Boundary {
        self.inner.plan_boundary()
    }

    /// Accumulated per-phase wall time for the tiled (staged) drivers;
    /// all-zero for plans that never enter a staged tessellation path.
    pub fn phase_totals(&self) -> PhaseTotals {
        self.inner.plan_phase_totals()
    }

    /// Zero the per-phase counters (e.g. between measured repetitions).
    pub fn reset_phase_totals(&self) {
        self.inner.plan_reset_phase_totals()
    }
}

/// Layout-resident stepping session opened by [`DynPlan::session`] —
/// the erased sibling of [`Session1`], [`Session2Star`], … Dropping it
/// restores the grid to natural order.
pub struct DynSession<'p> {
    inner: Box<dyn ErasedSession + 'p>,
}

impl DynSession<'_> {
    /// Advance the grid `t` Jacobi steps (no allocation, no layout
    /// transform — see [`Session1::run`]).
    pub fn run(&mut self, t: usize) {
        self.inner.run_steps(t);
    }
}

impl Plan {
    /// Compile the plan against a runtime stencil description,
    /// producing a type-erased [`DynPlan`].
    ///
    /// The spec's family and radius select one of the typed plan
    /// instantiations internally, so validation and errors are
    /// identical to the matching typed terminal (plus nothing: specs
    /// are already validated at construction). Results are
    /// bit-identical to the typed path.
    ///
    /// The spec's [`StencilSpec::boundary`] becomes the plan's
    /// [`Boundary`] unless an explicit [`Plan::boundary`] call already
    /// chose one (the builder knob wins).
    pub fn stencil(self, spec: &StencilSpec) -> Result<DynPlan, PlanError> {
        let resolved = Plan {
            boundary: Some(self.boundary.unwrap_or_else(|| spec.boundary())),
            ..self
        };
        // The match below instantiates one carrier per (dtype, family,
        // radius) with radii written out literally; raising MAX_R must
        // extend it or validated specs would hit the unreachable arm at
        // runtime. The f32 rows double the instantiation count — that is
        // a cold-build (compile-time) cost only; each runtime plan still
        // monomorphizes exactly one carrier.
        const _: () = assert!(
            crate::stencil::MAX_R == 4,
            "extend the radius arms in Plan::stencil for the new MAX_R"
        );
        macro_rules! arm {
            ($terminal:ident, $T:ty, $Carrier:ident, $r:literal) => {
                Box::new(resolved.$terminal::<$T, _>($Carrier::<$r>::new(spec))?)
                    as Box<dyn ErasedPlan + Send>
            };
        }
        use stencil_simd::Dtype::{F32, F64};
        use StencilShape::{Box as BoxS, Star};
        let inner = match (spec.dtype(), spec.shape(), spec.ndim(), spec.radius()) {
            (F64, Star, 1, 1) => arm!(star1_elem, f64, DynStar1, 1),
            (F64, Star, 1, 2) => arm!(star1_elem, f64, DynStar1, 2),
            (F64, Star, 1, 3) => arm!(star1_elem, f64, DynStar1, 3),
            (F64, Star, 1, 4) => arm!(star1_elem, f64, DynStar1, 4),
            (F64, Star, 2, 1) => arm!(star2_elem, f64, DynStar2, 1),
            (F64, Star, 2, 2) => arm!(star2_elem, f64, DynStar2, 2),
            (F64, Star, 2, 3) => arm!(star2_elem, f64, DynStar2, 3),
            (F64, Star, 2, 4) => arm!(star2_elem, f64, DynStar2, 4),
            (F64, Star, 3, 1) => arm!(star3_elem, f64, DynStar3, 1),
            (F64, Star, 3, 2) => arm!(star3_elem, f64, DynStar3, 2),
            (F64, Star, 3, 3) => arm!(star3_elem, f64, DynStar3, 3),
            (F64, Star, 3, 4) => arm!(star3_elem, f64, DynStar3, 4),
            (F64, BoxS, 2, 1) => arm!(box2_elem, f64, DynBox2, 1),
            (F64, BoxS, 2, 2) => arm!(box2_elem, f64, DynBox2, 2),
            (F64, BoxS, 2, 3) => arm!(box2_elem, f64, DynBox2, 3),
            (F64, BoxS, 2, 4) => arm!(box2_elem, f64, DynBox2, 4),
            (F64, BoxS, 3, 1) => arm!(box3_elem, f64, DynBox3, 1),
            (F64, BoxS, 3, 2) => arm!(box3_elem, f64, DynBox3, 2),
            (F64, BoxS, 3, 3) => arm!(box3_elem, f64, DynBox3, 3),
            (F64, BoxS, 3, 4) => arm!(box3_elem, f64, DynBox3, 4),
            (F32, Star, 1, 1) => arm!(star1_elem, f32, DynStar1, 1),
            (F32, Star, 1, 2) => arm!(star1_elem, f32, DynStar1, 2),
            (F32, Star, 1, 3) => arm!(star1_elem, f32, DynStar1, 3),
            (F32, Star, 1, 4) => arm!(star1_elem, f32, DynStar1, 4),
            (F32, Star, 2, 1) => arm!(star2_elem, f32, DynStar2, 1),
            (F32, Star, 2, 2) => arm!(star2_elem, f32, DynStar2, 2),
            (F32, Star, 2, 3) => arm!(star2_elem, f32, DynStar2, 3),
            (F32, Star, 2, 4) => arm!(star2_elem, f32, DynStar2, 4),
            (F32, Star, 3, 1) => arm!(star3_elem, f32, DynStar3, 1),
            (F32, Star, 3, 2) => arm!(star3_elem, f32, DynStar3, 2),
            (F32, Star, 3, 3) => arm!(star3_elem, f32, DynStar3, 3),
            (F32, Star, 3, 4) => arm!(star3_elem, f32, DynStar3, 4),
            (F32, BoxS, 2, 1) => arm!(box2_elem, f32, DynBox2, 1),
            (F32, BoxS, 2, 2) => arm!(box2_elem, f32, DynBox2, 2),
            (F32, BoxS, 2, 3) => arm!(box2_elem, f32, DynBox2, 3),
            (F32, BoxS, 2, 4) => arm!(box2_elem, f32, DynBox2, 4),
            (F32, BoxS, 3, 1) => arm!(box3_elem, f32, DynBox3, 1),
            (F32, BoxS, 3, 2) => arm!(box3_elem, f32, DynBox3, 2),
            (F32, BoxS, 3, 3) => arm!(box3_elem, f32, DynBox3, 3),
            (F32, BoxS, 3, 4) => arm!(box3_elem, f32, DynBox3, 4),
            // Spec construction bounds ndim to 1–3 and radius to
            // 1..=MAX_R, and 1D box degenerates to 1D star (no 1D box
            // constructor exists).
            _ => unreachable!("StencilSpec invariants bound the match"),
        };
        Ok(DynPlan {
            inner,
            spec: spec.clone(),
        })
    }
}
