//! Wavefront tile scheduler: dependency-counted execution of temporally
//! tiled work without per-stage barriers.
//!
//! The tessellate/split drivers ([`super::tess`], [`super::split`]) cut
//! space-time into tiles whose legal orders form a DAG: a tile touching
//! cells at time `t+1` may run only after the tiles that produced its
//! inputs at time `t`. The original drivers over-approximated that DAG
//! with global stage barriers (all triangles, *barrier*, all inverted
//! tiles, *barrier*, next chunk). This module keeps the exact same tiles
//! but schedules them by their true data dependences: each node carries an
//! atomic count of unfinished predecessors, a worker that retires a node
//! decrements its successors and pushes any that hit zero onto its own
//! ready queue, and the workers drain the queues (stealing from each other
//! when their own runs dry) until every node has run — no barrier
//! anywhere, so a fast thread advances into the next stage or time chunk
//! while a slow one finishes the previous.
//!
//! # Ready queues
//!
//! Each worker owns a small mutex-protected deque. A worker pushes nodes
//! it unlocks onto the **back** of its own deque and pops its own work
//! from the back (LIFO — the node it just unlocked is the one whose
//! inputs are hottest in its cache). When its own deque is empty it
//! scans the other workers' deques and steals from the **front** (FIFO —
//! the oldest, coldest work, farthest from what the victim is about to
//! pop). Roots are seeded round-robin across workers in push order, so
//! the initial stage-0 tiles spread across the pool without contention
//! on a single shared stack.
//!
//! # Graph construction
//!
//! Drivers push nodes in **monotone (chunk, stage) order**, so the index
//! order is already a topological order and the sequential path (`threads
//! == 1`) is literally `for node in nodes { exec(node) }` — the tiled
//! sequential oracle the parallel schedule is tested bit-identical
//! against. Each node carries one or more **footprint boxes**: closed-open
//! integer intervals per dimension covering every cell the node may read
//! or write (its union of per-step tile ranges, extended by the stencil
//! radius). An edge `i → j` is added iff `i < j`, the nodes overlap in
//! every dimension of some box pair, and either
//!
//! * same chunk with `stage(i) < stage(j)` — intra-chunk stage ordering
//!   (tiles of the *same* stage are mutually independent by tessellation
//!   correctness, so no edge), or
//! * `chunk(j) == chunk(i) + 1` — chunk handoff. Chunks tessellate
//!   space-time exactly, so a dependence spanning more than one chunk is
//!   always transitively covered by a chain of adjacent-chunk edges.
//!
//! The box test is conservative (boxes over-approximate true reads), which
//! can only add edges, never drop one — extra edges cost a little
//! parallelism, never correctness.
//!
//! # Determinism
//!
//! Every schedule the graph admits produces bit-identical grids: nodes
//! with no path between them have disjoint writes (exact tessellation
//! coverage), and any halo cells two nodes both refresh are written with
//! identical bits derived from the same immutable source interior (the
//! PR-6 benign-race contract, see [`super::halo`]). The worker loop's
//! pop order is therefore a performance detail, not a correctness one.
//!
//! # Memory ordering
//!
//! A retiring worker's grid writes happen-before its `fetch_sub(AcqRel)`
//! on each successor's counter; the final decrementer's RMW reads the
//! whole release sequence, and the per-worker deque mutexes hand the node
//! to its executor (locally popped or stolen) with acquire/release — so a
//! node always observes every predecessor's writes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

/// One footprint box: closed-open `(lo, hi)` per dimension. Unused
/// trailing dimensions use `(0, 1)` so they always overlap.
pub(crate) type FootBox = [(i64, i64); 3];

/// Footprint box for a 1D range (dims 1 and 2 always overlap).
#[inline]
pub(crate) fn box1(lo: i64, hi: i64) -> FootBox {
    [(lo, hi), (0, 1), (0, 1)]
}

/// Footprint box for a 2D `(y, x)` range (dim 2 always overlaps).
#[inline]
pub(crate) fn box2(y: (i64, i64), x: (i64, i64)) -> FootBox {
    [y, x, (0, 1)]
}

/// Footprint box for a 3D `(z, y, x)` range.
#[inline]
pub(crate) fn box3(z: (i64, i64), y: (i64, i64), x: (i64, i64)) -> FootBox {
    [z, y, x]
}

struct Node<P> {
    chunk: u32,
    stage: u8,
    boxes: Vec<FootBox>,
    payload: P,
}

/// A wavefront schedule under construction: tiles pushed in monotone
/// (chunk, stage) order, then executed by [`Wave::run`].
pub(crate) struct Wave<P> {
    nodes: Vec<Node<P>>,
}

fn boxes_overlap(a: &[FootBox], b: &[FootBox]) -> bool {
    a.iter().any(|ba| {
        b.iter()
            .any(|bb| (0..3).all(|d| ba[d].0 < bb[d].1 && bb[d].0 < ba[d].1))
    })
}

impl<P: Sync> Wave<P> {
    pub(crate) fn new() -> Self {
        Wave { nodes: Vec::new() }
    }

    /// Append a node. Callers must push in non-decreasing (chunk, stage)
    /// order so that index order is a topological order of the graph.
    pub(crate) fn push(&mut self, chunk: usize, stage: u8, boxes: Vec<FootBox>, payload: P) {
        if let Some(last) = self.nodes.last() {
            debug_assert!(
                (last.chunk, last.stage) <= (chunk as u32, stage),
                "nodes must arrive in monotone (chunk, stage) order"
            );
        }
        self.nodes.push(Node {
            chunk: chunk as u32,
            stage,
            boxes,
            payload,
        });
    }

    /// Successor lists and predecessor counts under the dependence rule in
    /// the module docs.
    fn edges(&self) -> (Vec<Vec<u32>>, Vec<u32>) {
        let n = self.nodes.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![0u32; n];
        // Nodes arrive chunk-ordered: only the previous and current chunk
        // can hold predecessors (older chunks are covered transitively),
        // so each node scans back no further than its previous chunk's
        // first index.
        let mut prev_chunk_start = 0usize;
        let mut chunk_start = 0usize;
        for j in 0..n {
            let nj = &self.nodes[j];
            if j > 0 && self.nodes[j - 1].chunk != nj.chunk {
                prev_chunk_start = chunk_start;
                chunk_start = j;
            }
            for i in prev_chunk_start..j {
                let ni = &self.nodes[i];
                let ordered =
                    (ni.chunk == nj.chunk && ni.stage < nj.stage) || ni.chunk + 1 == nj.chunk;
                if ordered && boxes_overlap(&ni.boxes, &nj.boxes) {
                    succs[i].push(j as u32);
                    preds[j] += 1;
                }
            }
        }
        (succs, preds)
    }

    /// Execute every node. `threads == 1` runs the nodes in push order on
    /// the calling thread — the sequential tiled schedule. Otherwise the
    /// dependence graph is built and drained by `threads` workers on
    /// `pool` via per-node atomic predecessor counters and per-worker
    /// LIFO/steal-FIFO ready queues; see the module docs for why any
    /// admitted order is bit-identical to the sequential one.
    ///
    /// `exec` receives the worker index (`0..threads`; always 0 on the
    /// sequential path) so executors can keep per-worker scratch without
    /// thread-local lookups.
    pub(crate) fn run(
        &self,
        pool: &rayon::ThreadPool,
        threads: usize,
        exec: impl Fn(usize, &P) + Sync,
    ) {
        let total = self.nodes.len();
        if threads <= 1 || total <= 1 {
            for node in &self.nodes {
                exec(0, &node.payload);
            }
            return;
        }
        let (succs, preds) = self.edges();
        let remaining: Vec<AtomicU32> = preds.iter().map(|&c| AtomicU32::new(c)).collect();
        let queues: Vec<Mutex<VecDeque<u32>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        // Seed roots round-robin in push (= stage) order: worker w starts
        // on the w-th root, so the initial wave spreads without everyone
        // hammering one queue.
        for (at, i) in (0..total as u32)
            .filter(|&i| preds[i as usize] == 0)
            .enumerate()
        {
            queues[at % threads]
                .lock()
                .expect("wavefront ready queue")
                .push_back(i);
        }
        let done = AtomicUsize::new(0);
        pool.install(|| {
            (0..threads)
                .collect::<Vec<_>>()
                .into_par_iter()
                .for_each(|w| loop {
                    // Own queue first, newest node (LIFO: hottest inputs).
                    let mut next = queues[w].lock().expect("wavefront ready queue").pop_back();
                    if next.is_none() {
                        // Steal the oldest (FIFO) node from another worker,
                        // scanning from our right neighbor.
                        for v in (1..threads).map(|d| (w + d) % threads) {
                            next = queues[v].lock().expect("wavefront ready queue").pop_front();
                            if next.is_some() {
                                break;
                            }
                        }
                    }
                    match next {
                        Some(i) => {
                            exec(w, &self.nodes[i as usize].payload);
                            done.fetch_add(1, Ordering::Release);
                            for &s in &succs[i as usize] {
                                if remaining[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    queues[w]
                                        .lock()
                                        .expect("wavefront ready queue")
                                        .push_back(s);
                                }
                            }
                        }
                        None => {
                            if done.load(Ordering::Acquire) >= total {
                                break;
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    }
                });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Record execution order and assert every edge was respected.
    fn check_schedule(threads: usize) {
        // Three chunks of a 1D tiling: stage-0 tiles [k*10, k*10+10) and
        // stage-1 tiles straddling the boundaries, radius 1.
        let mut wave = Wave::new();
        let mut id = 0u32;
        for chunk in 0..3usize {
            for k in 0..4i64 {
                wave.push(chunk, 0, vec![box1(k * 10 - 1, k * 10 + 11)], id);
                id += 1;
            }
            for b in 1..4i64 {
                wave.push(chunk, 1, vec![box1(b * 10 - 6, b * 10 + 6)], id);
                id += 1;
            }
        }
        let total = wave.nodes.len();
        let (succs, preds) = wave.edges();
        // Stage-1 tiles depend on their two flanking stage-0 tiles.
        assert_eq!(preds[4], 2, "chunk-0 inverted tile waits on both triangles");
        // Chunk-1 roots don't exist: everything past chunk 0 has preds.
        assert!(preds[7..].iter().all(|&p| p > 0));

        let order = Mutex::new(Vec::new());
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        wave.run(&pool, threads, |w, &p| {
            assert!(w < threads.max(1), "worker index {w} out of range");
            order.lock().unwrap().push(p);
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order.len(), total, "every node runs exactly once");
        let pos: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(at, &p)| (p, at)).collect();
        assert_eq!(pos.len(), total, "no node ran twice");
        for (i, ss) in succs.iter().enumerate() {
            for &j in ss {
                assert!(
                    pos[&(i as u32)] < pos[&j],
                    "edge {i} -> {j} violated by schedule {order:?}"
                );
            }
        }
        if threads <= 1 {
            assert_eq!(order, (0..total as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequential_runs_in_push_order() {
        check_schedule(1);
    }

    #[test]
    fn parallel_respects_every_edge() {
        for threads in [2, 3, 7] {
            for _ in 0..8 {
                check_schedule(threads);
            }
        }
    }

    #[test]
    fn disjoint_same_stage_tiles_share_no_edge() {
        let mut wave = Wave::new();
        wave.push(0, 0, vec![box1(0, 12)], 0u32);
        wave.push(0, 0, vec![box1(9, 22)], 1u32);
        wave.push(0, 1, vec![box1(50, 60)], 2u32);
        let (succs, preds) = wave.edges();
        assert!(succs.iter().all(|s| s.is_empty()), "{succs:?}");
        assert_eq!(preds, vec![0, 0, 0]);
    }

    #[test]
    fn multi_box_nodes_link_through_any_box() {
        let mut wave = Wave::new();
        wave.push(0, 0, vec![box1(0, 4), box1(90, 100)], 0u32);
        wave.push(1, 0, vec![box1(92, 95)], 1u32);
        let (succs, preds) = wave.edges();
        assert_eq!(succs[0], vec![1]);
        assert_eq!(preds[1], 1);
    }
}
