//! Per-dimension tile-shape algebra for tessellate/split temporal tiling.
//!
//! A dimension of `n` cells is partitioned into triangle bases of width
//! `w`; a time chunk has height `h` steps. At step `s` (0-based within the
//! chunk):
//!
//! * **triangle** `k` updates `[k·w + r·s, (k+1)·w − r·s)` — except that a
//!   side touching the domain edge does not shrink when the edge is
//!   halo-backed (constant halo cells always supply the dependence);
//! * **inverted triangle** at boundary `c = k·w` updates `[c − r·s,
//!   c + r·s)` (empty at `s = 0`).
//!
//! Triangles are mutually independent (their dependences stay inside
//! their own base); inverted triangles depend only on triangle slopes and
//! themselves — hence the two parallel stages per chunk with one barrier.
//! The shapes tessellate exactly: every `(x, s)` is updated exactly once
//! per chunk (property-tested below).

/// Tiling of one dimension.
#[derive(Copy, Clone, Debug)]
pub struct DimTiling {
    /// Dimension extent.
    pub n: usize,
    /// Triangle base width.
    pub w: usize,
    /// Stencil radius along this dimension.
    pub r: usize,
    /// Whether domain edges are halo-backed (tessellation in original
    /// space) or must shrink like interior slopes (split tiling in DLT
    /// j-space, where the "edges" are cross-lane seams).
    pub edge_halo: bool,
}

impl DimTiling {
    /// Construct; `w ≥ 2·r·(h−1)` must hold for chunk height `h` so that
    /// opposing slopes never cross (checked by the drivers).
    pub fn new(n: usize, w: usize, r: usize, edge_halo: bool) -> Self {
        assert!(n > 0 && w > 0, "empty tiling");
        DimTiling { n, w, r, edge_halo }
    }

    /// Largest chunk height this tiling supports (bounded by the smallest
    /// gap between consecutive tile boundaries, so opposing slopes never
    /// cross).
    pub fn max_height(&self) -> usize {
        if self.r == 0 {
            return usize::MAX;
        }
        let min_gap = if self.ntri() == 1 {
            if self.edge_halo {
                return usize::MAX; // single non-shrinking tile
            }
            self.n
        } else {
            self.w
        };
        min_gap / (2 * self.r) + 1
    }

    /// Number of triangles. The last base absorbs `n mod w`, so every base
    /// is at least `w` wide and boundary gaps never fall below `w`.
    pub fn ntri(&self) -> usize {
        (self.n / self.w).max(1)
    }

    /// Number of inverted-triangle boundaries (interior only).
    pub fn ninv(&self) -> usize {
        // boundaries c = k·w for k = 1..ntri (all satisfy c < n)
        self.ntri().saturating_sub(1) + if self.edge_halo { 0 } else { 2 }
    }

    /// Range of triangle `k` at step `s` (possibly empty).
    pub fn tri(&self, k: usize, s: usize) -> (usize, usize) {
        let last = k == self.ntri() - 1;
        let base_lo = k * self.w;
        let base_hi = if last { self.n } else { (k + 1) * self.w };
        let lo = if k == 0 && self.edge_halo {
            0
        } else {
            base_lo + self.r * s
        };
        let hi = if last && self.edge_halo {
            self.n
        } else {
            base_hi.saturating_sub(self.r * s)
        };
        (lo.min(self.n), hi.min(self.n).max(lo.min(self.n)))
    }

    /// Range of inverted tile `b` at step `s` (possibly empty).
    ///
    /// With halo-backed edges, `b ∈ 0..ninv()` maps to interior boundaries
    /// `c = (b+1)·w`. Without (`edge_halo = false`), `b = 0` is the left
    /// domain edge (`c = 0`), `b = ninv()-1` the right (`c = n`), and the
    /// rest interior.
    pub fn inv(&self, b: usize, s: usize) -> (usize, usize) {
        let c = if self.edge_halo {
            (b + 1) * self.w
        } else if b == 0 {
            0
        } else if b == self.ninv() - 1 {
            self.n
        } else {
            b * self.w
        };
        let lo = c.saturating_sub(self.r * s);
        let hi = (c + self.r * s).min(self.n);
        (lo, hi.max(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Count how many times each (x, s) pair is updated in one chunk.
    fn coverage(d: &DimTiling, h: usize) -> Vec<Vec<u32>> {
        let mut cov = vec![vec![0u32; d.n]; h];
        for s in 0..h {
            for k in 0..d.ntri() {
                let (lo, hi) = d.tri(k, s);
                for x in lo..hi {
                    cov[s][x] += 1;
                }
            }
            for b in 0..d.ninv() {
                let (lo, hi) = d.inv(b, s);
                for x in lo..hi {
                    cov[s][x] += 1;
                }
            }
        }
        cov
    }

    #[test]
    fn tessellation_covers_each_point_exactly_once() {
        for (n, w, r, h) in [
            (100usize, 20usize, 1usize, 10usize),
            (100, 20, 1, 11),
            (97, 20, 1, 5),
            (64, 64, 1, 8),
            (200, 40, 2, 10),
            (33, 16, 2, 4),
            (10, 4, 1, 2),
            (125, 24, 1, 6), // non-divisible: last base absorbs remainder
            (65, 16, 1, 4),
            (130, 24, 2, 5),
        ] {
            let d = DimTiling::new(n, w, r, true);
            assert!(h <= d.max_height(), "bad test params");
            for (s, row) in coverage(&d, h).iter().enumerate() {
                for (x, &c) in row.iter().enumerate() {
                    assert_eq!(c, 1, "n={n} w={w} r={r} h={h}: ({x},{s}) covered {c}x");
                }
            }
        }
    }

    #[test]
    fn split_edges_cover_with_seams() {
        // With edge_halo = false, triangles shrink at domain edges and the
        // extra inv tiles at c=0 / c=n (the seam tiles) fill the gap.
        for (n, w, r, h) in [
            (100usize, 25usize, 1usize, 10usize),
            (64, 16, 2, 4),
            (125, 24, 1, 6),
            (65, 16, 1, 4),
        ] {
            let d = DimTiling::new(n, w, r, false);
            for (s, row) in coverage(&d, h).iter().enumerate() {
                for (x, &c) in row.iter().enumerate() {
                    assert_eq!(c, 1, "n={n} w={w} r={r} h={h}: ({x},{s}) covered {c}x");
                }
            }
        }
    }

    #[test]
    fn triangle_deps_stay_inside_base() {
        // At step s, a triangle's reads [lo-r, hi+r) at level s-1 must be
        // inside its own step-(s-1) range or the constant halo.
        let d = DimTiling::new(120, 30, 1, true);
        for k in 0..d.ntri() {
            for s in 1..10 {
                let (lo, hi) = d.tri(k, s);
                if lo >= hi {
                    continue;
                }
                let (plo, phi) = d.tri(k, s - 1);
                // halo-backed edges extend the legal read range by r
                let legal_lo = if plo == 0 { 0 } else { plo + d.r };
                let legal_hi = if phi == d.n { d.n } else { phi - d.r };
                assert!(
                    lo >= legal_lo && hi <= legal_hi.max(legal_lo),
                    "k={k} s={s}"
                );
            }
        }
    }

    #[test]
    fn max_height_respects_slope_crossing() {
        let d = DimTiling::new(1000, 40, 2, true);
        let h = d.max_height();
        // at step h-1 adjacent inverted tiles must not overlap
        for s in 0..h {
            let (_, hi) = d.inv(0, s);
            let (lo2, _) = d.inv(1, s);
            assert!(hi <= lo2, "inv tiles overlap at s={s}");
        }
    }
}
