//! Split tiling drivers over the **DLT layout** — the SDSL stand-in
//! (Henretty et al., ICS'13): DLT vectorization plus split (triangle /
//! inverted trapezoid) temporal tiling.
//!
//! 1D: tiling runs in DLT *column space* (`j ∈ [0, cols)`). A column tile
//! is `vl` distant original-space segments — which is precisely the
//! locality loss the paper attributes to DLT under blocking (§2.2/§3.1):
//! an L1-sized column tile touches `vl` separate memory regions. Column
//! triangles shrink at the `j`-edges too (the edges are cross-lane seams,
//! not halo); the uncovered seam space-time is handled by per-seam scalar
//! tiles in original coordinates, one per lane boundary, plus the natural
//! tail strip.
//!
//! 2D/3D: SDSL's *hybrid* scheme — split tiling on the outermost
//! dimension, full DLT rows inside.
//!
//! Like [`super::tess`], these drivers are **parameterized by the plan**:
//! they step pre-transformed DLT staging buffers on a caller-owned pool;
//! the DLT round-trip and staging allocation live in the `Plan`/`Session`
//! engine and are amortized across runs.

use rayon::prelude::*;
use stencil_simd::{dispatch, Isa};

use super::tess::{Shape, SyncPtr};
use super::tile::DimTiling;
use crate::kernels::dlt;
use crate::layout::DltGeo;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Scalar update of DLT columns `[j0, j1)` across all lanes (mapped).
///
/// # Safety
/// Standard row contracts; used for seam-adjacent column fragments.
unsafe fn dlt_cols_scalar<S: Star1>(
    src: *const f64,
    dst: *mut f64,
    geo: &DltGeo,
    j0: usize,
    j1: usize,
    s: &S,
) {
    for lane in 0..geo.vl {
        let base = lane * geo.cols;
        dlt::star1_dlt_scalar(src, dst, base + j0, base + j1, geo, s);
    }
}

/// One step of a 1D column tile `[j_lo, j_hi)` at absolute `time`:
/// vector core over seam-free columns, scalar mapped access at the seam
/// fringes.
#[allow(clippy::too_many_arguments)]
fn col_step1<S: Star1>(
    isa: Isa,
    bufs: [SyncPtr; 2],
    geo: &DltGeo,
    j_lo: usize,
    j_hi: usize,
    time: usize,
    s: &S,
) {
    if j_lo >= j_hi {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    let r = S::R;
    let v_lo = j_lo.max(r);
    let v_hi = j_hi.min(geo.cols - r).max(v_lo);
    unsafe {
        dlt_cols_scalar(src, dst, geo, j_lo, v_lo.min(j_hi), s);
        if v_lo < v_hi {
            dispatch!(isa, V => dlt::star1_dlt_cols::<V, S>(src, dst, v_lo, v_hi, s));
            dlt_cols_scalar(src, dst, geo, v_hi, j_hi, s);
        } else {
            dlt_cols_scalar(src, dst, geo, v_lo.max(j_lo).min(j_hi), j_hi, s);
        }
    }
}

/// One step of the seam tile at lane boundary `lam` (original cells around
/// `lam·cols`, scalar via the index map); the rightmost seam also owns the
/// natural tail strip, which advances every step.
#[allow(clippy::too_many_arguments)]
fn seam_step1<S: Star1>(
    bufs: [SyncPtr; 2],
    geo: &DltGeo,
    n: usize,
    lam: usize,
    ss: usize,
    time: usize,
    s: &S,
) {
    let r = S::R;
    let c = lam * geo.cols;
    let reach = r * ss;
    let lo = c.saturating_sub(reach);
    let mut hi = (c + reach).min(n);
    if lam == geo.vl {
        hi = n; // tail strip advances every step
    }
    if lo >= hi {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    unsafe { dlt::star1_dlt_scalar(src, dst, lo, hi, geo, s) };
}

/// Step `t` levels of a 1D star stencil over pre-transformed DLT staging
/// buffers under split tiling (column triangles of base `w = d.w`, chunk
/// height `h`), on `pool`. The step-`t` result lands in `bufs[t % 2]`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive1<S: Star1>(
    isa: Isa,
    bufs: [SyncPtr; 2],
    geo: &DltGeo,
    n: usize,
    d: &DimTiling,
    t: usize,
    h: usize,
    s: &S,
    pool: &rayon::ThreadPool,
) {
    let cols = geo.cols;
    pool.install(|| {
        let mut tau = 0usize;
        while tau < t {
            let hh = h.min(t - tau);
            // Stage 1: column triangles (shrink at both ends — the ends
            // are seams, not halo).
            (0..d.ntri()).into_par_iter().for_each(|k| {
                for ss in 0..hh {
                    let (lo, hi) = d.tri(k, ss);
                    col_step1(isa, bufs, geo, lo, hi, tau + ss, s);
                }
            });
            // Stage 2: interior inverted column tiles + per-lane seam
            // tiles (+ tail strip on the rightmost seam).
            let ninterior = d.ntri().saturating_sub(1);
            let nseams = geo.vl + 1;
            (0..ninterior + nseams).into_par_iter().for_each(|idx| {
                if idx < ninterior {
                    let bnd = idx + 1; // interior boundary c = bnd·w
                    for ss in 0..hh {
                        let lo = (bnd * d.w).saturating_sub(S::R * ss);
                        let hi = (bnd * d.w + S::R * ss).min(cols);
                        col_step1(isa, bufs, geo, lo, hi, tau + ss, s);
                    }
                } else {
                    let lam = idx - ninterior;
                    for ss in 0..hh {
                        seam_step1(bufs, geo, n, lam, ss, tau + ss, s);
                    }
                }
            });
            tau += hh;
        }
    });
}

macro_rules! drive2_impl {
    ($name:ident, $bound:ident, $kernel:ident) => {
        /// Step `t` levels of a 2D stencil over pre-transformed DLT
        /// staging buffers under SDSL-style hybrid tiling: split tiling
        /// over `y` (triangle base `d.w`, chunk height `h`), DLT rows
        /// along `x`. The step-`t` result lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<S: $bound>(
            isa: Isa,
            bufs: [SyncPtr; 2],
            rs: usize,
            nx: usize,
            d: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
        ) {
            // Tile lists depend only on the tiling geometry — build once,
            // hand the queue a copy per chunk (mirrors the tess drivers).
            let stages = [Shape::all(d, false), Shape::all(d, true)];
            pool.install(|| {
                let mut tau = 0usize;
                while tau < t {
                    let hh = h.min(t - tau);
                    for tiles in &stages {
                        tiles.clone().into_par_iter().for_each(|shape| {
                            for ss in 0..hh {
                                let (y0, y1) = shape.range(d, ss);
                                if y0 >= y1 {
                                    continue;
                                }
                                let time = tau + ss;
                                let src = bufs[time % 2].0 as *const f64;
                                let dst = bufs[(time + 1) % 2].0;
                                dispatch!(isa, V => dlt::$kernel::<V, S>(src, dst, rs, nx, y0, y1, s));
                            }
                        });
                    }
                    tau += hh;
                }
            });
        }
    };
}

drive2_impl!(drive2_star, Star2, star2_dlt);
drive2_impl!(drive2_box, Box2, box2_dlt);

macro_rules! drive3_impl {
    ($name:ident, $bound:ident, $kernel:ident) => {
        /// Step `t` levels of a 3D stencil over pre-transformed DLT
        /// staging buffers under SDSL-style hybrid tiling: split tiling
        /// over `z`, DLT rows along `x`. The step-`t` result lands in
        /// `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<S: $bound>(
            isa: Isa,
            bufs: [SyncPtr; 2],
            rs: usize,
            ps: usize,
            nx: usize,
            ny: usize,
            d: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
        ) {
            // Tile lists depend only on the tiling geometry — build once,
            // hand the queue a copy per chunk (mirrors the tess drivers).
            let stages = [Shape::all(d, false), Shape::all(d, true)];
            pool.install(|| {
                let mut tau = 0usize;
                while tau < t {
                    let hh = h.min(t - tau);
                    for tiles in &stages {
                        tiles.clone().into_par_iter().for_each(|shape| {
                            for ss in 0..hh {
                                let (z0, z1) = shape.range(d, ss);
                                if z0 >= z1 {
                                    continue;
                                }
                                let time = tau + ss;
                                let src = bufs[time % 2].0 as *const f64;
                                let dst = bufs[(time + 1) % 2].0;
                                dispatch!(isa, V => dlt::$kernel::<V, S>(src, dst, rs, ps, nx, ny, z0, z1, s));
                            }
                        });
                    }
                    tau += hh;
                }
            });
        }
    };
}

drive3_impl!(drive3_star, Star3, star3_dlt);
drive3_impl!(drive3_box, Box3, box3_dlt);
