//! Split tiling drivers over the **DLT layout** — the SDSL stand-in
//! (Henretty et al., ICS'13): DLT vectorization plus split (triangle /
//! inverted trapezoid) temporal tiling.
//!
//! 1D: tiling runs in DLT *column space* (`j ∈ [0, cols)`). A column tile
//! is `vl` distant original-space segments — which is precisely the
//! locality loss the paper attributes to DLT under blocking (§2.2/§3.1):
//! an L1-sized column tile touches `vl` separate memory regions. Column
//! triangles shrink at the `j`-edges too (the edges are cross-lane seams,
//! not halo); the uncovered seam space-time is handled by per-seam scalar
//! tiles in original coordinates, one per lane boundary, plus the natural
//! tail strip.
//!
//! 2D/3D: SDSL's *hybrid* scheme — split tiling on the outermost
//! dimension, full DLT rows inside.
//!
//! Like [`super::tess`], these drivers are **parameterized by the plan**
//! (they step pre-transformed DLT staging buffers on a caller-owned pool;
//! the DLT round-trip and staging allocation live in the `Plan`/`Session`
//! engine) and scheduled by the wavefront graph in [`super::wave`]
//! instead of per-stage barriers.
//!
//! Boundary composition differs by rank. 1D tiles run in column space
//! but depend on each other in *original* space (a column tile is `vl`
//! distant segments), so under a refreshed boundary the halo fold
//! sources and the edge seams' intermediate-level reads chain through
//! interior pieces; each chunk then runs as a single lockstep group
//! that interleaves a whole-buffer halo refresh with each chunk step
//! (a per-level sweep — structurally the untiled schedule, chosen
//! because column space is only `n/vl` wide and the member closure is
//! geometry-dependent). In 2D/3D every tile owns *full DLT rows*,
//! so each tile refreshes the x halos of exactly the rows/planes it reads
//! via the per-band refresh (self-contained: those rows are its own
//! previous-step output), and only the two domain-edge triangles — whose
//! whole halo-row builds read each other's rows under periodic folds —
//! need fusing into an edge group.

use stencil_simd::{dispatch_elem, Elem, Isa};

use super::halo::{self, Boundary, RowMap};
use super::tess::{reach1, Shape, SyncPtr};
use super::tile::DimTiling;
use super::wave::{box1, FootBox, Wave};
use crate::kernels::dlt;
use crate::layout::DltGeo;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Scalar update of DLT columns `[j0, j1)` across all lanes (mapped).
///
/// # Safety
/// Standard row contracts; used for seam-adjacent column fragments.
unsafe fn dlt_cols_scalar<T: Elem, S: Star1>(
    src: *const T,
    dst: *mut T,
    geo: &DltGeo,
    j0: usize,
    j1: usize,
    s: &S,
) {
    for lane in 0..geo.vl {
        let base = lane * geo.cols;
        dlt::star1_dlt_scalar(src, dst, base + j0, base + j1, geo, s);
    }
}

/// One step of a 1D column tile `[j_lo, j_hi)` at absolute `time`:
/// vector core over seam-free columns, scalar mapped access at the seam
/// fringes.
#[allow(clippy::too_many_arguments)]
fn col_step1<T: Elem, S: Star1>(
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    geo: &DltGeo,
    j_lo: usize,
    j_hi: usize,
    time: usize,
    s: &S,
) {
    if j_lo >= j_hi {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    let r = S::R;
    let v_lo = j_lo.max(r);
    let v_hi = j_hi.min(geo.cols - r).max(v_lo);
    unsafe {
        dlt_cols_scalar(src, dst, geo, j_lo, v_lo.min(j_hi), s);
        if v_lo < v_hi {
            dispatch_elem!(isa, T, dlt::star1_dlt_cols::<V, S>(src, dst, v_lo, v_hi, s));
            dlt_cols_scalar(src, dst, geo, v_hi, j_hi, s);
        } else {
            dlt_cols_scalar(src, dst, geo, v_lo.max(j_lo).min(j_hi), j_hi, s);
        }
    }
}

/// One step of the seam tile at lane boundary `lam` (original cells around
/// `lam·cols`, scalar via the index map); the rightmost seam also owns the
/// natural tail strip, which advances every step.
#[allow(clippy::too_many_arguments)]
fn seam_step1<T: Elem, S: Star1>(
    bufs: [SyncPtr<T>; 2],
    geo: &DltGeo,
    n: usize,
    lam: usize,
    ss: usize,
    time: usize,
    s: &S,
) {
    let r = S::R;
    let c = lam * geo.cols;
    let reach = r * ss;
    let lo = c.saturating_sub(reach);
    let mut hi = (c + reach).min(n);
    if lam == geo.vl {
        hi = n; // tail strip advances every step
    }
    if lo >= hi {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    unsafe { dlt::star1_dlt_scalar(src, dst, lo, hi, geo, s) };
}

/// One member / interior tile of the 1D split wavefront.
#[derive(Copy, Clone)]
enum Piece1 {
    /// Column triangle `k` (stage 0).
    Tri(usize),
    /// Interior inverted column tile at boundary `c = bnd·w` (stage 1).
    Inv(usize),
    /// Seam tile at lane boundary `lam` (stage 1; `lam == vl` owns the
    /// natural tail strip).
    Seam(usize),
}

impl Piece1 {
    /// Run chunk step `ss` of this piece (absolute time `tau + ss`).
    #[allow(clippy::too_many_arguments)]
    fn step<T: Elem, S: Star1>(
        self,
        isa: Isa,
        bufs: [SyncPtr<T>; 2],
        geo: &DltGeo,
        n: usize,
        d: &DimTiling,
        ss: usize,
        tau: usize,
        s: &S,
    ) {
        match self {
            Piece1::Tri(k) => {
                let (lo, hi) = d.tri(k, ss);
                col_step1(isa, bufs, geo, lo, hi, tau + ss, s);
            }
            Piece1::Inv(bnd) => {
                let lo = (bnd * d.w).saturating_sub(S::R * ss);
                let hi = (bnd * d.w + S::R * ss).min(geo.cols);
                col_step1(isa, bufs, geo, lo, hi, tau + ss, s);
            }
            Piece1::Seam(lam) => seam_step1(bufs, geo, n, lam, ss, tau + ss, s),
        }
    }
}

/// One wavefront node of the 1D split driver.
enum SNode1 {
    Tile {
        piece: Piece1,
        tau: usize,
        hh: usize,
    },
    /// A whole chunk under a refreshed boundary: every piece in stage
    /// order, stepped in lockstep behind a per-step whole-buffer halo
    /// refresh (a per-level sweep, structurally identical to untiled
    /// stepping — see the placement comment in [`drive1`]).
    Edge {
        members: Vec<Piece1>,
        tau: usize,
        hh: usize,
    },
}

/// Original-space footprint of DLT columns `[jlo, jhi)`: one
/// radius-extended box per lane segment (a column tile is `vl` distant
/// segments, and the `±r` extension also captures the cross-lane seam
/// reads of the scalar fringes).
fn lane_boxes(geo: &DltGeo, jlo: usize, jhi: usize, r: usize) -> Vec<FootBox> {
    (0..geo.vl)
        .map(|lam| {
            let base = (lam * geo.cols) as i64;
            box1(base + jlo as i64 - r as i64, base + jhi as i64 + r as i64)
        })
        .collect()
}

/// Step `t` levels of a 1D star stencil over pre-transformed DLT staging
/// buffers under split tiling (column triangles of base `w = d.w`, chunk
/// height `h`), wavefront-scheduled on `pool`. The step-`t` result lands
/// in `bufs[t % 2]`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive1<T: Elem, S: Star1>(
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    geo: &DltGeo,
    n: usize,
    d: &DimTiling,
    t: usize,
    h: usize,
    s: &S,
    pool: &rayon::ThreadPool,
    b: Boundary,
) {
    let r = S::R;
    let map = RowMap::Dlt(*geo);
    let mut wave = Wave::new();
    let (mut tau, mut chunk) = (0usize, 0usize);
    while tau < t {
        let hh = h.min(t - tau);
        let mut members: Vec<Piece1> = Vec::new();
        let mut group_boxes: Vec<FootBox> = Vec::new();
        let mut interior: Vec<(u8, Piece1, Vec<FootBox>)> = Vec::new();
        // Under a refreshed boundary the whole chunk runs as one lockstep
        // group. Column pieces are `vl` distant original-space segments,
        // so the halo fold sources and the edge seams' intermediate-level
        // reads chain through *interior* pieces (e.g. a one-column tail
        // triangle hands the rightmost seam its level-`tau+ss` inputs);
        // the member closure is geometry-dependent and can span the whole
        // chunk. A per-level sweep of every piece behind the refresh is
        // structurally identical to untiled stepping, and the column
        // space is only `n/vl` wide — intra-chunk parallelism here is
        // marginal (tessellation is the parallel temporal path in 1D).
        let mut place = |stage: u8, piece: Piece1, boxes: Vec<FootBox>| {
            if !b.is_dirichlet() {
                members.push(piece);
                group_boxes.extend(boxes);
            } else {
                interior.push((stage, piece, boxes));
            }
        };
        // Stage 0: column triangles (shrink at both ends — the ends are
        // cross-lane seams, not halo).
        for k in 0..d.ntri() {
            let (mut jlo, mut jhi) = (usize::MAX, 0usize);
            for ss in 0..hh {
                let (a, c) = d.tri(k, ss);
                if a < c {
                    jlo = jlo.min(a);
                    jhi = jhi.max(c);
                }
            }
            place(0, Piece1::Tri(k), lane_boxes(geo, jlo, jhi, r));
        }
        // Stage 1: interior inverted column tiles + per-lane seam tiles
        // (+ tail strip on the rightmost seam).
        for bnd in 1..d.ntri() {
            let jlo = (bnd * d.w).saturating_sub(r * (hh - 1));
            let jhi = (bnd * d.w + r * (hh - 1)).min(geo.cols).max(jlo);
            place(1, Piece1::Inv(bnd), lane_boxes(geo, jlo, jhi, r));
        }
        for lam in 0..=geo.vl {
            let c = (lam * geo.cols) as i64;
            let reach = (r * (hh - 1) + r) as i64;
            let hi = if lam == geo.vl {
                n as i64 + r as i64 // tail strip advances every step
            } else {
                (c + reach).min(n as i64)
            };
            place(1, Piece1::Seam(lam), vec![box1(c - reach, hi)]);
        }
        if !members.is_empty() {
            wave.push(chunk, 0, group_boxes, SNode1::Edge { members, tau, hh });
        }
        interior.sort_by_key(|&(stage, ..)| stage);
        for (stage, piece, boxes) in interior {
            wave.push(chunk, stage, boxes, SNode1::Tile { piece, tau, hh });
        }
        tau += hh;
        chunk += 1;
    }
    wave.run(pool, pool.current_num_threads(), |_w, node| match node {
        SNode1::Tile { piece, tau, hh } => {
            for ss in 0..*hh {
                piece.step(isa, bufs, geo, n, d, ss, *tau, s);
            }
        }
        SNode1::Edge { members, tau, hh } => {
            for ss in 0..*hh {
                // Fold sources at level `tau + ss` are the outermost
                // original-space cells — owned by this group's own
                // members, which step in lockstep.
                unsafe { halo::refresh1(bufs[(tau + ss) % 2].0, n, S::R, b, &map) };
                for &piece in members {
                    piece.step(isa, bufs, geo, n, d, ss, *tau, s);
                }
            }
        }
    });
}

/// One wavefront node of the hybrid 2D/3D split drivers: an outer-dim
/// tile, or the fused pair of domain-edge triangles (whose halo-row
/// builds read each other's rows under periodic folds).
enum HNode {
    Tile {
        shape: Shape,
        tau: usize,
        hh: usize,
    },
    Edge {
        members: Vec<Shape>,
        tau: usize,
        hh: usize,
    },
}

/// Build the wavefront for one hybrid driver run: outer-dim tiles with
/// radius-extended reach boxes, domain-edge tiles fused per chunk when
/// the boundary needs refreshing.
fn hybrid_wave(d: &DimTiling, t: usize, h: usize, r: usize, b: Boundary) -> Wave<HNode> {
    let mut wave = Wave::new();
    let (mut tau, mut chunk) = (0usize, 0usize);
    while tau < t {
        let hh = h.min(t - tau);
        let mut members = Vec::new();
        let mut group_boxes: Vec<FootBox> = Vec::new();
        let mut interior = Vec::new();
        for (stage, inverted) in [(0u8, false), (1u8, true)] {
            for shape in Shape::all(d, inverted) {
                let (lo, hi) = reach1(d, shape, hh, r);
                if !b.is_dirichlet() && (lo < 0 || hi > d.n as i64) {
                    members.push(shape);
                    group_boxes.push(box1(lo, hi));
                } else {
                    interior.push((stage, shape, box1(lo, hi)));
                }
            }
        }
        if !members.is_empty() {
            wave.push(chunk, 0, group_boxes, HNode::Edge { members, tau, hh });
        }
        for (stage, shape, fb) in interior {
            wave.push(chunk, stage, vec![fb], HNode::Tile { shape, tau, hh });
        }
        tau += hh;
        chunk += 1;
    }
    wave
}

macro_rules! drive2_impl {
    ($name:ident, $bound:ident, $kernel:ident) => {
        /// Step `t` levels of a 2D stencil over pre-transformed DLT
        /// staging buffers under SDSL-style hybrid tiling: split tiling
        /// over `y` (triangle base `d.w`, chunk height `h`), DLT rows
        /// along `x`, wavefront-scheduled. Every tile owns full rows, so
        /// it refreshes the x halos of exactly the rows it reads (its own
        /// previous-step output) before each step — the per-band
        /// benign-race contract of [`super::par`]. The step-`t` result
        /// lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<T: Elem, S: $bound>(
            isa: Isa,
            bufs: [SyncPtr<T>; 2],
            rs: usize,
            nx: usize,
            d: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
            b: Boundary,
        ) {
            let ny = d.n;
            let map = RowMap::for_method::<T>(crate::api::Method::Dlt, isa, nx);
            let run_piece = |shape: &Shape, tau: usize, ss: usize| {
                let (y0, y1) = shape.range(d, ss);
                if y0 >= y1 {
                    return;
                }
                let time = tau + ss;
                let src = bufs[time % 2].0.cast_const();
                let dst = bufs[(time + 1) % 2].0;
                unsafe {
                    halo::refresh2_band(bufs[time % 2].0, rs, nx, ny, S::R, b, &map, y0, y1);
                }
                dispatch_elem!(isa, T, dlt::$kernel::<V, S>(src, dst, rs, nx, y0, y1, s));
            };
            let wave = hybrid_wave(d, t, h, S::R, b);
            wave.run(pool, pool.current_num_threads(), |_w, node| match node {
                HNode::Tile { shape, tau, hh } => {
                    for ss in 0..*hh {
                        run_piece(shape, *tau, ss);
                    }
                }
                HNode::Edge { members, tau, hh } => {
                    for ss in 0..*hh {
                        for shape in members {
                            run_piece(shape, *tau, ss);
                        }
                    }
                }
            });
        }
    };
}

drive2_impl!(drive2_star, Star2, star2_dlt);
drive2_impl!(drive2_box, Box2, box2_dlt);

macro_rules! drive3_impl {
    ($name:ident, $bound:ident, $kernel:ident) => {
        /// Step `t` levels of a 3D stencil over pre-transformed DLT
        /// staging buffers under SDSL-style hybrid tiling: split tiling
        /// over `z`, DLT rows along `x`, wavefront-scheduled with the
        /// per-band halo refresh fused into every tile (see the 2D
        /// drivers). The step-`t` result lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<T: Elem, S: $bound>(
            isa: Isa,
            bufs: [SyncPtr<T>; 2],
            rs: usize,
            ps: usize,
            nx: usize,
            ny: usize,
            d: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
            b: Boundary,
        ) {
            let nz = d.n;
            let map = RowMap::for_method::<T>(crate::api::Method::Dlt, isa, nx);
            let run_piece = |shape: &Shape, tau: usize, ss: usize| {
                let (z0, z1) = shape.range(d, ss);
                if z0 >= z1 {
                    return;
                }
                let time = tau + ss;
                let src = bufs[time % 2].0.cast_const();
                let dst = bufs[(time + 1) % 2].0;
                unsafe {
                    halo::refresh3_band(
                        bufs[time % 2].0,
                        rs,
                        ps,
                        nx,
                        ny,
                        nz,
                        S::R,
                        b,
                        &map,
                        z0,
                        z1,
                    );
                }
                dispatch_elem!(
                    isa,
                    T,
                    dlt::$kernel::<V, S>(src, dst, rs, ps, nx, ny, z0, z1, s)
                );
            };
            let wave = hybrid_wave(d, t, h, S::R, b);
            wave.run(pool, pool.current_num_threads(), |_w, node| match node {
                HNode::Tile { shape, tau, hh } => {
                    for ss in 0..*hh {
                        run_piece(shape, *tau, ss);
                    }
                }
                HNode::Edge { members, tau, hh } => {
                    for ss in 0..*hh {
                        for shape in members {
                            run_piece(shape, *tau, ss);
                        }
                    }
                }
            });
        }
    };
}

drive3_impl!(drive3_star, Star3, star3_dlt);
drive3_impl!(drive3_box, Box3, box3_dlt);
