//! The execution-plan engine: validate once, allocate once, run many.
//!
//! The free functions in [`crate::api`] re-derive everything on every
//! call: they clone the grid for the ping-pong partner, transform layouts
//! in and out, and re-check the (dimension × stencil × method × tiling)
//! combination each time. That is faithful to how the paper *accounts*
//! for layout costs (Fig. 7 amortizes the transform over one time loop),
//! but it is the wrong shape for a system that steps many scenarios
//! repeatedly.
//!
//! A [`Plan`] factors the work:
//!
//! * **validate once** — the builder rejects invalid combinations (e.g.
//!   DLT under tessellate tiling, split tiling without DLT, a chunk
//!   height the tile width cannot support) with a [`PlanError`] instead
//!   of a mid-run panic;
//! * **allocate once** — the ping-pong scratch grid, the DLT staging
//!   pair, the k = 2 ring buffer, and the **persistent worker pool** live
//!   in the plan and are reused by every [`Plan1::run`] (no buffer
//!   allocation and no thread spawning in the steady state — pool
//!   workers are spawned at plan compile time and a stage dispatch is a
//!   condvar wake);
//! * **stay resident** — a [`Session`](Session1) keeps the grid in the
//!   method's layout between runs, so repeated stepping pays the
//!   transpose/DLT round-trip once instead of per call;
//! * **scale out** — core-level parallelism is a validated knob
//!   ([`Parallelism`]): untiled plans decompose into per-thread
//!   subdomains with per-step halo synchronization on the pool's barrier
//!   (see `exec::par`), tiled plans size the pool their stages run on,
//!   and every parallel result is bit-identical to sequential.
//!
//! ```
//! use stencil_core::exec::{Plan, Shape, Tiling};
//! use stencil_core::{Method, S1d3p};
//! use stencil_simd::Isa;
//!
//! let n = 4096;
//! let mut plan = Plan::new(Shape::d1(n))
//!     .method(Method::TransLayout2)
//!     .isa(Isa::detect_best())
//!     .star1(S1d3p::heat())
//!     .unwrap();
//!
//! let mut grid = stencil_core::Grid1::from_fn(n, 0.0, |i| i as f64);
//! plan.run(&mut grid, 4); // one-shot: natural layout in, natural out
//!
//! let mut sess = plan.session(&mut grid); // layout-resident
//! sess.run(2);
//! sess.run(2); // no transform, no allocation between these
//! drop(sess); // grid back in natural order
//! ```
//!
//! The legacy `run*`/`tessellate*`/`split*` free functions are thin
//! wrappers over `Plan`, kept for paper-figure fidelity.

pub mod erased;
pub mod halo;
pub(crate) mod par;
pub(crate) mod split;
pub(crate) mod stage;
pub(crate) mod tess;
pub mod tile;
pub(crate) mod wave;

pub use erased::{AnyGridMut, DynPlan, DynSession};
pub use halo::Boundary;
pub use stage::PhaseTotals;

use stencil_simd::{dispatch_elem, AlignedBuf, Elem, Isa, Vector};

use crate::grid::{Grid1, Grid2, Grid3};
use crate::kernels::{dlt, isa_entry, orig, scalar};
use crate::layout::{
    dlt_grid1, dlt_grid2, dlt_grid3, tl_grid1, tl_grid2, tl_grid3, DltGeo, SetGeo,
};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};
use tess::SyncPtr;
use tile::DimTiling;

/// A stencil execution scheme (paper §2–§3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Scalar reference (correctness oracle).
    Scalar,
    /// Vectorized with unaligned neighbour loads (§2.1, "multiple load").
    MultiLoad,
    /// Vectorized with aligned loads + per-vector shuffles (§2.1,
    /// "data reorganization").
    Reorg,
    /// Dimension-lifting transpose (Henretty et al., §2.2).
    Dlt,
    /// The paper's local transpose layout, one step per pass (§3.2).
    TransLayout,
    /// Transpose layout + time unroll-and-jam, two steps per pass (§3.3).
    TransLayout2,
}

impl Method {
    /// All methods, cheap to iterate in tests and benches.
    pub const ALL: [Method; 6] = [
        Method::Scalar,
        Method::MultiLoad,
        Method::Reorg,
        Method::Dlt,
        Method::TransLayout,
        Method::TransLayout2,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Scalar => "scalar",
            Method::MultiLoad => "multiload",
            Method::Reorg => "reorg",
            Method::Dlt => "dlt",
            Method::TransLayout => "translayout",
            Method::TransLayout2 => "translayout2",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Method {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown method '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// Plan configuration
// ---------------------------------------------------------------------------

/// Problem extent, 1–3 spatial dimensions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; 3],
    ndim: usize,
}

impl Shape {
    /// 1D row of `n` cells.
    pub fn d1(n: usize) -> Shape {
        Shape {
            dims: [n, 0, 0],
            ndim: 1,
        }
    }

    /// 2D plane of `nx × ny` cells (x fastest).
    pub fn d2(nx: usize, ny: usize) -> Shape {
        Shape {
            dims: [nx, ny, 0],
            ndim: 2,
        }
    }

    /// 3D volume of `nx × ny × nz` cells (x fastest).
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Shape {
        Shape {
            dims: [nx, ny, nz],
            ndim: 3,
        }
    }

    /// Number of spatial dimensions (1–3).
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Extents; entries past [`Shape::ndim`] are zero.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }
}

/// Temporal tiling applied around the intra-tile vectorization method.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Tiling {
    /// No tiling: plain Jacobi sweeps over the whole grid.
    None,
    /// Tessellate tiling (Yuan et al., SC'17) — the framework the paper
    /// integrates with (§3.4). Valid with every method except
    /// [`Method::Dlt`].
    Tessellate {
        /// Triangle base width per dimension; entries past the shape's
        /// `ndim` are ignored.
        w: [usize; 3],
        /// Time-chunk height in steps (bounded by `w` and the radius).
        h: usize,
        /// Worker threads.
        threads: usize,
    },
    /// Split tiling over the DLT layout — the SDSL stand-in (Henretty et
    /// al., ICS'13). Requires [`Method::Dlt`]; tiles the DLT column space
    /// in 1D and the outermost dimension in 2D/3D.
    Split {
        /// Tile base width (DLT columns in 1D, `y`/`z` cells in 2D/3D).
        w: usize,
        /// Time-chunk height in steps.
        h: usize,
        /// Worker threads.
        threads: usize,
    },
}

impl Tiling {
    fn name(&self) -> &'static str {
        match self {
            Tiling::None => "none",
            Tiling::Tessellate { .. } => "tessellate",
            Tiling::Split { .. } => "split",
        }
    }
}

/// Core-level parallelism applied by a plan (validated at build time like
/// every other knob).
///
/// Untiled plans decompose their grid into per-thread subdomains along
/// the outermost dimension and synchronize at every time step on the
/// plan's persistent pool (see [`par`](self) module docs on `exec::par`);
/// tiled plans size the pool their tile stages run on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Single-threaded stepping — the paper's sequential accounting. For
    /// tiled plans this overrides the tiling's `threads` field to 1.
    Off,
    /// Exactly `n` worker threads (the submitting thread counts as one),
    /// `1 ≤ n ≤ 4096`. Overrides a tiling's `threads` field.
    Threads(usize),
    /// Untiled plans use every available core; tiled plans defer to the
    /// tiling's `threads` field (back-compat with pre-knob callers).
    Auto,
}

/// Worker count `Parallelism::Auto` resolves to for untiled plans.
fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Why a plan could not be built.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The shape's dimensionality does not match the stencil family's.
    DimMismatch {
        /// Dimensions of the shape handed to [`Plan::new`].
        shape: usize,
        /// Dimensions the stencil family operates on.
        stencil: usize,
    },
    /// A shape extent is zero.
    EmptyShape,
    /// The requested ISA is not available on this CPU.
    IsaUnavailable(Isa),
    /// The method cannot run under the requested tiling framework.
    MethodTilingConflict {
        /// Requested method.
        method: Method,
        /// Requested tiling framework name.
        tiling: &'static str,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// Tiling parameters are inconsistent with the shape or radius.
    BadTiling(String),
    /// The parallelism knob is out of range.
    BadParallelism(String),
    /// A runtime stencil description was invalid (see
    /// [`SpecError`](crate::spec::SpecError)).
    Spec(crate::spec::SpecError),
    /// The requested [`Boundary`] cannot run in this configuration; the
    /// [`BoundaryReason`] says which restriction fired.
    Boundary {
        /// The boundary condition that was requested.
        boundary: Boundary,
        /// Which restriction rejected it.
        reason: BoundaryReason,
    },
}

/// Which restriction rejected a non-Dirichlet [`Boundary`] (the payload
/// of [`PlanError::Boundary`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundaryReason {
    /// A wrap/mirror fold would reach past the far wall: every interior
    /// extent must be ≥ the stencil radius.
    ExtentBelowRadius {
        /// Which axis (0 = x) is too small.
        axis: usize,
        /// That axis's interior extent.
        extent: usize,
        /// The stencil radius.
        radius: usize,
    },
    /// The legacy `run*` free functions pin the paper's constant-halo
    /// Dirichlet semantics and never refresh.
    LegacySurface,
}

impl std::fmt::Display for BoundaryReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundaryReason::ExtentBelowRadius {
                axis,
                extent,
                radius,
            } => write!(
                f,
                "axis {axis} extent {extent} is smaller than the stencil radius {radius}; \
                 the wrap/mirror halo folds need every extent ≥ the radius"
            ),
            BoundaryReason::LegacySurface => write!(
                f,
                "the legacy run* functions pin the paper's constant-halo Dirichlet \
                 semantics; compile a Plan (Plan::stencil / Plan::boundary) to run \
                 refreshed boundaries"
            ),
        }
    }
}

impl From<crate::spec::SpecError> for PlanError {
    fn from(e: crate::spec::SpecError) -> PlanError {
        PlanError::Spec(e)
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::DimMismatch { shape, stencil } => {
                write!(f, "shape is {shape}D but the stencil family is {stencil}D")
            }
            PlanError::EmptyShape => write!(f, "shape has an empty dimension"),
            PlanError::IsaUnavailable(isa) => {
                write!(f, "ISA {isa} is not available on this CPU")
            }
            PlanError::MethodTilingConflict {
                method,
                tiling,
                reason,
            } => {
                write!(
                    f,
                    "method {method} cannot run under {tiling} tiling: {reason}"
                )
            }
            PlanError::BadTiling(msg) => write!(f, "invalid tiling parameters: {msg}"),
            PlanError::BadParallelism(msg) => {
                write!(f, "invalid parallelism parameters: {msg}")
            }
            PlanError::Spec(e) => write!(f, "invalid stencil description: {e}"),
            PlanError::Boundary { boundary, reason } => {
                write!(f, "boundary {boundary} cannot run here: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Validated, immutable plan configuration.
#[derive(Copy, Clone, Debug)]
struct Cfg {
    method: Method,
    isa: Isa,
    tiling: Tiling,
    par: Parallelism,
    /// Worker count the parallelism knob resolved to at build time (≥ 1).
    threads: usize,
    /// Boundary condition resolved at build time (see [`Boundary`]).
    boundary: Boundary,
}

/// Which layout the grid is resident in during a session.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Layout {
    Natural,
    Transpose,
    Dlt,
}

impl Cfg {
    fn layout(&self) -> Layout {
        match self.method {
            Method::Scalar | Method::MultiLoad | Method::Reorg => Layout::Natural,
            // Under tessellate tiling the transpose methods keep the
            // global grid natural: each wavefront tile transposes its
            // footprint into the plan's staging arena for the chunk and
            // writes natural layout back (see [`stage`]), so no global
            // round-trip happens at session open/close.
            Method::TransLayout | Method::TransLayout2 => match self.tiling {
                Tiling::Tessellate { .. } => Layout::Natural,
                _ => Layout::Transpose,
            },
            Method::Dlt => Layout::Dlt,
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Execution-plan builder: pick a [`Shape`], a [`Method`], an [`Isa`] and
/// a [`Tiling`], then compile it against a stencil with one of the
/// typed terminal methods ([`Plan::star1`], [`Plan::star2`],
/// [`Plan::box2`], [`Plan::star3`], [`Plan::box3`]) or against a
/// runtime [`StencilSpec`](crate::spec::StencilSpec) with
/// [`Plan::stencil`], which yields a type-erased [`DynPlan`].
///
/// Defaults: `Method::TransLayout2` (the paper's best scheme),
/// `Isa::detect_best()`, `Tiling::None`.
#[derive(Copy, Clone, Debug)]
pub struct Plan {
    shape: Shape,
    method: Method,
    isa: Isa,
    tiling: Tiling,
    par: Parallelism,
    /// `None` until [`Plan::boundary`] is called; the typed terminals
    /// then default to `Dirichlet(0.0)` and [`Plan::stencil`] defers to
    /// the spec's own boundary.
    boundary: Option<Boundary>,
}

impl Plan {
    /// Start a plan for a problem of the given shape.
    pub fn new(shape: Shape) -> Plan {
        Plan {
            shape,
            method: Method::TransLayout2,
            isa: Isa::detect_best(),
            tiling: Tiling::None,
            par: Parallelism::Auto,
            boundary: None,
        }
    }

    /// Choose the vectorization method (default: `TransLayout2`).
    pub fn method(mut self, method: Method) -> Plan {
        self.method = method;
        self
    }

    /// Choose the instruction set (default: `Isa::detect_best()`).
    ///
    /// This is a ceiling, not a pin: a `TransLayout`/`TransLayout2`
    /// plan whose innermost extent cannot hold one full `vl²` vector
    /// set compiles for the next-narrower register class instead
    /// (see [`Isa::narrower`]) — the compiled choice is reported by
    /// the plan's `isa()` accessor. Results are bit-identical either
    /// way; only the set geometry changes.
    pub fn isa(mut self, isa: Isa) -> Plan {
        self.isa = isa;
        self
    }

    /// Choose the temporal tiling framework (default: none).
    pub fn tiling(mut self, tiling: Tiling) -> Plan {
        self.tiling = tiling;
        self
    }

    /// Choose the core-level parallelism (default: [`Parallelism::Auto`]).
    pub fn parallelism(mut self, par: Parallelism) -> Plan {
        self.par = par;
        self
    }

    /// Choose the [`Boundary`] condition (default: `Dirichlet(0.0)` —
    /// the paper's constant halos; [`Plan::stencil`] instead defers to
    /// the spec's own boundary when this knob was never set).
    ///
    /// Every boundary composes with every tiling framework and
    /// parallelism level: untiled runs refresh the halos once per step,
    /// and the temporally tiled frameworks ([`Tiling::Tessellate`] /
    /// [`Tiling::Split`]) refresh them per tile step inside the
    /// wavefront schedule (see the `exec::wave` module docs). The one
    /// genuine restriction is shape-level, validated at
    /// build time: wrap/mirror folds need every interior extent ≥ the
    /// stencil radius, else [`PlanError::Boundary`] with
    /// [`BoundaryReason::ExtentBelowRadius`].
    pub fn boundary(mut self, boundary: Boundary) -> Plan {
        self.boundary = Some(boundary);
        self
    }

    fn expect_ndim(&self, ndim: usize) -> Result<(), PlanError> {
        if self.shape.ndim != ndim {
            return Err(PlanError::DimMismatch {
                shape: self.shape.ndim,
                stencil: ndim,
            });
        }
        if self.shape.dims[..ndim].contains(&0) {
            return Err(PlanError::EmptyShape);
        }
        Ok(())
    }

    /// Resolve the parallelism knob to a concrete worker count (≥ 1).
    fn resolve_threads(&self) -> Result<usize, PlanError> {
        match self.par {
            Parallelism::Off => Ok(1),
            Parallelism::Threads(0) => Err(PlanError::BadParallelism(
                "thread count must be ≥ 1 (use Parallelism::Off for sequential)".into(),
            )),
            Parallelism::Threads(n) if n > 4096 => Err(PlanError::BadParallelism(format!(
                "thread count {n} exceeds the 4096 sanity cap"
            ))),
            Parallelism::Threads(n) => Ok(n),
            Parallelism::Auto => Ok(match self.tiling {
                Tiling::None => auto_threads(),
                Tiling::Tessellate { threads, .. } | Tiling::Split { threads, .. } => {
                    threads.max(1)
                }
            }),
        }
    }

    /// Validate the boundary against the shape (see [`Plan::boundary`]):
    /// wrap/mirror folds need every interior extent ≥ the stencil
    /// radius `r`. Tiling and parallelism impose no boundary
    /// restrictions — the wavefront drivers refresh halos per tile step.
    fn validate_boundary(
        &self,
        ndim: usize,
        r: usize,
        boundary: Boundary,
    ) -> Result<(), PlanError> {
        if boundary.is_dirichlet() {
            return Ok(());
        }
        for (axis, &n) in self.shape.dims[..ndim].iter().enumerate() {
            if n < r {
                return Err(PlanError::Boundary {
                    boundary,
                    reason: BoundaryReason::ExtentBelowRadius {
                        axis,
                        extent: n,
                        radius: r,
                    },
                });
            }
        }
        Ok(())
    }

    /// Validate method × tiling × shape × parallelism × boundary and
    /// build the worker pool. `r` is the stencil radius. Returns the
    /// resolved thread count and the plan's pool (present whenever any
    /// stage can use more than one thread).
    fn validate(
        &self,
        ndim: usize,
        r: usize,
        boundary: Boundary,
        lanes: usize,
    ) -> Result<(usize, Option<rayon::ThreadPool>), PlanError> {
        self.expect_ndim(ndim)?;
        // The scalar oracle never executes ISA-specific code (no layout
        // transform, no dispatch), so it stays valid with any Isa value —
        // matching the legacy free functions, which never checked it.
        if self.method != Method::Scalar && !self.isa.is_available() {
            return Err(PlanError::IsaUnavailable(self.isa));
        }
        self.validate_boundary(ndim, r, boundary)?;
        let threads = self.resolve_threads()?;
        match self.tiling {
            // Untiled sequential plans skip the pool entirely; tiled
            // plans always own one (a 1-thread pool runs stages inline).
            Tiling::None => Ok((threads, (threads > 1).then(|| tess::make_pool(threads)))),
            Tiling::Tessellate { w, h, .. } => {
                if self.method == Method::Dlt {
                    return Err(PlanError::MethodTilingConflict {
                        method: self.method,
                        tiling: self.tiling.name(),
                        reason: "DLT runs under split tiling (its own layout/tile geometry)",
                    });
                }
                if h == 0 {
                    return Err(PlanError::BadTiling("chunk height h must be ≥ 1".into()));
                }
                for (axis, (&n, &wi)) in self.shape.dims[..ndim].iter().zip(&w[..ndim]).enumerate()
                {
                    if wi == 0 {
                        return Err(PlanError::BadTiling(format!(
                            "tile width w[{axis}] must be ≥ 1"
                        )));
                    }
                    let d = DimTiling::new(n, wi.min(n), r, true);
                    if h > d.max_height() {
                        return Err(PlanError::BadTiling(format!(
                            "chunk height {h} exceeds max {} for axis {axis} (n={n}, w={}, r={r})",
                            d.max_height(),
                            wi.min(n),
                        )));
                    }
                }
                Ok((threads, Some(tess::make_pool(threads))))
            }
            Tiling::Split { w, h, .. } => {
                if self.method != Method::Dlt {
                    return Err(PlanError::MethodTilingConflict {
                        method: self.method,
                        tiling: self.tiling.name(),
                        reason: "split tiling tiles the DLT layout; use Method::Dlt",
                    });
                }
                if w == 0 || h == 0 {
                    return Err(PlanError::BadTiling("w and h must be ≥ 1".into()));
                }
                if ndim == 1 {
                    // 1D split tiles the DLT column space; degenerate
                    // widths fall back to plain stepping at run time.
                    let cols = self.shape.dims[0] / lanes;
                    if cols > 4 * r {
                        let d = DimTiling::new(cols, w.min(cols), r, false);
                        if h > d.max_height() {
                            return Err(PlanError::BadTiling(format!(
                                "chunk height {h} exceeds max {} in DLT column space \
                                 (cols={cols}, w={}, r={r})",
                                d.max_height(),
                                w.min(cols),
                            )));
                        }
                    }
                } else {
                    let n = self.shape.dims[ndim - 1]; // outermost dimension
                    let d = DimTiling::new(n, w.min(n), r, true);
                    if h > d.max_height() {
                        return Err(PlanError::BadTiling(format!(
                            "chunk height {h} exceeds max {} for the outer dimension \
                             (n={n}, w={}, r={r})",
                            d.max_height(),
                            w.min(n),
                        )));
                    }
                }
                Ok((threads, Some(tess::make_pool(threads))))
            }
        }
    }

    fn cfg(&self, threads: usize, boundary: Boundary) -> Cfg {
        Cfg {
            method: self.method,
            isa: self.isa,
            tiling: self.tiling,
            par: self.par,
            threads,
            boundary,
        }
    }

    /// The boundary the typed terminals resolve to: the explicit knob,
    /// else the default constant-zero Dirichlet halos.
    fn resolved_boundary(&self) -> Boundary {
        self.boundary.unwrap_or_default()
    }

    /// The ISA the plan actually compiles for. The transpose-layout
    /// methods vectorize whole `vl²`-cell sets along x, so a row
    /// shorter than one set would fall entirely to the scalar tail —
    /// at f32's 16 lanes a set spans 256 cells, and a 64-wide 3D grid
    /// that is >2× faster than f64 under AVX2 runs 16× *slower* under
    /// AVX-512. Step down the register-class ladder
    /// ([`Isa::narrower`]) until a full set fits or the 256-bit class
    /// is reached; other methods (per-vector geometry, no `vl²` sets)
    /// keep the configured ISA, and f64 plans only narrow below 64
    /// cells where the tail dominated anyway.
    ///
    /// Under tessellate tiling the extent that matters is the **tile**
    /// x-footprint, not the grid: staged tiles step `vl²` sets of the
    /// staged width `w + 2r`, so that width is what must hold two full
    /// sets — one is enough for a transposed region, but a single-set
    /// row is all edge work (see [`Self::tess_isa`]). Partial edge
    /// sets ride the vector pipeline — see `kernels::tl` — so they no
    /// longer push the choice narrower on their own.
    fn narrowed_isa<T: Elem>(&self, r: usize) -> Isa {
        if !matches!(self.method, Method::TransLayout | Method::TransLayout2) {
            return self.isa;
        }
        let nx = self.shape.dims[0];
        if let Tiling::Tessellate { w, .. } = self.tiling {
            // Typical staged triangle width: the tile base plus the
            // radius-extended reach on both sides.
            let wt = w[0].max(1).min(nx) + 2 * r;
            return Self::tess_isa::<T>(self.isa, wt);
        }
        let mut isa = self.isa;
        loop {
            let vl = isa.lanes_for::<T>();
            if nx >= vl * vl {
                return isa;
            }
            match isa.narrower().filter(|i| i.is_available()) {
                Some(n) => isa = n,
                None => return isa,
            }
        }
    }

    /// Register class for staged tess tiles of staged x-extent `w`:
    /// step down the `narrower()` ladder until two full `vl²` sets fit
    /// (`w ≥ 2·vl²`). One set is the floor for having a transposed
    /// region at all, but a row that holds only a single set is all
    /// edge — every step pays the partial-set snapshot/restore and the
    /// prev/next overhang assembly on its one set — so the class is
    /// kept only when at least one *interior* set can exist. Partial
    /// edge sets ride the vector pipeline either way.
    fn tess_isa<T: Elem>(top: Isa, w: usize) -> Isa {
        let mut isa = top;
        loop {
            if w >= 2 * isa.lanes_for::<T>().pow(2) {
                return isa;
            }
            match isa.narrower().filter(|i| i.is_available()) {
                Some(n) => isa = n,
                None => return isa,
            }
        }
    }

    /// Build the per-worker staging arena for tessellate + transpose
    /// plans (see [`stage::TileArena`]); `None` for every other
    /// configuration.
    fn tess_arena<T: Elem>(
        &self,
        ndim: usize,
        r: usize,
        pool: Option<&rayon::ThreadPool>,
    ) -> Option<stage::TileArena<T>> {
        let Tiling::Tessellate { w, h, .. } = self.tiling else {
            return None;
        };
        if !matches!(self.method, Method::TransLayout | Method::TransLayout2) {
            return None;
        }
        let dims: Vec<DimTiling> = (0..ndim)
            .map(|a| {
                let n = self.shape.dims[a];
                DimTiling::new(n, w[a].min(n), r, true)
            })
            .collect();
        let workers = pool.map(|p| p.current_num_threads()).unwrap_or(1);
        Some(stage::TileArena::for_tess(&dims, h, r, workers))
    }

    /// Compile the plan for a 1D star stencil (over `f64`).
    pub fn star1<S: Star1>(self, stencil: S) -> Result<Plan1<S>, PlanError> {
        self.star1_elem(stencil)
    }

    /// Compile the plan for a 1D star stencil over element type `T`.
    pub fn star1_elem<T: Elem, S: Star1>(mut self, stencil: S) -> Result<Plan1<S, T>, PlanError> {
        self.isa = self.narrowed_isa::<T>(S::R);
        let boundary = self.resolved_boundary();
        let (threads, pool) = self.validate(1, S::R, boundary, self.isa.lanes_for::<T>())?;
        let arena = self.tess_arena::<T>(1, S::R, pool.as_ref());
        Ok(Plan1 {
            cfg: self.cfg(threads, boundary),
            n: self.shape.dims[0],
            stencil,
            scratch: None,
            stage: None,
            arena,
            phases: stage::PhaseCounters::new(),
            pool,
        })
    }

    /// Compile the plan for a 2D star stencil (over `f64`).
    pub fn star2<S: Star2>(self, stencil: S) -> Result<Plan2Star<S>, PlanError> {
        self.star2_elem(stencil)
    }

    /// Compile the plan for a 2D star stencil over element type `T`.
    pub fn star2_elem<T: Elem, S: Star2>(
        mut self,
        stencil: S,
    ) -> Result<Plan2Star<S, T>, PlanError> {
        self.isa = self.narrowed_isa::<T>(S::R);
        let boundary = self.resolved_boundary();
        let (threads, pool) = self.validate(2, S::R, boundary, self.isa.lanes_for::<T>())?;
        let arena = self.tess_arena::<T>(2, S::R, pool.as_ref());
        Ok(Plan2Star {
            cfg: self.cfg(threads, boundary),
            nx: self.shape.dims[0],
            ny: self.shape.dims[1],
            stencil,
            scratch: None,
            stage: None,
            ring: None,
            arena,
            phases: stage::PhaseCounters::new(),
            pool,
        })
    }

    /// Compile the plan for a 2D box stencil (over `f64`).
    pub fn box2<S: Box2>(self, stencil: S) -> Result<Plan2Box<S>, PlanError> {
        self.box2_elem(stencil)
    }

    /// Compile the plan for a 2D box stencil over element type `T`.
    pub fn box2_elem<T: Elem, S: Box2>(mut self, stencil: S) -> Result<Plan2Box<S, T>, PlanError> {
        self.isa = self.narrowed_isa::<T>(S::R);
        let boundary = self.resolved_boundary();
        let (threads, pool) = self.validate(2, S::R, boundary, self.isa.lanes_for::<T>())?;
        let arena = self.tess_arena::<T>(2, S::R, pool.as_ref());
        Ok(Plan2Box {
            cfg: self.cfg(threads, boundary),
            nx: self.shape.dims[0],
            ny: self.shape.dims[1],
            stencil,
            scratch: None,
            stage: None,
            ring: None,
            arena,
            phases: stage::PhaseCounters::new(),
            pool,
        })
    }

    /// Compile the plan for a 3D star stencil (over `f64`).
    pub fn star3<S: Star3>(self, stencil: S) -> Result<Plan3Star<S>, PlanError> {
        self.star3_elem(stencil)
    }

    /// Compile the plan for a 3D star stencil over element type `T`.
    pub fn star3_elem<T: Elem, S: Star3>(
        mut self,
        stencil: S,
    ) -> Result<Plan3Star<S, T>, PlanError> {
        self.isa = self.narrowed_isa::<T>(S::R);
        let boundary = self.resolved_boundary();
        let (threads, pool) = self.validate(3, S::R, boundary, self.isa.lanes_for::<T>())?;
        let arena = self.tess_arena::<T>(3, S::R, pool.as_ref());
        Ok(Plan3Star {
            cfg: self.cfg(threads, boundary),
            nx: self.shape.dims[0],
            ny: self.shape.dims[1],
            nz: self.shape.dims[2],
            stencil,
            scratch: None,
            stage: None,
            ring: None,
            arena,
            phases: stage::PhaseCounters::new(),
            pool,
        })
    }

    /// Compile the plan for a 3D box stencil (over `f64`).
    pub fn box3<S: Box3>(self, stencil: S) -> Result<Plan3Box<S>, PlanError> {
        self.box3_elem(stencil)
    }

    /// Compile the plan for a 3D box stencil over element type `T`.
    pub fn box3_elem<T: Elem, S: Box3>(mut self, stencil: S) -> Result<Plan3Box<S, T>, PlanError> {
        self.isa = self.narrowed_isa::<T>(S::R);
        let boundary = self.resolved_boundary();
        let (threads, pool) = self.validate(3, S::R, boundary, self.isa.lanes_for::<T>())?;
        let arena = self.tess_arena::<T>(3, S::R, pool.as_ref());
        Ok(Plan3Box {
            cfg: self.cfg(threads, boundary),
            nx: self.shape.dims[0],
            ny: self.shape.dims[1],
            nz: self.shape.dims[2],
            stencil,
            scratch: None,
            stage: None,
            ring: None,
            arena,
            phases: stage::PhaseCounters::new(),
            pool,
        })
    }
}

/// Shared `Debug` body for the compiled plan types (buffers elided).
macro_rules! fmt_plan_debug {
    ($Plan:ident) => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct(stringify!($Plan))
                .field("method", &self.cfg.method)
                .field("isa", &self.cfg.isa)
                .field("tiling", &self.cfg.tiling)
                .field("shape", &self.shape())
                .finish_non_exhaustive()
        }
    };
}

// ---------------------------------------------------------------------------
// 1D plan
// ---------------------------------------------------------------------------

/// Compiled execution plan for a 1D star stencil.
///
/// Owns every buffer the method needs (ping-pong scratch, DLT staging,
/// worker pool); [`Plan1::run`] and [`Plan1::session`] reuse them across
/// calls.
pub struct Plan1<S: Star1, T: Elem = f64> {
    cfg: Cfg,
    n: usize,
    stencil: S,
    scratch: Option<Grid1<T>>,
    stage: Option<(Grid1<T>, Grid1<T>)>,
    arena: Option<stage::TileArena<T>>,
    phases: stage::PhaseCounters,
    pool: Option<rayon::ThreadPool>,
}

impl<S: Star1, T: Elem> std::fmt::Debug for Plan1<S, T> {
    fmt_plan_debug!(Plan1);
}

impl<S: Star1, T: Elem> Plan1<S, T> {
    /// The plan's vectorization method.
    pub fn method(&self) -> Method {
        self.cfg.method
    }

    /// The plan's instruction set.
    pub fn isa(&self) -> Isa {
        self.cfg.isa
    }

    /// The plan's tiling framework.
    pub fn tiling(&self) -> Tiling {
        self.cfg.tiling
    }

    /// The plan's parallelism knob.
    pub fn parallelism(&self) -> Parallelism {
        self.cfg.par
    }

    /// Worker count the parallelism knob resolved to at build time (≥ 1).
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// The plan's boundary condition.
    pub fn boundary(&self) -> Boundary {
        self.cfg.boundary
    }

    /// The shape the plan was compiled for.
    pub fn shape(&self) -> Shape {
        Shape::d1(self.n)
    }

    /// Cumulative wall-time phase totals recorded by the tiled drivers
    /// (all zero for untiled plans); see [`PhaseTotals`].
    pub fn phase_totals(&self) -> PhaseTotals {
        self.phases.totals()
    }

    /// Reset the phase totals to zero.
    pub fn reset_phase_totals(&self) {
        self.phases.reset()
    }

    fn ensure_scratch(&mut self, g: &Grid1<T>) {
        halo::ensure_scratch(&mut self.scratch, g);
    }

    fn ensure_stage(&mut self, g: &Grid1<T>) {
        let isa = self.cfg.isa;
        halo::ensure_stage(&mut self.stage, g, |g, a| dlt_grid1(g, a, isa, false));
    }

    /// Run `t` Jacobi steps on `g` (natural layout in, natural layout
    /// out). Buffers are reused across calls; for repeated stepping
    /// without the per-call layout round-trip, use [`Plan1::session`].
    pub fn run(&mut self, g: &mut Grid1<T>, t: usize) {
        if t == 0 {
            return;
        }
        self.session(g).run(t);
    }

    /// Open a layout-resident stepping session on `g`: the grid is
    /// transformed into the method's layout once, every
    /// [`Session1::run`] steps it in place, and dropping the session
    /// restores natural order.
    pub fn session<'p>(&'p mut self, g: &'p mut Grid1<T>) -> Session1<'p, S, T> {
        assert_eq!(g.n(), self.n, "grid does not match the plan's shape");
        match self.cfg.layout() {
            Layout::Natural => self.ensure_scratch(g),
            Layout::Transpose => {
                tl_grid1(g, self.cfg.isa);
                self.ensure_scratch(g);
            }
            Layout::Dlt => self.ensure_stage(g),
        }
        Session1 { plan: self, g }
    }
}

/// Layout-resident stepping session over a 1D grid (see
/// [`Plan1::session`]).
pub struct Session1<'p, S: Star1, T: Elem = f64> {
    plan: &'p mut Plan1<S, T>,
    g: &'p mut Grid1<T>,
}

impl<S: Star1, T: Elem> Session1<'_, S, T> {
    /// Advance the grid `t` Jacobi steps. No buffer allocation and no
    /// layout transform happen here — only kernel stepping (tiled runs
    /// copy small precomputed tile lists per chunk), plus the O(surface)
    /// per-step halo refresh under a non-Dirichlet [`Boundary`].
    pub fn run(&mut self, t: usize) {
        if t == 0 {
            return;
        }
        match self.plan.cfg.tiling {
            Tiling::None if self.plan.cfg.threads > 1 => self.run_parallel(t),
            Tiling::None if self.plan.cfg.boundary.is_dirichlet() => self.run_untiled(t),
            // Non-Dirichlet TL2 keeps the fused k = 2 pass: the t+1 halo
            // values the second step needs are the folds of edge-interior
            // cells the kernel itself computes, staged in registers (see
            // `kernels::tl2::star1_tl2_wide`). Other methods refresh the
            // source halos and take exactly one step, t times.
            Tiling::None if self.plan.cfg.method == Method::TransLayout2 => {
                self.run_fused_refreshed(t)
            }
            Tiling::None => {
                for _ in 0..t {
                    self.refresh_boundary();
                    self.run_untiled(1);
                }
            }
            Tiling::Tessellate { w, h, .. } => self.run_tessellate(w[0], h, t),
            Tiling::Split { w, h, .. } => self.run_split(w, h, t),
        }
    }

    /// Refresh the halo cells of the step's source buffer from its
    /// interior (see [`halo`]); no-op under Dirichlet.
    fn refresh_boundary(&mut self) {
        let Cfg {
            method,
            isa,
            boundary,
            ..
        } = self.plan.cfg;
        let n = self.g.n();
        let map = halo::RowMap::for_method::<T>(method, isa, n);
        let ptr = if method == Method::Dlt {
            // dlt_steps keeps its result in the first staging grid.
            self.plan.stage.as_mut().expect("stage").0.ptr_mut()
        } else {
            self.g.ptr_mut()
        };
        // SAFETY: ptr spans the interior plus HALO_PAD on both sides and
        // n ≥ S::R was validated at plan build.
        unsafe { halo::refresh1(ptr, n, S::R, boundary, &map) };
    }

    /// Non-Dirichlet `TransLayout2`: refresh the halos to the current
    /// time level, then run the fused k = 2 pass with register-staged
    /// t+1 halo values — two steps per memory round-trip, matching the
    /// Dirichlet fast path. Odd steps (and degenerate set counts) fall
    /// back to refreshed k = 1 stepping.
    fn run_fused_refreshed(&mut self, t: usize) {
        let Cfg { isa, boundary, .. } = self.plan.cfg;
        let s = self.plan.stencil;
        let n = self.g.n();
        let nsets = SetGeo::new(n, isa.lanes_for::<T>()).nsets;
        let pairs = if nsets >= 2 { t / 2 } else { 0 };
        // Derived once: at L1 sizes the fused pair is a few µs, so the
        // per-pair constant work has to stay tiny to hold the ≤10%
        // boundary-parity budget.
        let map = halo::RowMap::for_method::<T>(Method::TransLayout2, isa, n);
        let gp = self.g.ptr_mut();
        for _ in 0..pairs {
            // SAFETY: gp spans the interior plus HALO_PAD on both sides
            // and n ≥ S::R was validated at plan build.
            unsafe {
                halo::refresh1(gp, n, S::R, boundary, &map);
                isa_entry::star1_tl2_wide(isa, gp, n, boundary, &s);
            }
        }
        for _ in 0..t - 2 * pairs {
            self.refresh_boundary();
            self.run_untiled(1);
        }
    }

    /// Domain-decomposed stepping on the plan's pool (untiled plans with
    /// a resolved thread count > 1); see [`par`](self) module docs on
    /// `exec::par`.
    fn run_parallel(&mut self, t: usize) {
        let Cfg {
            method,
            isa,
            threads,
            boundary,
            ..
        } = self.plan.cfg;
        let s = self.plan.stencil;
        let n = self.g.n();
        if method == Method::Dlt {
            let geo = DltGeo::new(n, isa.lanes_for::<T>());
            if geo.cols <= 4 * S::R {
                // Degenerate column space: sequential stepping (mirrors
                // the split-tiling driver's fallback).
                if boundary.is_dirichlet() {
                    self.dlt_steps(t);
                } else {
                    for _ in 0..t {
                        self.refresh_boundary();
                        self.dlt_steps(1);
                    }
                }
                return;
            }
            let (a, b) = self.plan.stage.as_mut().expect("stage");
            let bufs = [SyncPtr(a.ptr_mut()), SyncPtr(b.ptr_mut())];
            let pool = self.plan.pool.as_ref().expect("pool");
            par::drive1_dlt(isa, bufs, &geo, t, &s, pool, threads, boundary);
            if t % 2 == 1 {
                std::mem::swap(a, b);
            }
        } else {
            let other = self.plan.scratch.as_mut().expect("scratch");
            let bufs = [SyncPtr(self.g.ptr_mut()), SyncPtr(other.ptr_mut())];
            let pool = self.plan.pool.as_ref().expect("pool");
            par::drive1(method, isa, bufs, n, t, &s, pool, threads, boundary);
            if t % 2 == 1 {
                std::mem::swap(self.g, other);
            }
        }
    }

    fn run_untiled(&mut self, t: usize) {
        let Cfg { method, isa, .. } = self.plan.cfg;
        let s = self.plan.stencil;
        let n = self.g.n();
        match method {
            Method::Scalar => {
                let other = self.plan.scratch.as_mut().expect("scratch");
                let mut in_g = true;
                for _ in 0..t {
                    let (sp, dp) = if in_g {
                        (self.g.ptr(), other.ptr_mut())
                    } else {
                        (other.ptr(), self.g.ptr_mut())
                    };
                    unsafe { scalar::star1_range(sp, dp, 0, n, &s) };
                    in_g = !in_g;
                }
                if !in_g {
                    std::mem::swap(self.g, other);
                }
            }
            Method::MultiLoad | Method::Reorg => {
                let reorg = method == Method::Reorg;
                let other = self.plan.scratch.as_mut().expect("scratch");
                let gp = self.g.ptr_mut();
                let op = other.ptr_mut();
                // Ping-pong `t` steps; returns whether the result is in
                // `gp` (hoisted into a named fn so `dispatch_elem!` can
                // monomorphize it per register width).
                unsafe fn steps<V: Vector, S: Star1>(
                    gp: *mut V::Elem,
                    op: *mut V::Elem,
                    n: usize,
                    t: usize,
                    reorg: bool,
                    s: &S,
                ) -> bool {
                    let mut in_g = true;
                    for _ in 0..t {
                        let (sp, dp) = if in_g {
                            (gp.cast_const(), op)
                        } else {
                            (op.cast_const(), gp)
                        };
                        if reorg {
                            orig::star1_orig::<V, S, true>(sp, dp, 0, n, s);
                        } else {
                            orig::star1_orig::<V, S, false>(sp, dp, 0, n, s);
                        }
                        in_g = !in_g;
                    }
                    in_g
                }
                let in_g = dispatch_elem!(isa, T, steps::<V, S>(gp, op, n, t, reorg, &s));
                if !in_g {
                    std::mem::swap(self.g, other);
                }
            }
            Method::Dlt => self.dlt_steps(t),
            Method::TransLayout => self.tl_k1_steps(t),
            Method::TransLayout2 => {
                let pairs = t / 2;
                let nsets = SetGeo::new(n, isa.lanes_for::<T>()).nsets;
                if nsets >= 2 {
                    let gp = self.g.ptr_mut();
                    for _ in 0..pairs {
                        unsafe { isa_entry::star1_tl2(isa, gp, n, &s) };
                    }
                } else {
                    self.tl_k1_steps(2 * pairs);
                }
                if t % 2 == 1 {
                    self.tl_k1_steps(1);
                }
            }
        }
    }

    /// k = 1 transpose-layout stepping (grid already in transpose layout).
    fn tl_k1_steps(&mut self, t: usize) {
        if t == 0 {
            return;
        }
        let isa = self.plan.cfg.isa;
        let s = self.plan.stencil;
        let n = self.g.n();
        let other = self.plan.scratch.as_mut().expect("scratch");
        let gp = self.g.ptr_mut();
        let op = other.ptr_mut();
        let mut in_g = true;
        for _ in 0..t {
            let (sp, dp) = if in_g {
                (gp.cast_const(), op)
            } else {
                (op.cast_const(), gp)
            };
            unsafe { isa_entry::star1_tl(isa, sp, dp, n, 0, n, &s) };
            in_g = !in_g;
        }
        if !in_g {
            std::mem::swap(self.g, other);
        }
    }

    /// DLT stepping on the staging pair; the result invariantly ends in
    /// the first staging grid.
    fn dlt_steps(&mut self, t: usize) {
        let isa = self.plan.cfg.isa;
        let s = self.plan.stencil;
        let n = self.g.n();
        let (a, b) = self.plan.stage.as_mut().expect("stage");
        let ap = a.ptr_mut();
        let bp = b.ptr_mut();
        // Ping-pong `t` DLT steps; returns whether the result is in `a`.
        unsafe fn steps<V: Vector, S: Star1>(
            ap: *mut V::Elem,
            bp: *mut V::Elem,
            n: usize,
            t: usize,
            s: &S,
        ) -> bool {
            let mut in_a = true;
            for _ in 0..t {
                let (sp, dp) = if in_a {
                    (ap.cast_const(), bp)
                } else {
                    (bp.cast_const(), ap)
                };
                dlt::star1_dlt::<V, S>(sp, dp, n, s);
                in_a = !in_a;
            }
            in_a
        }
        let in_a = dispatch_elem!(isa, T, steps::<V, S>(ap, bp, n, t, &s));
        if !in_a {
            std::mem::swap(a, b);
        }
    }

    fn run_tessellate(&mut self, w: usize, h: usize, t: usize) {
        let Cfg {
            method,
            isa,
            boundary,
            ..
        } = self.plan.cfg;
        let s = self.plan.stencil;
        let n = self.g.n();
        let d = DimTiling::new(n, w.min(n), S::R, true);
        let other = self.plan.scratch.as_mut().expect("scratch");
        let bufs = [SyncPtr(self.g.ptr_mut()), SyncPtr(other.ptr_mut())];
        let pool = self.plan.pool.as_ref().expect("pool");
        tess::drive1(
            method,
            isa,
            bufs,
            n,
            &d,
            t,
            h,
            &s,
            pool,
            boundary,
            self.plan.arena.as_ref(),
            &self.plan.phases,
        );
        if t % 2 == 1 {
            std::mem::swap(self.g, other);
        }
    }

    fn run_split(&mut self, w: usize, h: usize, t: usize) {
        let Cfg { isa, boundary, .. } = self.plan.cfg;
        let s = self.plan.stencil;
        let n = self.g.n();
        let geo = DltGeo::new(n, isa.lanes_for::<T>());
        if geo.cols <= 4 * S::R {
            // Degenerate width: plain stepping is the only sensible
            // schedule (validated fallback, mirrors the legacy driver).
            if boundary.is_dirichlet() {
                self.dlt_steps(t);
            } else {
                for _ in 0..t {
                    self.refresh_boundary();
                    self.dlt_steps(1);
                }
            }
            return;
        }
        let d = DimTiling::new(geo.cols, w.min(geo.cols), S::R, false);
        let (a, b) = self.plan.stage.as_mut().expect("stage");
        let bufs = [SyncPtr(a.ptr_mut()), SyncPtr(b.ptr_mut())];
        let pool = self.plan.pool.as_ref().expect("pool");
        split::drive1(isa, bufs, &geo, n, &d, t, h, &s, pool, boundary);
        if t % 2 == 1 {
            std::mem::swap(a, b);
        }
    }
}

impl<S: Star1, T: Elem> Drop for Session1<'_, S, T> {
    fn drop(&mut self) {
        let isa = self.plan.cfg.isa;
        match self.plan.cfg.layout() {
            Layout::Natural => {}
            Layout::Transpose => tl_grid1(self.g, isa),
            Layout::Dlt => {
                let (a, _) = self.plan.stage.as_ref().expect("stage");
                dlt_grid1(a, self.g, isa, true);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2D plans (star and box, generated by one macro)
// ---------------------------------------------------------------------------

macro_rules! plan2_impl {
    ($(#[$doc:meta])* $Plan:ident, $Session:ident, $bound:ident,
     $scalar_k:ident, $orig_k:ident, $dlt_k:ident, $tl_e:ident, $tl2_e:ident,
     $tl2_wide_e:ident, $tess_drive:ident, $split_drive:ident) => {
        $(#[$doc])*
        ///
        /// Owns every buffer the method needs (ping-pong scratch, DLT
        /// staging, k = 2 ring, worker pool); `run` and `session` reuse
        /// them across calls.
        pub struct $Plan<S: $bound, T: Elem = f64> {
            cfg: Cfg,
            nx: usize,
            ny: usize,
            stencil: S,
            scratch: Option<Grid2<T>>,
            stage: Option<(Grid2<T>, Grid2<T>)>,
            ring: Option<AlignedBuf<T>>,
            arena: Option<stage::TileArena<T>>,
            phases: stage::PhaseCounters,
            pool: Option<rayon::ThreadPool>,
        }

        impl<S: $bound, T: Elem> std::fmt::Debug for $Plan<S, T> {
            fmt_plan_debug!($Plan);
        }

        impl<S: $bound, T: Elem> $Plan<S, T> {
            /// The plan's vectorization method.
            pub fn method(&self) -> Method {
                self.cfg.method
            }

            /// The plan's instruction set.
            pub fn isa(&self) -> Isa {
                self.cfg.isa
            }

            /// The plan's tiling framework.
            pub fn tiling(&self) -> Tiling {
                self.cfg.tiling
            }

            /// The plan's parallelism knob.
            pub fn parallelism(&self) -> Parallelism {
                self.cfg.par
            }

            /// Worker count the parallelism knob resolved to at build
            /// time (≥ 1).
            pub fn threads(&self) -> usize {
                self.cfg.threads
            }

            /// The plan's boundary condition.
            pub fn boundary(&self) -> Boundary {
                self.cfg.boundary
            }

            /// The shape the plan was compiled for.
            pub fn shape(&self) -> Shape {
                Shape::d2(self.nx, self.ny)
            }

            /// Cumulative wall-time phase totals recorded by the tiled
            /// drivers (all zero for untiled plans); see
            /// [`PhaseTotals`].
            pub fn phase_totals(&self) -> PhaseTotals {
                self.phases.totals()
            }

            /// Reset the phase totals to zero.
            pub fn reset_phase_totals(&self) {
                self.phases.reset()
            }

            fn ensure_scratch(&mut self, g: &Grid2<T>) {
                halo::ensure_scratch(&mut self.scratch, g);
            }

            fn ensure_stage(&mut self, g: &Grid2<T>) {
                let isa = self.cfg.isa;
                halo::ensure_stage(&mut self.stage, g, |g, a| dlt_grid2(g, a, isa, false));
            }

            fn ensure_ring(&mut self, g: &Grid2<T>) {
                let len = halo::ring2_len::<T>(S::R, g.row_stride());
                if self.ring.as_ref().map(|r| r.len()) != Some(len) {
                    self.ring = Some(AlignedBuf::zeroed(len));
                }
            }

            /// Run `t` Jacobi steps on `g` (natural layout in, natural
            /// layout out). Buffers are reused across calls; for repeated
            /// stepping without the per-call layout round-trip, use
            /// `session`.
            pub fn run(&mut self, g: &mut Grid2<T>, t: usize) {
                if t == 0 {
                    return;
                }
                self.session(g).run(t);
            }

            /// Open a layout-resident stepping session on `g` (see
            /// [`Plan1::session`]).
            pub fn session<'p>(&'p mut self, g: &'p mut Grid2<T>) -> $Session<'p, S, T> {
                assert_eq!(
                    (g.nx(), g.ny()),
                    (self.nx, self.ny),
                    "grid does not match the plan's shape"
                );
                assert!(g.ry() >= S::R, "grid halo narrower than stencil radius");
                match self.cfg.layout() {
                    Layout::Natural => self.ensure_scratch(g),
                    Layout::Transpose => {
                        tl_grid2(g, self.cfg.isa);
                        self.ensure_scratch(g);
                        // The k = 2 ring only serves the sequential fused
                        // pass; parallel untiled stepping ping-pongs.
                        // Non-Dirichlet plans run the fused pass too when
                        // the grid's halo is wide enough to stage the t+1
                        // halo rows (see `kernels::tl2`'s wide section);
                        // narrower halos step k = 1 with a refresh in
                        // between and skip the ring.
                        if self.cfg.method == Method::TransLayout2
                            && self.cfg.tiling == Tiling::None
                            && self.cfg.threads == 1
                            && (self.cfg.boundary.is_dirichlet() || g.ry() >= 2 * S::R)
                        {
                            self.ensure_ring(g);
                        }
                    }
                    Layout::Dlt => self.ensure_stage(g),
                }
                $Session { plan: self, g }
            }
        }

        /// Layout-resident stepping session over a 2D grid (see
        /// [`Plan1::session`]).
        pub struct $Session<'p, S: $bound, T: Elem = f64> {
            plan: &'p mut $Plan<S, T>,
            g: &'p mut Grid2<T>,
        }

        impl<S: $bound, T: Elem> $Session<'_, S, T> {
            /// Advance the grid `t` Jacobi steps. No buffer allocation
            /// and no layout transform happen here — only kernel stepping
            /// (tiled runs copy small precomputed tile lists per chunk),
            /// plus the O(surface) per-step halo refresh under a
            /// non-Dirichlet [`Boundary`].
            pub fn run(&mut self, t: usize) {
                if t == 0 {
                    return;
                }
                match self.plan.cfg.tiling {
                    Tiling::None if self.plan.cfg.threads > 1 => self.run_parallel(t),
                    Tiling::None if self.plan.cfg.boundary.is_dirichlet() => self.run_untiled(t),
                    // Non-Dirichlet TL2 on a wide-halo grid keeps the
                    // fused k = 2 pass (t+1 halo rows staged in the
                    // outer halo — see `kernels::tl2`); otherwise
                    // refresh + one step, t times.
                    Tiling::None
                        if self.plan.cfg.method == Method::TransLayout2
                            && self.g.ry() >= 2 * S::R =>
                    {
                        self.run_fused_refreshed(t)
                    }
                    Tiling::None => {
                        for _ in 0..t {
                            self.refresh_boundary();
                            self.run_untiled(1);
                        }
                    }
                    Tiling::Tessellate { w, h, .. } => self.run_tessellate(w[0], w[1], h, t),
                    Tiling::Split { w, h, .. } => self.run_split(w, h, t),
                }
            }

            /// Non-Dirichlet `TransLayout2` on a wide-halo grid: refresh
            /// the (inner) halo frame to the current time level, then run
            /// the fused k = 2 pass, which stages the t+1 halo rows in
            /// the outer half of the `2R`-wide halo — two steps per
            /// memory round-trip, matching the Dirichlet fast path.
            fn run_fused_refreshed(&mut self, t: usize) {
                let Cfg { isa, boundary, .. } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let map = halo::RowMap::for_method::<T>(Method::TransLayout2, isa, nx);
                for _ in 0..t / 2 {
                    self.refresh_boundary();
                    let ring = self.plan.ring.as_mut().expect("ring");
                    let ring = unsafe { halo::ring2_origin(ring.as_mut_ptr()) };
                    let gp = self.g.ptr_mut();
                    unsafe {
                        isa_entry::$tl2_wide_e(isa, gp, rs, nx, ny, ring, boundary, &map, &s)
                    };
                }
                if t % 2 == 1 {
                    self.refresh_boundary();
                    self.tl_k1_steps(1);
                }
            }

            /// Refresh the halo frame of the step's source buffer from
            /// its interior (see [`halo`]); no-op under Dirichlet.
            fn refresh_boundary(&mut self) {
                let Cfg {
                    method,
                    isa,
                    boundary,
                    ..
                } = self.plan.cfg;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let map = halo::RowMap::for_method::<T>(method, isa, nx);
                let ptr = if method == Method::Dlt {
                    // dlt_steps keeps its result in the first staging grid.
                    self.plan.stage.as_mut().expect("stage").0.ptr_mut()
                } else {
                    self.g.ptr_mut()
                };
                // SAFETY: the buffer carries ≥ S::R halo rows (asserted
                // at session open) and HALO_PAD row padding; extents ≥
                // S::R were validated at plan build.
                unsafe { halo::refresh2(ptr, rs, nx, ny, S::R, boundary, &map) };
            }

            /// Domain-decomposed stepping on the plan's pool (untiled
            /// plans with a resolved thread count > 1); the `par` drivers
            /// share the tess drivers' names, so `$tess_drive` routes
            /// here too.
            fn run_parallel(&mut self, t: usize) {
                let Cfg {
                    method,
                    isa,
                    threads,
                    boundary,
                    ..
                } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let pool = self.plan.pool.as_ref().expect("pool");
                if method == Method::Dlt {
                    let (a, b) = self.plan.stage.as_mut().expect("stage");
                    let bufs = [SyncPtr(a.ptr_mut()), SyncPtr(b.ptr_mut())];
                    par::$tess_drive(
                        method, isa, bufs, rs, nx, ny, t, &s, pool, threads, boundary,
                    );
                    if t % 2 == 1 {
                        std::mem::swap(a, b);
                    }
                } else {
                    let other = self.plan.scratch.as_mut().expect("scratch");
                    let bufs = [SyncPtr(self.g.ptr_mut()), SyncPtr(other.ptr_mut())];
                    par::$tess_drive(
                        method, isa, bufs, rs, nx, ny, t, &s, pool, threads, boundary,
                    );
                    if t % 2 == 1 {
                        std::mem::swap(self.g, other);
                    }
                }
            }

            fn run_untiled(&mut self, t: usize) {
                let Cfg { method, isa, .. } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                match method {
                    Method::Scalar => {
                        let other = self.plan.scratch.as_mut().expect("scratch");
                        let mut in_g = true;
                        for _ in 0..t {
                            let (sp, dp) = if in_g {
                                (self.g.ptr(), other.ptr_mut())
                            } else {
                                (other.ptr(), self.g.ptr_mut())
                            };
                            unsafe { scalar::$scalar_k(sp, dp, rs, 0, ny, 0, nx, &s) };
                            in_g = !in_g;
                        }
                        if !in_g {
                            std::mem::swap(self.g, other);
                        }
                    }
                    Method::MultiLoad | Method::Reorg => {
                        let reorg = method == Method::Reorg;
                        let other = self.plan.scratch.as_mut().expect("scratch");
                        let gp = self.g.ptr_mut();
                        let op = other.ptr_mut();
                        // Ping-pong `t` steps; returns whether the result
                        // is in `gp` (named fn for `dispatch_elem!`).
                        #[allow(clippy::too_many_arguments)]
                        unsafe fn steps<V: Vector, S: $bound>(
                            gp: *mut V::Elem,
                            op: *mut V::Elem,
                            rs: usize,
                            nx: usize,
                            ny: usize,
                            t: usize,
                            reorg: bool,
                            s: &S,
                        ) -> bool {
                            let mut in_g = true;
                            for _ in 0..t {
                                let (sp, dp) = if in_g {
                                    (gp.cast_const(), op)
                                } else {
                                    (op.cast_const(), gp)
                                };
                                if reorg {
                                    orig::$orig_k::<V, S, true>(sp, dp, rs, 0, ny, 0, nx, s);
                                } else {
                                    orig::$orig_k::<V, S, false>(sp, dp, rs, 0, ny, 0, nx, s);
                                }
                                in_g = !in_g;
                            }
                            in_g
                        }
                        let in_g =
                            dispatch_elem!(isa, T, steps::<V, S>(gp, op, rs, nx, ny, t, reorg, &s));
                        if !in_g {
                            std::mem::swap(self.g, other);
                        }
                    }
                    Method::Dlt => self.dlt_steps(t),
                    Method::TransLayout => self.tl_k1_steps(t),
                    Method::TransLayout2 => {
                        let pairs = t / 2;
                        if pairs > 0 {
                            let ring = self.plan.ring.as_mut().expect("ring");
                            let ring = unsafe { halo::ring2_origin(ring.as_mut_ptr()) };
                            let gp = self.g.ptr_mut();
                            for _ in 0..pairs {
                                unsafe { isa_entry::$tl2_e(isa, gp, rs, nx, ny, ring, &s) };
                            }
                        }
                        if t % 2 == 1 {
                            self.tl_k1_steps(1);
                        }
                    }
                }
            }

            /// k = 1 transpose-layout stepping (grid already in transpose
            /// layout).
            fn tl_k1_steps(&mut self, t: usize) {
                if t == 0 {
                    return;
                }
                let isa = self.plan.cfg.isa;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let other = self.plan.scratch.as_mut().expect("scratch");
                let gp = self.g.ptr_mut();
                let op = other.ptr_mut();
                let mut in_g = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_g { (gp.cast_const(), op) } else { (op.cast_const(), gp) };
                    unsafe { isa_entry::$tl_e(isa, sp, dp, rs, nx, 0, ny, 0, nx, &s) };
                    in_g = !in_g;
                }
                if !in_g {
                    std::mem::swap(self.g, other);
                }
            }

            /// DLT stepping on the staging pair; the result invariantly
            /// ends in the first staging grid.
            fn dlt_steps(&mut self, t: usize) {
                let isa = self.plan.cfg.isa;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let (a, b) = self.plan.stage.as_mut().expect("stage");
                let ap = a.ptr_mut();
                let bp = b.ptr_mut();
                // Ping-pong `t` DLT steps; returns whether the result is
                // in `a` (named fn for `dispatch_elem!`).
                unsafe fn steps<V: Vector, S: $bound>(
                    ap: *mut V::Elem,
                    bp: *mut V::Elem,
                    rs: usize,
                    nx: usize,
                    ny: usize,
                    t: usize,
                    s: &S,
                ) -> bool {
                    let mut in_a = true;
                    for _ in 0..t {
                        let (sp, dp) =
                            if in_a { (ap.cast_const(), bp) } else { (bp.cast_const(), ap) };
                        dlt::$dlt_k::<V, S>(sp, dp, rs, nx, 0, ny, s);
                        in_a = !in_a;
                    }
                    in_a
                }
                let in_a = dispatch_elem!(isa, T, steps::<V, S>(ap, bp, rs, nx, ny, t, &s));
                if !in_a {
                    std::mem::swap(a, b);
                }
            }

            fn run_tessellate(&mut self, wx: usize, wy: usize, h: usize, t: usize) {
                let Cfg {
                    method,
                    isa,
                    boundary,
                    ..
                } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let dx = DimTiling::new(nx, wx.min(nx), S::R, true);
                let dy = DimTiling::new(ny, wy.min(ny), S::R, true);
                let other = self.plan.scratch.as_mut().expect("scratch");
                let bufs = [SyncPtr(self.g.ptr_mut()), SyncPtr(other.ptr_mut())];
                let pool = self.plan.pool.as_ref().expect("pool");
                tess::$tess_drive(
                    method,
                    isa,
                    bufs,
                    rs,
                    nx,
                    &dx,
                    &dy,
                    t,
                    h,
                    &s,
                    pool,
                    boundary,
                    self.plan.arena.as_ref(),
                    &self.plan.phases,
                );
                if t % 2 == 1 {
                    std::mem::swap(self.g, other);
                }
            }

            fn run_split(&mut self, w: usize, h: usize, t: usize) {
                let Cfg { isa, boundary, .. } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, rs) = (self.g.nx(), self.g.ny(), self.g.row_stride());
                let d = DimTiling::new(ny, w.min(ny), S::R, true);
                let (a, b) = self.plan.stage.as_mut().expect("stage");
                let bufs = [SyncPtr(a.ptr_mut()), SyncPtr(b.ptr_mut())];
                let pool = self.plan.pool.as_ref().expect("pool");
                split::$split_drive(isa, bufs, rs, nx, &d, t, h, &s, pool, boundary);
                if t % 2 == 1 {
                    std::mem::swap(a, b);
                }
            }
        }

        impl<S: $bound, T: Elem> Drop for $Session<'_, S, T> {
            fn drop(&mut self) {
                let isa = self.plan.cfg.isa;
                match self.plan.cfg.layout() {
                    Layout::Natural => {}
                    Layout::Transpose => tl_grid2(self.g, isa),
                    Layout::Dlt => {
                        let (a, _) = self.plan.stage.as_ref().expect("stage");
                        dlt_grid2(a, self.g, isa, true);
                    }
                }
            }
        }
    };
}

plan2_impl!(
    /// Compiled execution plan for a 2D star stencil.
    Plan2Star, Session2Star, Star2,
    star2_range, star2_orig, star2_dlt, star2_tl, star2_tl2,
    star2_tl2_wide, drive2_star, drive2_star
);
plan2_impl!(
    /// Compiled execution plan for a 2D box stencil.
    Plan2Box, Session2Box, Box2,
    box2_range, box2_orig, box2_dlt, box2_tl, box2_tl2,
    box2_tl2_wide, drive2_box, drive2_box
);

// ---------------------------------------------------------------------------
// 3D plans (star and box, generated by one macro)
// ---------------------------------------------------------------------------

macro_rules! plan3_impl {
    ($(#[$doc:meta])* $Plan:ident, $Session:ident, $bound:ident,
     $scalar_k:ident, $orig_k:ident, $dlt_k:ident, $tl_e:ident, $tl2_e:ident,
     $tl2_wide_e:ident, $tess_drive:ident, $split_drive:ident) => {
        $(#[$doc])*
        ///
        /// Owns every buffer the method needs (ping-pong scratch, DLT
        /// staging, k = 2 ring, worker pool); `run` and `session` reuse
        /// them across calls.
        pub struct $Plan<S: $bound, T: Elem = f64> {
            cfg: Cfg,
            nx: usize,
            ny: usize,
            nz: usize,
            stencil: S,
            scratch: Option<Grid3<T>>,
            stage: Option<(Grid3<T>, Grid3<T>)>,
            ring: Option<AlignedBuf<T>>,
            arena: Option<stage::TileArena<T>>,
            phases: stage::PhaseCounters,
            pool: Option<rayon::ThreadPool>,
        }

        impl<S: $bound, T: Elem> std::fmt::Debug for $Plan<S, T> {
            fmt_plan_debug!($Plan);
        }

        impl<S: $bound, T: Elem> $Plan<S, T> {
            /// The plan's vectorization method.
            pub fn method(&self) -> Method {
                self.cfg.method
            }

            /// The plan's instruction set.
            pub fn isa(&self) -> Isa {
                self.cfg.isa
            }

            /// The plan's tiling framework.
            pub fn tiling(&self) -> Tiling {
                self.cfg.tiling
            }

            /// The plan's parallelism knob.
            pub fn parallelism(&self) -> Parallelism {
                self.cfg.par
            }

            /// Worker count the parallelism knob resolved to at build
            /// time (≥ 1).
            pub fn threads(&self) -> usize {
                self.cfg.threads
            }

            /// The plan's boundary condition.
            pub fn boundary(&self) -> Boundary {
                self.cfg.boundary
            }

            /// The shape the plan was compiled for.
            pub fn shape(&self) -> Shape {
                Shape::d3(self.nx, self.ny, self.nz)
            }

            /// Cumulative wall-time phase totals recorded by the tiled
            /// drivers (all zero for untiled plans); see
            /// [`PhaseTotals`].
            pub fn phase_totals(&self) -> PhaseTotals {
                self.phases.totals()
            }

            /// Reset the phase totals to zero.
            pub fn reset_phase_totals(&self) {
                self.phases.reset()
            }

            fn ensure_scratch(&mut self, g: &Grid3<T>) {
                halo::ensure_scratch(&mut self.scratch, g);
            }

            fn ensure_stage(&mut self, g: &Grid3<T>) {
                let isa = self.cfg.isa;
                halo::ensure_stage(&mut self.stage, g, |g, a| dlt_grid3(g, a, isa, false));
            }

            fn ensure_ring(&mut self, g: &Grid3<T>) {
                let len = halo::ring3_len(S::R, g.plane_stride());
                if self.ring.as_ref().map(|r| r.len()) != Some(len) {
                    self.ring = Some(AlignedBuf::zeroed(len));
                }
            }

            /// Run `t` Jacobi steps on `g` (natural layout in, natural
            /// layout out). Buffers are reused across calls; for repeated
            /// stepping without the per-call layout round-trip, use
            /// `session`.
            pub fn run(&mut self, g: &mut Grid3<T>, t: usize) {
                if t == 0 {
                    return;
                }
                self.session(g).run(t);
            }

            /// Open a layout-resident stepping session on `g` (see
            /// [`Plan1::session`]).
            pub fn session<'p>(&'p mut self, g: &'p mut Grid3<T>) -> $Session<'p, S, T> {
                assert_eq!(
                    (g.nx(), g.ny(), g.nz()),
                    (self.nx, self.ny, self.nz),
                    "grid does not match the plan's shape"
                );
                assert!(g.r() >= S::R, "grid halo narrower than stencil radius");
                match self.cfg.layout() {
                    Layout::Natural => self.ensure_scratch(g),
                    Layout::Transpose => {
                        tl_grid3(g, self.cfg.isa);
                        self.ensure_scratch(g);
                        // The k = 2 ring only serves the sequential fused
                        // pass; parallel untiled stepping ping-pongs.
                        // Non-Dirichlet plans run the fused pass too when
                        // the grid's halo is wide enough to stage the t+1
                        // halo planes (see `kernels::tl2`'s wide
                        // section); narrower halos step k = 1 with a
                        // refresh in between and skip the ring.
                        if self.cfg.method == Method::TransLayout2
                            && self.cfg.tiling == Tiling::None
                            && self.cfg.threads == 1
                            && (self.cfg.boundary.is_dirichlet() || g.r() >= 2 * S::R)
                        {
                            self.ensure_ring(g);
                        }
                    }
                    Layout::Dlt => self.ensure_stage(g),
                }
                $Session { plan: self, g }
            }
        }

        /// Layout-resident stepping session over a 3D grid (see
        /// [`Plan1::session`]).
        pub struct $Session<'p, S: $bound, T: Elem = f64> {
            plan: &'p mut $Plan<S, T>,
            g: &'p mut Grid3<T>,
        }

        impl<S: $bound, T: Elem> $Session<'_, S, T> {
            /// Advance the grid `t` Jacobi steps. No buffer allocation
            /// and no layout transform happen here — only kernel stepping
            /// (tiled runs copy small precomputed tile lists per chunk),
            /// plus the O(surface) per-step halo refresh under a
            /// non-Dirichlet [`Boundary`].
            pub fn run(&mut self, t: usize) {
                if t == 0 {
                    return;
                }
                match self.plan.cfg.tiling {
                    Tiling::None if self.plan.cfg.threads > 1 => self.run_parallel(t),
                    Tiling::None if self.plan.cfg.boundary.is_dirichlet() => self.run_untiled(t),
                    // Non-Dirichlet TL2 on a wide-halo grid keeps the
                    // fused k = 2 pass (t+1 halo planes staged in the
                    // outer halo — see `kernels::tl2`); otherwise
                    // refresh + one step, t times.
                    Tiling::None
                        if self.plan.cfg.method == Method::TransLayout2
                            && self.g.r() >= 2 * S::R =>
                    {
                        self.run_fused_refreshed(t)
                    }
                    Tiling::None => {
                        for _ in 0..t {
                            self.refresh_boundary();
                            self.run_untiled(1);
                        }
                    }
                    Tiling::Tessellate { w, h, .. } => {
                        self.run_tessellate(w[0], w[1], w[2], h, t)
                    }
                    Tiling::Split { w, h, .. } => self.run_split(w, h, t),
                }
            }

            /// Non-Dirichlet `TransLayout2` on a wide-halo grid: refresh
            /// the (inner) halo shell to the current time level, then run
            /// the fused k = 2 pass, which stages the t+1 halo planes in
            /// the outer half of the `2R`-wide halo — two steps per
            /// memory round-trip, matching the Dirichlet fast path.
            fn run_fused_refreshed(&mut self, t: usize) {
                let Cfg { isa, boundary, .. } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let map = halo::RowMap::for_method::<T>(Method::TransLayout2, isa, nx);
                for _ in 0..t / 2 {
                    self.refresh_boundary();
                    let ring = self.plan.ring.as_mut().expect("ring");
                    let ring = unsafe { halo::ring3_origin(ring.as_mut_ptr(), S::R, rs) };
                    let gp = self.g.ptr_mut();
                    unsafe {
                        isa_entry::$tl2_wide_e(
                            isa, gp, rs, ps, nx, ny, nz, ring, boundary, &map, &s,
                        )
                    };
                }
                if t % 2 == 1 {
                    self.refresh_boundary();
                    self.tl_k1_steps(1);
                }
            }

            /// Refresh the halo shell of the step's source buffer from
            /// its interior (see [`halo`]); no-op under Dirichlet.
            fn refresh_boundary(&mut self) {
                let Cfg {
                    method,
                    isa,
                    boundary,
                    ..
                } = self.plan.cfg;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let map = halo::RowMap::for_method::<T>(method, isa, nx);
                let ptr = if method == Method::Dlt {
                    // dlt_steps keeps its result in the first staging grid.
                    self.plan.stage.as_mut().expect("stage").0.ptr_mut()
                } else {
                    self.g.ptr_mut()
                };
                // SAFETY: the buffer carries ≥ S::R halo rows/planes
                // (asserted at session open) and HALO_PAD row padding;
                // extents ≥ S::R were validated at plan build.
                unsafe { halo::refresh3(ptr, rs, ps, nx, ny, nz, S::R, boundary, &map) };
            }

            /// Domain-decomposed stepping on the plan's pool (untiled
            /// plans with a resolved thread count > 1); the `par` drivers
            /// share the tess drivers' names, so `$tess_drive` routes
            /// here too.
            fn run_parallel(&mut self, t: usize) {
                let Cfg {
                    method,
                    isa,
                    threads,
                    boundary,
                    ..
                } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let pool = self.plan.pool.as_ref().expect("pool");
                if method == Method::Dlt {
                    let (a, b) = self.plan.stage.as_mut().expect("stage");
                    let bufs = [SyncPtr(a.ptr_mut()), SyncPtr(b.ptr_mut())];
                    par::$tess_drive(
                        method, isa, bufs, rs, ps, nx, ny, nz, t, &s, pool, threads, boundary,
                    );
                    if t % 2 == 1 {
                        std::mem::swap(a, b);
                    }
                } else {
                    let other = self.plan.scratch.as_mut().expect("scratch");
                    let bufs = [SyncPtr(self.g.ptr_mut()), SyncPtr(other.ptr_mut())];
                    par::$tess_drive(
                        method, isa, bufs, rs, ps, nx, ny, nz, t, &s, pool, threads, boundary,
                    );
                    if t % 2 == 1 {
                        std::mem::swap(self.g, other);
                    }
                }
            }

            fn run_untiled(&mut self, t: usize) {
                let Cfg { method, isa, .. } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                match method {
                    Method::Scalar => {
                        let other = self.plan.scratch.as_mut().expect("scratch");
                        let mut in_g = true;
                        for _ in 0..t {
                            let (sp, dp) = if in_g {
                                (self.g.ptr(), other.ptr_mut())
                            } else {
                                (other.ptr(), self.g.ptr_mut())
                            };
                            unsafe {
                                scalar::$scalar_k(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, &s)
                            };
                            in_g = !in_g;
                        }
                        if !in_g {
                            std::mem::swap(self.g, other);
                        }
                    }
                    Method::MultiLoad | Method::Reorg => {
                        let reorg = method == Method::Reorg;
                        let other = self.plan.scratch.as_mut().expect("scratch");
                        let gp = self.g.ptr_mut();
                        let op = other.ptr_mut();
                        // Ping-pong `t` steps; returns whether the result
                        // is in `gp` (named fn for `dispatch_elem!`).
                        #[allow(clippy::too_many_arguments)]
                        unsafe fn steps<V: Vector, S: $bound>(
                            gp: *mut V::Elem,
                            op: *mut V::Elem,
                            rs: usize,
                            ps: usize,
                            nx: usize,
                            ny: usize,
                            nz: usize,
                            t: usize,
                            reorg: bool,
                            s: &S,
                        ) -> bool {
                            let mut in_g = true;
                            for _ in 0..t {
                                let (sp, dp) = if in_g {
                                    (gp.cast_const(), op)
                                } else {
                                    (op.cast_const(), gp)
                                };
                                if reorg {
                                    orig::$orig_k::<V, S, true>(
                                        sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s,
                                    );
                                } else {
                                    orig::$orig_k::<V, S, false>(
                                        sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s,
                                    );
                                }
                                in_g = !in_g;
                            }
                            in_g
                        }
                        let in_g = dispatch_elem!(
                            isa,
                            T,
                            steps::<V, S>(gp, op, rs, ps, nx, ny, nz, t, reorg, &s)
                        );
                        if !in_g {
                            std::mem::swap(self.g, other);
                        }
                    }
                    Method::Dlt => self.dlt_steps(t),
                    Method::TransLayout => self.tl_k1_steps(t),
                    Method::TransLayout2 => {
                        let pairs = t / 2;
                        if pairs > 0 {
                            let ring = self.plan.ring.as_mut().expect("ring");
                            let ring =
                                unsafe { halo::ring3_origin(ring.as_mut_ptr(), S::R, rs) };
                            let gp = self.g.ptr_mut();
                            for _ in 0..pairs {
                                unsafe {
                                    isa_entry::$tl2_e(isa, gp, rs, ps, nx, ny, nz, ring, &s)
                                };
                            }
                        }
                        if t % 2 == 1 {
                            self.tl_k1_steps(1);
                        }
                    }
                }
            }

            /// k = 1 transpose-layout stepping (grid already in transpose
            /// layout).
            fn tl_k1_steps(&mut self, t: usize) {
                if t == 0 {
                    return;
                }
                let isa = self.plan.cfg.isa;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let other = self.plan.scratch.as_mut().expect("scratch");
                let gp = self.g.ptr_mut();
                let op = other.ptr_mut();
                let mut in_g = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_g { (gp.cast_const(), op) } else { (op.cast_const(), gp) };
                    unsafe {
                        isa_entry::$tl_e(isa, sp, dp, rs, ps, nx, 0, nz, 0, ny, 0, nx, &s)
                    };
                    in_g = !in_g;
                }
                if !in_g {
                    std::mem::swap(self.g, other);
                }
            }

            /// DLT stepping on the staging pair; the result invariantly
            /// ends in the first staging grid.
            fn dlt_steps(&mut self, t: usize) {
                let isa = self.plan.cfg.isa;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let (a, b) = self.plan.stage.as_mut().expect("stage");
                let ap = a.ptr_mut();
                let bp = b.ptr_mut();
                // Ping-pong `t` DLT steps; returns whether the result is
                // in `a` (named fn for `dispatch_elem!`).
                #[allow(clippy::too_many_arguments)]
                unsafe fn steps<V: Vector, S: $bound>(
                    ap: *mut V::Elem,
                    bp: *mut V::Elem,
                    rs: usize,
                    ps: usize,
                    nx: usize,
                    ny: usize,
                    nz: usize,
                    t: usize,
                    s: &S,
                ) -> bool {
                    let mut in_a = true;
                    for _ in 0..t {
                        let (sp, dp) =
                            if in_a { (ap.cast_const(), bp) } else { (bp.cast_const(), ap) };
                        dlt::$dlt_k::<V, S>(sp, dp, rs, ps, nx, ny, 0, nz, s);
                        in_a = !in_a;
                    }
                    in_a
                }
                let in_a =
                    dispatch_elem!(isa, T, steps::<V, S>(ap, bp, rs, ps, nx, ny, nz, t, &s));
                if !in_a {
                    std::mem::swap(a, b);
                }
            }

            fn run_tessellate(&mut self, wx: usize, wy: usize, wz: usize, h: usize, t: usize) {
                let Cfg {
                    method,
                    isa,
                    boundary,
                    ..
                } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let dx = DimTiling::new(nx, wx.min(nx), S::R, true);
                let dy = DimTiling::new(ny, wy.min(ny), S::R, true);
                let dz = DimTiling::new(nz, wz.min(nz), S::R, true);
                let other = self.plan.scratch.as_mut().expect("scratch");
                let bufs = [SyncPtr(self.g.ptr_mut()), SyncPtr(other.ptr_mut())];
                let pool = self.plan.pool.as_ref().expect("pool");
                tess::$tess_drive(
                    method,
                    isa,
                    bufs,
                    rs,
                    ps,
                    nx,
                    &dx,
                    &dy,
                    &dz,
                    t,
                    h,
                    &s,
                    pool,
                    boundary,
                    self.plan.arena.as_ref(),
                    &self.plan.phases,
                );
                if t % 2 == 1 {
                    std::mem::swap(self.g, other);
                }
            }

            fn run_split(&mut self, w: usize, h: usize, t: usize) {
                let Cfg { isa, boundary, .. } = self.plan.cfg;
                let s = self.plan.stencil;
                let (nx, ny, nz) = (self.g.nx(), self.g.ny(), self.g.nz());
                let (rs, ps) = (self.g.row_stride(), self.g.plane_stride());
                let d = DimTiling::new(nz, w.min(nz), S::R, true);
                let (a, b) = self.plan.stage.as_mut().expect("stage");
                let bufs = [SyncPtr(a.ptr_mut()), SyncPtr(b.ptr_mut())];
                let pool = self.plan.pool.as_ref().expect("pool");
                split::$split_drive(isa, bufs, rs, ps, nx, ny, &d, t, h, &s, pool, boundary);
                if t % 2 == 1 {
                    std::mem::swap(a, b);
                }
            }
        }

        impl<S: $bound, T: Elem> Drop for $Session<'_, S, T> {
            fn drop(&mut self) {
                let isa = self.plan.cfg.isa;
                match self.plan.cfg.layout() {
                    Layout::Natural => {}
                    Layout::Transpose => tl_grid3(self.g, isa),
                    Layout::Dlt => {
                        let (a, _) = self.plan.stage.as_ref().expect("stage");
                        dlt_grid3(a, self.g, isa, true);
                    }
                }
            }
        }
    };
}

plan3_impl!(
    /// Compiled execution plan for a 3D star stencil.
    Plan3Star, Session3Star, Star3,
    star3_range, star3_orig, star3_dlt, star3_tl, star3_tl2,
    star3_tl2_wide, drive3_star, drive3_star
);
plan3_impl!(
    /// Compiled execution plan for a 3D box stencil.
    Plan3Box, Session3Box, Box3,
    box3_range, box3_orig, box3_dlt, box3_tl, box3_tl2,
    box3_tl2_wide, drive3_box, drive3_box
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{S1d3p, S2d5p};

    #[test]
    fn builder_rejects_dim_mismatch() {
        let err = Plan::new(Shape::d2(8, 8)).star1(S1d3p::heat()).unwrap_err();
        assert_eq!(
            err,
            PlanError::DimMismatch {
                shape: 2,
                stencil: 1
            }
        );
        let err = Plan::new(Shape::d1(8)).star2(S2d5p::heat()).unwrap_err();
        assert_eq!(
            err,
            PlanError::DimMismatch {
                shape: 1,
                stencil: 2
            }
        );
    }

    #[test]
    fn builder_rejects_empty_shape() {
        let err = Plan::new(Shape::d1(0)).star1(S1d3p::heat()).unwrap_err();
        assert_eq!(err, PlanError::EmptyShape);
    }

    #[test]
    fn builder_rejects_dlt_under_tessellate() {
        let err = Plan::new(Shape::d1(1024))
            .method(Method::Dlt)
            .tiling(Tiling::Tessellate {
                w: [128, 0, 0],
                h: 8,
                threads: 2,
            })
            .star1(S1d3p::heat())
            .unwrap_err();
        assert!(
            matches!(err, PlanError::MethodTilingConflict { .. }),
            "{err}"
        );
    }

    #[test]
    fn builder_rejects_non_dlt_under_split() {
        let err = Plan::new(Shape::d1(1024))
            .method(Method::TransLayout2)
            .tiling(Tiling::Split {
                w: 64,
                h: 8,
                threads: 2,
            })
            .star1(S1d3p::heat())
            .unwrap_err();
        assert!(
            matches!(err, PlanError::MethodTilingConflict { .. }),
            "{err}"
        );
    }

    #[test]
    fn builder_rejects_oversized_chunk_height() {
        let err = Plan::new(Shape::d1(1024))
            .method(Method::TransLayout)
            .tiling(Tiling::Tessellate {
                w: [16, 0, 0],
                h: 1000,
                threads: 2,
            })
            .star1(S1d3p::heat())
            .unwrap_err();
        assert!(matches!(err, PlanError::BadTiling(_)), "{err}");
    }

    #[test]
    fn errors_display_something_useful() {
        let e = PlanError::BadTiling("w too small".into());
        assert!(e.to_string().contains("w too small"));
        assert!(PlanError::EmptyShape.to_string().contains("empty"));
    }
}
