//! Tessellate tiling drivers (Yuan et al., SC'17 — the framework the paper
//! integrates with in §3.4), for 1/2/3 spatial dimensions, scheduled by
//! the wavefront dependency graph in [`super::wave`].
//!
//! Each time chunk of height `h` holds `d+1` stages of product tiles:
//! stage `m` is the tiles with exactly `m` inverted dimensions. Tiles
//! within a stage write disjoint cells and read only cells finalized by
//! earlier stages (or their own earlier steps), so the drivers emit one
//! wavefront node per tile (stage = inverted-dimension count) and let the
//! scheduler run any two nodes concurrently unless their radius-extended
//! footprints overlap across a stage or chunk boundary — a fast thread
//! flows into the next stage or time chunk instead of waiting at a
//! barrier. With one thread the node order itself is the sequential
//! tiled schedule.
//!
//! Non-Dirichlet [`Boundary`] conditions compose with the tiling through
//! one **edge group** node per chunk: every tile whose radius-extended
//! footprint leaves the domain (and therefore reads halo cells, or writes
//! the interior cells halo folds copy from) is fused, in stage order,
//! into a single sequential node that interleaves a whole-grid halo
//! refresh with each chunk step. Members advance in lockstep, so the
//! refresh at chunk step `ss` reads fold sources exactly at time level
//! `tau + ss`; interior tiles never touch halo cells and need no
//! refresh. Under `TransLayout2` the 1D group members step singly (the
//! fused step-pair kernel cannot interleave the per-step refresh);
//! interior tiles keep the fused pairs.
//!
//! Intra-tile vectorization is pluggable ([`Method`]): the paper's
//! *Tessellation* baseline uses `MultiLoad` ("auto-vectorization"), *Our*
//! uses `TransLayout`, and *Our (2 steps)* uses `TransLayout2`, whose 1D
//! tiles fuse step pairs with the register pipeline
//! ([`crate::kernels::tl2::star1_tl2_range`]) plus scalar margins for the
//! shrinking/expanding boundary cells — the Fig. 5d treatment.
//!
//! These drivers are **parameterized by the plan**: they step pre-prepared
//! ping-pong buffers (already in the method's layout, scratch already
//! allocated) on a caller-owned thread pool. Layout round-trips, scratch
//! allocation, and final parity swaps live in [`super`]'s `Plan`/`Session`
//! engine, so none of them recur in a steady-state hot loop.

use std::time::Instant;

use stencil_simd::{dispatch_elem, Elem, Isa};

use super::halo::{self, Boundary, RowMap};
use super::stage::{self, PhaseCounters, TileArena};
use super::tile::DimTiling;
use super::wave::{box1, box2, box3, FootBox, Wave};
use crate::api::Method;
use crate::kernels::{orig, scalar};
use crate::layout::SetGeo;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Raw pointer that may cross threads; tile disjointness (see module docs)
/// makes the concurrent accesses race-free.
pub(crate) struct SyncPtr<T = f64>(pub *mut T);
impl<T> Copy for SyncPtr<T> {}
impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

/// Build a worker pool for tiled execution (used by `Plan` construction).
pub(crate) fn make_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("rayon pool")
}

/// One per-dimension shape instance.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Shape {
    Tri(usize),
    Inv(usize),
}

impl Shape {
    #[inline]
    pub(crate) fn range(self, d: &DimTiling, s: usize) -> (usize, usize) {
        match self {
            Shape::Tri(k) => d.tri(k, s),
            Shape::Inv(b) => d.inv(b, s),
        }
    }

    pub(crate) fn all(d: &DimTiling, inverted: bool) -> Vec<Shape> {
        if inverted {
            (0..d.ninv()).map(Shape::Inv).collect()
        } else {
            (0..d.ntri()).map(Shape::Tri).collect()
        }
    }
}

/// Radius-extended reach of `shape` over a chunk of `hh` steps: the union
/// of its per-step ranges widened by `r` on each side — everything the
/// tile may read or write, as a signed closed-open interval (negative /
/// past-`n` values mean halo contact).
pub(crate) fn reach1(d: &DimTiling, shape: Shape, hh: usize, r: usize) -> (i64, i64) {
    let (mut lo, mut hi) = (i64::MAX, i64::MIN);
    for ss in 0..hh {
        let (a, b) = shape.range(d, ss);
        if a < b {
            lo = lo.min(a as i64);
            hi = hi.max(b as i64);
        }
    }
    if lo > hi {
        // Every step empty (e.g. an inverted tile with hh = 1): anchor a
        // degenerate box at the tile's apex so deps stay local.
        let (a, _) = shape.range(d, 0);
        lo = a as i64;
        hi = a as i64;
    }
    (lo - r as i64, hi + r as i64)
}

/// Grow interval `e` to cover `[lo, hi)`.
#[inline]
fn grow(e: &mut (i64, i64), lo: i64, hi: i64) {
    e.0 = e.0.min(lo);
    e.1 = e.1.max(hi);
}

/// Per-parity staged bounding intervals along one dimension of a tile
/// chunk: for each global time parity `p`, everything the tile *reads*
/// from that parity (`± r` around steps whose source level has parity
/// `p`) or *writes / covers on write-back* (steps whose destination
/// level has parity `p`). Staging exactly these intervals — rather
/// than the full reach box — is what keeps stage-in race-free: the
/// interval is disjoint, per parity, from every same-stage neighbor's
/// write-back span by the same slope argument that makes the unstaged
/// reads safe.
///
/// `step_range(ss)` returns this dimension's range when the tile's full
/// product range at step `ss` is non-empty, `None` otherwise. Both
/// intervals are unions of nested members of one slope chain, so the
/// `(min, max)` accumulation below is exact (no holes).
fn parity_boxes1(
    tau: usize,
    hh: usize,
    r: usize,
    step_range: impl Fn(usize) -> Option<(usize, usize)>,
) -> [(i64, i64); 2] {
    let mut pb = [(i64::MAX, i64::MIN); 2];
    for ss in 0..hh {
        let Some((a, b)) = step_range(ss) else {
            continue;
        };
        let q = (tau + ss) % 2;
        grow(&mut pb[q], a as i64 - r as i64, b as i64 + r as i64);
        grow(&mut pb[1 - q], a as i64, b as i64);
    }
    pb
}

/// Whether the chunk's *destination* parity `(tau + 1) % 2` must be
/// staged in at all. Every odd step sources that parity; if each odd
/// step's read box (`± r`) nests inside the previous step's written
/// range — exactly the shrinking, non-inverted tile shapes — then every
/// cell of that parity the chunk reads or writes back is produced by an
/// earlier in-chunk step, and its stage-in (copy + transpose of nearly
/// the full footprint) is pure waste. Inverted shapes grow into
/// neighbor-owned cells of that parity and keep the stage-in. Out-of-
/// contract lanes of partial sets may then see stale arena data, which
/// is fine: they are snapshot-restored and never feed a kept lane.
fn dest_prestage_needed<const D: usize>(
    hh: usize,
    r: usize,
    step_box: impl Fn(usize) -> Option<[(usize, usize); D]>,
) -> bool {
    let mut ss = 1;
    while ss < hh {
        if let Some(cur) = step_box(ss) {
            let Some(prev) = step_box(ss - 1) else {
                return true;
            };
            for d in 0..D {
                if cur[d].0 < prev[d].0 + r || cur[d].1 + r > prev[d].1 {
                    return true;
                }
            }
        }
        ss += 2;
    }
    false
}

// ---------------------------------------------------------------------------
// 1D
// ---------------------------------------------------------------------------

/// One intra-tile step of a 1D stencil at chunk step `ss` (absolute time
/// `tau + ss`), on the method's layout.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step1<T: Elem, S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    n: usize,
    lo: usize,
    hi: usize,
    time: usize,
    s: &S,
) {
    if lo >= hi {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::star1_range(src, dst, lo, hi, s),
            Method::MultiLoad => {
                dispatch_elem!(isa, T, orig::star1_orig::<V, S, false>(src, dst, lo, hi, s))
            }
            Method::Reorg => {
                dispatch_elem!(isa, T, orig::star1_orig::<V, S, true>(src, dst, lo, hi, s))
            }
            Method::TransLayout | Method::TransLayout2 => {
                crate::kernels::isa_entry::star1_tl(isa, src, dst, n, lo, hi, s)
            }
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

/// Fused pair of steps at absolute times (time, time+1) for the 1D
/// `TransLayout2` tiles: register pipeline over the interior sets, k=1
/// margins for the boundary cells of the shrinking/expanding tile.
/// `r0`/`r1` are the two steps' update ranges in the coordinates of
/// `bufs` (grid-global, or tile-local when staged).
#[allow(clippy::too_many_arguments)]
fn pair1<T: Elem, S: Star1>(
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    n: usize,
    r0: (usize, usize),
    r1: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((lo0, hi0), (lo1, hi1)) = (r0, r1);
    let l = isa.lanes_for::<T>();
    let bs = l * l;
    let lo = lo0.max(lo1);
    let hi = hi0.min(hi1).max(lo);
    let sa = lo.div_ceil(bs);
    let sb = (hi / bs).min(SetGeo::new(n, l).nsets);
    if sb < sa + 2 {
        // Tile fragment too small for the pipeline — two plain steps.
        step1(Method::TransLayout2, isa, bufs, n, lo0, hi0, time, s);
        step1(Method::TransLayout2, isa, bufs, n, lo1, hi1, time + 1, s);
        return;
    }
    let (a, b) = (sa * bs, sb * bs);
    let buf_a = bufs[time % 2].0;
    let buf_b = bufs[(time + 1) % 2].0;

    // step ss margins (t → t+1, written to the t+1 parity)
    step1(Method::TransLayout2, isa, bufs, n, lo0, a, time, s);
    step1(Method::TransLayout2, isa, bufs, n, b, hi0, time, s);
    // fused interior (t → t+2 in parity A; boundary-set t+1 exported to B).
    // Routed through the explicit #[target_feature] entry: the pipeline is
    // too large for the dispatch! closure to inline reliably (DESIGN.md §5).
    unsafe {
        crate::kernels::isa_entry::star1_tl2_range(isa, buf_a, buf_b, n, sa, sb, s);
    }
    // step ss+1 margins (t+1 → t+2)
    step1(Method::TransLayout2, isa, bufs, n, lo1, a, time + 1, s);
    step1(Method::TransLayout2, isa, bufs, n, b, hi1, time + 1, s);
}

#[allow(clippy::too_many_arguments)]
fn run_tile1<T: Elem, S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    n: usize,
    d: &DimTiling,
    shape: Shape,
    tau: usize,
    hh: usize,
    s: &S,
) {
    if method == Method::TransLayout2 {
        let mut ss = 0;
        while ss + 1 < hh {
            let r0 = shape.range(d, ss);
            let r1 = shape.range(d, ss + 1);
            pair1(isa, bufs, n, r0, r1, tau + ss, s);
            ss += 2;
        }
        if ss < hh {
            let (lo, hi) = shape.range(d, ss);
            step1(method, isa, bufs, n, lo, hi, tau + ss, s);
        }
    } else {
        for ss in 0..hh {
            let (lo, hi) = shape.range(d, ss);
            step1(method, isa, bufs, n, lo, hi, tau + ss, s);
        }
    }
}

/// Run one interior tile's chunk against a staged, tile-local
/// transposed copy of its footprint: stage in the per-parity bounding
/// intervals, step all `hh` levels with tile-local set geometry (fused
/// pairs under TL2), and write the owned per-parity spans back to the
/// natural global grid. See [`super::stage`] for the coherence
/// argument.
#[allow(clippy::too_many_arguments)]
fn run_tile1_staged<T: Elem, S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    d: &DimTiling,
    shape: Shape,
    tau: usize,
    hh: usize,
    s: &S,
    arena: &TileArena<T>,
    w: usize,
    phases: &PhaseCounters,
) {
    let nonempty = |ss: usize| {
        let (a, b) = shape.range(d, ss);
        (a < b).then_some((a, b))
    };
    if !(0..hh).any(|ss| nonempty(ss).is_some()) {
        return;
    }
    let (rlo, rhi) = reach1(d, shape, hh, S::R);
    let wx = (rhi - rlo) as usize;
    let loc = |x: usize| (x as i64 - rlo) as usize;
    let pbx = parity_boxes1(tau, hh, S::R, nonempty);
    let need_dest = dest_prestage_needed(hh, S::R, |ss| nonempty(ss).map(|x| [x]));

    let t0 = Instant::now();
    let mut slot = arena.slot(w);
    let slot = &mut *slot;
    for (p, pb) in pbx.iter().enumerate() {
        if pb.0 >= pb.1 || (p == (tau + 1) % 2 && !need_dest) {
            continue;
        }
        let cx = ((pb.0 - rlo) as usize, (pb.1 - rlo) as usize);
        unsafe {
            stage::stage_in::<T>(
                isa,
                bufs[p].0.offset(rlo as isize),
                0,
                0,
                slot.origin(p),
                arena.sxs,
                0,
                wx,
                cx,
                (0, 1),
                (0, 1),
            );
        }
    }
    phases.add_stage_in(t0);

    let ab = [SyncPtr(slot.origin(0)), SyncPtr(slot.origin(1))];
    let t1 = Instant::now();
    if method == Method::TransLayout2 {
        let mut ss = 0;
        while ss + 1 < hh {
            let (a0, b0) = shape.range(d, ss);
            let (a1, b1) = shape.range(d, ss + 1);
            pair1(
                isa,
                ab,
                wx,
                (loc(a0), loc(b0).max(loc(a0))),
                (loc(a1), loc(b1).max(loc(a1))),
                tau + ss,
                s,
            );
            ss += 2;
        }
        if ss < hh {
            if let Some((a, b)) = nonempty(ss) {
                step1(method, isa, ab, wx, loc(a), loc(b), tau + ss, s);
            }
        }
    } else {
        for ss in 0..hh {
            if let Some((a, b)) = nonempty(ss) {
                step1(method, isa, ab, wx, loc(a), loc(b), tau + ss, s);
            }
        }
    }
    phases.add_compute(t1);

    let t2 = Instant::now();
    for p in 0..2 {
        // Owned write-back span at parity p: the union (= widest
        // member, the ranges are a nested chain) of the tile's step
        // ranges whose destination level has parity p.
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for ss in 0..hh {
            if (tau + ss + 1) % 2 != p {
                continue;
            }
            if let Some((a, b)) = nonempty(ss) {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        if lo >= hi {
            continue;
        }
        unsafe {
            stage::unstage::<T>(
                isa,
                slot.origin(p),
                arena.sxs,
                0,
                bufs[p].0.offset(rlo as isize),
                0,
                0,
                wx,
                1,
                &[(loc(lo) as u32, loc(hi) as u32)],
            );
        }
    }
    phases.add_stage_out(t2);
}

/// One wavefront node of the 1D driver.
enum Node1 {
    /// An interior tile, all `hh` chunk steps (fused pairs under TL2).
    Tile { shape: Shape, tau: usize, hh: usize },
    /// The chunk's edge group: every halo-touching tile, in stage order,
    /// stepped in lockstep behind a per-step whole-grid halo refresh.
    Edge {
        members: Vec<Shape>,
        tau: usize,
        hh: usize,
    },
}

/// Step `t` levels of a 1D star stencil over pre-prepared ping-pong
/// buffers under tessellate tiling (chunk height `h`), wavefront-scheduled
/// on `pool` (sequential when the pool has one thread).
///
/// `bufs[0]` holds the step-0 data; the step-`t` result lands in
/// `bufs[t % 2]` — the caller owns the final parity swap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive1<T: Elem, S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    n: usize,
    d: &DimTiling,
    t: usize,
    h: usize,
    s: &S,
    pool: &rayon::ThreadPool,
    b: Boundary,
    arena: Option<&TileArena<T>>,
    phases: &PhaseCounters,
) {
    // With a staging arena the global grid stays natural: interior
    // tiles run transposed inside their arena slots, and the edge
    // group (plus its halo refresh) steps the natural grid directly.
    let emethod = if arena.is_some() {
        Method::MultiLoad
    } else {
        method
    };
    let map = RowMap::for_method::<T>(emethod, isa, n);
    let mut wave = Wave::new();
    let (mut tau, mut chunk) = (0usize, 0usize);
    while tau < t {
        let hh = h.min(t - tau);
        let mut members = Vec::new();
        let mut group_boxes: Vec<FootBox> = Vec::new();
        let mut interior = Vec::new();
        for (stage, inverted) in [(0u8, false), (1u8, true)] {
            for shape in Shape::all(d, inverted) {
                let (lo, hi) = reach1(d, shape, hh, S::R);
                if !b.is_dirichlet() && (lo < 0 || hi > n as i64) {
                    members.push(shape);
                    group_boxes.push(box1(lo, hi));
                } else {
                    interior.push((stage, shape, box1(lo, hi)));
                }
            }
        }
        if !members.is_empty() {
            wave.push(chunk, 0, group_boxes, Node1::Edge { members, tau, hh });
        }
        for (stage, shape, fb) in interior {
            wave.push(chunk, stage, vec![fb], Node1::Tile { shape, tau, hh });
        }
        tau += hh;
        chunk += 1;
    }
    wave.run(pool, pool.current_num_threads(), |w, node| match node {
        Node1::Tile { shape, tau, hh } => {
            if let Some(ar) = arena {
                run_tile1_staged(method, isa, bufs, d, *shape, *tau, *hh, s, ar, w, phases);
            } else {
                run_tile1(method, isa, bufs, n, d, *shape, *tau, *hh, s);
            }
        }
        Node1::Edge { members, tau, hh } => {
            for ss in 0..*hh {
                // Fold sources at level `tau + ss` are interior edge
                // cells owned by this group's own members, which step in
                // lockstep — the refresh reads exactly the values the
                // members' halo reads need.
                let t0 = Instant::now();
                unsafe { halo::refresh1(bufs[(tau + ss) % 2].0, n, S::R, b, &map) };
                phases.add_halo(t0);
                let t1 = Instant::now();
                for &shape in members {
                    let (lo, hi) = shape.range(d, ss);
                    // Single-step even under TL2: the fused step-pair
                    // kernel cannot interleave the per-step refresh.
                    step1(emethod, isa, bufs, n, lo, hi, tau + ss, s);
                }
                phases.add_compute(t1);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// 2D
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn step2_star<T: Elem, S: Star2>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    rs: usize,
    nx: usize,
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((y0, y1), (x0, x1)) = (yr, xr);
    if y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::star2_range(src, dst, rs, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::star2_orig::<V, S, false>(src, dst, rs, y0, y1, x0, x1, s)
                )
            }
            Method::Reorg => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::star2_orig::<V, S, true>(src, dst, rs, y0, y1, x0, x1, s)
                )
            }
            Method::TransLayout | Method::TransLayout2 => {
                crate::kernels::isa_entry::star2_tl(isa, src, dst, rs, nx, y0, y1, x0, x1, s)
            }
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn step2_box<T: Elem, S: Box2>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    rs: usize,
    nx: usize,
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((y0, y1), (x0, x1)) = (yr, xr);
    if y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::box2_range(src, dst, rs, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::box2_orig::<V, S, false>(src, dst, rs, y0, y1, x0, x1, s)
                )
            }
            Method::Reorg => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::box2_orig::<V, S, true>(src, dst, rs, y0, y1, x0, x1, s)
                )
            }
            Method::TransLayout | Method::TransLayout2 => {
                crate::kernels::isa_entry::box2_tl(isa, src, dst, rs, nx, y0, y1, x0, x1, s)
            }
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

/// One wavefront node of the 2D drivers.
enum Node2 {
    Tile {
        sx: Shape,
        sy: Shape,
        tau: usize,
        hh: usize,
    },
    /// The chunk's edge group (see [`drive1`]'s `Node1::Edge`), members
    /// in stage order.
    Edge {
        members: Vec<(Shape, Shape)>,
        tau: usize,
        hh: usize,
    },
}

macro_rules! drive2_impl {
    ($name:ident, $bound:ident, $step:ident) => {
        /// Step `t` levels of a 2D stencil over pre-prepared ping-pong
        /// buffers under tessellate tiling, wavefront-scheduled. Product
        /// tiles by inverted-dimension count: (tri,tri) → (inv,tri) +
        /// (tri,inv) → (inv,inv); halo-touching tiles fuse into one edge
        /// group per chunk under non-Dirichlet boundaries. The step-`t`
        /// result lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<T: Elem, S: $bound>(
            method: Method,
            isa: Isa,
            bufs: [SyncPtr<T>; 2],
            rs: usize,
            nx: usize,
            dx: &DimTiling,
            dy: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
            b: Boundary,
            arena: Option<&TileArena<T>>,
            phases: &PhaseCounters,
        ) {
            let ny = dy.n;
            // See `drive1`: staged tiles keep the global grid natural.
            let emethod = if arena.is_some() {
                Method::MultiLoad
            } else {
                method
            };
            let map = RowMap::for_method::<T>(emethod, isa, nx);
            let mut wave = Wave::new();
            let (mut tau, mut chunk) = (0usize, 0usize);
            while tau < t {
                let hh = h.min(t - tau);
                let mut members = Vec::new();
                let mut group_boxes: Vec<FootBox> = Vec::new();
                let mut interior = Vec::new();
                for stage in 0..3u8 {
                    for &ix in &[false, true] {
                        for &iy in &[false, true] {
                            if (ix as u8) + (iy as u8) != stage {
                                continue;
                            }
                            for sx in Shape::all(dx, ix) {
                                for sy in Shape::all(dy, iy) {
                                    let bx = reach1(dx, sx, hh, S::R);
                                    let by = reach1(dy, sy, hh, S::R);
                                    let exits = bx.0 < 0
                                        || bx.1 > nx as i64
                                        || by.0 < 0
                                        || by.1 > ny as i64;
                                    if !b.is_dirichlet() && exits {
                                        members.push((sx, sy));
                                        group_boxes.push(box2(by, bx));
                                    } else {
                                        interior.push((stage, sx, sy, box2(by, bx)));
                                    }
                                }
                            }
                        }
                    }
                }
                if !members.is_empty() {
                    wave.push(chunk, 0, group_boxes, Node2::Edge { members, tau, hh });
                }
                for (stage, sx, sy, fb) in interior {
                    wave.push(chunk, stage, vec![fb], Node2::Tile { sx, sy, tau, hh });
                }
                tau += hh;
                chunk += 1;
            }
            wave.run(pool, pool.current_num_threads(), |w, node| match node {
                Node2::Tile { sx, sy, tau, hh } => {
                    let Some(ar) = arena else {
                        for ss in 0..*hh {
                            let xr = sx.range(dx, ss);
                            let yr = sy.range(dy, ss);
                            $step(method, isa, bufs, rs, nx, yr, xr, tau + ss, s);
                        }
                        return;
                    };
                    // Staged chunk: stage the per-parity footprint in,
                    // run every step tile-locally, write owned spans
                    // back (see `run_tile1_staged` / `super::stage`).
                    let nonempty = |ss: usize| {
                        let (xa, xb) = sx.range(dx, ss);
                        let (ya, yb) = sy.range(dy, ss);
                        (xa < xb && ya < yb).then_some(((xa, xb), (ya, yb)))
                    };
                    if !(0..*hh).any(|ss| nonempty(ss).is_some()) {
                        return;
                    }
                    let (xlo, xhi) = reach1(dx, *sx, *hh, S::R);
                    let (ylo, yhi) = reach1(dy, *sy, *hh, S::R);
                    let wx = (xhi - xlo) as usize;
                    let hy = (yhi - ylo) as usize;
                    let base = (ylo * rs as i64 + xlo) as isize;
                    let pbx = parity_boxes1(*tau, *hh, S::R, |ss| nonempty(ss).map(|r| r.0));
                    let pby = parity_boxes1(*tau, *hh, S::R, |ss| nonempty(ss).map(|r| r.1));
                    let need_dest =
                        dest_prestage_needed(*hh, S::R, |ss| nonempty(ss).map(|(x, y)| [x, y]));

                    let t0 = Instant::now();
                    let mut slot = ar.slot(w);
                    let slot = &mut *slot;
                    for p in 0..2 {
                        if pbx[p].0 >= pbx[p].1 || (p == (tau + 1) % 2 && !need_dest) {
                            continue;
                        }
                        let cx = ((pbx[p].0 - xlo) as usize, (pbx[p].1 - xlo) as usize);
                        let cy = ((pby[p].0 - ylo) as usize, (pby[p].1 - ylo) as usize);
                        unsafe {
                            stage::stage_in::<T>(
                                isa,
                                bufs[p].0.offset(base),
                                rs,
                                0,
                                slot.origin(p),
                                ar.sxs,
                                0,
                                wx,
                                cx,
                                cy,
                                (0, 1),
                            );
                        }
                    }
                    phases.add_stage_in(t0);

                    let ab = [SyncPtr(slot.origin(0)), SyncPtr(slot.origin(1))];
                    let t1 = Instant::now();
                    for ss in 0..*hh {
                        let Some(((xa, xb), (ya, yb))) = nonempty(ss) else {
                            continue;
                        };
                        let xr = ((xa as i64 - xlo) as usize, (xb as i64 - xlo) as usize);
                        let yr = ((ya as i64 - ylo) as usize, (yb as i64 - ylo) as usize);
                        $step(method, isa, ab, ar.sxs, wx, yr, xr, tau + ss, s);
                    }
                    phases.add_compute(t1);

                    let t2 = Instant::now();
                    for p in 0..2 {
                        slot.spans.clear();
                        slot.spans.resize(hy, (u32::MAX, 0));
                        for ss in 0..*hh {
                            if (tau + ss + 1) % 2 != p {
                                continue;
                            }
                            let Some(((xa, xb), (ya, yb))) = nonempty(ss) else {
                                continue;
                            };
                            let la = (xa as i64 - xlo) as u32;
                            let lb = (xb as i64 - xlo) as u32;
                            for y in ya..yb {
                                let e = &mut slot.spans[(y as i64 - ylo) as usize];
                                e.0 = e.0.min(la);
                                e.1 = e.1.max(lb);
                            }
                        }
                        unsafe {
                            stage::unstage::<T>(
                                isa,
                                slot.origin(p),
                                ar.sxs,
                                0,
                                bufs[p].0.offset(base),
                                rs,
                                0,
                                wx,
                                hy,
                                &slot.spans,
                            );
                        }
                    }
                    phases.add_stage_out(t2);
                }
                Node2::Edge { members, tau, hh } => {
                    for ss in 0..*hh {
                        // Whole-grid refresh: every fold source is an
                        // edge-frame cell owned by this group's members,
                        // all at level `tau + ss` in lockstep.
                        let t0 = Instant::now();
                        unsafe {
                            halo::refresh2(bufs[(tau + ss) % 2].0, rs, nx, ny, S::R, b, &map)
                        };
                        phases.add_halo(t0);
                        let t1 = Instant::now();
                        for &(sx, sy) in members {
                            let xr = sx.range(dx, ss);
                            let yr = sy.range(dy, ss);
                            $step(emethod, isa, bufs, rs, nx, yr, xr, tau + ss, s);
                        }
                        phases.add_compute(t1);
                    }
                }
            });
        }
    };
}

drive2_impl!(drive2_star, Star2, step2_star);
drive2_impl!(drive2_box, Box2, step2_box);

// ---------------------------------------------------------------------------
// 3D
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn step3_star<T: Elem, S: Star3>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    rs: usize,
    ps: usize,
    nx: usize,
    zr: (usize, usize),
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((z0, z1), (y0, y1), (x0, x1)) = (zr, yr, xr);
    if z0 >= z1 || y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::star3_range(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::star3_orig::<V, S, false>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s)
                )
            }
            Method::Reorg => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::star3_orig::<V, S, true>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s)
                )
            }
            Method::TransLayout | Method::TransLayout2 => crate::kernels::isa_entry::star3_tl(
                isa, src, dst, rs, ps, nx, z0, z1, y0, y1, x0, x1, s,
            ),
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn step3_box<T: Elem, S: Box3>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr<T>; 2],
    rs: usize,
    ps: usize,
    nx: usize,
    zr: (usize, usize),
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((z0, z1), (y0, y1), (x0, x1)) = (zr, yr, xr);
    if z0 >= z1 || y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0.cast_const();
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::box3_range(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::box3_orig::<V, S, false>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s)
                )
            }
            Method::Reorg => {
                dispatch_elem!(
                    isa,
                    T,
                    orig::box3_orig::<V, S, true>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s)
                )
            }
            Method::TransLayout | Method::TransLayout2 => crate::kernels::isa_entry::box3_tl(
                isa, src, dst, rs, ps, nx, z0, z1, y0, y1, x0, x1, s,
            ),
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

/// One wavefront node of the 3D drivers.
enum Node3 {
    Tile {
        sx: Shape,
        sy: Shape,
        sz: Shape,
        tau: usize,
        hh: usize,
    },
    /// The chunk's edge group (see [`drive1`]'s `Node1::Edge`), members
    /// in stage order.
    Edge {
        members: Vec<(Shape, Shape, Shape)>,
        tau: usize,
        hh: usize,
    },
}

macro_rules! drive3_impl {
    ($name:ident, $bound:ident, $step:ident) => {
        /// Step `t` levels of a 3D stencil over pre-prepared ping-pong
        /// buffers under tessellate tiling, wavefront-scheduled (4 stages
        /// by inverted-dimension count; halo-touching tiles fuse into one
        /// edge group per chunk under non-Dirichlet boundaries). The
        /// step-`t` result lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<T: Elem, S: $bound>(
            method: Method,
            isa: Isa,
            bufs: [SyncPtr<T>; 2],
            rs: usize,
            ps: usize,
            nx: usize,
            dx: &DimTiling,
            dy: &DimTiling,
            dz: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
            b: Boundary,
            arena: Option<&TileArena<T>>,
            phases: &PhaseCounters,
        ) {
            let (ny, nz) = (dy.n, dz.n);
            // See `drive1`: staged tiles keep the global grid natural.
            let emethod = if arena.is_some() {
                Method::MultiLoad
            } else {
                method
            };
            let map = RowMap::for_method::<T>(emethod, isa, nx);
            let mut wave = Wave::new();
            let (mut tau, mut chunk) = (0usize, 0usize);
            while tau < t {
                let hh = h.min(t - tau);
                let mut members = Vec::new();
                let mut group_boxes: Vec<FootBox> = Vec::new();
                let mut interior = Vec::new();
                for stage in 0..4u8 {
                    for &ix in &[false, true] {
                        for &iy in &[false, true] {
                            for &iz in &[false, true] {
                                if (ix as u8) + (iy as u8) + (iz as u8) != stage {
                                    continue;
                                }
                                for sx in Shape::all(dx, ix) {
                                    for sy in Shape::all(dy, iy) {
                                        for sz in Shape::all(dz, iz) {
                                            let bx = reach1(dx, sx, hh, S::R);
                                            let by = reach1(dy, sy, hh, S::R);
                                            let bz = reach1(dz, sz, hh, S::R);
                                            let exits = bx.0 < 0
                                                || bx.1 > nx as i64
                                                || by.0 < 0
                                                || by.1 > ny as i64
                                                || bz.0 < 0
                                                || bz.1 > nz as i64;
                                            if !b.is_dirichlet() && exits {
                                                members.push((sx, sy, sz));
                                                group_boxes.push(box3(bz, by, bx));
                                            } else {
                                                interior.push((
                                                    stage,
                                                    sx,
                                                    sy,
                                                    sz,
                                                    box3(bz, by, bx),
                                                ));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                if !members.is_empty() {
                    wave.push(chunk, 0, group_boxes, Node3::Edge { members, tau, hh });
                }
                for (stage, sx, sy, sz, fb) in interior {
                    wave.push(
                        chunk,
                        stage,
                        vec![fb],
                        Node3::Tile {
                            sx,
                            sy,
                            sz,
                            tau,
                            hh,
                        },
                    );
                }
                tau += hh;
                chunk += 1;
            }
            wave.run(pool, pool.current_num_threads(), |w, node| match node {
                Node3::Tile {
                    sx,
                    sy,
                    sz,
                    tau,
                    hh,
                } => {
                    let Some(ar) = arena else {
                        for ss in 0..*hh {
                            let xr = sx.range(dx, ss);
                            let yr = sy.range(dy, ss);
                            let zr = sz.range(dz, ss);
                            $step(method, isa, bufs, rs, ps, nx, zr, yr, xr, tau + ss, s);
                        }
                        return;
                    };
                    // Staged chunk; see the 2D driver's `Tile` arm.
                    let nonempty = |ss: usize| {
                        let (xa, xb) = sx.range(dx, ss);
                        let (ya, yb) = sy.range(dy, ss);
                        let (za, zb) = sz.range(dz, ss);
                        (xa < xb && ya < yb && za < zb).then_some(((xa, xb), (ya, yb), (za, zb)))
                    };
                    if !(0..*hh).any(|ss| nonempty(ss).is_some()) {
                        return;
                    }
                    let (xlo, xhi) = reach1(dx, *sx, *hh, S::R);
                    let (ylo, yhi) = reach1(dy, *sy, *hh, S::R);
                    let (zlo, zhi) = reach1(dz, *sz, *hh, S::R);
                    let wx = (xhi - xlo) as usize;
                    let hy = (yhi - ylo) as usize;
                    let hz = (zhi - zlo) as usize;
                    let base = (zlo * ps as i64 + ylo * rs as i64 + xlo) as isize;
                    let pbx = parity_boxes1(*tau, *hh, S::R, |ss| nonempty(ss).map(|r| r.0));
                    let pby = parity_boxes1(*tau, *hh, S::R, |ss| nonempty(ss).map(|r| r.1));
                    let pbz = parity_boxes1(*tau, *hh, S::R, |ss| nonempty(ss).map(|r| r.2));
                    let need_dest = dest_prestage_needed(*hh, S::R, |ss| {
                        nonempty(ss).map(|(x, y, z)| [x, y, z])
                    });

                    let t0 = Instant::now();
                    let mut slot = ar.slot(w);
                    let slot = &mut *slot;
                    for p in 0..2 {
                        if pbx[p].0 >= pbx[p].1 || (p == (tau + 1) % 2 && !need_dest) {
                            continue;
                        }
                        let cx = ((pbx[p].0 - xlo) as usize, (pbx[p].1 - xlo) as usize);
                        let cy = ((pby[p].0 - ylo) as usize, (pby[p].1 - ylo) as usize);
                        let cz = ((pbz[p].0 - zlo) as usize, (pbz[p].1 - zlo) as usize);
                        unsafe {
                            stage::stage_in::<T>(
                                isa,
                                bufs[p].0.offset(base),
                                rs,
                                ps,
                                slot.origin(p),
                                ar.sxs,
                                ar.sys,
                                wx,
                                cx,
                                cy,
                                cz,
                            );
                        }
                    }
                    phases.add_stage_in(t0);

                    let ab = [SyncPtr(slot.origin(0)), SyncPtr(slot.origin(1))];
                    let t1 = Instant::now();
                    for ss in 0..*hh {
                        let Some(((xa, xb), (ya, yb), (za, zb))) = nonempty(ss) else {
                            continue;
                        };
                        let xr = ((xa as i64 - xlo) as usize, (xb as i64 - xlo) as usize);
                        let yr = ((ya as i64 - ylo) as usize, (yb as i64 - ylo) as usize);
                        let zr = ((za as i64 - zlo) as usize, (zb as i64 - zlo) as usize);
                        $step(method, isa, ab, ar.sxs, ar.sys, wx, zr, yr, xr, tau + ss, s);
                    }
                    phases.add_compute(t1);

                    let t2 = Instant::now();
                    for p in 0..2 {
                        slot.spans.clear();
                        slot.spans.resize(hy * hz, (u32::MAX, 0));
                        for ss in 0..*hh {
                            if (tau + ss + 1) % 2 != p {
                                continue;
                            }
                            let Some(((xa, xb), (ya, yb), (za, zb))) = nonempty(ss) else {
                                continue;
                            };
                            let la = (xa as i64 - xlo) as u32;
                            let lb = (xb as i64 - xlo) as u32;
                            for z in za..zb {
                                let zoff = (z as i64 - zlo) as usize * hy;
                                for y in ya..yb {
                                    let e = &mut slot.spans[zoff + (y as i64 - ylo) as usize];
                                    e.0 = e.0.min(la);
                                    e.1 = e.1.max(lb);
                                }
                            }
                        }
                        unsafe {
                            stage::unstage::<T>(
                                isa,
                                slot.origin(p),
                                ar.sxs,
                                ar.sys,
                                bufs[p].0.offset(base),
                                rs,
                                ps,
                                wx,
                                hy,
                                &slot.spans,
                            );
                        }
                    }
                    phases.add_stage_out(t2);
                }
                Node3::Edge { members, tau, hh } => {
                    for ss in 0..*hh {
                        // Whole-grid refresh: every fold source is an
                        // edge-frame cell owned by this group's members,
                        // all at level `tau + ss` in lockstep.
                        let t0 = Instant::now();
                        unsafe {
                            halo::refresh3(
                                bufs[(tau + ss) % 2].0,
                                rs,
                                ps,
                                nx,
                                ny,
                                nz,
                                S::R,
                                b,
                                &map,
                            )
                        };
                        phases.add_halo(t0);
                        let t1 = Instant::now();
                        for &(sx, sy, sz) in members {
                            let xr = sx.range(dx, ss);
                            let yr = sy.range(dy, ss);
                            let zr = sz.range(dz, ss);
                            $step(emethod, isa, bufs, rs, ps, nx, zr, yr, xr, tau + ss, s);
                        }
                        phases.add_compute(t1);
                    }
                }
            });
        }
    };
}

drive3_impl!(drive3_star, Star3, step3_star);
drive3_impl!(drive3_box, Box3, step3_box);
