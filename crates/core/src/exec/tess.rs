//! Tessellate tiling drivers (Yuan et al., SC'17 — the framework the paper
//! integrates with in §3.4), for 1/2/3 spatial dimensions, with
//! rayon-parallel stage execution.
//!
//! Each time chunk of height `h` runs `d+1` stages: stage `m` executes all
//! product tiles with exactly `m` inverted dimensions. Tiles within a
//! stage write disjoint cells and read only cells finalized by earlier
//! stages (or their own earlier steps), so a stage is a `par_iter` with no
//! intra-stage synchronization; the stage boundary is the only barrier.
//!
//! Intra-tile vectorization is pluggable ([`Method`]): the paper's
//! *Tessellation* baseline uses `MultiLoad` ("auto-vectorization"), *Our*
//! uses `TransLayout`, and *Our (2 steps)* uses `TransLayout2`, whose 1D
//! tiles fuse step pairs with the register pipeline
//! ([`crate::kernels::tl2::star1_tl2_range`]) plus scalar margins for the
//! shrinking/expanding boundary cells — the Fig. 5d treatment.
//!
//! These drivers are **parameterized by the plan**: they step pre-prepared
//! ping-pong buffers (already in the method's layout, scratch already
//! allocated) on a caller-owned thread pool. Layout round-trips, scratch
//! allocation, and final parity swaps live in [`super`]'s `Plan`/`Session`
//! engine, so none of them recur in a steady-state hot loop.

use rayon::prelude::*;
use stencil_simd::{dispatch, Isa};

use super::tile::DimTiling;
use crate::api::Method;
use crate::kernels::{orig, scalar};
use crate::layout::SetGeo;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Raw pointer that may cross threads; tile disjointness (see module docs)
/// makes the concurrent accesses race-free.
#[derive(Copy, Clone)]
pub(crate) struct SyncPtr(pub *mut f64);
unsafe impl Send for SyncPtr {}
unsafe impl Sync for SyncPtr {}

/// Build a worker pool for tiled execution (used by `Plan` construction).
pub(crate) fn make_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("rayon pool")
}

/// One per-dimension shape instance.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Shape {
    Tri(usize),
    Inv(usize),
}

impl Shape {
    #[inline]
    pub(crate) fn range(self, d: &DimTiling, s: usize) -> (usize, usize) {
        match self {
            Shape::Tri(k) => d.tri(k, s),
            Shape::Inv(b) => d.inv(b, s),
        }
    }

    pub(crate) fn all(d: &DimTiling, inverted: bool) -> Vec<Shape> {
        if inverted {
            (0..d.ninv()).map(Shape::Inv).collect()
        } else {
            (0..d.ntri()).map(Shape::Tri).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// 1D
// ---------------------------------------------------------------------------

/// One intra-tile step of a 1D stencil at chunk step `ss` (absolute time
/// `tau + ss`), on the method's layout.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step1<S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    n: usize,
    lo: usize,
    hi: usize,
    time: usize,
    s: &S,
) {
    if lo >= hi {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::star1_range(src, dst, lo, hi, s),
            Method::MultiLoad => {
                dispatch!(isa, V => orig::star1_orig::<V, S, false>(src, dst, lo, hi, s))
            }
            Method::Reorg => {
                dispatch!(isa, V => orig::star1_orig::<V, S, true>(src, dst, lo, hi, s))
            }
            Method::TransLayout | Method::TransLayout2 => {
                crate::kernels::isa_entry::star1_tl::<S>(isa, src, dst, n, lo, hi, s)
            }
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

/// Fused pair of steps (ss, ss+1) for the 1D `TransLayout2` tiles:
/// register pipeline over the interior sets, k=1 margins for the
/// boundary cells of the shrinking/expanding tile.
#[allow(clippy::too_many_arguments)]
fn pair1<S: Star1>(
    isa: Isa,
    bufs: [SyncPtr; 2],
    n: usize,
    shape: Shape,
    d: &DimTiling,
    ss: usize,
    tau: usize,
    s: &S,
) {
    let (lo0, hi0) = shape.range(d, ss);
    let (lo1, hi1) = shape.range(d, ss + 1);
    let bs = isa.lanes() * isa.lanes();
    let lo = lo0.max(lo1);
    let hi = hi0.min(hi1).max(lo);
    let sa = lo.div_ceil(bs);
    let sb = (hi / bs).min(SetGeo::new(n, isa.lanes()).nsets);
    if sb < sa + 2 {
        // Tile fragment too small for the pipeline — two plain steps.
        step1(Method::TransLayout2, isa, bufs, n, lo0, hi0, tau + ss, s);
        step1(
            Method::TransLayout2,
            isa,
            bufs,
            n,
            lo1,
            hi1,
            tau + ss + 1,
            s,
        );
        return;
    }
    let (a, b) = (sa * bs, sb * bs);
    let time = tau + ss;
    let buf_a = bufs[time % 2].0;
    let buf_b = bufs[(time + 1) % 2].0;

    // step ss margins (t → t+1, written to the t+1 parity)
    step1(Method::TransLayout2, isa, bufs, n, lo0, a, time, s);
    step1(Method::TransLayout2, isa, bufs, n, b, hi0, time, s);
    // fused interior (t → t+2 in parity A; boundary-set t+1 exported to B).
    // Routed through the explicit #[target_feature] entry: the pipeline is
    // too large for the dispatch! closure to inline reliably (DESIGN.md §5).
    unsafe {
        crate::kernels::isa_entry::star1_tl2_range::<S>(isa, buf_a, buf_b, n, sa, sb, s);
    }
    // step ss+1 margins (t+1 → t+2)
    step1(Method::TransLayout2, isa, bufs, n, lo1, a, time + 1, s);
    step1(Method::TransLayout2, isa, bufs, n, b, hi1, time + 1, s);
}

#[allow(clippy::too_many_arguments)]
fn run_tile1<S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    n: usize,
    d: &DimTiling,
    shape: Shape,
    tau: usize,
    hh: usize,
    s: &S,
) {
    if method == Method::TransLayout2 {
        let mut ss = 0;
        while ss + 1 < hh {
            pair1(isa, bufs, n, shape, d, ss, tau, s);
            ss += 2;
        }
        if ss < hh {
            let (lo, hi) = shape.range(d, ss);
            step1(method, isa, bufs, n, lo, hi, tau + ss, s);
        }
    } else {
        for ss in 0..hh {
            let (lo, hi) = shape.range(d, ss);
            step1(method, isa, bufs, n, lo, hi, tau + ss, s);
        }
    }
}

/// Step `t` levels of a 1D star stencil over pre-prepared ping-pong
/// buffers under tessellate tiling (chunk height `h`), on `pool`.
///
/// `bufs[0]` holds the step-0 data; the step-`t` result lands in
/// `bufs[t % 2]` — the caller owns the final parity swap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive1<S: Star1>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    n: usize,
    d: &DimTiling,
    t: usize,
    h: usize,
    s: &S,
    pool: &rayon::ThreadPool,
) {
    // The tile lists depend only on the tiling geometry, not on the time
    // chunk — build them once and hand the queue a copy per chunk.
    let triangles = Shape::all(d, false);
    let inverted = Shape::all(d, true);
    pool.install(|| {
        let mut tau = 0usize;
        while tau < t {
            let hh = h.min(t - tau);
            triangles.clone().into_par_iter().for_each(|shape| {
                run_tile1(method, isa, bufs, n, d, shape, tau, hh, s);
            });
            inverted.clone().into_par_iter().for_each(|shape| {
                run_tile1(method, isa, bufs, n, d, shape, tau, hh, s);
            });
            tau += hh;
        }
    });
}

// ---------------------------------------------------------------------------
// 2D
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn step2_star<S: Star2>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    rs: usize,
    nx: usize,
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((y0, y1), (x0, x1)) = (yr, xr);
    if y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::star2_range(src, dst, rs, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch!(isa, V => orig::star2_orig::<V, S, false>(src, dst, rs, y0, y1, x0, x1, s))
            }
            Method::Reorg => {
                dispatch!(isa, V => orig::star2_orig::<V, S, true>(src, dst, rs, y0, y1, x0, x1, s))
            }
            Method::TransLayout | Method::TransLayout2 => {
                crate::kernels::isa_entry::star2_tl::<S>(isa, src, dst, rs, nx, y0, y1, x0, x1, s)
            }
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn step2_box<S: Box2>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    rs: usize,
    nx: usize,
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((y0, y1), (x0, x1)) = (yr, xr);
    if y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::box2_range(src, dst, rs, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch!(isa, V => orig::box2_orig::<V, S, false>(src, dst, rs, y0, y1, x0, x1, s))
            }
            Method::Reorg => {
                dispatch!(isa, V => orig::box2_orig::<V, S, true>(src, dst, rs, y0, y1, x0, x1, s))
            }
            Method::TransLayout | Method::TransLayout2 => {
                crate::kernels::isa_entry::box2_tl::<S>(isa, src, dst, rs, nx, y0, y1, x0, x1, s)
            }
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

macro_rules! drive2_impl {
    ($name:ident, $bound:ident, $step:ident) => {
        /// Step `t` levels of a 2D stencil over pre-prepared ping-pong
        /// buffers under tessellate tiling. Stages execute product tiles
        /// by inverted-dimension count: (tri,tri) → (inv,tri)+(tri,inv) →
        /// (inv,inv). The step-`t` result lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<S: $bound>(
            method: Method,
            isa: Isa,
            bufs: [SyncPtr; 2],
            rs: usize,
            nx: usize,
            dx: &DimTiling,
            dy: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
        ) {
            // Per-stage product-tile lists depend only on the tiling
            // geometry — build once, hand the queue a copy per chunk.
            let stages: Vec<Vec<(Shape, Shape)>> = (0..3usize)
                .map(|stage| {
                    let mut tiles = Vec::new();
                    for &ix in &[false, true] {
                        for &iy in &[false, true] {
                            if (ix as usize) + (iy as usize) != stage {
                                continue;
                            }
                            for sx in Shape::all(dx, ix) {
                                for sy in Shape::all(dy, iy) {
                                    tiles.push((sx, sy));
                                }
                            }
                        }
                    }
                    tiles
                })
                .collect();
            pool.install(|| {
                let mut tau = 0usize;
                while tau < t {
                    let hh = h.min(t - tau);
                    for tiles in &stages {
                        tiles.clone().into_par_iter().for_each(|(sx, sy)| {
                            for ss in 0..hh {
                                let xr = sx.range(dx, ss);
                                let yr = sy.range(dy, ss);
                                $step(method, isa, bufs, rs, nx, yr, xr, tau + ss, s);
                            }
                        });
                    }
                    tau += hh;
                }
            });
        }
    };
}

drive2_impl!(drive2_star, Star2, step2_star);
drive2_impl!(drive2_box, Box2, step2_box);

// ---------------------------------------------------------------------------
// 3D
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn step3_star<S: Star3>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    rs: usize,
    ps: usize,
    nx: usize,
    zr: (usize, usize),
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((z0, z1), (y0, y1), (x0, x1)) = (zr, yr, xr);
    if z0 >= z1 || y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::star3_range(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch!(isa, V => orig::star3_orig::<V, S, false>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s))
            }
            Method::Reorg => {
                dispatch!(isa, V => orig::star3_orig::<V, S, true>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s))
            }
            Method::TransLayout | Method::TransLayout2 => crate::kernels::isa_entry::star3_tl::<S>(
                isa, src, dst, rs, ps, nx, z0, z1, y0, y1, x0, x1, s,
            ),
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn step3_box<S: Box3>(
    method: Method,
    isa: Isa,
    bufs: [SyncPtr; 2],
    rs: usize,
    ps: usize,
    nx: usize,
    zr: (usize, usize),
    yr: (usize, usize),
    xr: (usize, usize),
    time: usize,
    s: &S,
) {
    let ((z0, z1), (y0, y1), (x0, x1)) = (zr, yr, xr);
    if z0 >= z1 || y0 >= y1 || x0 >= x1 {
        return;
    }
    let src = bufs[time % 2].0 as *const f64;
    let dst = bufs[(time + 1) % 2].0;
    unsafe {
        match method {
            Method::Scalar => scalar::box3_range(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s),
            Method::MultiLoad => {
                dispatch!(isa, V => orig::box3_orig::<V, S, false>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s))
            }
            Method::Reorg => {
                dispatch!(isa, V => orig::box3_orig::<V, S, true>(src, dst, rs, ps, z0, z1, y0, y1, x0, x1, s))
            }
            Method::TransLayout | Method::TransLayout2 => crate::kernels::isa_entry::box3_tl::<S>(
                isa, src, dst, rs, ps, nx, z0, z1, y0, y1, x0, x1, s,
            ),
            Method::Dlt => unreachable!("DLT tiles run under the split-tiling driver"),
        }
    }
}

macro_rules! drive3_impl {
    ($name:ident, $bound:ident, $step:ident) => {
        /// Step `t` levels of a 3D stencil over pre-prepared ping-pong
        /// buffers under tessellate tiling (4 stages by inverted-dimension
        /// count). The step-`t` result lands in `bufs[t % 2]`.
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name<S: $bound>(
            method: Method,
            isa: Isa,
            bufs: [SyncPtr; 2],
            rs: usize,
            ps: usize,
            nx: usize,
            dx: &DimTiling,
            dy: &DimTiling,
            dz: &DimTiling,
            t: usize,
            h: usize,
            s: &S,
            pool: &rayon::ThreadPool,
        ) {
            // Per-stage product-tile lists depend only on the tiling
            // geometry — build once, hand the queue a copy per chunk.
            let stages: Vec<Vec<(Shape, Shape, Shape)>> = (0..4usize)
                .map(|stage| {
                    let mut tiles = Vec::new();
                    for &ix in &[false, true] {
                        for &iy in &[false, true] {
                            for &iz in &[false, true] {
                                if (ix as usize) + (iy as usize) + (iz as usize) != stage {
                                    continue;
                                }
                                for sx in Shape::all(dx, ix) {
                                    for sy in Shape::all(dy, iy) {
                                        for sz in Shape::all(dz, iz) {
                                            tiles.push((sx, sy, sz));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    tiles
                })
                .collect();
            pool.install(|| {
                let mut tau = 0usize;
                while tau < t {
                    let hh = h.min(t - tau);
                    for tiles in &stages {
                        tiles.clone().into_par_iter().for_each(|(sx, sy, sz)| {
                            for ss in 0..hh {
                                let xr = sx.range(dx, ss);
                                let yr = sy.range(dy, ss);
                                let zr = sz.range(dz, ss);
                                $step(method, isa, bufs, rs, ps, nx, zr, yr, xr, tau + ss, s);
                            }
                        });
                    }
                    tau += hh;
                }
            });
        }
    };
}

drive3_impl!(drive3_star, Star3, step3_star);
drive3_impl!(drive3_box, Box3, step3_box);
