//! Boundary conditions and the halo-refresh layer.
//!
//! Every grid in this workspace carries halo cells around its interior
//! (see [`crate::grid`]): [`Elem::PAD`] elements on each side of a row, plus
//! whole halo rows/planes in 2D/3D. Kernels read them freely and never
//! write them — which is exactly a **Dirichlet** (fixed-value) boundary
//! when the halos are constant, and becomes any other boundary condition
//! the moment something refreshes the halo cells from the interior
//! between time steps. That something is this module.
//!
//! # The [`Boundary`] policy
//!
//! * [`Boundary::Dirichlet`]`(v)` — the paper's setting and the default:
//!   halo cells are constant, carrying the fixed boundary value the grid
//!   was constructed with. The engine never touches them (so existing
//!   plans are bit-identical to the pre-boundary engine); `v` records the
//!   intended value for constructors such as
//!   [`AnyGrid::from_fn_spec`](crate::grid::AnyGrid::from_fn_spec).
//! * [`Boundary::Periodic`] — wrap-around: logical cell `-k` is cell
//!   `n-k`, cell `n-1+k` is cell `k-1`, per axis. The standard torus
//!   setting used to evaluate stencil frameworks.
//! * [`Boundary::Reflect`] — zero-flux (insulated) Neumann walls via
//!   even mirroring about the cell face: cell `-k` is cell `k-1`, cell
//!   `n-1+k` is cell `n-k`, per axis. Conserves the field total under
//!   normalized diffusion weights.
//!
//! Corners and edges compose per axis (x halos are folded first, then
//!   whole-row y copies, then whole-plane z copies), matching a naive
//! reference that folds each index independently.
//!
//! # When the refresh runs, and who runs it
//!
//! The refresh is O(surface) against the kernels' O(volume): before any
//! kernel reads a halo cell, that cell is rewritten from the interior of
//! the step's **source** buffer at the matching time level. Who does the
//! rewriting depends on the driver:
//!
//! * **Untiled sequential** plans refresh the whole surface between
//!   steps (`refresh1`/`refresh2`/`refresh3`).
//! * **Untiled parallel** plans fuse a band-granular refresh into the
//!   sweep (`refresh1_band`/`refresh2_band`/`refresh3_band`):
//!   each band refreshes exactly the halo rows/planes its own cells
//!   read, while hot. Adjacent bands may both write a shared halo cell,
//!   but always with **bit-identical values** folded from the immutable
//!   source interior — the benign-race contract that makes the refresh
//!   barrier-free (see `exec::par`).
//! * **Temporally tiled** plans (`Tiling::Tessellate` / `Split`)
//!   advance different cells to different time levels inside one chunk,
//!   so there is no global "the" source buffer to refresh. Instead the
//!   wavefront scheduler (see `exec::wave`) gives each time chunk one
//!   **edge group**: a single node owning every tile whose radius-
//!   extended footprint leaves the interior. The group steps its
//!   members level by level, refreshing the halos of the level about to
//!   be read before each sub-step, while interior tiles never read a
//!   halo cell at all (their footprints stay inside the domain, and the
//!   split drivers' per-tile band refreshes only touch rows the tile
//!   itself owns). That is what lets every boundary compose with
//!   temporal tiling and threads at 0 ULP.
//!
//! # Layout awareness
//!
//! The hot kernels run over the method's resident layout (natural, local
//! transpose, or DLT — see [`crate::layout`]), and all three store the
//! x-halo cells at their raw (natural) offsets while permuting only the
//! interior; halo rows/planes are transformed like interior rows, so y/z
//! refreshes are raw row/plane copies in any layout. The only
//! layout-dependent part is *reading* an interior cell by logical index,
//! which [`RowMap`] centralizes. Kernels stay byte-for-byte untouched.

use stencil_simd::{Elem, Isa};

use crate::layout::{DltGeo, SetGeo};
use crate::spec::SpecError;

use super::Method;

/// What the halo cells of a grid mean, and therefore how (whether) the
/// engine refreshes them between time steps.
///
/// Parses from and prints as a compact label that also composes with
/// stencil names (`"2d5p@periodic"` — see
/// [`StencilSpec`](crate::spec::StencilSpec)):
///
/// ```
/// use stencil_core::exec::Boundary;
///
/// assert_eq!("periodic".parse::<Boundary>().unwrap(), Boundary::Periodic);
/// assert_eq!("dirichlet(1.5)".parse::<Boundary>().unwrap(), Boundary::Dirichlet(1.5));
/// let b = Boundary::Reflect;
/// assert_eq!(b.to_string().parse::<Boundary>().unwrap(), b);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Boundary {
    /// Fixed-value halos (the paper's setting, and the default as
    /// `Dirichlet(0.0)`). The engine never writes halo cells; the value
    /// records the condition for grid constructors and documentation.
    Dirichlet(f64),
    /// Wrap-around (torus) boundaries, refreshed once per time step.
    Periodic,
    /// Zero-flux (insulated Neumann) boundaries via even mirroring,
    /// refreshed once per time step.
    Reflect,
}

impl Boundary {
    /// Whether this is a Dirichlet (constant-halo) condition — the only
    /// kind that needs no per-step refresh and composes with temporal
    /// tiling.
    #[inline]
    pub fn is_dirichlet(self) -> bool {
        matches!(self, Boundary::Dirichlet(_))
    }

    /// The constant halo value grid constructors should fill with:
    /// the Dirichlet value, or `0.0` for the refreshed modes (whose
    /// halos are overwritten before every step anyway).
    #[inline]
    pub fn halo_fill(self) -> f64 {
        match self {
            Boundary::Dirichlet(v) => v,
            Boundary::Periodic | Boundary::Reflect => 0.0,
        }
    }

    /// Short label without the Dirichlet value ("dirichlet", "periodic",
    /// "reflect") for report tables.
    pub fn name(self) -> &'static str {
        match self {
            Boundary::Dirichlet(_) => "dirichlet",
            Boundary::Periodic => "periodic",
            Boundary::Reflect => "reflect",
        }
    }
}

impl Default for Boundary {
    /// `Dirichlet(0.0)` — today's constant-zero halos.
    fn default() -> Boundary {
        Boundary::Dirichlet(0.0)
    }
}

impl std::fmt::Display for Boundary {
    /// `"dirichlet(v)"` / `"periodic"` / `"reflect"`; round-trips
    /// through `FromStr` (Rust's `f64` `Display` is shortest-exact).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Boundary::Dirichlet(v) => write!(f, "dirichlet({v})"),
            Boundary::Periodic => f.write_str("periodic"),
            Boundary::Reflect => f.write_str("reflect"),
        }
    }
}

impl std::str::FromStr for Boundary {
    type Err = SpecError;

    /// Parse `"periodic"`, `"reflect"`, `"dirichlet"` (= `Dirichlet(0.0)`)
    /// or `"dirichlet(<value>)"`.
    fn from_str(s: &str) -> Result<Boundary, SpecError> {
        match s {
            "periodic" => return Ok(Boundary::Periodic),
            "reflect" => return Ok(Boundary::Reflect),
            "dirichlet" => return Ok(Boundary::Dirichlet(0.0)),
            _ => {}
        }
        if let Some(v) = s
            .strip_prefix("dirichlet(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            if let Ok(v) = v.parse::<f64>() {
                return Ok(Boundary::Dirichlet(v));
            }
        }
        Err(SpecError::UnknownBoundary(s.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Layout-aware logical reads
// ---------------------------------------------------------------------------

/// How logical cell indices of one row map to storage offsets in the
/// layout a plan's buffers are resident in.
///
/// All three layouts keep x-halo cells at their raw natural offsets and
/// permute only interior cells, so the refresh *writes* raw halo
/// positions and only *reads* through this map.
#[derive(Copy, Clone, Debug)]
pub enum RowMap {
    /// Natural row-major order (scalar / multiload / reorg buffers).
    Natural,
    /// The paper's local transpose layout (translayout / translayout2).
    Transpose(SetGeo),
    /// Dimension-lifting transpose (DLT staging buffers).
    Dlt(DltGeo),
}

impl RowMap {
    /// The map for the layout `method` keeps its buffers in, for rows of
    /// `nx` interior cells of element `T` at `isa`'s vector length.
    pub(crate) fn for_method<T: Elem>(method: Method, isa: Isa, nx: usize) -> RowMap {
        let l = isa.lanes_for::<T>();
        match method {
            Method::Scalar | Method::MultiLoad | Method::Reorg => RowMap::Natural,
            Method::TransLayout | Method::TransLayout2 => RowMap::Transpose(SetGeo::new(nx, l)),
            Method::Dlt => RowMap::Dlt(DltGeo::new(nx, l)),
        }
    }

    /// Read interior logical cell `i ∈ [0, n)` of the row at `row`.
    ///
    /// # Safety
    /// `row` must point at the row's interior origin with `i` inside the
    /// interior the map was built for.
    #[inline]
    unsafe fn read<T: Elem>(&self, row: *const T, i: usize) -> T {
        match self {
            RowMap::Natural => *row.add(i),
            RowMap::Transpose(g) => *row.add(g.map(i)),
            RowMap::Dlt(g) => *row.add(g.map(i)),
        }
    }
}

// ---------------------------------------------------------------------------
// Refresh engine
// ---------------------------------------------------------------------------

/// Refresh the x halos (raw positions `-r..0` and `n..n+r` relative to
/// the interior) of one row from its interior.
///
/// # Safety
/// `row` points at the row's interior origin; positions `[-r, n + r)`
/// must be addressable (`r ≤ T::PAD`, guaranteed by `MAX_R`); the
/// map's geometry must match `n`. Caller guarantees `n ≥ r` for the
/// non-Dirichlet modes (validated at plan build).
pub(crate) unsafe fn refresh_row<T: Elem>(
    row: *mut T,
    n: usize,
    r: usize,
    b: Boundary,
    map: &RowMap,
) {
    debug_assert!(r <= T::PAD);
    match b {
        Boundary::Dirichlet(_) => {}
        Boundary::Periodic => {
            for k in 1..=r {
                *row.offset(-(k as isize)) = map.read(row, n - k);
                *row.add(n - 1 + k) = map.read(row, k - 1);
            }
        }
        Boundary::Reflect => {
            for k in 1..=r {
                *row.offset(-(k as isize)) = map.read(row, k - 1);
                *row.add(n - 1 + k) = map.read(row, n - k);
            }
        }
    }
}

/// The source row index (in `[0, n)`) that halo row/plane `-k` (for
/// `lo = true`) or `n-1+k` copies from. Also used by the wide-halo fused
/// kernels (`kernels::tl2`) to stage t+1 halo values.
#[inline]
pub(crate) fn fold_src(n: usize, k: usize, lo: bool, b: Boundary) -> usize {
    match (b, lo) {
        (Boundary::Periodic, true) => n - k,
        (Boundary::Periodic, false) => k - 1,
        (Boundary::Reflect, true) => k - 1,
        (Boundary::Reflect, false) => n - k,
        (Boundary::Dirichlet(_), _) => unreachable!("Dirichlet never copies"),
    }
}

/// Copy one full raw row (`rs` elements starting `T::PAD` before the
/// interior origin) from row index `src_y` to row index `dst_y`.
///
/// # Safety
/// Both rows fully addressable; `src_y != dst_y`.
#[inline]
unsafe fn copy_raw_row<T: Elem>(base: *mut T, rs: usize, src_y: isize, dst_y: isize) {
    let src = base.offset(src_y * rs as isize - T::PAD as isize);
    let dst = base.offset(dst_y * rs as isize - T::PAD as isize);
    std::ptr::copy_nonoverlapping(src, dst, rs);
}

/// Refresh the halos of a 1D buffer from its interior (no-op under
/// Dirichlet).
///
/// # Safety
/// Same contract as [`refresh_row`].
pub(crate) unsafe fn refresh1<T: Elem>(ptr: *mut T, n: usize, r: usize, b: Boundary, map: &RowMap) {
    refresh_row(ptr, n, r, b, map);
}

/// Refresh the halo frame of a 2D buffer from its interior: x halos of
/// every interior row first, then `r` whole raw halo rows above and
/// below (which carries the freshly folded x halos into the corners).
/// No-op under Dirichlet.
///
/// # Safety
/// `ptr` points at interior cell (0, 0) of a buffer with row stride `rs`,
/// at least `r` halo rows on each side, and `T::PAD` row padding; the
/// map's geometry must match `nx`; `nx, ny ≥ r` for non-Dirichlet modes.
pub(crate) unsafe fn refresh2<T: Elem>(
    ptr: *mut T,
    rs: usize,
    nx: usize,
    ny: usize,
    r: usize,
    b: Boundary,
    map: &RowMap,
) {
    if b.is_dirichlet() {
        return;
    }
    for y in 0..ny {
        refresh_row(ptr.add(y * rs), nx, r, b, map);
    }
    for k in 1..=r {
        copy_raw_row(ptr, rs, fold_src(ny, k, true, b) as isize, -(k as isize));
        copy_raw_row(
            ptr,
            rs,
            fold_src(ny, k, false, b) as isize,
            (ny - 1 + k) as isize,
        );
    }
}

/// Refresh the halo shell of a 3D buffer from its interior: the 2D halo
/// frame of every interior plane first, then `r` whole halo planes
/// (rows `[-r, ny + r)` of the folded source plane) on each side, which
/// carries the folded y/x halos into the edges and corners. No-op under
/// Dirichlet.
///
/// # Safety
/// `ptr` points at interior cell (0, 0, 0) of a buffer with row stride
/// `rs`, plane stride `ps`, at least `r` halo rows/planes per side;
/// map geometry must match `nx`; `nx, ny, nz ≥ r` for non-Dirichlet.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn refresh3<T: Elem>(
    ptr: *mut T,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    r: usize,
    b: Boundary,
    map: &RowMap,
) {
    if b.is_dirichlet() {
        return;
    }
    for z in 0..nz {
        refresh2(ptr.add(z * ps), rs, nx, ny, r, b, map);
    }
    // Whole-plane copies: rows [-r, ny + r), each rs wide from -T::PAD,
    // are contiguous — one copy per halo plane.
    let row0 = -(r as isize) * rs as isize - T::PAD as isize;
    let len = (ny + 2 * r) * rs;
    for k in 1..=r {
        for (dst_z, lo) in [(-(k as isize), true), ((nz - 1 + k) as isize, false)] {
            let src_z = fold_src(nz, k, lo, b) as isize;
            let src = ptr.offset(src_z * ps as isize + row0);
            let dst = ptr.offset(dst_z * ps as isize + row0);
            std::ptr::copy_nonoverlapping(src, dst, len);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-band refresh — the fused fast path for the parallel drivers
// ---------------------------------------------------------------------------
//
// The whole-grid `refresh1/2/3` sweeps above are what a sequential plan
// runs between steps. The parallel drivers (`exec::par`) instead fold the
// refresh into each band's work item: a band refreshes exactly the halo
// cells its own compute reads, immediately before computing, while those
// cache lines are hot — no serial pre-pass and no extra barrier.
//
// Bands overlap by the stencil radius, so adjacent bands may write the
// same halo cell. Every such write computes the value from the *source*
// buffer's interior, which is immutable for the whole step, so all
// writers store bit-identical values; the overlap is a benign race on
// identical values (aligned element-sized stores). Halo-row construction
// copies the raw fold row first (whose x-halo pad may be mid-refresh by
// its owning band) and then recomputes the copy's x halos locally from
// the copied interior, so every cell a kernel can read is deterministic.

/// Per-band [`refresh1`]: fold only the halo cells a 1D band `[lo, hi)`
/// reads (left halos when `lo < r`, right halos when `hi + r > n`).
///
/// # Safety
/// Same contract as [`refresh_row`]; `lo ≤ hi ≤ n`.
pub(crate) unsafe fn refresh1_band<T: Elem>(
    ptr: *mut T,
    n: usize,
    r: usize,
    b: Boundary,
    map: &RowMap,
    lo: usize,
    hi: usize,
) {
    match b {
        Boundary::Dirichlet(_) => {}
        Boundary::Periodic => {
            for k in 1..=r {
                if lo < r {
                    *ptr.offset(-(k as isize)) = map.read(ptr, n - k);
                }
                if hi + r > n {
                    *ptr.add(n - 1 + k) = map.read(ptr, k - 1);
                }
            }
        }
        Boundary::Reflect => {
            for k in 1..=r {
                if lo < r {
                    *ptr.offset(-(k as isize)) = map.read(ptr, k - 1);
                }
                if hi + r > n {
                    *ptr.add(n - 1 + k) = map.read(ptr, n - k);
                }
            }
        }
    }
}

/// Construct halo row `dst_y` (a row index outside `[0, ny)`) from its
/// fold source: copy the raw source row, then recompute the copy's x
/// halos from its own (just copied) interior so the result does not
/// depend on whether the source row's x halos were refreshed yet.
///
/// # Safety
/// Same contract as [`refresh2`] for the rows involved.
#[allow(clippy::too_many_arguments)]
unsafe fn build_halo_row<T: Elem>(
    ptr: *mut T,
    rs: usize,
    nx: usize,
    ny: usize,
    k: usize,
    lo: bool,
    r: usize,
    b: Boundary,
    map: &RowMap,
) {
    let dst_y = if lo {
        -(k as isize)
    } else {
        (ny - 1 + k) as isize
    };
    copy_raw_row(ptr, rs, fold_src(ny, k, lo, b) as isize, dst_y);
    refresh_row(ptr.offset(dst_y * rs as isize), nx, r, b, map);
}

/// Per-band [`refresh2`]: refresh the x halos of the rows a 2D band
/// `[y0, y1)` reads (`[y0 - r, y1 + r) ∩ [0, ny)`) and construct the
/// whole halo rows it touches (below when `y0 < r`, above when
/// `y1 + r > ny`).
///
/// # Safety
/// Same contract as [`refresh2`]; `y0 ≤ y1 ≤ ny`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn refresh2_band<T: Elem>(
    ptr: *mut T,
    rs: usize,
    nx: usize,
    ny: usize,
    r: usize,
    b: Boundary,
    map: &RowMap,
    y0: usize,
    y1: usize,
) {
    if b.is_dirichlet() {
        return;
    }
    for y in y0.saturating_sub(r)..(y1 + r).min(ny) {
        refresh_row(ptr.add(y * rs), nx, r, b, map);
    }
    for k in 1..=r {
        if y0 < r {
            build_halo_row(ptr, rs, nx, ny, k, true, r, b, map);
        }
        if y1 + r > ny {
            build_halo_row(ptr, rs, nx, ny, k, false, r, b, map);
        }
    }
}

/// Per-band [`refresh3`]: refresh the 2D halo frame of the planes a 3D
/// band `[z0, z1)` reads (`[z0 - r, z1 + r) ∩ [0, nz)`) and construct
/// the whole halo planes it touches. Halo planes are built as raw copies
/// of their fold-source plane followed by a local 2D frame refresh of
/// the copy, mirroring [`build_halo_row`].
///
/// # Safety
/// Same contract as [`refresh3`]; `z0 ≤ z1 ≤ nz`.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn refresh3_band<T: Elem>(
    ptr: *mut T,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    r: usize,
    b: Boundary,
    map: &RowMap,
    z0: usize,
    z1: usize,
) {
    if b.is_dirichlet() {
        return;
    }
    for z in z0.saturating_sub(r)..(z1 + r).min(nz) {
        refresh2(ptr.add(z * ps), rs, nx, ny, r, b, map);
    }
    let row0 = -(T::PAD as isize);
    let len = ny * rs + T::PAD; // rows [0, ny) plus the leading pad
    for k in 1..=r {
        for (dst_z, lo) in [(-(k as isize), true), ((nz - 1 + k) as isize, false)] {
            if (lo && z0 >= r) || (!lo && z1 + r <= nz) {
                continue;
            }
            let src_z = fold_src(nz, k, lo, b) as isize;
            let src = ptr.offset(src_z * ps as isize + row0);
            let dst = ptr.offset(dst_z * ps as isize + row0);
            std::ptr::copy_nonoverlapping(src, dst, len);
            // Rebuild the copied plane's own 2D halo frame locally from
            // its interior so nothing depends on the source plane's
            // refresh having happened.
            refresh2(ptr.offset(dst_z * ps as isize), rs, nx, ny, r, b, map);
        }
    }
}

// ---------------------------------------------------------------------------
// Hoisted buffer plumbing (shared by the five typed plan types)
// ---------------------------------------------------------------------------

/// Grid-like containers whose halo cells can be carried wholesale into a
/// staging partner — the one audited home for the "copy everything so
/// the halos come along" idiom the plan types used to repeat inline.
pub(crate) trait HaloCarrier: Clone {
    /// Overwrite every cell of `self` (halos included) with `src`'s.
    fn carry_from(&mut self, src: &Self);
}

impl<T: Elem> HaloCarrier for crate::grid::Grid1<T> {
    fn carry_from(&mut self, src: &Self) {
        self.copy_from(src);
    }
}

impl<T: Elem> HaloCarrier for crate::grid::Grid2<T> {
    fn carry_from(&mut self, src: &Self) {
        self.copy_from(src);
    }
}

impl<T: Elem> HaloCarrier for crate::grid::Grid3<T> {
    fn carry_from(&mut self, src: &Self) {
        self.copy_from(src);
    }
}

/// Fill the plan's ping-pong scratch slot from `g`, allocating on first
/// use and refreshing every cell (halos included) after that.
pub(crate) fn ensure_scratch<G: HaloCarrier>(slot: &mut Option<G>, g: &G) {
    match slot {
        Some(sc) => sc.carry_from(g),
        None => *slot = Some(g.clone()),
    }
}

/// Fill the plan's DLT staging pair from `g`: carry `g`'s halos into the
/// first staging grid, apply the forward layout transform (which writes
/// only the interior), and mirror the result into the second grid so
/// both ping-pong partners start with identical halos.
pub(crate) fn ensure_stage<G: HaloCarrier>(
    slot: &mut Option<(G, G)>,
    g: &G,
    forward: impl FnOnce(&G, &mut G),
) {
    if slot.is_none() {
        *slot = Some((g.clone(), g.clone()));
    }
    let (a, b) = slot.as_mut().expect("just ensured");
    a.carry_from(g); // halos ride along; the transform overwrites the interior
    forward(g, a);
    b.carry_from(a);
}

/// Length in elements of the k = 2 ring buffer for 2D fused stepping
/// (`2r + 1` rows plus the left halo pad).
#[inline]
pub(crate) fn ring2_len<T: Elem>(r: usize, rs: usize) -> usize {
    T::PAD + (2 * r + 1) * rs
}

/// Interior origin of the 2D ring buffer (one `T::PAD` in).
///
/// # Safety
/// `ring` must have at least [`ring2_len`] capacity.
#[inline]
pub(crate) unsafe fn ring2_origin<T: Elem>(ring: *mut T) -> *mut T {
    ring.add(T::PAD)
}

/// Length in elements of the k = 2 ring buffer for 3D fused stepping
/// (`2r + 1` planes; element-count, so no type parameter — unlike
/// [`ring2_len`], no pad is element-width dependent here).
#[inline]
pub(crate) fn ring3_len(r: usize, ps: usize) -> usize {
    (2 * r + 1) * ps
}

/// Interior origin of the 3D ring buffer (`r` halo rows plus the pad in).
///
/// # Safety
/// `ring` must have at least [`ring3_len`] capacity.
#[inline]
pub(crate) unsafe fn ring3_origin<T: Elem>(ring: *mut T, r: usize, rs: usize) -> *mut T {
    ring.add(r * rs + T::PAD)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Grid1, Grid2, Grid3, HALO_PAD};
    use crate::layout::{dlt_grid1, tl_grid1, tl_read};

    #[test]
    fn boundary_labels_round_trip() {
        for b in [
            Boundary::Dirichlet(0.0),
            Boundary::Dirichlet(-3.25),
            Boundary::Dirichlet(1e-300),
            Boundary::Periodic,
            Boundary::Reflect,
        ] {
            assert_eq!(b.to_string().parse::<Boundary>().unwrap(), b, "{b}");
        }
        assert_eq!(
            "dirichlet".parse::<Boundary>().unwrap(),
            Boundary::Dirichlet(0.0)
        );
        for bad in ["", "torus", "dirichlet(", "dirichlet(x)", "dirichlet()"] {
            assert!(
                matches!(bad.parse::<Boundary>(), Err(SpecError::UnknownBoundary(_))),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn refresh1_natural_folds_both_modes() {
        let n = 11;
        let r = 3;
        let mut g = Grid1::from_fn(n, -9.0, |i| (i + 1) as f64);
        unsafe { refresh1(g.ptr_mut(), n, r, Boundary::Periodic, &RowMap::Natural) };
        for k in 1..=r as isize {
            assert_eq!(g.get(-k), g.get(n as isize - k), "periodic left k={k}");
            assert_eq!(
                g.get(n as isize - 1 + k),
                g.get(k - 1),
                "periodic right k={k}"
            );
        }
        unsafe { refresh1(g.ptr_mut(), n, r, Boundary::Reflect, &RowMap::Natural) };
        for k in 1..=r as isize {
            assert_eq!(g.get(-k), g.get(k - 1), "reflect left k={k}");
            assert_eq!(
                g.get(n as isize - 1 + k),
                g.get(n as isize - k),
                "reflect right k={k}"
            );
        }
        // Dirichlet never writes.
        let before = g.clone();
        unsafe {
            refresh1(
                g.ptr_mut(),
                n,
                r,
                Boundary::Dirichlet(5.0),
                &RowMap::Natural,
            )
        };
        assert_eq!(g, before);
    }

    #[test]
    fn refresh1_reads_through_transpose_and_dlt_maps() {
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let l = isa.lanes();
            let n = 2 * l * l + 5; // two full sets + tail
            let mut g = Grid1::from_fn(n, 0.0, |i| (10 + i) as f64);
            tl_grid1(&mut g, isa);
            let map = RowMap::for_method::<f64>(Method::TransLayout, isa, n);
            unsafe { refresh1(g.ptr_mut(), n, 2, Boundary::Periodic, &map) };
            // Halo cells live at raw offsets and must hold the wrapped
            // *logical* interior values.
            assert_eq!(g.get(-1), (10 + n - 1) as f64, "{isa}");
            assert_eq!(g.get(-2), (10 + n - 2) as f64, "{isa}");
            assert_eq!(g.get(n as isize), 10.0, "{isa}");
            assert_eq!(g.get(n as isize + 1), 11.0, "{isa}");
            // Interior untouched: logical reads still match.
            let geo = SetGeo::new(n, l);
            for i in 0..n {
                assert_eq!(
                    unsafe { tl_read(g.ptr(), i as isize, &geo) },
                    (10 + i) as f64
                );
            }

            let src = Grid1::from_fn(n, 0.0, |i| (10 + i) as f64);
            let mut d = src.clone();
            dlt_grid1(&src, &mut d, isa, false);
            let map = RowMap::for_method::<f64>(Method::Dlt, isa, n);
            unsafe { refresh1(d.ptr_mut(), n, 1, Boundary::Reflect, &map) };
            assert_eq!(d.get(-1), 10.0, "{isa}");
            assert_eq!(d.get(n as isize), (10 + n - 1) as f64, "{isa}");
        }
    }

    #[test]
    fn refresh2_corners_compose_per_axis() {
        let (nx, ny, r) = (7, 5, 2);
        let mut g = Grid2::from_fn(nx, ny, r, 0.0, |y, x| (100 * y + x) as f64);
        unsafe {
            refresh2(
                g.ptr_mut(),
                g.row_stride(),
                nx,
                ny,
                r,
                Boundary::Periodic,
                &RowMap::Natural,
            )
        };
        // Edge halos wrap...
        assert_eq!(g.get(0, -1), (nx - 1) as f64);
        assert_eq!(g.get(-1, 0), (100 * (ny - 1)) as f64);
        // ...and corners are the doubly folded interior cell.
        assert_eq!(g.get(-1, -1), (100 * (ny - 1) + nx - 1) as f64);
        assert_eq!(g.get(-2, -2), (100 * (ny - 2) + nx - 2) as f64);
        assert_eq!(g.get(ny as isize, nx as isize), 0.0);

        let mut g = Grid2::from_fn(nx, ny, r, 0.0, |y, x| (100 * y + x) as f64);
        unsafe {
            refresh2(
                g.ptr_mut(),
                g.row_stride(),
                nx,
                ny,
                r,
                Boundary::Reflect,
                &RowMap::Natural,
            )
        };
        assert_eq!(g.get(-1, -1), 0.0);
        assert_eq!(g.get(-2, 3), 103.0);
        assert_eq!(
            g.get(ny as isize + 1, nx as isize),
            (100 * (ny - 2) + nx - 1) as f64
        );
    }

    #[test]
    fn refresh3_fills_planes_edges_and_corners() {
        let (nx, ny, nz, r) = (5, 4, 3, 1);
        let val = |z: usize, y: usize, x: usize| (10_000 * z + 100 * y + x) as f64;
        let mut g = Grid3::from_fn(nx, ny, nz, r, -1.0, val);
        unsafe {
            refresh3(
                g.ptr_mut(),
                g.row_stride(),
                g.plane_stride(),
                nx,
                ny,
                nz,
                r,
                Boundary::Periodic,
                &RowMap::Natural,
            )
        };
        // Face, edge, corner: all per-axis folds.
        assert_eq!(g.get(-1, 2, 3), val(nz - 1, 2, 3));
        assert_eq!(g.get(-1, -1, 3), val(nz - 1, ny - 1, 3));
        assert_eq!(g.get(-1, -1, -1), val(nz - 1, ny - 1, nx - 1));
        assert_eq!(g.get(nz as isize, 0, 0), val(0, 0, 0));
        assert_eq!(g.get(nz as isize, ny as isize, nx as isize), val(0, 0, 0));
    }

    #[test]
    fn ring_geometry_helpers() {
        assert_eq!(ring2_len::<f64>(1, 40), HALO_PAD + 3 * 40);
        assert_eq!(ring2_len::<f32>(1, 40), 16 + 3 * 40);
        assert_eq!(ring3_len(2, 1000), 5 * 1000);
        let mut buf = vec![0.0f64; ring3_len(1, 64)];
        let p = buf.as_mut_ptr();
        assert_eq!(
            unsafe { ring3_origin(p, 1, 16) } as usize - p as usize,
            (16 + HALO_PAD) * 8
        );
        assert_eq!(
            unsafe { ring2_origin(p) } as usize - p as usize,
            HALO_PAD * 8
        );
    }
}
