//! Runtime stencil descriptions: [`StencilSpec`].
//!
//! The typed stencil traits ([`Star1`] … [`Box3`]) bake the radius
//! into the type so
//! kernels monomorphize their inner loops — the right call for the hot
//! path, but it forces every caller that picks a stencil *at runtime*
//! (a CLI flag, a config file, a service request) to write a match over
//! concrete types. A `StencilSpec` is the same information as a plain
//! value: dimensionality, [`Star`](StencilShape::Star) or
//! [`Box`](StencilShape::Box) shape, radius (≤ [`MAX_R`]), and weights.
//!
//! Compile one against a shape with
//! [`Plan::stencil`](crate::exec::Plan::stencil) to get a type-erased
//! [`DynPlan`](crate::exec::DynPlan); internally the spec is re-attached
//! to a const-radius carrier type, so the kernels that run are the same
//! monomorphized kernels the typed path uses and the results are
//! bit-identical.
//!
//! ```
//! use stencil_core::spec::StencilSpec;
//!
//! // The six paper stencils have named constructors and parse from
//! // their table-1 names:
//! let heat: StencilSpec = "2d5p".parse().unwrap();
//! assert_eq!(heat, StencilSpec::heat_2d5p());
//! assert_eq!((heat.ndim(), heat.radius(), heat.points()), (2, 1, 5));
//!
//! // Arbitrary weights work too; the radius is inferred and validated.
//! let custom = StencilSpec::star1(&[0.1, 0.2, 0.4, 0.2, 0.1]).unwrap();
//! assert_eq!(custom.radius(), 2);
//! assert_eq!(custom.to_string(), "1d5p");
//! ```

use stencil_simd::Dtype;

use crate::exec::Boundary;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3, MAX_R};

/// Weight slots per axis in a packed spec carrier (`2·MAX_R + 1`).
const WSLOTS: usize = 2 * MAX_R + 1;

/// Whether a stencil reads only along the axes (star) or the full
/// `(2r+1)^ndim` neighbourhood (box).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StencilShape {
    /// Axis-aligned neighbourhood: `2r` points per dimension plus the
    /// center.
    Star,
    /// Dense neighbourhood: every point with `|offset| ≤ r` in each
    /// dimension.
    Box,
}

impl StencilShape {
    /// Short lower-case label ("star" / "box").
    pub fn name(self) -> &'static str {
        match self {
            StencilShape::Star => "star",
            StencilShape::Box => "box",
        }
    }
}

/// Why a [`StencilSpec`] could not be built (or parsed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The radius implied by the weights exceeds [`MAX_R`].
    RadiusTooLarge {
        /// Implied radius.
        r: usize,
        /// The supported maximum ([`MAX_R`]).
        max: usize,
    },
    /// A weight slice has a length no radius can explain.
    WeightLen {
        /// Which weight slice ("x", "y", "z", or "box").
        axis: &'static str,
        /// The length that was handed in.
        got: usize,
        /// What a valid length looks like.
        expected: &'static str,
    },
    /// Star axes disagree on the radius (e.g. `wx` says r = 1, `wy`
    /// says r = 2).
    AxisRadiusMismatch {
        /// Radius implied by the x-axis weights.
        x: usize,
        /// Radius implied by the offending other axis.
        other: usize,
    },
    /// A name passed to `FromStr` is not one of the six paper stencils.
    UnknownName(String),
    /// A boundary label (standalone or after `@` in a stencil name) is
    /// not one of `dirichlet[(v)]` / `periodic` / `reflect`.
    UnknownBoundary(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::RadiusTooLarge { r, max } => {
                write!(f, "stencil radius {r} exceeds the supported maximum {max}")
            }
            SpecError::WeightLen {
                axis,
                got,
                expected,
            } => write!(
                f,
                "{axis} weight slice has length {got}, expected {expected}"
            ),
            SpecError::AxisRadiusMismatch { x, other } => write!(
                f,
                "star axes disagree on the radius: x implies {x}, another axis implies {other}"
            ),
            SpecError::UnknownName(name) => write!(
                f,
                "unknown stencil '{name}' (expected one of {}, optionally \
                 with an '@<boundary>' suffix)",
                StencilSpec::NAMES.join(", ")
            ),
            SpecError::UnknownBoundary(label) => write!(
                f,
                "unknown boundary '{label}' (expected dirichlet, \
                 dirichlet(<value>), periodic, or reflect)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A stencil described as data: dimensionality, shape, radius, weights.
///
/// Build one with the per-family constructors ([`StencilSpec::star1`] …
/// [`StencilSpec::box3`]), the named paper-stencil constructors
/// ([`StencilSpec::heat_1d3p`] …), or by parsing a paper name
/// (`"3d27p".parse()`). Hand it to
/// [`Plan::stencil`](crate::exec::Plan::stencil) to compile a
/// [`DynPlan`](crate::exec::DynPlan).
///
/// Weight conventions match the typed traits exactly: star specs carry
/// one `2r+1` slice per axis (index `r+o` for offset `o`; the y/z center
/// entries are ignored), box specs carry one row-major
/// `(2r+1)^ndim` slice (x fastest).
///
/// # Equality and hashing
///
/// `StencilSpec` is `Eq + Hash` so it can key a plan cache (see the
/// `stencil-server` crate). Weights — and the Dirichlet boundary value —
/// compare **bitwise** (`f64::to_bits`), not by float semantics: two
/// specs are equal exactly when they would compile byte-identical plans.
/// The differences from IEEE `==` are deliberate:
///
/// * a NaN weight equals itself, so a pathological spec still makes a
///   retrievable cache key instead of missing forever and poisoning the
///   cache with one dead entry per lookup;
/// * `-0.0` and `+0.0` weights are *different* keys (they are different
///   bit patterns splatted into the kernels), so they cannot silently
///   alias to one cached plan.
#[derive(Clone, Debug)]
pub struct StencilSpec {
    ndim: usize,
    shape: StencilShape,
    r: usize,
    /// Star: per-axis slices concatenated (x, then y, then z), each
    /// `2r+1` long. Box: the full row-major neighbourhood.
    w: Vec<f64>,
    /// The boundary condition the workload asks for (default
    /// `Dirichlet(0.0)`); see [`Boundary`] and [`StencilSpec::with_boundary`].
    boundary: Boundary,
    /// The element type the grid carries (default [`Dtype::F64`]); see
    /// [`StencilSpec::with_dtype`]. Weights always stay `f64` in the
    /// spec — they are rounded to the element type exactly once, when a
    /// kernel splats them into vector registers.
    dtype: Dtype,
}

/// Infer the radius from a per-axis weight slice of length `2r+1`.
fn star_radius(axis: &'static str, w: &[f64]) -> Result<usize, SpecError> {
    if w.len() < 3 || w.len().is_multiple_of(2) {
        return Err(SpecError::WeightLen {
            axis,
            got: w.len(),
            expected: "an odd length ≥ 3 (2r+1)",
        });
    }
    let r = (w.len() - 1) / 2;
    if r > MAX_R {
        return Err(SpecError::RadiusTooLarge { r, max: MAX_R });
    }
    Ok(r)
}

/// Infer the radius from a box weight slice of length `(2r+1)^ndim`.
fn box_radius(w: &[f64], ndim: u32) -> Result<usize, SpecError> {
    let expected: &'static str = if ndim == 2 {
        "(2r+1)² for some r ≥ 1"
    } else {
        "(2r+1)³ for some r ≥ 1"
    };
    for r in 1..=MAX_R {
        let side = 2 * r + 1;
        match side.pow(ndim).cmp(&w.len()) {
            std::cmp::Ordering::Equal => return Ok(r),
            std::cmp::Ordering::Greater => {
                return Err(SpecError::WeightLen {
                    axis: "box",
                    got: w.len(),
                    expected,
                })
            }
            std::cmp::Ordering::Less => {}
        }
    }
    // Longer than the largest supported neighbourhood: distinguish a
    // plausible bigger radius from a length that fits no radius at all.
    for r in MAX_R + 1.. {
        let side = 2 * r + 1;
        match side.pow(ndim).cmp(&w.len()) {
            std::cmp::Ordering::Equal => return Err(SpecError::RadiusTooLarge { r, max: MAX_R }),
            std::cmp::Ordering::Greater => {
                return Err(SpecError::WeightLen {
                    axis: "box",
                    got: w.len(),
                    expected,
                })
            }
            std::cmp::Ordering::Less => {}
        }
    }
    unreachable!("the loop above always returns")
}

impl StencilSpec {
    /// The six paper stencils (Table 1), parseable via `FromStr`.
    pub const NAMES: [&'static str; 6] = ["1d3p", "1d5p", "2d5p", "2d9p", "3d7p", "3d27p"];

    /// 1D star stencil from weights of length `2r+1`.
    pub fn star1(w: &[f64]) -> Result<StencilSpec, SpecError> {
        let r = star_radius("x", w)?;
        Ok(StencilSpec {
            ndim: 1,
            shape: StencilShape::Star,
            r,
            w: w.to_vec(),
            boundary: Boundary::default(),
            dtype: Dtype::default(),
        })
    }

    /// 2D star stencil from per-axis weights (each `2r+1` long; the
    /// center entry of `wy` is ignored).
    pub fn star2(wx: &[f64], wy: &[f64]) -> Result<StencilSpec, SpecError> {
        let r = star_radius("x", wx)?;
        let ry = star_radius("y", wy)?;
        if ry != r {
            return Err(SpecError::AxisRadiusMismatch { x: r, other: ry });
        }
        let mut w = wx.to_vec();
        w.extend_from_slice(wy);
        Ok(StencilSpec {
            ndim: 2,
            shape: StencilShape::Star,
            r,
            w,
            boundary: Boundary::default(),
            dtype: Dtype::default(),
        })
    }

    /// 3D star stencil from per-axis weights (each `2r+1` long; the
    /// center entries of `wy`/`wz` are ignored).
    pub fn star3(wx: &[f64], wy: &[f64], wz: &[f64]) -> Result<StencilSpec, SpecError> {
        let r = star_radius("x", wx)?;
        for other in [star_radius("y", wy)?, star_radius("z", wz)?] {
            if other != r {
                return Err(SpecError::AxisRadiusMismatch { x: r, other });
            }
        }
        let mut w = wx.to_vec();
        w.extend_from_slice(wy);
        w.extend_from_slice(wz);
        Ok(StencilSpec {
            ndim: 3,
            shape: StencilShape::Star,
            r,
            w,
            boundary: Boundary::default(),
            dtype: Dtype::default(),
        })
    }

    /// 2D box stencil from row-major weights of length `(2r+1)²`.
    pub fn box2(w: &[f64]) -> Result<StencilSpec, SpecError> {
        let r = box_radius(w, 2)?;
        Ok(StencilSpec {
            ndim: 2,
            shape: StencilShape::Box,
            r,
            w: w.to_vec(),
            boundary: Boundary::default(),
            dtype: Dtype::default(),
        })
    }

    /// 3D box stencil from row-major weights of length `(2r+1)³`
    /// (`dz` outer, `dy` middle, `dx` inner).
    pub fn box3(w: &[f64]) -> Result<StencilSpec, SpecError> {
        let r = box_radius(w, 3)?;
        Ok(StencilSpec {
            ndim: 3,
            shape: StencilShape::Box,
            r,
            w: w.to_vec(),
            boundary: Boundary::default(),
            dtype: Dtype::default(),
        })
    }

    /// The paper's 1D 3-point heat stencil
    /// ([`S1d3p::heat`](crate::stencil::S1d3p::heat)).
    pub fn heat_1d3p() -> StencilSpec {
        Self::star1(crate::stencil::S1d3p::heat().w()).expect("paper stencil is valid")
    }

    /// The paper's 1D 5-point smoothing stencil
    /// ([`S1d5p::heat`](crate::stencil::S1d5p::heat)).
    pub fn heat_1d5p() -> StencilSpec {
        Self::star1(crate::stencil::S1d5p::heat().w()).expect("paper stencil is valid")
    }

    /// The paper's 2D 5-point heat stencil
    /// ([`S2d5p::heat`](crate::stencil::S2d5p::heat)).
    pub fn heat_2d5p() -> StencilSpec {
        let s = crate::stencil::S2d5p::heat();
        Self::star2(s.wx(), s.wy()).expect("paper stencil is valid")
    }

    /// The paper's 2D 9-point box blur
    /// ([`S2d9p::blur`](crate::stencil::S2d9p::blur)).
    pub fn blur_2d9p() -> StencilSpec {
        Self::box2(crate::stencil::S2d9p::blur().w()).expect("paper stencil is valid")
    }

    /// The paper's 3D 7-point heat stencil
    /// ([`S3d7p::heat`](crate::stencil::S3d7p::heat)).
    pub fn heat_3d7p() -> StencilSpec {
        let s = crate::stencil::S3d7p::heat();
        Self::star3(s.wx(), s.wy(), s.wz()).expect("paper stencil is valid")
    }

    /// The paper's 3D 27-point box blur
    /// ([`S3d27p::blur`](crate::stencil::S3d27p::blur)).
    pub fn blur_3d27p() -> StencilSpec {
        Self::box3(crate::stencil::S3d27p::blur().w()).expect("paper stencil is valid")
    }

    /// The same stencil under a different [`Boundary`] condition.
    ///
    /// The boundary rides along into
    /// [`Plan::stencil`](crate::exec::Plan::stencil) (an explicit
    /// [`Plan::boundary`](crate::exec::Plan::boundary) knob overrides
    /// it) and is part of the printed name:
    ///
    /// ```
    /// use stencil_core::exec::Boundary;
    /// use stencil_core::spec::StencilSpec;
    ///
    /// let spec = StencilSpec::heat_2d5p().with_boundary(Boundary::Periodic);
    /// assert_eq!(spec.to_string(), "2d5p@periodic");
    /// assert_eq!("2d5p@periodic".parse::<StencilSpec>().unwrap(), spec);
    /// ```
    pub fn with_boundary(mut self, boundary: Boundary) -> StencilSpec {
        self.boundary = boundary;
        self
    }

    /// The boundary condition this spec asks for (default
    /// `Dirichlet(0.0)`).
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// The same stencil over a different element type.
    ///
    /// The dtype rides along into
    /// [`Plan::stencil`](crate::exec::Plan::stencil) — an f32 spec
    /// compiles to a plan whose grids, layouts, and kernels all carry
    /// `f32` at twice the SIMD lane width — and is part of the printed
    /// name, composing with the boundary suffix:
    ///
    /// ```
    /// use stencil_core::spec::StencilSpec;
    /// use stencil_simd::Dtype;
    ///
    /// let spec = StencilSpec::heat_2d5p().with_dtype(Dtype::F32);
    /// assert_eq!(spec.to_string(), "2d5p@f32");
    /// assert_eq!("2d5p@f32".parse::<StencilSpec>().unwrap(), spec);
    /// // Suffixes compose in either order.
    /// let both: StencilSpec = "2d5p@periodic@f32".parse().unwrap();
    /// assert_eq!("2d5p@f32@periodic".parse::<StencilSpec>().unwrap(), both);
    /// ```
    pub fn with_dtype(mut self, dtype: Dtype) -> StencilSpec {
        self.dtype = dtype;
        self
    }

    /// The element type this spec asks for (default [`Dtype::F64`]).
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Number of spatial dimensions (1–3).
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Star or box neighbourhood.
    pub fn shape(&self) -> StencilShape {
        self.shape
    }

    /// Stencil radius (1 ≤ r ≤ [`MAX_R`]).
    pub fn radius(&self) -> usize {
        self.r
    }

    /// Points read per updated cell (`2r·ndim + 1` for star,
    /// `(2r+1)^ndim` for box) — the "P" in the paper's names.
    pub fn points(&self) -> usize {
        match self.shape {
            StencilShape::Star => 2 * self.r * self.ndim + 1,
            StencilShape::Box => (2 * self.r + 1).pow(self.ndim as u32),
        }
    }

    /// Floating-point operations per updated point (fma = 2 flops),
    /// matching the typed traits' accounting.
    pub fn flops_per_point(&self) -> usize {
        2 * self.points() - 1
    }

    /// Per-axis weight slice (`axis` 0 = x, 1 = y, 2 = z) for star
    /// specs; `None` for box specs or axes past `ndim`.
    pub fn axis_weights(&self, axis: usize) -> Option<&[f64]> {
        if self.shape != StencilShape::Star || axis >= self.ndim {
            return None;
        }
        let n = 2 * self.r + 1;
        Some(&self.w[axis * n..(axis + 1) * n])
    }

    /// Row-major neighbourhood weights for box specs; `None` for star
    /// specs.
    pub fn box_weights(&self) -> Option<&[f64]> {
        (self.shape == StencilShape::Box).then_some(&self.w[..])
    }

    /// Pack axis `axis`'s weights into a fixed `2·MAX_R+1` carrier
    /// array (entries past `2r+1` stay zero).
    pub(crate) fn packed_axis(&self, axis: usize) -> [f64; WSLOTS] {
        let mut out = [0.0; WSLOTS];
        let w = self.axis_weights(axis).expect("star spec with this axis");
        out[..w.len()].copy_from_slice(w);
        out
    }
}

impl std::fmt::Display for StencilSpec {
    /// The paper-style name `<ndim>d<points>p` (e.g. "2d9p"), with an
    /// `@<boundary>` suffix when the boundary is not the default
    /// `Dirichlet(0.0)` (e.g. "2d9p@reflect") and an `@f32` suffix when
    /// the element type is not `f64` (e.g. "2d9p@reflect@f32"). For the
    /// six paper stencils this round-trips through `FromStr`; other
    /// geometries print the same scheme ("1d9p", "3d125p", …).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}d{}p", self.ndim, self.points())?;
        if self.boundary != Boundary::default() {
            write!(f, "@{}", self.boundary)?;
        }
        if self.dtype != Dtype::default() {
            write!(f, "@{}", self.dtype)?;
        }
        Ok(())
    }
}

/// The [`Boundary`] reduced to a hash/equality key: discriminant plus the
/// Dirichlet value's bit pattern (`0` for the refreshed modes). Bitwise so
/// `Dirichlet(-0.0)` and `Dirichlet(0.0)` stay distinct cache keys and
/// `Dirichlet(NaN)` equals itself (see the [`StencilSpec`] docs).
fn boundary_bits(b: Boundary) -> (u8, u64) {
    match b {
        Boundary::Dirichlet(v) => (0, v.to_bits()),
        Boundary::Periodic => (1, 0),
        Boundary::Reflect => (2, 0),
    }
}

impl PartialEq for StencilSpec {
    fn eq(&self, other: &StencilSpec) -> bool {
        self.ndim == other.ndim
            && self.shape == other.shape
            && self.r == other.r
            && self.dtype == other.dtype
            && boundary_bits(self.boundary) == boundary_bits(other.boundary)
            && self.w.len() == other.w.len()
            && self
                .w
                .iter()
                .zip(&other.w)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

// Lawful because the bitwise comparison above is reflexive even for NaN
// weights (same bits ⇒ equal), unlike IEEE `==`.
impl Eq for StencilSpec {}

impl std::hash::Hash for StencilSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ndim.hash(state);
        self.shape.hash(state);
        self.r.hash(state);
        self.dtype.hash(state);
        boundary_bits(self.boundary).hash(state);
        self.w.len().hash(state);
        for w in &self.w {
            w.to_bits().hash(state);
        }
    }
}

impl std::str::FromStr for StencilSpec {
    type Err = SpecError;

    /// Parse one of the six paper-stencil names (see
    /// [`StencilSpec::NAMES`]), yielding that stencil with the paper's
    /// weights, optionally suffixed with `@<boundary>` (e.g.
    /// `"3d7p@periodic"` — see [`Boundary`]) and/or `@<dtype>` (e.g.
    /// `"3d7p@f32"`, `"3d7p@periodic@f32"`), in either order.
    fn from_str(s: &str) -> Result<StencilSpec, SpecError> {
        let mut parts = s.split('@');
        let name = parts.next().unwrap_or("");
        let mut boundary = Boundary::default();
        let mut dtype = Dtype::default();
        for label in parts {
            if let Ok(d) = label.parse::<Dtype>() {
                dtype = d;
            } else {
                boundary = label.parse::<Boundary>()?;
            }
        }
        let spec = match name {
            "1d3p" => Self::heat_1d3p(),
            "1d5p" => Self::heat_1d5p(),
            "2d5p" => Self::heat_2d5p(),
            "2d9p" => Self::blur_2d9p(),
            "3d7p" => Self::heat_3d7p(),
            "3d27p" => Self::blur_3d27p(),
            other => return Err(SpecError::UnknownName(other.to_string())),
        };
        Ok(spec.with_boundary(boundary).with_dtype(dtype))
    }
}

// ---------------------------------------------------------------------------
// Const-radius carriers: a validated spec re-attached to the typed traits
// so the erased path runs the exact same monomorphized kernels.
// ---------------------------------------------------------------------------

/// Runtime star-1D weights behind a const radius.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DynStar1<const R: usize> {
    w: [f64; WSLOTS],
}

impl<const R: usize> DynStar1<R> {
    pub(crate) fn new(spec: &StencilSpec) -> Self {
        debug_assert_eq!(spec.radius(), R);
        DynStar1 {
            w: spec.packed_axis(0),
        }
    }
}

impl<const R: usize> Star1 for DynStar1<R> {
    const R: usize = R;
    const NAME: &'static str = "dyn-star1";
    #[inline(always)]
    fn w(&self) -> &[f64] {
        &self.w[..2 * R + 1]
    }
}

/// Runtime star-2D weights behind a const radius.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DynStar2<const R: usize> {
    wx: [f64; WSLOTS],
    wy: [f64; WSLOTS],
}

impl<const R: usize> DynStar2<R> {
    pub(crate) fn new(spec: &StencilSpec) -> Self {
        debug_assert_eq!(spec.radius(), R);
        DynStar2 {
            wx: spec.packed_axis(0),
            wy: spec.packed_axis(1),
        }
    }
}

impl<const R: usize> Star2 for DynStar2<R> {
    const R: usize = R;
    const NAME: &'static str = "dyn-star2";
    #[inline(always)]
    fn wx(&self) -> &[f64] {
        &self.wx[..2 * R + 1]
    }
    #[inline(always)]
    fn wy(&self) -> &[f64] {
        &self.wy[..2 * R + 1]
    }
}

/// Runtime star-3D weights behind a const radius.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DynStar3<const R: usize> {
    wx: [f64; WSLOTS],
    wy: [f64; WSLOTS],
    wz: [f64; WSLOTS],
}

impl<const R: usize> DynStar3<R> {
    pub(crate) fn new(spec: &StencilSpec) -> Self {
        debug_assert_eq!(spec.radius(), R);
        DynStar3 {
            wx: spec.packed_axis(0),
            wy: spec.packed_axis(1),
            wz: spec.packed_axis(2),
        }
    }
}

impl<const R: usize> Star3 for DynStar3<R> {
    const R: usize = R;
    const NAME: &'static str = "dyn-star3";
    #[inline(always)]
    fn wx(&self) -> &[f64] {
        &self.wx[..2 * R + 1]
    }
    #[inline(always)]
    fn wy(&self) -> &[f64] {
        &self.wy[..2 * R + 1]
    }
    #[inline(always)]
    fn wz(&self) -> &[f64] {
        &self.wz[..2 * R + 1]
    }
}

/// Runtime box-2D weights behind a const radius.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DynBox2<const R: usize> {
    w: [f64; WSLOTS * WSLOTS],
}

impl<const R: usize> DynBox2<R> {
    pub(crate) fn new(spec: &StencilSpec) -> Self {
        debug_assert_eq!(spec.radius(), R);
        let src = spec.box_weights().expect("box spec");
        let mut w = [0.0; WSLOTS * WSLOTS];
        w[..src.len()].copy_from_slice(src);
        DynBox2 { w }
    }
}

impl<const R: usize> Box2 for DynBox2<R> {
    const R: usize = R;
    const NAME: &'static str = "dyn-box2";
    #[inline(always)]
    fn w(&self) -> &[f64] {
        &self.w[..(2 * R + 1) * (2 * R + 1)]
    }
}

/// Runtime box-3D weights behind a const radius.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DynBox3<const R: usize> {
    w: [f64; WSLOTS * WSLOTS * WSLOTS],
}

impl<const R: usize> DynBox3<R> {
    pub(crate) fn new(spec: &StencilSpec) -> Self {
        debug_assert_eq!(spec.radius(), R);
        let src = spec.box_weights().expect("box spec");
        let mut w = [0.0; WSLOTS * WSLOTS * WSLOTS];
        w[..src.len()].copy_from_slice(src);
        DynBox3 { w }
    }
}

impl<const R: usize> Box3 for DynBox3<R> {
    const R: usize = R;
    const NAME: &'static str = "dyn-box3";
    #[inline(always)]
    fn w(&self) -> &[f64] {
        &self.w[..(2 * R + 1) * (2 * R + 1) * (2 * R + 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names_round_trip() {
        for name in StencilSpec::NAMES {
            let spec: StencilSpec = name.parse().unwrap();
            assert_eq!(spec.to_string(), name, "{name}");
        }
        assert!(matches!(
            "4d3p".parse::<StencilSpec>(),
            Err(SpecError::UnknownName(_))
        ));
    }

    #[test]
    fn boundary_suffix_round_trips() {
        let spec: StencilSpec = "3d7p@periodic".parse().unwrap();
        assert_eq!(spec.boundary(), Boundary::Periodic);
        assert_eq!(spec.to_string(), "3d7p@periodic");
        let spec: StencilSpec = "2d9p@dirichlet(2.5)".parse().unwrap();
        assert_eq!(spec.boundary(), Boundary::Dirichlet(2.5));
        assert_eq!(spec.to_string(), "2d9p@dirichlet(2.5)");
        // An explicit default boundary parses but prints without the
        // suffix — the bare paper names keep their exact round-trip.
        let spec: StencilSpec = "1d3p@dirichlet".parse().unwrap();
        assert_eq!(spec, StencilSpec::heat_1d3p());
        assert_eq!(spec.to_string(), "1d3p");
        assert!(matches!(
            "2d5p@torus".parse::<StencilSpec>(),
            Err(SpecError::UnknownBoundary(_))
        ));
        assert!(matches!(
            "4d4p@periodic".parse::<StencilSpec>(),
            Err(SpecError::UnknownName(_))
        ));
        let e = "2d5p@torus".parse::<StencilSpec>().unwrap_err();
        assert!(e.to_string().contains("torus"), "{e}");
    }

    #[test]
    fn dtype_suffix_round_trips() {
        let spec: StencilSpec = "2d5p@f32".parse().unwrap();
        assert_eq!(spec.dtype(), Dtype::F32);
        assert_eq!(spec.boundary(), Boundary::default());
        assert_eq!(spec.to_string(), "2d5p@f32");
        // Composes with the boundary suffix, in either order; printing
        // normalizes to boundary-then-dtype.
        for name in ["3d7p@periodic@f32", "3d7p@f32@periodic"] {
            let spec: StencilSpec = name.parse().unwrap();
            assert_eq!(spec.dtype(), Dtype::F32);
            assert_eq!(spec.boundary(), Boundary::Periodic);
            assert_eq!(spec.to_string(), "3d7p@periodic@f32", "{name}");
        }
        // An explicit default dtype parses but prints without the suffix.
        let spec: StencilSpec = "1d3p@f64".parse().unwrap();
        assert_eq!(spec, StencilSpec::heat_1d3p());
        assert_eq!(spec.to_string(), "1d3p");
        assert!(matches!(
            "2d5p@f16".parse::<StencilSpec>(),
            Err(SpecError::UnknownBoundary(_))
        ));
    }

    #[test]
    fn paper_geometry() {
        let cases = [
            ("1d3p", 1, 1, StencilShape::Star, 3),
            ("1d5p", 1, 2, StencilShape::Star, 5),
            ("2d5p", 2, 1, StencilShape::Star, 5),
            ("2d9p", 2, 1, StencilShape::Box, 9),
            ("3d7p", 3, 1, StencilShape::Star, 7),
            ("3d27p", 3, 1, StencilShape::Box, 27),
        ];
        for (name, ndim, r, shape, points) in cases {
            let s: StencilSpec = name.parse().unwrap();
            assert_eq!(
                (s.ndim(), s.radius(), s.shape(), s.points()),
                (ndim, r, shape, points),
                "{name}"
            );
        }
    }

    #[test]
    fn flops_match_typed_traits() {
        use crate::stencil::*;
        assert_eq!(
            StencilSpec::heat_1d3p().flops_per_point(),
            S1d3p::flops_per_point()
        );
        assert_eq!(
            StencilSpec::heat_1d5p().flops_per_point(),
            S1d5p::flops_per_point()
        );
        assert_eq!(
            StencilSpec::heat_2d5p().flops_per_point(),
            S2d5p::flops_per_point()
        );
        assert_eq!(
            StencilSpec::blur_2d9p().flops_per_point(),
            S2d9p::flops_per_point()
        );
        assert_eq!(
            StencilSpec::heat_3d7p().flops_per_point(),
            S3d7p::flops_per_point()
        );
        assert_eq!(
            StencilSpec::blur_3d27p().flops_per_point(),
            S3d27p::flops_per_point()
        );
    }

    #[test]
    fn validation_rejects_bad_weights() {
        assert!(matches!(
            StencilSpec::star1(&[0.5, 0.5]),
            Err(SpecError::WeightLen { axis: "x", .. })
        ));
        assert!(matches!(
            StencilSpec::star1(&[0.1; 11]),
            Err(SpecError::RadiusTooLarge { r: 5, max: MAX_R })
        ));
        assert!(matches!(
            StencilSpec::star2(&[0.1; 3], &[0.1; 5]),
            Err(SpecError::AxisRadiusMismatch { x: 1, other: 2 })
        ));
        assert!(matches!(
            StencilSpec::box2(&[0.1; 10]),
            Err(SpecError::WeightLen { axis: "box", .. })
        ));
        assert!(matches!(
            StencilSpec::box2(&[0.1; 121]), // (2·5+1)²
            Err(SpecError::RadiusTooLarge { r: 5, max: MAX_R })
        ));
        assert!(matches!(
            StencilSpec::box3(&[0.1; 28]),
            Err(SpecError::WeightLen { axis: "box", .. })
        ));
        // Errors display something useful.
        let e = StencilSpec::star1(&[0.1; 11]).unwrap_err();
        assert!(e.to_string().contains("radius 5"));
    }

    #[test]
    fn hash_eq_round_trips_through_a_map() {
        use std::collections::HashMap;
        // Every paper name (plus boundary/dtype variants) must land on
        // and retrieve from the same map slot — the plan-cache contract.
        let mut map: HashMap<StencilSpec, usize> = HashMap::new();
        let variants: Vec<StencilSpec> = StencilSpec::NAMES
            .iter()
            .flat_map(|name| {
                ["", "@periodic", "@reflect", "@f32", "@periodic@f32"]
                    .into_iter()
                    .map(move |suffix| format!("{name}{suffix}").parse().unwrap())
            })
            .collect();
        for (i, spec) in variants.iter().enumerate() {
            assert_eq!(map.insert(spec.clone(), i), None, "{spec} collided");
        }
        assert_eq!(map.len(), variants.len());
        for (i, spec) in variants.iter().enumerate() {
            // Re-parse so the lookup key is a fresh value, not the clone.
            let reparsed: StencilSpec = spec.to_string().parse().unwrap();
            assert_eq!(map.get(&reparsed), Some(&i), "{spec}");
        }
    }

    #[test]
    fn weight_equality_is_bitwise() {
        // NaN weights: IEEE == would make the spec unequal to itself and
        // unfindable in a cache; bitwise equality keeps it retrievable.
        let nan = StencilSpec::star1(&[0.25, f64::NAN, 0.25]).unwrap();
        assert_eq!(nan, nan.clone());
        let mut set = std::collections::HashSet::new();
        set.insert(nan.clone());
        assert!(set.contains(&nan));

        // -0.0 vs 0.0: same under IEEE ==, different bit patterns — and
        // therefore different cache keys (kernels splat the raw bits).
        let pos = StencilSpec::star1(&[0.25, 0.5, 0.0]).unwrap();
        let neg = StencilSpec::star1(&[0.25, 0.5, -0.0]).unwrap();
        assert_ne!(pos, neg);
        set.insert(pos.clone());
        assert!(!set.contains(&neg));

        // Same rule for the Dirichlet boundary value.
        let d0 = StencilSpec::heat_1d3p().with_boundary(Boundary::Dirichlet(0.0));
        let dneg0 = StencilSpec::heat_1d3p().with_boundary(Boundary::Dirichlet(-0.0));
        assert_ne!(d0, dneg0);
        assert_eq!(d0, StencilSpec::heat_1d3p());

        // Hash must agree with Eq on equal values.
        fn hash_of(s: &StencilSpec) -> u64 {
            use std::hash::{BuildHasher, RandomState};
            use std::sync::OnceLock;
            static STATE: OnceLock<RandomState> = OnceLock::new();
            STATE.get_or_init(RandomState::new).hash_one(s)
        }
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
        assert_eq!(hash_of(&d0), hash_of(&StencilSpec::heat_1d3p()));
    }

    #[test]
    fn weights_survive_the_round_trip() {
        let spec = StencilSpec::star2(&[1.0, 2.0, 3.0], &[4.0, 0.0, 5.0]).unwrap();
        assert_eq!(spec.axis_weights(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(spec.axis_weights(1).unwrap(), &[4.0, 0.0, 5.0]);
        assert_eq!(spec.axis_weights(2), None);
        assert_eq!(spec.box_weights(), None);

        let w: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let spec = StencilSpec::box2(&w).unwrap();
        assert_eq!(spec.box_weights().unwrap(), &w[..]);
        assert_eq!(spec.axis_weights(0), None);
    }
}
