//! Aligned grid containers with constant (Dirichlet) halos.
//!
//! Geometry conventions shared by every kernel in this workspace:
//!
//! * the **interior** of each row starts `T::PAD` elements into the
//!   row — 8 doubles or 16 floats, i.e. 64 bytes either way, so it sits
//!   on a 64-byte boundary — and row strides are multiples of `T::PAD`,
//!   so every vector-set load/store is aligned for both AVX2 and
//!   AVX-512 at both element widths;
//! * halo cells of width `r` sit immediately left/right of the interior
//!   (and as whole rows/planes above/below in 2D/3D); they are *never
//!   updated* — they carry the boundary condition, which is what makes
//!   temporal tiling and the k=2 in-register pipeline well defined;
//! * kernels receive raw pointers to the interior origin and may index
//!   negatively into the halo.
//!
//! The containers are generic over the element ([`Elem`]) with `f64` as
//! the default parameter, so all pre-existing f64 call sites compile
//! unchanged; `Grid2<f32>` etc. carry single precision at twice the
//! SIMD lane width.

use stencil_simd::{AlignedBuf, Dtype, Elem};

use crate::exec::{Boundary, Shape};
use crate::spec::StencilSpec;

/// Doubles of padding on each side of a row interior **in the f64
/// grids** (64 bytes). Element-generic code must use [`Elem::PAD`],
/// which is this constant's per-element generalization (8 f64 / 16 f32
/// — always one full 64-byte line, and ≥ [`crate::stencil::MAX_R`]).
pub const HALO_PAD: usize = 8;

/// Round `x` up to a whole number of pads (= 64-byte lines) of `T`.
#[inline]
fn round_up_pad<T: Elem>(x: usize) -> usize {
    x.div_ceil(T::PAD) * T::PAD
}

/// 1D grid: `n` interior points plus constant halos.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid1<T: Elem = f64> {
    buf: AlignedBuf<T>,
    n: usize,
}

impl<T: Elem> Grid1<T> {
    /// Create a grid with every cell (halo included) set to `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        assert!(n > 0, "empty interior");
        let mut buf = AlignedBuf::zeroed(T::PAD + round_up_pad::<T>(n + T::PAD));
        buf.fill(fill);
        Grid1 { buf, n }
    }

    /// Create a grid whose interior is `f(i)` and whose halo is `halo`.
    pub fn from_fn(n: usize, halo: T, mut f: impl FnMut(usize) -> T) -> Self {
        let mut g = Self::filled(n, halo);
        for i in 0..n {
            g.buf[T::PAD + i] = f(i);
        }
        g
    }

    /// Interior length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pointer to interior cell 0; halo readable at negative offsets down
    /// to `-T::PAD`.
    #[inline]
    pub fn ptr(&self) -> *const T {
        // SAFETY: T::PAD < buf.len() by construction.
        unsafe { self.buf.as_ptr().add(T::PAD) }
    }

    /// Mutable pointer to interior cell 0.
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut T {
        unsafe { self.buf.as_mut_ptr().add(T::PAD) }
    }

    /// Read cell `i`; `i` may range over `[-T::PAD, n + T::PAD)`.
    #[inline]
    pub fn get(&self, i: isize) -> T {
        let idx = T::PAD as isize + i;
        assert!(
            idx >= 0 && (idx as usize) < self.buf.len(),
            "index {i} out of range"
        );
        self.buf[idx as usize]
    }

    /// Write cell `i` (same range as [`Grid1::get`]).
    #[inline]
    pub fn set(&mut self, i: isize, v: T) {
        let idx = T::PAD as isize + i;
        assert!(
            idx >= 0 && (idx as usize) < self.buf.len(),
            "index {i} out of range"
        );
        self.buf[idx as usize] = v;
    }

    /// Interior as a slice.
    #[inline]
    pub fn interior(&self) -> &[T] {
        &self.buf[T::PAD..T::PAD + self.n]
    }

    /// Interior as a mutable slice.
    #[inline]
    pub fn interior_mut(&mut self) -> &mut [T] {
        &mut self.buf[T::PAD..T::PAD + self.n]
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid1<T>) {
        assert_eq!(self.n, src.n, "Grid1::copy_from geometry mismatch");
        self.buf.copy_from(&src.buf);
    }
}

/// 2D grid: `ny × nx` interior, row-major, with halo rows and columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2<T: Elem = f64> {
    buf: AlignedBuf<T>,
    nx: usize,
    ny: usize,
    /// Halo row count above/below the interior (= max radius supported).
    ry: usize,
    /// Row stride in elements (multiple of `T::PAD`).
    rs: usize,
}

impl<T: Elem> Grid2<T> {
    /// Create with all cells (halos included) set to `fill`. `ry` is the
    /// number of halo rows kept above and below (pass the stencil radius).
    pub fn filled(nx: usize, ny: usize, ry: usize, fill: T) -> Self {
        assert!(nx > 0 && ny > 0, "empty interior");
        let rs = T::PAD + round_up_pad::<T>(nx + T::PAD);
        let rows = ny + 2 * ry;
        let mut buf = AlignedBuf::zeroed(rs * rows);
        buf.fill(fill);
        Grid2 {
            buf,
            nx,
            ny,
            ry,
            rs,
        }
    }

    /// Create with interior `f(y, x)` and halo value `halo`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        ry: usize,
        halo: T,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        let mut g = Self::filled(nx, ny, ry, halo);
        for y in 0..ny {
            for x in 0..nx {
                let idx = (g.ry + y) * g.rs + T::PAD + x;
                g.buf[idx] = f(y, x);
            }
        }
        g
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Row stride in elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Halo row count.
    #[inline]
    pub fn ry(&self) -> usize {
        self.ry
    }

    /// Pointer to interior cell (0, 0).
    #[inline]
    pub fn ptr(&self) -> *const T {
        unsafe { self.buf.as_ptr().add(self.ry * self.rs + T::PAD) }
    }

    /// Mutable pointer to interior cell (0, 0).
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut T {
        unsafe { self.buf.as_mut_ptr().add(self.ry * self.rs + T::PAD) }
    }

    #[inline]
    fn idx(&self, y: isize, x: isize) -> usize {
        let iy = self.ry as isize + y;
        let ix = T::PAD as isize + x;
        assert!(
            iy >= 0 && (iy as usize) < self.ny + 2 * self.ry,
            "y={y} out of range"
        );
        assert!(ix >= 0 && (ix as usize) < self.rs, "x={x} out of range");
        iy as usize * self.rs + ix as usize
    }

    /// Read cell `(y, x)`; halo addressable with negative / overshooting
    /// indices.
    #[inline]
    pub fn get(&self, y: isize, x: isize) -> T {
        self.buf[self.idx(y, x)]
    }

    /// Write cell `(y, x)`.
    #[inline]
    pub fn set(&mut self, y: isize, x: isize, v: T) {
        let i = self.idx(y, x);
        self.buf[i] = v;
    }

    /// Interior row `y` as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        let start = (self.ry + y) * self.rs + T::PAD;
        &self.buf[start..start + self.nx]
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid2<T>) {
        assert_eq!(
            (self.nx, self.ny, self.ry),
            (src.nx, src.ny, src.ry),
            "Grid2::copy_from geometry mismatch"
        );
        self.buf.copy_from(&src.buf);
    }
}

/// 3D grid: `nz × ny × nx` interior with halo planes/rows/columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3<T: Elem = f64> {
    buf: AlignedBuf<T>,
    nx: usize,
    ny: usize,
    nz: usize,
    /// Halo row/plane count (= max radius supported in y and z).
    r: usize,
    rs: usize,
    /// Plane stride in elements.
    ps: usize,
}

impl<T: Elem> Grid3<T> {
    /// Create with all cells (halos included) set to `fill`.
    pub fn filled(nx: usize, ny: usize, nz: usize, r: usize, fill: T) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty interior");
        let rs = T::PAD + round_up_pad::<T>(nx + T::PAD);
        let ps = rs * (ny + 2 * r);
        let mut buf = AlignedBuf::zeroed(ps * (nz + 2 * r));
        buf.fill(fill);
        Grid3 {
            buf,
            nx,
            ny,
            nz,
            r,
            rs,
            ps,
        }
    }

    /// Create with interior `f(z, y, x)` and halo value `halo`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        r: usize,
        halo: T,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut g = Self::filled(nx, ny, nz, r, halo);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = (g.r + z) * g.ps + (g.r + y) * g.rs + T::PAD + x;
                    g.buf[idx] = f(z, y, x);
                }
            }
        }
        g
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Interior depth.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Row stride in elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Plane stride in elements.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        self.ps
    }

    /// Halo width in rows/planes.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Pointer to interior cell (0, 0, 0).
    #[inline]
    pub fn ptr(&self) -> *const T {
        unsafe {
            self.buf
                .as_ptr()
                .add(self.r * self.ps + self.r * self.rs + T::PAD)
        }
    }

    /// Mutable pointer to interior cell (0, 0, 0).
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut T {
        unsafe {
            self.buf
                .as_mut_ptr()
                .add(self.r * self.ps + self.r * self.rs + T::PAD)
        }
    }

    #[inline]
    fn idx(&self, z: isize, y: isize, x: isize) -> usize {
        let iz = self.r as isize + z;
        let iy = self.r as isize + y;
        let ix = T::PAD as isize + x;
        assert!(
            iz >= 0 && (iz as usize) < self.nz + 2 * self.r,
            "z={z} out of range"
        );
        assert!(
            iy >= 0 && (iy as usize) < self.ny + 2 * self.r,
            "y={y} out of range"
        );
        assert!(ix >= 0 && (ix as usize) < self.rs, "x={x} out of range");
        iz as usize * self.ps + iy as usize * self.rs + ix as usize
    }

    /// Read cell `(z, y, x)`; halo addressable.
    #[inline]
    pub fn get(&self, z: isize, y: isize, x: isize) -> T {
        self.buf[self.idx(z, y, x)]
    }

    /// Write cell `(z, y, x)`.
    #[inline]
    pub fn set(&mut self, z: isize, y: isize, x: isize, v: T) {
        let i = self.idx(z, y, x);
        self.buf[i] = v;
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid3<T>) {
        assert_eq!(
            (self.nx, self.ny, self.nz, self.r),
            (src.nx, src.ny, src.nz, src.r),
            "Grid3::copy_from geometry mismatch"
        );
        self.buf.copy_from(&src.buf);
    }
}

// ---------------------------------------------------------------------------
// AnyGrid: dimensionality (and element width) as data
// ---------------------------------------------------------------------------

/// Why an [`AnyGrid`] could not be constructed from runtime data.
#[derive(Clone, Debug, PartialEq)]
pub enum GridDataError {
    /// The data handed to [`AnyGrid::from_vec`] does not cover the
    /// shape's interior exactly.
    Len {
        /// Cells the shape's interior holds.
        expected: usize,
        /// Elements the vector actually carried.
        got: usize,
    },
    /// The shape's dimensionality does not match the spec handed to
    /// [`AnyGrid::from_fn_spec`] / [`AnyGrid::from_vec_spec`].
    Ndim {
        /// Dimensions of the shape.
        shape: usize,
        /// Dimensions of the stencil spec.
        spec: usize,
    },
    /// The element type of the data does not match the spec's
    /// [`StencilSpec::dtype`] (e.g. `Vec<f64>` handed to
    /// [`AnyGrid::from_vec_spec`] for a `2d5p@f32` spec).
    Dtype {
        /// The element type the spec asks for.
        spec: Dtype,
        /// The element type the data carries.
        data: Dtype,
    },
    /// The shape is incompatible with the spec's boundary condition:
    /// the wrap/mirror halo folds of a non-Dirichlet [`Boundary`] need
    /// every interior extent ≥ the stencil radius.
    BoundaryExtent {
        /// The offending axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// That axis's interior extent.
        extent: usize,
        /// The stencil radius the boundary folds over.
        radius: usize,
        /// The requested boundary condition.
        boundary: Boundary,
    },
}

impl std::fmt::Display for GridDataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridDataError::Len { expected, got } => write!(
                f,
                "grid data length {got} does not match the shape's {expected} interior cells"
            ),
            GridDataError::Ndim { shape, spec } => {
                write!(f, "shape is {shape}D but the stencil spec is {spec}D")
            }
            GridDataError::Dtype { spec, data } => write!(
                f,
                "grid data is {data} but the stencil spec asks for {spec}"
            ),
            GridDataError::BoundaryExtent {
                axis,
                extent,
                radius,
                boundary,
            } => write!(
                f,
                "axis {axis} extent {extent} is smaller than the stencil radius {radius}, \
                 which the {boundary} boundary's halo folds require"
            ),
        }
    }
}

impl std::error::Error for GridDataError {}

/// A grid whose dimensionality **and element width** are runtime values
/// — the container side of the erased API (see
/// [`crate::exec::DynPlan`]).
///
/// Construction is shape-checked: [`AnyGrid::from_vec`] rejects data
/// that doesn't cover the interior, and the dimensionality always comes
/// from the [`Shape`], so a caller can go from "numbers at runtime" to a
/// running plan without naming `Grid1`/`Grid2`/`Grid3`:
///
/// ```
/// use stencil_core::exec::Shape;
/// use stencil_core::grid::AnyGrid;
///
/// let shape = Shape::d2(64, 32);
/// let g = AnyGrid::from_vec(shape, 1, 0.0, vec![1.0; 64 * 32]).unwrap();
/// assert_eq!(g.ndim(), 2);
/// assert_eq!(g.to_vec().len(), 64 * 32);
/// assert!(AnyGrid::from_vec(shape, 1, 0.0, vec![0.0; 7]).is_err());
/// ```
///
/// The spec-aware constructors honour the spec's
/// [`dtype`](StencilSpec::dtype): a `"2d5p@f32"` spec yields the
/// `*F32` variants, which [`crate::exec::DynPlan`] runs through the f32
/// kernels at twice the SIMD lane width. [`AnyGrid::to_vec`] widens f32
/// interiors to `f64` losslessly; [`AnyGrid::to_vec_f32`] hands back
/// the native single-precision data.
///
/// The typed grids convert in via `From`, and [`AnyGrid::as_grid2`]-style
/// accessors hand the typed view back for rendering or verification.
#[derive(Clone, Debug, PartialEq)]
pub enum AnyGrid {
    /// A 1D f64 grid.
    D1(Grid1),
    /// A 2D f64 grid.
    D2(Grid2),
    /// A 3D f64 grid.
    D3(Grid3),
    /// A 1D f32 grid.
    D1F32(Grid1<f32>),
    /// A 2D f32 grid.
    D2F32(Grid2<f32>),
    /// A 3D f32 grid.
    D3F32(Grid3<f32>),
}

impl AnyGrid {
    /// Create a grid of the given shape with every cell (halo included)
    /// set to `fill`. `halo_r` is the halo width in rows/planes kept for
    /// 2D/3D grids (pass the stencil radius; ignored for 1D, whose halo
    /// is always [`Elem::PAD`] wide).
    pub fn filled(shape: Shape, halo_r: usize, fill: f64) -> AnyGrid {
        let [nx, ny, nz] = shape.dims();
        match shape.ndim() {
            1 => AnyGrid::D1(Grid1::filled(nx, fill)),
            2 => AnyGrid::D2(Grid2::filled(nx, ny, halo_r, fill)),
            _ => AnyGrid::D3(Grid3::filled(nx, ny, nz, halo_r, fill)),
        }
    }

    /// Create a grid with interior `f(z, y, x)` (unused coordinates are
    /// passed as 0) and halo value `halo`. See [`AnyGrid::filled`] for
    /// `halo_r`.
    pub fn from_fn(
        shape: Shape,
        halo_r: usize,
        halo: f64,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> AnyGrid {
        let [nx, ny, nz] = shape.dims();
        match shape.ndim() {
            1 => AnyGrid::D1(Grid1::from_fn(nx, halo, |x| f(0, 0, x))),
            2 => AnyGrid::D2(Grid2::from_fn(nx, ny, halo_r, halo, |y, x| f(0, y, x))),
            _ => AnyGrid::D3(Grid3::from_fn(nx, ny, nz, halo_r, halo, f)),
        }
    }

    /// f32 twin of [`AnyGrid::from_fn`]: same geometry rules, `*F32`
    /// variants out.
    pub fn from_fn_f32(
        shape: Shape,
        halo_r: usize,
        halo: f32,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> AnyGrid {
        let [nx, ny, nz] = shape.dims();
        match shape.ndim() {
            1 => AnyGrid::D1F32(Grid1::from_fn(nx, halo, |x| f(0, 0, x))),
            2 => AnyGrid::D2F32(Grid2::from_fn(nx, ny, halo_r, halo, |y, x| f(0, y, x))),
            _ => AnyGrid::D3F32(Grid3::from_fn(nx, ny, nz, halo_r, halo, f)),
        }
    }

    /// Interior cell count of `shape`.
    fn interior_len(shape: Shape) -> usize {
        let [nx, ny, nz] = shape.dims();
        match shape.ndim() {
            1 => nx,
            2 => nx * ny,
            _ => nx * ny * nz,
        }
    }

    /// Create a grid whose interior is `data` in row-major order (x
    /// fastest), rejecting data that does not cover the interior
    /// exactly. See [`AnyGrid::filled`] for `halo_r`.
    pub fn from_vec(
        shape: Shape,
        halo_r: usize,
        halo: f64,
        data: Vec<f64>,
    ) -> Result<AnyGrid, GridDataError> {
        let expected = Self::interior_len(shape);
        if data.len() != expected {
            return Err(GridDataError::Len {
                expected,
                got: data.len(),
            });
        }
        let [nx, ny, _] = shape.dims();
        Ok(Self::from_fn(shape, halo_r, halo, |z, y, x| {
            data[(z * ny + y) * nx + x]
        }))
    }

    /// f32 twin of [`AnyGrid::from_vec`].
    pub fn from_vec_f32(
        shape: Shape,
        halo_r: usize,
        halo: f32,
        data: Vec<f32>,
    ) -> Result<AnyGrid, GridDataError> {
        let expected = Self::interior_len(shape);
        if data.len() != expected {
            return Err(GridDataError::Len {
                expected,
                got: data.len(),
            });
        }
        let [nx, ny, _] = shape.dims();
        Ok(Self::from_fn_f32(shape, halo_r, halo, |z, y, x| {
            data[(z * ny + y) * nx + x]
        }))
    }

    /// Check that `shape` can host `spec`: matching dimensionality, and
    /// extents compatible with the spec's boundary folds.
    fn check_spec(shape: Shape, spec: &StencilSpec) -> Result<(), GridDataError> {
        if shape.ndim() != spec.ndim() {
            return Err(GridDataError::Ndim {
                shape: shape.ndim(),
                spec: spec.ndim(),
            });
        }
        if !spec.boundary().is_dirichlet() {
            for (axis, &n) in shape.dims()[..shape.ndim()].iter().enumerate() {
                if n < spec.radius() {
                    return Err(GridDataError::BoundaryExtent {
                        axis,
                        extent: n,
                        radius: spec.radius(),
                        boundary: spec.boundary(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Check that the element width of runtime data matches the spec's.
    fn check_dtype(spec: &StencilSpec, data: Dtype) -> Result<(), GridDataError> {
        if spec.dtype() != data {
            return Err(GridDataError::Dtype {
                spec: spec.dtype(),
                data,
            });
        }
        Ok(())
    }

    /// The halo width (rows/planes per side) a spec-derived grid is
    /// allocated with: the stencil radius under Dirichlet, and **twice**
    /// the radius for the refreshed (periodic/reflect) modes — the outer
    /// half stages the t+1 halo level so `TransLayout2` sessions keep
    /// their fused k = 2 pass (see `exec::halo`). The extra rows cost
    /// O(surface) memory and are invisible to every other method.
    fn spec_halo_r(spec: &StencilSpec) -> usize {
        if spec.boundary().is_dirichlet() {
            spec.radius()
        } else {
            2 * spec.radius()
        }
    }

    /// Halo-aware [`AnyGrid::from_fn`]: derive the halo geometry, fill,
    /// **and element type** from a [`StencilSpec`] instead of
    /// hand-passing them — the halo is `spec.radius()` rows/planes wide
    /// under Dirichlet (twice that for the refreshed boundary modes,
    /// whose fused fast path stages the next time level there), filled
    /// with the boundary's constant ([`Boundary::halo_fill`]), and the
    /// shape is checked against the spec (dimensionality, and extents ≥
    /// radius for the folded boundary modes). For an `@f32` spec, `f`'s
    /// values are rounded to `f32` once, on the way in.
    ///
    /// ```
    /// use stencil_core::exec::{Boundary, Shape};
    /// use stencil_core::grid::{AnyGrid, GridDataError};
    /// use stencil_core::spec::StencilSpec;
    ///
    /// let spec: StencilSpec = "2d5p@periodic".parse().unwrap();
    /// let g = AnyGrid::from_fn_spec(Shape::d2(64, 32), &spec, |_, y, x| {
    ///     (x + y) as f64
    /// })
    /// .unwrap();
    /// assert_eq!(g.ndim(), 2);
    /// // A 3D shape cannot host a 2D spec…
    /// assert!(matches!(
    ///     AnyGrid::from_fn_spec(Shape::d3(8, 8, 8), &spec, |_, _, _| 0.0),
    ///     Err(GridDataError::Ndim { .. })
    /// ));
    /// ```
    pub fn from_fn_spec(
        shape: Shape,
        spec: &StencilSpec,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Result<AnyGrid, GridDataError> {
        Self::check_spec(shape, spec)?;
        let halo_r = Self::spec_halo_r(spec);
        let fill = spec.boundary().halo_fill();
        Ok(match spec.dtype() {
            Dtype::F64 => Self::from_fn(shape, halo_r, fill, f),
            Dtype::F32 => {
                Self::from_fn_f32(shape, halo_r, fill as f32, |z, y, x| f(z, y, x) as f32)
            }
        })
    }

    /// Halo-aware [`AnyGrid::from_vec`] (see [`AnyGrid::from_fn_spec`]):
    /// row-major interior data plus a [`StencilSpec`] that supplies the
    /// halo geometry, fill value, and shape checks. The data's element
    /// type must match the spec's [`dtype`](StencilSpec::dtype) — a
    /// `Vec<f64>` handed to an `@f32` spec is a
    /// [`GridDataError::Dtype`] error (use
    /// [`AnyGrid::from_vec_spec_f32`]), never a silent conversion.
    pub fn from_vec_spec(
        shape: Shape,
        spec: &StencilSpec,
        data: Vec<f64>,
    ) -> Result<AnyGrid, GridDataError> {
        Self::check_dtype(spec, Dtype::F64)?;
        Self::check_spec(shape, spec)?;
        Self::from_vec(
            shape,
            Self::spec_halo_r(spec),
            spec.boundary().halo_fill(),
            data,
        )
    }

    /// f32 twin of [`AnyGrid::from_vec_spec`]: native single-precision
    /// interior data for an `@f32` spec. Handing it to an f64 spec is a
    /// [`GridDataError::Dtype`] error.
    pub fn from_vec_spec_f32(
        shape: Shape,
        spec: &StencilSpec,
        data: Vec<f32>,
    ) -> Result<AnyGrid, GridDataError> {
        Self::check_dtype(spec, Dtype::F32)?;
        Self::check_spec(shape, spec)?;
        Self::from_vec_f32(
            shape,
            Self::spec_halo_r(spec),
            spec.boundary().halo_fill() as f32,
            data,
        )
    }

    /// Number of spatial dimensions (1–3).
    pub fn ndim(&self) -> usize {
        match self {
            AnyGrid::D1(_) | AnyGrid::D1F32(_) => 1,
            AnyGrid::D2(_) | AnyGrid::D2F32(_) => 2,
            AnyGrid::D3(_) | AnyGrid::D3F32(_) => 3,
        }
    }

    /// The element type the grid carries.
    pub fn dtype(&self) -> Dtype {
        match self {
            AnyGrid::D1(_) | AnyGrid::D2(_) | AnyGrid::D3(_) => Dtype::F64,
            AnyGrid::D1F32(_) | AnyGrid::D2F32(_) | AnyGrid::D3F32(_) => Dtype::F32,
        }
    }

    /// The interior extents as a [`Shape`].
    pub fn shape(&self) -> Shape {
        match self {
            AnyGrid::D1(g) => Shape::d1(g.n()),
            AnyGrid::D1F32(g) => Shape::d1(g.n()),
            AnyGrid::D2(g) => Shape::d2(g.nx(), g.ny()),
            AnyGrid::D2F32(g) => Shape::d2(g.nx(), g.ny()),
            AnyGrid::D3(g) => Shape::d3(g.nx(), g.ny(), g.nz()),
            AnyGrid::D3F32(g) => Shape::d3(g.nx(), g.ny(), g.nz()),
        }
    }

    /// Interior of a 2D grid in row-major order, via a per-element map.
    fn collect2<T: Elem, U>(g: &Grid2<T>, mut m: impl FnMut(T) -> U) -> Vec<U> {
        let mut v = Vec::with_capacity(g.nx() * g.ny());
        for y in 0..g.ny() {
            v.extend(g.row(y).iter().map(|&x| m(x)));
        }
        v
    }

    /// Interior of a 3D grid in row-major order, via a per-element map.
    fn collect3<T: Elem, U>(g: &Grid3<T>, mut m: impl FnMut(T) -> U) -> Vec<U> {
        let mut v = Vec::with_capacity(g.nx() * g.ny() * g.nz());
        for z in 0..g.nz() {
            for y in 0..g.ny() {
                for x in 0..g.nx() {
                    v.push(m(g.get(z as isize, y as isize, x as isize)));
                }
            }
        }
        v
    }

    /// The interior in row-major order (x fastest) — the inverse of
    /// [`AnyGrid::from_vec`]. f32 interiors widen to `f64` losslessly;
    /// use [`AnyGrid::to_vec_f32`] for the native data.
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            AnyGrid::D1(g) => g.interior().to_vec(),
            AnyGrid::D1F32(g) => g.interior().iter().map(|&x| x as f64).collect(),
            AnyGrid::D2(g) => Self::collect2(g, |x| x),
            AnyGrid::D2F32(g) => Self::collect2(g, |x| x as f64),
            AnyGrid::D3(g) => Self::collect3(g, |x| x),
            AnyGrid::D3F32(g) => Self::collect3(g, |x| x as f64),
        }
    }

    /// The interior of an f32 grid in row-major order; `None` for f64
    /// grids (narrowing f64 data would silently round — widen with
    /// [`AnyGrid::to_vec`] instead).
    pub fn to_vec_f32(&self) -> Option<Vec<f32>> {
        match self {
            AnyGrid::D1F32(g) => Some(g.interior().to_vec()),
            AnyGrid::D2F32(g) => Some(Self::collect2(g, |x| x)),
            AnyGrid::D3F32(g) => Some(Self::collect3(g, |x| x)),
            _ => None,
        }
    }

    /// The typed 1D view, if this is a 1D f64 grid.
    pub fn as_grid1(&self) -> Option<&Grid1> {
        match self {
            AnyGrid::D1(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 2D view, if this is a 2D f64 grid.
    pub fn as_grid2(&self) -> Option<&Grid2> {
        match self {
            AnyGrid::D2(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 3D view, if this is a 3D f64 grid.
    pub fn as_grid3(&self) -> Option<&Grid3> {
        match self {
            AnyGrid::D3(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 1D view, if this is a 1D f32 grid.
    pub fn as_grid1_f32(&self) -> Option<&Grid1<f32>> {
        match self {
            AnyGrid::D1F32(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 2D view, if this is a 2D f32 grid.
    pub fn as_grid2_f32(&self) -> Option<&Grid2<f32>> {
        match self {
            AnyGrid::D2F32(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 3D view, if this is a 3D f32 grid.
    pub fn as_grid3_f32(&self) -> Option<&Grid3<f32>> {
        match self {
            AnyGrid::D3F32(g) => Some(g),
            _ => None,
        }
    }
}

impl From<Grid1> for AnyGrid {
    fn from(g: Grid1) -> AnyGrid {
        AnyGrid::D1(g)
    }
}

impl From<Grid2> for AnyGrid {
    fn from(g: Grid2) -> AnyGrid {
        AnyGrid::D2(g)
    }
}

impl From<Grid3> for AnyGrid {
    fn from(g: Grid3) -> AnyGrid {
        AnyGrid::D3(g)
    }
}

impl From<Grid1<f32>> for AnyGrid {
    fn from(g: Grid1<f32>) -> AnyGrid {
        AnyGrid::D1F32(g)
    }
}

impl From<Grid2<f32>> for AnyGrid {
    fn from(g: Grid2<f32>) -> AnyGrid {
        AnyGrid::D2F32(g)
    }
}

impl From<Grid3<f32>> for AnyGrid {
    fn from(g: Grid3<f32>) -> AnyGrid {
        AnyGrid::D3F32(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid1_geometry() {
        let g = Grid1::from_fn(37, -1.0, |i| i as f64);
        assert_eq!(g.n(), 37);
        assert_eq!(g.get(0), 0.0);
        assert_eq!(g.get(36), 36.0);
        assert_eq!(g.get(-1), -1.0);
        assert_eq!(g.get(37), -1.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.interior().len(), 37);
    }

    #[test]
    fn grid2_geometry() {
        let g = Grid2::from_fn(13, 5, 2, -3.0, |y, x| (y * 100 + x) as f64);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(4, 12), 412.0);
        assert_eq!(g.get(-1, 0), -3.0);
        assert_eq!(g.get(5, 3), -3.0);
        assert_eq!(g.get(2, -2), -3.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.row_stride() % 8, 0);
        assert_eq!(g.row(3)[7], 307.0);
        // second row interior start also 64B-aligned
        let p = unsafe { g.ptr().add(g.row_stride()) };
        assert_eq!(p as usize % 64, 0);
    }

    #[test]
    fn grid2_geometry_f32() {
        // The f32 pad is 16 elements = 64 bytes: interior origins and
        // row starts keep the same byte alignment as f64 grids, with
        // twice the elements per line.
        let g = Grid2::<f32>::from_fn(13, 5, 2, -3.0, |y, x| (y * 100 + x) as f32);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(4, 12), 412.0);
        assert_eq!(g.get(-1, 0), -3.0);
        assert_eq!(g.get(2, -2), -3.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.row_stride() % 16, 0);
        let p = unsafe { g.ptr().add(g.row_stride()) };
        assert_eq!(p as usize % 64, 0);
        // Halo readable out to the full f32 pad width.
        assert_eq!(g.get(0, -(f32::PAD as isize)), -3.0);
    }

    #[test]
    fn grid3_geometry() {
        let g = Grid3::from_fn(9, 4, 3, 1, 9.5, |z, y, x| (z * 10000 + y * 100 + x) as f64);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.get(2, 3, 8), 20308.0);
        assert_eq!(g.get(-1, 0, 0), 9.5);
        assert_eq!(g.get(3, 0, 0), 9.5);
        assert_eq!(g.get(1, -1, 2), 9.5);
        assert_eq!(g.get(1, 1, 9), 9.5);
        assert_eq!(g.ptr() as usize % 64, 0);
    }

    #[test]
    fn any_grid_round_trips_row_major() {
        let shape = Shape::d3(3, 2, 2);
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let g = AnyGrid::from_vec(shape, 1, -1.0, data.clone()).unwrap();
        assert_eq!(g.ndim(), 3);
        assert_eq!(g.shape(), shape);
        assert_eq!(g.to_vec(), data);
        // x fastest: element (z=1, y=0, x=2) is index (1·2 + 0)·3 + 2 = 8
        assert_eq!(g.as_grid3().unwrap().get(1, 0, 2), 8.0);
        assert_eq!(g.as_grid1(), None);

        let err = AnyGrid::from_vec(shape, 1, 0.0, vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            GridDataError::Len {
                expected: 12,
                got: 5
            }
        );
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn any_grid_round_trips_f32() {
        let shape = Shape::d2(5, 3);
        let data: Vec<f32> = (0..15).map(|i| i as f32 * 0.5).collect();
        let g = AnyGrid::from_vec_f32(shape, 1, 0.0, data.clone()).unwrap();
        assert_eq!(g.ndim(), 2);
        assert_eq!(g.dtype(), Dtype::F32);
        assert_eq!(g.shape(), shape);
        assert_eq!(g.to_vec_f32().unwrap(), data);
        // to_vec widens losslessly.
        let wide = g.to_vec();
        assert!(wide.iter().zip(&data).all(|(&a, &b)| a == b as f64));
        // Typed accessors pick the right width.
        assert!(g.as_grid2().is_none());
        assert_eq!(g.as_grid2_f32().unwrap().get(1, 2), 3.5);
        // f64 grids have no f32 view.
        let g64 = AnyGrid::filled(shape, 1, 0.0);
        assert_eq!(g64.dtype(), Dtype::F64);
        assert!(g64.to_vec_f32().is_none());
        assert!(g64.as_grid2_f32().is_none());

        assert!(matches!(
            AnyGrid::from_vec_f32(shape, 1, 0.0, vec![0.0; 2]),
            Err(GridDataError::Len {
                expected: 15,
                got: 2
            })
        ));
    }

    #[test]
    fn spec_aware_constructors_check_shape_and_boundary() {
        let spec: StencilSpec = "2d5p@periodic".parse().unwrap();

        // Happy path: refreshed boundaries get the wide (2×radius) halo
        // that stages the fused pass's t+1 level; fill = the boundary
        // constant.
        let g =
            AnyGrid::from_fn_spec(Shape::d2(12, 7), &spec, |_, y, x| (y * 100 + x) as f64).unwrap();
        let g2 = g.as_grid2().unwrap();
        assert_eq!(g2.ry(), 2 * spec.radius());
        assert_eq!(g2.get(-1, 0), 0.0, "halo filled with the boundary constant");

        // Dirichlet keeps the tight radius-wide halo.
        let tight: StencilSpec = "2d5p".parse().unwrap();
        let g = AnyGrid::from_fn_spec(Shape::d2(12, 7), &tight, |_, _, _| 0.0).unwrap();
        assert_eq!(g.as_grid2().unwrap().ry(), tight.radius());

        // Dirichlet fill value flows from the spec's boundary.
        let d: StencilSpec = "2d5p@dirichlet(2.5)".parse().unwrap();
        let g = AnyGrid::from_vec_spec(Shape::d2(3, 2), &d, vec![0.0; 6]).unwrap();
        assert_eq!(g.as_grid2().unwrap().get(-1, 0), 2.5);

        // Dimensionality mismatch.
        let err = AnyGrid::from_fn_spec(Shape::d1(64), &spec, |_, _, _| 0.0).unwrap_err();
        assert_eq!(err, GridDataError::Ndim { shape: 1, spec: 2 });
        assert!(err.to_string().contains("1D"), "{err}");

        // Shape/boundary mismatch: a folded boundary needs extents ≥ r.
        let wide: StencilSpec = "1d5p@reflect".parse().unwrap(); // r = 2
        let err = AnyGrid::from_fn_spec(Shape::d1(1), &wide, |_, _, _| 0.0).unwrap_err();
        assert_eq!(
            err,
            GridDataError::BoundaryExtent {
                axis: 0,
                extent: 1,
                radius: 2,
                boundary: crate::exec::Boundary::Reflect,
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("axis 0") && msg.contains("radius 2") && msg.contains("reflect"),
            "{msg}"
        );

        // Dirichlet never triggers the extent check (today's behavior).
        assert!(AnyGrid::from_vec_spec(Shape::d1(1), &"1d5p".parse().unwrap(), vec![1.0]).is_ok());
        // Bad data length still reports Len through the spec path.
        assert!(matches!(
            AnyGrid::from_vec_spec(Shape::d2(4, 4), &d, vec![0.0; 3]),
            Err(GridDataError::Len {
                expected: 16,
                got: 3
            })
        ));
    }

    #[test]
    fn spec_aware_constructors_check_dtype() {
        let f32_spec: StencilSpec = "2d5p@f32".parse().unwrap();
        let f64_spec: StencilSpec = "2d5p".parse().unwrap();
        let shape = Shape::d2(4, 4);

        // from_fn_spec follows the spec's dtype.
        let g = AnyGrid::from_fn_spec(shape, &f32_spec, |_, y, x| (y + x) as f64).unwrap();
        assert_eq!(g.dtype(), Dtype::F32);
        assert_eq!(g.as_grid2_f32().unwrap().get(1, 2), 3.0);

        // from_vec_spec demands matching data width, both ways.
        assert_eq!(
            AnyGrid::from_vec_spec(shape, &f32_spec, vec![0.0; 16]).unwrap_err(),
            GridDataError::Dtype {
                spec: Dtype::F32,
                data: Dtype::F64
            }
        );
        assert_eq!(
            AnyGrid::from_vec_spec_f32(shape, &f64_spec, vec![0.0f32; 16]).unwrap_err(),
            GridDataError::Dtype {
                spec: Dtype::F64,
                data: Dtype::F32
            }
        );
        let err = AnyGrid::from_vec_spec(shape, &f32_spec, vec![0.0; 16]).unwrap_err();
        assert!(err.to_string().contains("f32"), "{err}");

        // Happy path: f32 data for an f32 spec, shape checks intact.
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let g = AnyGrid::from_vec_spec_f32(shape, &f32_spec, data.clone()).unwrap();
        assert_eq!(g.to_vec_f32().unwrap(), data);
        assert!(matches!(
            AnyGrid::from_vec_spec_f32(shape, &f32_spec, vec![0.0f32; 3]),
            Err(GridDataError::Len { .. })
        ));
        // Boundary-extent checks still run for f32 specs.
        let folded: StencilSpec = "1d5p@reflect@f32".parse().unwrap();
        assert!(matches!(
            AnyGrid::from_vec_spec_f32(Shape::d1(1), &folded, vec![0.0f32; 1]),
            Err(GridDataError::BoundaryExtent { .. })
        ));
    }

    #[test]
    fn clone_is_deep() {
        let mut g = Grid1::filled(16, 0.0);
        let h = g.clone();
        g.set(3, 42.0);
        assert_eq!(h.get(3), 0.0);
        assert_eq!(g.get(3), 42.0);
    }
}
