//! Aligned grid containers with constant (Dirichlet) halos.
//!
//! Geometry conventions shared by every kernel in this workspace:
//!
//! * the **interior** of each row starts `HALO_PAD = 8` doubles into the
//!   row, i.e. on a 64-byte boundary, and row strides are multiples of 8 —
//!   so every vector-set load/store is aligned for both AVX2 and AVX-512;
//! * halo cells of width `r` sit immediately left/right of the interior
//!   (and as whole rows/planes above/below in 2D/3D); they are *never
//!   updated* — they carry the boundary condition, which is what makes
//!   temporal tiling and the k=2 in-register pipeline well defined;
//! * kernels receive raw pointers to the interior origin and may index
//!   negatively into the halo.

use stencil_simd::AlignedBuf;

use crate::exec::{Boundary, Shape};
use crate::spec::StencilSpec;

/// Doubles of padding on each side of a row interior. Must be ≥ the widest
/// vector (8) so the `reorg` method's aligned previous-vector load of the
/// first interior vector stays in bounds, and ≥ [`crate::stencil::MAX_R`].
pub const HALO_PAD: usize = 8;

#[inline]
fn round_up8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

/// 1D grid: `n` interior points plus constant halos.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid1 {
    buf: AlignedBuf,
    n: usize,
}

impl Grid1 {
    /// Create a grid with every cell (halo included) set to `fill`.
    pub fn filled(n: usize, fill: f64) -> Self {
        assert!(n > 0, "empty interior");
        let mut buf = AlignedBuf::zeroed(HALO_PAD + round_up8(n + HALO_PAD));
        buf.fill(fill);
        Grid1 { buf, n }
    }

    /// Create a grid whose interior is `f(i)` and whose halo is `halo`.
    pub fn from_fn(n: usize, halo: f64, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut g = Self::filled(n, halo);
        for i in 0..n {
            g.buf[HALO_PAD + i] = f(i);
        }
        g
    }

    /// Interior length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pointer to interior cell 0; halo readable at negative offsets down
    /// to `-HALO_PAD`.
    #[inline]
    pub fn ptr(&self) -> *const f64 {
        // SAFETY: HALO_PAD < buf.len() by construction.
        unsafe { self.buf.as_ptr().add(HALO_PAD) }
    }

    /// Mutable pointer to interior cell 0.
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut f64 {
        unsafe { self.buf.as_mut_ptr().add(HALO_PAD) }
    }

    /// Read cell `i`; `i` may range over `[-HALO_PAD, n + HALO_PAD)`.
    #[inline]
    pub fn get(&self, i: isize) -> f64 {
        let idx = HALO_PAD as isize + i;
        assert!(
            idx >= 0 && (idx as usize) < self.buf.len(),
            "index {i} out of range"
        );
        self.buf[idx as usize]
    }

    /// Write cell `i` (same range as [`Grid1::get`]).
    #[inline]
    pub fn set(&mut self, i: isize, v: f64) {
        let idx = HALO_PAD as isize + i;
        assert!(
            idx >= 0 && (idx as usize) < self.buf.len(),
            "index {i} out of range"
        );
        self.buf[idx as usize] = v;
    }

    /// Interior as a slice.
    #[inline]
    pub fn interior(&self) -> &[f64] {
        &self.buf[HALO_PAD..HALO_PAD + self.n]
    }

    /// Interior as a mutable slice.
    #[inline]
    pub fn interior_mut(&mut self) -> &mut [f64] {
        &mut self.buf[HALO_PAD..HALO_PAD + self.n]
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid1) {
        assert_eq!(self.n, src.n, "Grid1::copy_from geometry mismatch");
        self.buf.copy_from(&src.buf);
    }
}

/// 2D grid: `ny × nx` interior, row-major, with halo rows and columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2 {
    buf: AlignedBuf,
    nx: usize,
    ny: usize,
    /// Halo row count above/below the interior (= max radius supported).
    ry: usize,
    /// Row stride in doubles (multiple of 8).
    rs: usize,
}

impl Grid2 {
    /// Create with all cells (halos included) set to `fill`. `ry` is the
    /// number of halo rows kept above and below (pass the stencil radius).
    pub fn filled(nx: usize, ny: usize, ry: usize, fill: f64) -> Self {
        assert!(nx > 0 && ny > 0, "empty interior");
        let rs = HALO_PAD + round_up8(nx + HALO_PAD);
        let rows = ny + 2 * ry;
        let mut buf = AlignedBuf::zeroed(rs * rows);
        buf.fill(fill);
        Grid2 {
            buf,
            nx,
            ny,
            ry,
            rs,
        }
    }

    /// Create with interior `f(y, x)` and halo value `halo`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        ry: usize,
        halo: f64,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::filled(nx, ny, ry, halo);
        for y in 0..ny {
            for x in 0..nx {
                let idx = (g.ry + y) * g.rs + HALO_PAD + x;
                g.buf[idx] = f(y, x);
            }
        }
        g
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Row stride in doubles.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Halo row count.
    #[inline]
    pub fn ry(&self) -> usize {
        self.ry
    }

    /// Pointer to interior cell (0, 0).
    #[inline]
    pub fn ptr(&self) -> *const f64 {
        unsafe { self.buf.as_ptr().add(self.ry * self.rs + HALO_PAD) }
    }

    /// Mutable pointer to interior cell (0, 0).
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut f64 {
        unsafe { self.buf.as_mut_ptr().add(self.ry * self.rs + HALO_PAD) }
    }

    #[inline]
    fn idx(&self, y: isize, x: isize) -> usize {
        let iy = self.ry as isize + y;
        let ix = HALO_PAD as isize + x;
        assert!(
            iy >= 0 && (iy as usize) < self.ny + 2 * self.ry,
            "y={y} out of range"
        );
        assert!(ix >= 0 && (ix as usize) < self.rs, "x={x} out of range");
        iy as usize * self.rs + ix as usize
    }

    /// Read cell `(y, x)`; halo addressable with negative / overshooting
    /// indices.
    #[inline]
    pub fn get(&self, y: isize, x: isize) -> f64 {
        self.buf[self.idx(y, x)]
    }

    /// Write cell `(y, x)`.
    #[inline]
    pub fn set(&mut self, y: isize, x: isize, v: f64) {
        let i = self.idx(y, x);
        self.buf[i] = v;
    }

    /// Interior row `y` as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f64] {
        let start = (self.ry + y) * self.rs + HALO_PAD;
        &self.buf[start..start + self.nx]
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid2) {
        assert_eq!(
            (self.nx, self.ny, self.ry),
            (src.nx, src.ny, src.ry),
            "Grid2::copy_from geometry mismatch"
        );
        self.buf.copy_from(&src.buf);
    }
}

/// 3D grid: `nz × ny × nx` interior with halo planes/rows/columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3 {
    buf: AlignedBuf,
    nx: usize,
    ny: usize,
    nz: usize,
    /// Halo row/plane count (= max radius supported in y and z).
    r: usize,
    rs: usize,
    /// Plane stride in doubles.
    ps: usize,
}

impl Grid3 {
    /// Create with all cells (halos included) set to `fill`.
    pub fn filled(nx: usize, ny: usize, nz: usize, r: usize, fill: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty interior");
        let rs = HALO_PAD + round_up8(nx + HALO_PAD);
        let ps = rs * (ny + 2 * r);
        let mut buf = AlignedBuf::zeroed(ps * (nz + 2 * r));
        buf.fill(fill);
        Grid3 {
            buf,
            nx,
            ny,
            nz,
            r,
            rs,
            ps,
        }
    }

    /// Create with interior `f(z, y, x)` and halo value `halo`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        r: usize,
        halo: f64,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::filled(nx, ny, nz, r, halo);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = (g.r + z) * g.ps + (g.r + y) * g.rs + HALO_PAD + x;
                    g.buf[idx] = f(z, y, x);
                }
            }
        }
        g
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Interior depth.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Row stride in doubles.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Plane stride in doubles.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        self.ps
    }

    /// Halo width in rows/planes.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Pointer to interior cell (0, 0, 0).
    #[inline]
    pub fn ptr(&self) -> *const f64 {
        unsafe {
            self.buf
                .as_ptr()
                .add(self.r * self.ps + self.r * self.rs + HALO_PAD)
        }
    }

    /// Mutable pointer to interior cell (0, 0, 0).
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut f64 {
        unsafe {
            self.buf
                .as_mut_ptr()
                .add(self.r * self.ps + self.r * self.rs + HALO_PAD)
        }
    }

    #[inline]
    fn idx(&self, z: isize, y: isize, x: isize) -> usize {
        let iz = self.r as isize + z;
        let iy = self.r as isize + y;
        let ix = HALO_PAD as isize + x;
        assert!(
            iz >= 0 && (iz as usize) < self.nz + 2 * self.r,
            "z={z} out of range"
        );
        assert!(
            iy >= 0 && (iy as usize) < self.ny + 2 * self.r,
            "y={y} out of range"
        );
        assert!(ix >= 0 && (ix as usize) < self.rs, "x={x} out of range");
        iz as usize * self.ps + iy as usize * self.rs + ix as usize
    }

    /// Read cell `(z, y, x)`; halo addressable.
    #[inline]
    pub fn get(&self, z: isize, y: isize, x: isize) -> f64 {
        self.buf[self.idx(z, y, x)]
    }

    /// Write cell `(z, y, x)`.
    #[inline]
    pub fn set(&mut self, z: isize, y: isize, x: isize, v: f64) {
        let i = self.idx(z, y, x);
        self.buf[i] = v;
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid3) {
        assert_eq!(
            (self.nx, self.ny, self.nz, self.r),
            (src.nx, src.ny, src.nz, src.r),
            "Grid3::copy_from geometry mismatch"
        );
        self.buf.copy_from(&src.buf);
    }
}

// ---------------------------------------------------------------------------
// AnyGrid: dimensionality as data
// ---------------------------------------------------------------------------

/// Why an [`AnyGrid`] could not be constructed from runtime data.
#[derive(Clone, Debug, PartialEq)]
pub enum GridDataError {
    /// The data handed to [`AnyGrid::from_vec`] does not cover the
    /// shape's interior exactly.
    Len {
        /// Cells the shape's interior holds.
        expected: usize,
        /// Elements the vector actually carried.
        got: usize,
    },
    /// The shape's dimensionality does not match the spec handed to
    /// [`AnyGrid::from_fn_spec`] / [`AnyGrid::from_vec_spec`].
    Ndim {
        /// Dimensions of the shape.
        shape: usize,
        /// Dimensions of the stencil spec.
        spec: usize,
    },
    /// The shape is incompatible with the spec's boundary condition:
    /// the wrap/mirror halo folds of a non-Dirichlet [`Boundary`] need
    /// every interior extent ≥ the stencil radius.
    BoundaryExtent {
        /// The offending axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// That axis's interior extent.
        extent: usize,
        /// The stencil radius the boundary folds over.
        radius: usize,
        /// The requested boundary condition.
        boundary: Boundary,
    },
}

impl std::fmt::Display for GridDataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridDataError::Len { expected, got } => write!(
                f,
                "grid data length {got} does not match the shape's {expected} interior cells"
            ),
            GridDataError::Ndim { shape, spec } => {
                write!(f, "shape is {shape}D but the stencil spec is {spec}D")
            }
            GridDataError::BoundaryExtent {
                axis,
                extent,
                radius,
                boundary,
            } => write!(
                f,
                "axis {axis} extent {extent} is smaller than the stencil radius {radius}, \
                 which the {boundary} boundary's halo folds require"
            ),
        }
    }
}

impl std::error::Error for GridDataError {}

/// A grid whose dimensionality is a runtime value — the container side
/// of the erased API (see [`crate::exec::DynPlan`]).
///
/// Construction is shape-checked: [`AnyGrid::from_vec`] rejects data
/// that doesn't cover the interior, and the dimensionality always comes
/// from the [`Shape`], so a caller can go from "numbers at runtime" to a
/// running plan without naming `Grid1`/`Grid2`/`Grid3`:
///
/// ```
/// use stencil_core::exec::Shape;
/// use stencil_core::grid::AnyGrid;
///
/// let shape = Shape::d2(64, 32);
/// let g = AnyGrid::from_vec(shape, 1, 0.0, vec![1.0; 64 * 32]).unwrap();
/// assert_eq!(g.ndim(), 2);
/// assert_eq!(g.to_vec().len(), 64 * 32);
/// assert!(AnyGrid::from_vec(shape, 1, 0.0, vec![0.0; 7]).is_err());
/// ```
///
/// The typed grids convert in via `From`, and [`AnyGrid::as_grid2`]-style
/// accessors hand the typed view back for rendering or verification.
#[derive(Clone, Debug, PartialEq)]
pub enum AnyGrid {
    /// A 1D grid.
    D1(Grid1),
    /// A 2D grid.
    D2(Grid2),
    /// A 3D grid.
    D3(Grid3),
}

impl AnyGrid {
    /// Create a grid of the given shape with every cell (halo included)
    /// set to `fill`. `halo_r` is the halo width in rows/planes kept for
    /// 2D/3D grids (pass the stencil radius; ignored for 1D, whose halo
    /// is always [`HALO_PAD`] wide).
    pub fn filled(shape: Shape, halo_r: usize, fill: f64) -> AnyGrid {
        let [nx, ny, nz] = shape.dims();
        match shape.ndim() {
            1 => AnyGrid::D1(Grid1::filled(nx, fill)),
            2 => AnyGrid::D2(Grid2::filled(nx, ny, halo_r, fill)),
            _ => AnyGrid::D3(Grid3::filled(nx, ny, nz, halo_r, fill)),
        }
    }

    /// Create a grid with interior `f(z, y, x)` (unused coordinates are
    /// passed as 0) and halo value `halo`. See [`AnyGrid::filled`] for
    /// `halo_r`.
    pub fn from_fn(
        shape: Shape,
        halo_r: usize,
        halo: f64,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> AnyGrid {
        let [nx, ny, nz] = shape.dims();
        match shape.ndim() {
            1 => AnyGrid::D1(Grid1::from_fn(nx, halo, |x| f(0, 0, x))),
            2 => AnyGrid::D2(Grid2::from_fn(nx, ny, halo_r, halo, |y, x| f(0, y, x))),
            _ => AnyGrid::D3(Grid3::from_fn(nx, ny, nz, halo_r, halo, f)),
        }
    }

    /// Create a grid whose interior is `data` in row-major order (x
    /// fastest), rejecting data that does not cover the interior
    /// exactly. See [`AnyGrid::filled`] for `halo_r`.
    pub fn from_vec(
        shape: Shape,
        halo_r: usize,
        halo: f64,
        data: Vec<f64>,
    ) -> Result<AnyGrid, GridDataError> {
        let [nx, ny, nz] = shape.dims();
        let expected = match shape.ndim() {
            1 => nx,
            2 => nx * ny,
            _ => nx * ny * nz,
        };
        if data.len() != expected {
            return Err(GridDataError::Len {
                expected,
                got: data.len(),
            });
        }
        Ok(Self::from_fn(shape, halo_r, halo, |z, y, x| {
            data[(z * ny + y) * nx + x]
        }))
    }

    /// Check that `shape` can host `spec`: matching dimensionality, and
    /// extents compatible with the spec's boundary folds.
    fn check_spec(shape: Shape, spec: &StencilSpec) -> Result<(), GridDataError> {
        if shape.ndim() != spec.ndim() {
            return Err(GridDataError::Ndim {
                shape: shape.ndim(),
                spec: spec.ndim(),
            });
        }
        if !spec.boundary().is_dirichlet() {
            for (axis, &n) in shape.dims()[..shape.ndim()].iter().enumerate() {
                if n < spec.radius() {
                    return Err(GridDataError::BoundaryExtent {
                        axis,
                        extent: n,
                        radius: spec.radius(),
                        boundary: spec.boundary(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The halo width (rows/planes per side) a spec-derived grid is
    /// allocated with: the stencil radius under Dirichlet, and **twice**
    /// the radius for the refreshed (periodic/reflect) modes — the outer
    /// half stages the t+1 halo level so `TransLayout2` sessions keep
    /// their fused k = 2 pass (see `exec::halo`). The extra rows cost
    /// O(surface) memory and are invisible to every other method.
    fn spec_halo_r(spec: &StencilSpec) -> usize {
        if spec.boundary().is_dirichlet() {
            spec.radius()
        } else {
            2 * spec.radius()
        }
    }

    /// Halo-aware [`AnyGrid::from_fn`]: derive the halo geometry and fill
    /// from a [`StencilSpec`] instead of hand-passing them — the halo is
    /// `spec.radius()` rows/planes wide under Dirichlet (twice that for
    /// the refreshed boundary modes, whose fused fast path stages the
    /// next time level there), filled with the boundary's constant
    /// ([`Boundary::halo_fill`]), and the shape is checked against the
    /// spec (dimensionality, and extents ≥ radius for the folded
    /// boundary modes).
    ///
    /// ```
    /// use stencil_core::exec::{Boundary, Shape};
    /// use stencil_core::grid::{AnyGrid, GridDataError};
    /// use stencil_core::spec::StencilSpec;
    ///
    /// let spec: StencilSpec = "2d5p@periodic".parse().unwrap();
    /// let g = AnyGrid::from_fn_spec(Shape::d2(64, 32), &spec, |_, y, x| {
    ///     (x + y) as f64
    /// })
    /// .unwrap();
    /// assert_eq!(g.ndim(), 2);
    /// // A 3D shape cannot host a 2D spec…
    /// assert!(matches!(
    ///     AnyGrid::from_fn_spec(Shape::d3(8, 8, 8), &spec, |_, _, _| 0.0),
    ///     Err(GridDataError::Ndim { .. })
    /// ));
    /// ```
    pub fn from_fn_spec(
        shape: Shape,
        spec: &StencilSpec,
        f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Result<AnyGrid, GridDataError> {
        Self::check_spec(shape, spec)?;
        Ok(Self::from_fn(
            shape,
            Self::spec_halo_r(spec),
            spec.boundary().halo_fill(),
            f,
        ))
    }

    /// Halo-aware [`AnyGrid::from_vec`] (see [`AnyGrid::from_fn_spec`]):
    /// row-major interior data plus a [`StencilSpec`] that supplies the
    /// halo geometry, fill value, and shape checks.
    pub fn from_vec_spec(
        shape: Shape,
        spec: &StencilSpec,
        data: Vec<f64>,
    ) -> Result<AnyGrid, GridDataError> {
        Self::check_spec(shape, spec)?;
        Self::from_vec(
            shape,
            Self::spec_halo_r(spec),
            spec.boundary().halo_fill(),
            data,
        )
    }

    /// Number of spatial dimensions (1–3).
    pub fn ndim(&self) -> usize {
        match self {
            AnyGrid::D1(_) => 1,
            AnyGrid::D2(_) => 2,
            AnyGrid::D3(_) => 3,
        }
    }

    /// The interior extents as a [`Shape`].
    pub fn shape(&self) -> Shape {
        match self {
            AnyGrid::D1(g) => Shape::d1(g.n()),
            AnyGrid::D2(g) => Shape::d2(g.nx(), g.ny()),
            AnyGrid::D3(g) => Shape::d3(g.nx(), g.ny(), g.nz()),
        }
    }

    /// The interior in row-major order (x fastest) — the inverse of
    /// [`AnyGrid::from_vec`].
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            AnyGrid::D1(g) => g.interior().to_vec(),
            AnyGrid::D2(g) => {
                let mut v = Vec::with_capacity(g.nx() * g.ny());
                for y in 0..g.ny() {
                    v.extend_from_slice(g.row(y));
                }
                v
            }
            AnyGrid::D3(g) => {
                let mut v = Vec::with_capacity(g.nx() * g.ny() * g.nz());
                for z in 0..g.nz() {
                    for y in 0..g.ny() {
                        for x in 0..g.nx() {
                            v.push(g.get(z as isize, y as isize, x as isize));
                        }
                    }
                }
                v
            }
        }
    }

    /// The typed 1D view, if this is a 1D grid.
    pub fn as_grid1(&self) -> Option<&Grid1> {
        match self {
            AnyGrid::D1(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 2D view, if this is a 2D grid.
    pub fn as_grid2(&self) -> Option<&Grid2> {
        match self {
            AnyGrid::D2(g) => Some(g),
            _ => None,
        }
    }

    /// The typed 3D view, if this is a 3D grid.
    pub fn as_grid3(&self) -> Option<&Grid3> {
        match self {
            AnyGrid::D3(g) => Some(g),
            _ => None,
        }
    }
}

impl From<Grid1> for AnyGrid {
    fn from(g: Grid1) -> AnyGrid {
        AnyGrid::D1(g)
    }
}

impl From<Grid2> for AnyGrid {
    fn from(g: Grid2) -> AnyGrid {
        AnyGrid::D2(g)
    }
}

impl From<Grid3> for AnyGrid {
    fn from(g: Grid3) -> AnyGrid {
        AnyGrid::D3(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid1_geometry() {
        let g = Grid1::from_fn(37, -1.0, |i| i as f64);
        assert_eq!(g.n(), 37);
        assert_eq!(g.get(0), 0.0);
        assert_eq!(g.get(36), 36.0);
        assert_eq!(g.get(-1), -1.0);
        assert_eq!(g.get(37), -1.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.interior().len(), 37);
    }

    #[test]
    fn grid2_geometry() {
        let g = Grid2::from_fn(13, 5, 2, -3.0, |y, x| (y * 100 + x) as f64);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(4, 12), 412.0);
        assert_eq!(g.get(-1, 0), -3.0);
        assert_eq!(g.get(5, 3), -3.0);
        assert_eq!(g.get(2, -2), -3.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.row_stride() % 8, 0);
        assert_eq!(g.row(3)[7], 307.0);
        // second row interior start also 64B-aligned
        let p = unsafe { g.ptr().add(g.row_stride()) };
        assert_eq!(p as usize % 64, 0);
    }

    #[test]
    fn grid3_geometry() {
        let g = Grid3::from_fn(9, 4, 3, 1, 9.5, |z, y, x| (z * 10000 + y * 100 + x) as f64);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.get(2, 3, 8), 20308.0);
        assert_eq!(g.get(-1, 0, 0), 9.5);
        assert_eq!(g.get(3, 0, 0), 9.5);
        assert_eq!(g.get(1, -1, 2), 9.5);
        assert_eq!(g.get(1, 1, 9), 9.5);
        assert_eq!(g.ptr() as usize % 64, 0);
    }

    #[test]
    fn any_grid_round_trips_row_major() {
        let shape = Shape::d3(3, 2, 2);
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let g = AnyGrid::from_vec(shape, 1, -1.0, data.clone()).unwrap();
        assert_eq!(g.ndim(), 3);
        assert_eq!(g.shape(), shape);
        assert_eq!(g.to_vec(), data);
        // x fastest: element (z=1, y=0, x=2) is index (1·2 + 0)·3 + 2 = 8
        assert_eq!(g.as_grid3().unwrap().get(1, 0, 2), 8.0);
        assert_eq!(g.as_grid1(), None);

        let err = AnyGrid::from_vec(shape, 1, 0.0, vec![0.0; 5]).unwrap_err();
        assert_eq!(
            err,
            GridDataError::Len {
                expected: 12,
                got: 5
            }
        );
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn spec_aware_constructors_check_shape_and_boundary() {
        let spec: StencilSpec = "2d5p@periodic".parse().unwrap();

        // Happy path: refreshed boundaries get the wide (2×radius) halo
        // that stages the fused pass's t+1 level; fill = the boundary
        // constant.
        let g =
            AnyGrid::from_fn_spec(Shape::d2(12, 7), &spec, |_, y, x| (y * 100 + x) as f64).unwrap();
        let g2 = g.as_grid2().unwrap();
        assert_eq!(g2.ry(), 2 * spec.radius());
        assert_eq!(g2.get(-1, 0), 0.0, "halo filled with the boundary constant");

        // Dirichlet keeps the tight radius-wide halo.
        let tight: StencilSpec = "2d5p".parse().unwrap();
        let g = AnyGrid::from_fn_spec(Shape::d2(12, 7), &tight, |_, _, _| 0.0).unwrap();
        assert_eq!(g.as_grid2().unwrap().ry(), tight.radius());

        // Dirichlet fill value flows from the spec's boundary.
        let d: StencilSpec = "2d5p@dirichlet(2.5)".parse().unwrap();
        let g = AnyGrid::from_vec_spec(Shape::d2(3, 2), &d, vec![0.0; 6]).unwrap();
        assert_eq!(g.as_grid2().unwrap().get(-1, 0), 2.5);

        // Dimensionality mismatch.
        let err = AnyGrid::from_fn_spec(Shape::d1(64), &spec, |_, _, _| 0.0).unwrap_err();
        assert_eq!(err, GridDataError::Ndim { shape: 1, spec: 2 });
        assert!(err.to_string().contains("1D"), "{err}");

        // Shape/boundary mismatch: a folded boundary needs extents ≥ r.
        let wide: StencilSpec = "1d5p@reflect".parse().unwrap(); // r = 2
        let err = AnyGrid::from_fn_spec(Shape::d1(1), &wide, |_, _, _| 0.0).unwrap_err();
        assert_eq!(
            err,
            GridDataError::BoundaryExtent {
                axis: 0,
                extent: 1,
                radius: 2,
                boundary: crate::exec::Boundary::Reflect,
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("axis 0") && msg.contains("radius 2") && msg.contains("reflect"),
            "{msg}"
        );

        // Dirichlet never triggers the extent check (today's behavior).
        assert!(AnyGrid::from_vec_spec(Shape::d1(1), &"1d5p".parse().unwrap(), vec![1.0]).is_ok());
        // Bad data length still reports Len through the spec path.
        assert!(matches!(
            AnyGrid::from_vec_spec(Shape::d2(4, 4), &d, vec![0.0; 3]),
            Err(GridDataError::Len {
                expected: 16,
                got: 3
            })
        ));
    }

    #[test]
    fn clone_is_deep() {
        let mut g = Grid1::filled(16, 0.0);
        let h = g.clone();
        g.set(3, 42.0);
        assert_eq!(h.get(3), 0.0);
        assert_eq!(g.get(3), 42.0);
    }
}
