//! Aligned grid containers with constant (Dirichlet) halos.
//!
//! Geometry conventions shared by every kernel in this workspace:
//!
//! * the **interior** of each row starts `HALO_PAD = 8` doubles into the
//!   row, i.e. on a 64-byte boundary, and row strides are multiples of 8 —
//!   so every vector-set load/store is aligned for both AVX2 and AVX-512;
//! * halo cells of width `r` sit immediately left/right of the interior
//!   (and as whole rows/planes above/below in 2D/3D); they are *never
//!   updated* — they carry the boundary condition, which is what makes
//!   temporal tiling and the k=2 in-register pipeline well defined;
//! * kernels receive raw pointers to the interior origin and may index
//!   negatively into the halo.

use stencil_simd::AlignedBuf;

/// Doubles of padding on each side of a row interior. Must be ≥ the widest
/// vector (8) so the `reorg` method's aligned previous-vector load of the
/// first interior vector stays in bounds, and ≥ [`crate::stencil::MAX_R`].
pub const HALO_PAD: usize = 8;

#[inline]
fn round_up8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

/// 1D grid: `n` interior points plus constant halos.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid1 {
    buf: AlignedBuf,
    n: usize,
}

impl Grid1 {
    /// Create a grid with every cell (halo included) set to `fill`.
    pub fn filled(n: usize, fill: f64) -> Self {
        assert!(n > 0, "empty interior");
        let mut buf = AlignedBuf::zeroed(HALO_PAD + round_up8(n + HALO_PAD));
        buf.fill(fill);
        Grid1 { buf, n }
    }

    /// Create a grid whose interior is `f(i)` and whose halo is `halo`.
    pub fn from_fn(n: usize, halo: f64, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut g = Self::filled(n, halo);
        for i in 0..n {
            g.buf[HALO_PAD + i] = f(i);
        }
        g
    }

    /// Interior length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pointer to interior cell 0; halo readable at negative offsets down
    /// to `-HALO_PAD`.
    #[inline]
    pub fn ptr(&self) -> *const f64 {
        // SAFETY: HALO_PAD < buf.len() by construction.
        unsafe { self.buf.as_ptr().add(HALO_PAD) }
    }

    /// Mutable pointer to interior cell 0.
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut f64 {
        unsafe { self.buf.as_mut_ptr().add(HALO_PAD) }
    }

    /// Read cell `i`; `i` may range over `[-HALO_PAD, n + HALO_PAD)`.
    #[inline]
    pub fn get(&self, i: isize) -> f64 {
        let idx = HALO_PAD as isize + i;
        assert!(
            idx >= 0 && (idx as usize) < self.buf.len(),
            "index {i} out of range"
        );
        self.buf[idx as usize]
    }

    /// Write cell `i` (same range as [`Grid1::get`]).
    #[inline]
    pub fn set(&mut self, i: isize, v: f64) {
        let idx = HALO_PAD as isize + i;
        assert!(
            idx >= 0 && (idx as usize) < self.buf.len(),
            "index {i} out of range"
        );
        self.buf[idx as usize] = v;
    }

    /// Interior as a slice.
    #[inline]
    pub fn interior(&self) -> &[f64] {
        &self.buf[HALO_PAD..HALO_PAD + self.n]
    }

    /// Interior as a mutable slice.
    #[inline]
    pub fn interior_mut(&mut self) -> &mut [f64] {
        &mut self.buf[HALO_PAD..HALO_PAD + self.n]
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid1) {
        assert_eq!(self.n, src.n, "Grid1::copy_from geometry mismatch");
        self.buf.copy_from(&src.buf);
    }
}

/// 2D grid: `ny × nx` interior, row-major, with halo rows and columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2 {
    buf: AlignedBuf,
    nx: usize,
    ny: usize,
    /// Halo row count above/below the interior (= max radius supported).
    ry: usize,
    /// Row stride in doubles (multiple of 8).
    rs: usize,
}

impl Grid2 {
    /// Create with all cells (halos included) set to `fill`. `ry` is the
    /// number of halo rows kept above and below (pass the stencil radius).
    pub fn filled(nx: usize, ny: usize, ry: usize, fill: f64) -> Self {
        assert!(nx > 0 && ny > 0, "empty interior");
        let rs = HALO_PAD + round_up8(nx + HALO_PAD);
        let rows = ny + 2 * ry;
        let mut buf = AlignedBuf::zeroed(rs * rows);
        buf.fill(fill);
        Grid2 {
            buf,
            nx,
            ny,
            ry,
            rs,
        }
    }

    /// Create with interior `f(y, x)` and halo value `halo`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        ry: usize,
        halo: f64,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::filled(nx, ny, ry, halo);
        for y in 0..ny {
            for x in 0..nx {
                let idx = (g.ry + y) * g.rs + HALO_PAD + x;
                g.buf[idx] = f(y, x);
            }
        }
        g
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Row stride in doubles.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Halo row count.
    #[inline]
    pub fn ry(&self) -> usize {
        self.ry
    }

    /// Pointer to interior cell (0, 0).
    #[inline]
    pub fn ptr(&self) -> *const f64 {
        unsafe { self.buf.as_ptr().add(self.ry * self.rs + HALO_PAD) }
    }

    /// Mutable pointer to interior cell (0, 0).
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut f64 {
        unsafe { self.buf.as_mut_ptr().add(self.ry * self.rs + HALO_PAD) }
    }

    #[inline]
    fn idx(&self, y: isize, x: isize) -> usize {
        let iy = self.ry as isize + y;
        let ix = HALO_PAD as isize + x;
        assert!(
            iy >= 0 && (iy as usize) < self.ny + 2 * self.ry,
            "y={y} out of range"
        );
        assert!(ix >= 0 && (ix as usize) < self.rs, "x={x} out of range");
        iy as usize * self.rs + ix as usize
    }

    /// Read cell `(y, x)`; halo addressable with negative / overshooting
    /// indices.
    #[inline]
    pub fn get(&self, y: isize, x: isize) -> f64 {
        self.buf[self.idx(y, x)]
    }

    /// Write cell `(y, x)`.
    #[inline]
    pub fn set(&mut self, y: isize, x: isize, v: f64) {
        let i = self.idx(y, x);
        self.buf[i] = v;
    }

    /// Interior row `y` as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f64] {
        let start = (self.ry + y) * self.rs + HALO_PAD;
        &self.buf[start..start + self.nx]
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid2) {
        assert_eq!(
            (self.nx, self.ny, self.ry),
            (src.nx, src.ny, src.ry),
            "Grid2::copy_from geometry mismatch"
        );
        self.buf.copy_from(&src.buf);
    }
}

/// 3D grid: `nz × ny × nx` interior with halo planes/rows/columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3 {
    buf: AlignedBuf,
    nx: usize,
    ny: usize,
    nz: usize,
    /// Halo row/plane count (= max radius supported in y and z).
    r: usize,
    rs: usize,
    /// Plane stride in doubles.
    ps: usize,
}

impl Grid3 {
    /// Create with all cells (halos included) set to `fill`.
    pub fn filled(nx: usize, ny: usize, nz: usize, r: usize, fill: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty interior");
        let rs = HALO_PAD + round_up8(nx + HALO_PAD);
        let ps = rs * (ny + 2 * r);
        let mut buf = AlignedBuf::zeroed(ps * (nz + 2 * r));
        buf.fill(fill);
        Grid3 {
            buf,
            nx,
            ny,
            nz,
            r,
            rs,
            ps,
        }
    }

    /// Create with interior `f(z, y, x)` and halo value `halo`.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        r: usize,
        halo: f64,
        mut f: impl FnMut(usize, usize, usize) -> f64,
    ) -> Self {
        let mut g = Self::filled(nx, ny, nz, r, halo);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = (g.r + z) * g.ps + (g.r + y) * g.rs + HALO_PAD + x;
                    g.buf[idx] = f(z, y, x);
                }
            }
        }
        g
    }

    /// Interior width.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Interior depth.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Row stride in doubles.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.rs
    }

    /// Plane stride in doubles.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        self.ps
    }

    /// Halo width in rows/planes.
    #[inline]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Pointer to interior cell (0, 0, 0).
    #[inline]
    pub fn ptr(&self) -> *const f64 {
        unsafe {
            self.buf
                .as_ptr()
                .add(self.r * self.ps + self.r * self.rs + HALO_PAD)
        }
    }

    /// Mutable pointer to interior cell (0, 0, 0).
    #[inline]
    pub fn ptr_mut(&mut self) -> *mut f64 {
        unsafe {
            self.buf
                .as_mut_ptr()
                .add(self.r * self.ps + self.r * self.rs + HALO_PAD)
        }
    }

    #[inline]
    fn idx(&self, z: isize, y: isize, x: isize) -> usize {
        let iz = self.r as isize + z;
        let iy = self.r as isize + y;
        let ix = HALO_PAD as isize + x;
        assert!(
            iz >= 0 && (iz as usize) < self.nz + 2 * self.r,
            "z={z} out of range"
        );
        assert!(
            iy >= 0 && (iy as usize) < self.ny + 2 * self.r,
            "y={y} out of range"
        );
        assert!(ix >= 0 && (ix as usize) < self.rs, "x={x} out of range");
        iz as usize * self.ps + iy as usize * self.rs + ix as usize
    }

    /// Read cell `(z, y, x)`; halo addressable.
    #[inline]
    pub fn get(&self, z: isize, y: isize, x: isize) -> f64 {
        self.buf[self.idx(z, y, x)]
    }

    /// Write cell `(z, y, x)`.
    #[inline]
    pub fn set(&mut self, z: isize, y: isize, x: isize, v: f64) {
        let i = self.idx(z, y, x);
        self.buf[i] = v;
    }

    /// Overwrite every cell (halos included) with `src`'s, without
    /// reallocating. Panics if the geometries differ.
    pub fn copy_from(&mut self, src: &Grid3) {
        assert_eq!(
            (self.nx, self.ny, self.nz, self.r),
            (src.nx, src.ny, src.nz, src.r),
            "Grid3::copy_from geometry mismatch"
        );
        self.buf.copy_from(&src.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid1_geometry() {
        let g = Grid1::from_fn(37, -1.0, |i| i as f64);
        assert_eq!(g.n(), 37);
        assert_eq!(g.get(0), 0.0);
        assert_eq!(g.get(36), 36.0);
        assert_eq!(g.get(-1), -1.0);
        assert_eq!(g.get(37), -1.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.interior().len(), 37);
    }

    #[test]
    fn grid2_geometry() {
        let g = Grid2::from_fn(13, 5, 2, -3.0, |y, x| (y * 100 + x) as f64);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(4, 12), 412.0);
        assert_eq!(g.get(-1, 0), -3.0);
        assert_eq!(g.get(5, 3), -3.0);
        assert_eq!(g.get(2, -2), -3.0);
        assert_eq!(g.ptr() as usize % 64, 0);
        assert_eq!(g.row_stride() % 8, 0);
        assert_eq!(g.row(3)[7], 307.0);
        // second row interior start also 64B-aligned
        let p = unsafe { g.ptr().add(g.row_stride()) };
        assert_eq!(p as usize % 64, 0);
    }

    #[test]
    fn grid3_geometry() {
        let g = Grid3::from_fn(9, 4, 3, 1, 9.5, |z, y, x| (z * 10000 + y * 100 + x) as f64);
        assert_eq!(g.get(0, 0, 0), 0.0);
        assert_eq!(g.get(2, 3, 8), 20308.0);
        assert_eq!(g.get(-1, 0, 0), 9.5);
        assert_eq!(g.get(3, 0, 0), 9.5);
        assert_eq!(g.get(1, -1, 2), 9.5);
        assert_eq!(g.get(1, 1, 9), 9.5);
        assert_eq!(g.ptr() as usize % 64, 0);
    }

    #[test]
    fn clone_is_deep() {
        let mut g = Grid1::filled(16, 0.0);
        let h = g.clone();
        g.set(3, 42.0);
        assert_eq!(h.get(3), 0.0);
        assert_eq!(g.get(3), 42.0);
    }
}
