//! # stencil-core
//!
//! A faithful reproduction of *An Efficient Vectorization Scheme for
//! Stencil Computation* (Li, Yuan, Zhang, Yue, Cao, Lu — IPDPS 2022):
//! the local transpose layout, its vector-set stencil kernels, the k = 2
//! time unroll-and-jam, and every baseline the paper compares against
//! (multiple-loads, data-reorganization, DLT), for the paper's six
//! stencils (1D3P, 1D5P, 2D5P, 2D9P, 3D7P, 3D27P).
//!
//! ## Quick start
//!
//! Build a [`Plan`] once, run it many times — buffers and layout
//! transforms are amortized across calls. Two equivalent surfaces
//! exist:
//!
//! **Typed** — the stencil is a concrete type, zero dispatch anywhere:
//!
//! ```
//! use stencil_core::exec::{Plan, Shape};
//! use stencil_core::{Grid1, Method, S1d3p};
//! use stencil_simd::Isa;
//!
//! let n = 4096;
//! let mut plan = Plan::new(Shape::d1(n))
//!     .method(Method::TransLayout2)
//!     .isa(Isa::detect_best())
//!     .star1(S1d3p::heat())
//!     .unwrap();
//! let mut grid = Grid1::from_fn(n, 0.0, |i| if i == 2048 { 1.0 } else { 0.0 });
//! plan.run(&mut grid, 100);
//! assert!(grid.get(2048) > 0.0);
//! ```
//!
//! **Erased** — the stencil is a runtime value ([`StencilSpec`]), the
//! plan is a [`DynPlan`], and the results are
//! bit-identical to the typed path (one virtual call per `run` is the
//! entire overhead):
//!
//! ```
//! use stencil_core::exec::{Plan, Shape};
//! use stencil_core::{AnyGrid, StencilSpec};
//!
//! let spec: StencilSpec = "1d3p".parse().unwrap();
//! let shape = Shape::d1(4096);
//! let mut plan = Plan::new(shape).stencil(&spec).unwrap();
//! let mut grid =
//!     AnyGrid::from_fn(shape, spec.radius(), 0.0, |_, _, x| if x == 2048 { 1.0 } else { 0.0 });
//! plan.run(&mut grid, 100);
//! assert!(grid.to_vec()[2048] > 0.0);
//! ```
//!
//! See [`exec`] for the plan engine (including layout-resident sessions
//! and temporal tiling, which runs on all cores via a wavefront tile
//! scheduler under any boundary), [`spec`] for runtime stencil
//! descriptions,
//! [`api`] for the legacy per-call entry points, [`layout`] for the
//! data layouts, and [`kernels`] for the per-scheme implementations.

#![warn(missing_docs)]
// Index-based loops in the kernels are deliberate: the index arithmetic
// (lane positions, set offsets) is the algorithm; iterator adapters would
// obscure it and complicate the unroll-friendly shape LLVM needs.
#![allow(clippy::needless_range_loop)]

pub mod api;
pub mod exec;
pub mod grid;
pub mod kernels;
pub mod layout;
pub mod spec;
pub mod stencil;
pub mod verify;

pub use api::{run1_star1, run2_box, run2_star, run3_box, run3_star, run_spec, Method};
pub use exec::{
    AnyGridMut, Boundary, BoundaryReason, DynPlan, DynSession, Parallelism, Plan, PlanError, Shape,
    Tiling,
};
pub use grid::{AnyGrid, Grid1, Grid2, Grid3, HALO_PAD};
pub use layout::{DltGeo, SetGeo};
pub use spec::{SpecError, StencilShape, StencilSpec};
pub use stencil::{
    Box2, Box3, S1d3p, S1d5p, S2d5p, S2d9p, S3d27p, S3d7p, Star1, Star2, Star3, MAX_R,
};
