//! Vectorized kernels on the **natural (original) layout** — the two
//! conventional schemes the paper describes in §2.1 and uses as baselines:
//!
//! * `REORG = false` — **multiple loads**: every x-neighbour is an
//!   unaligned vector load (`2r` of the `2r+1` loads are unaligned). This
//!   "represents a class of auto-vectorization in modern compilers"
//!   (paper §4.2) and maximizes memory traffic.
//! * `REORG = true` — **data reorganization**: only aligned loads
//!   (previous / current / next vector), with every x-neighbour vector
//!   assembled by inter-register `alignr` shuffles — `4r` shuffle ops per
//!   *output vector* (the transpose layout needs that many per *vector
//!   set*, a `vl×` reduction).
//!
//! Both share one code path per stencil family; the `REORG` const folds at
//! monomorphization. Edges of the requested range that do not fill a whole
//! vector fall back to the scalar reference, preserving bit-identical
//! results.

use stencil_simd::Vector;

use super::scalar;
use crate::stencil::{Box2, Box3, Star1, Star2, Star3, MAX_R};

/// Splat the first `w.len()` weights into vector registers.
#[inline(always)]
pub(crate) unsafe fn splat_w<V: Vector, const N: usize>(w: &[f64]) -> [V; N] {
    let mut wv = [V::zero(); N];
    for o in 0..w.len() {
        wv[o] = V::splat_f64(w[o]);
    }
    wv
}

/// The x-neighbour vector at offset `d` from aligned position `i`.
///
/// # Safety
/// Aligned loads at `i ± LANES` must be in bounds (grid halo pads
/// guarantee this for `|d| ≤ R ≤ LANES`).
#[inline(always)]
unsafe fn xvec<V: Vector, const REORG: bool>(row: *const V::Elem, i: usize, d: isize) -> V {
    if REORG {
        let l = V::LANES as isize;
        if d == 0 {
            V::load(row.add(i))
        } else if d < 0 {
            let prev = V::load(row.offset(i as isize - l));
            let cur = V::load(row.add(i));
            V::alignr(cur, prev, (l + d) as usize)
        } else {
            let cur = V::load(row.add(i));
            let next = V::load(row.offset(i as isize + l));
            V::alignr(next, cur, d as usize)
        }
    } else {
        V::loadu(row.offset(i as isize + d))
    }
}

/// Vector-aligned sub-range of `[lo, hi)`: `(vlo, vhi)` with both multiples
/// of `lanes` and `lo ≤ vlo ≤ vhi ≤ hi`.
#[inline(always)]
fn vrange(lo: usize, hi: usize, lanes: usize) -> (usize, usize) {
    let vlo = lo.div_ceil(lanes) * lanes;
    if vlo >= hi {
        return (vlo, vlo);
    }
    (vlo, vlo + (hi - vlo) / lanes * lanes)
}

/// One Jacobi step of a 1D star stencil over `[lo, hi)`, original layout.
///
/// # Safety
/// Pointers valid over the range plus halo pads; `src != dst`.
#[inline(always)]
pub unsafe fn star1_orig<V: Vector, S: Star1, const REORG: bool>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    lo: usize,
    hi: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    debug_assert!(r <= l);
    let (vlo, vhi) = vrange(lo, hi, l);
    scalar::star1_range(src, dst, lo, vlo.min(hi), s);
    if vlo >= vhi {
        scalar::star1_range(src, dst, vlo.max(lo).min(hi), hi, s);
        return;
    }
    let wv: [V; 2 * MAX_R + 1] = splat_w(s.w());
    let mut i = vlo;
    while i < vhi {
        let mut acc = xvec::<V, REORG>(src, i, -(r as isize)).mul(wv[0]);
        for o in 1..=2 * r {
            acc = xvec::<V, REORG>(src, i, o as isize - r as isize).mul_add(wv[o], acc);
        }
        acc.store(dst.add(i));
        i += l;
    }
    scalar::star1_range(src, dst, vhi, hi, s);
}

/// One Jacobi step of a 2D star stencil over `[y0,y1) × [x0,x1)`, original
/// layout.
///
/// # Safety
/// Pointers valid over the range plus halo (rows `y ± R` addressable).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star2_orig<V: Vector, S: Star2, const REORG: bool>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let (vlo, vhi) = vrange(x0, x1, l);
    let wxv: [V; 2 * MAX_R + 1] = splat_w(s.wx());
    let wyv: [V; 2 * MAX_R + 1] = splat_w(s.wy());
    for y in y0..y1 {
        let row = src.add(y * rs);
        let drow = dst.add(y * rs);
        scalar::star2_range(src, dst, rs, y, y + 1, x0, vlo.min(x1), s);
        if vlo < vhi {
            let mut i = vlo;
            while i < vhi {
                let mut acc = xvec::<V, REORG>(row, i, -(r as isize)).mul(wxv[0]);
                for o in 1..=2 * r {
                    acc = xvec::<V, REORG>(row, i, o as isize - r as isize).mul_add(wxv[o], acc);
                }
                for d in 1..=r {
                    let up = V::load(row.offset(i as isize - (d * rs) as isize));
                    acc = up.mul_add(wyv[r - d], acc);
                    let dn = V::load(row.add(i + d * rs));
                    acc = dn.mul_add(wyv[r + d], acc);
                }
                acc.store(drow.add(i));
                i += l;
            }
            scalar::star2_range(src, dst, rs, y, y + 1, vhi, x1, s);
        } else {
            scalar::star2_range(src, dst, rs, y, y + 1, vlo.max(x0).min(x1), x1, s);
        }
    }
}

/// One Jacobi step of a 2D box stencil over `[y0,y1) × [x0,x1)`, original
/// layout.
///
/// # Safety
/// Pointers valid over the range plus halo.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box2_orig<V: Vector, S: Box2, const REORG: bool>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    debug_assert!(r <= 2, "box kernels sized for R<=2");
    let (vlo, vhi) = vrange(x0, x1, l);
    let wv: [V; 25] = splat_w(s.w());
    for y in y0..y1 {
        let drow = dst.add(y * rs);
        scalar::box2_range(src, dst, rs, y, y + 1, x0, vlo.min(x1), s);
        if vlo < vhi {
            let mut i = vlo;
            while i < vhi {
                let mut acc = V::zero();
                let mut k = 0usize;
                for dy in -(r as isize)..=r as isize {
                    let row = src.offset((y as isize + dy) * rs as isize);
                    for dx in -(r as isize)..=r as isize {
                        let v = xvec::<V, REORG>(row, i, dx);
                        if k == 0 {
                            acc = v.mul(wv[0]);
                        } else {
                            acc = v.mul_add(wv[k], acc);
                        }
                        k += 1;
                    }
                }
                acc.store(drow.add(i));
                i += l;
            }
            scalar::box2_range(src, dst, rs, y, y + 1, vhi, x1, s);
        } else {
            scalar::box2_range(src, dst, rs, y, y + 1, vlo.max(x0).min(x1), x1, s);
        }
    }
}

/// One Jacobi step of a 3D star stencil over a box of cells, original
/// layout.
///
/// # Safety
/// Pointers valid over the range plus halo.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_orig<V: Vector, S: Star3, const REORG: bool>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    z0: usize,
    z1: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let (vlo, vhi) = vrange(x0, x1, l);
    let wxv: [V; 2 * MAX_R + 1] = splat_w(s.wx());
    let wyv: [V; 2 * MAX_R + 1] = splat_w(s.wy());
    let wzv: [V; 2 * MAX_R + 1] = splat_w(s.wz());
    for z in z0..z1 {
        for y in y0..y1 {
            let row = src.add(z * ps + y * rs);
            let drow = dst.add(z * ps + y * rs);
            scalar::star3_range(src, dst, rs, ps, z, z + 1, y, y + 1, x0, vlo.min(x1), s);
            if vlo < vhi {
                let mut i = vlo;
                while i < vhi {
                    let mut acc = xvec::<V, REORG>(row, i, -(r as isize)).mul(wxv[0]);
                    for o in 1..=2 * r {
                        acc =
                            xvec::<V, REORG>(row, i, o as isize - r as isize).mul_add(wxv[o], acc);
                    }
                    for d in 1..=r {
                        acc = V::load(row.offset(i as isize - (d * rs) as isize))
                            .mul_add(wyv[r - d], acc);
                        acc = V::load(row.add(i + d * rs)).mul_add(wyv[r + d], acc);
                    }
                    for d in 1..=r {
                        acc = V::load(row.offset(i as isize - (d * ps) as isize))
                            .mul_add(wzv[r - d], acc);
                        acc = V::load(row.add(i + d * ps)).mul_add(wzv[r + d], acc);
                    }
                    acc.store(drow.add(i));
                    i += l;
                }
                scalar::star3_range(src, dst, rs, ps, z, z + 1, y, y + 1, vhi, x1, s);
            } else {
                scalar::star3_range(
                    src,
                    dst,
                    rs,
                    ps,
                    z,
                    z + 1,
                    y,
                    y + 1,
                    vlo.max(x0).min(x1),
                    x1,
                    s,
                );
            }
        }
    }
}

/// One Jacobi step of a 3D box stencil over a box of cells, original
/// layout.
///
/// # Safety
/// Pointers valid over the range plus halo.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box3_orig<V: Vector, S: Box3, const REORG: bool>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    z0: usize,
    z1: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    debug_assert!(r <= 1, "box3 kernels sized for R<=1");
    let (vlo, vhi) = vrange(x0, x1, l);
    let wv: [V; 27] = splat_w(s.w());
    for z in z0..z1 {
        for y in y0..y1 {
            let drow = dst.add(z * ps + y * rs);
            scalar::box3_range(src, dst, rs, ps, z, z + 1, y, y + 1, x0, vlo.min(x1), s);
            if vlo < vhi {
                let mut i = vlo;
                while i < vhi {
                    let mut acc = V::zero();
                    let mut k = 0usize;
                    for dz in -(r as isize)..=r as isize {
                        for dy in -(r as isize)..=r as isize {
                            let row = src.offset(
                                (z as isize + dz) * ps as isize + (y as isize + dy) * rs as isize,
                            );
                            for dx in -(r as isize)..=r as isize {
                                let v = xvec::<V, REORG>(row, i, dx);
                                if k == 0 {
                                    acc = v.mul(wv[0]);
                                } else {
                                    acc = v.mul_add(wv[k], acc);
                                }
                                k += 1;
                            }
                        }
                    }
                    acc.store(drow.add(i));
                    i += l;
                }
                scalar::box3_range(src, dst, rs, ps, z, z + 1, y, y + 1, vhi, x1, s);
            } else {
                scalar::box3_range(
                    src,
                    dst,
                    rs,
                    ps,
                    z,
                    z + 1,
                    y,
                    y + 1,
                    vlo.max(x0).min(x1),
                    x1,
                    s,
                );
            }
        }
    }
}
