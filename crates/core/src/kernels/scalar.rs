//! Scalar reference kernels — the correctness oracle for every vectorized
//! method.
//!
//! Each kernel accumulates in the family's canonical order (see
//! [`crate::stencil`]) using the element's fused `mul_add`, so a
//! vectorized kernel that follows the same order produces
//! **bit-identical** results. The kernels are generic over the element
//! type ([`Elem`]): weights live in the stencil traits as `f64` and are
//! rounded to the element type exactly once per use via
//! [`Elem::from_f64`] — the identity for `f64`, and the same rounding
//! the SIMD paths apply when they splat weights into `f32` registers,
//! which is what keeps the f32 oracle and the f32 vector kernels
//! bit-identical to each other.
//!
//! All kernels are range-based over raw pointers so the tiling substrate
//! can reuse them on tile sub-ranges; safe full-grid wrappers live in
//! [`crate::api`].

use stencil_simd::Elem;

use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Canonical 1D star accumulation at cell `i`.
///
/// # Safety
/// `src` must be valid at `i ± R` (halo included).
#[inline(always)]
pub unsafe fn acc_star1<T: Elem, S: Star1>(src: *const T, i: isize, s: &S) -> T {
    let w = s.w();
    let r = S::R as isize;
    let mut acc = T::from_f64(w[0]) * *src.offset(i - r);
    for o in 1..=2 * S::R {
        acc = (*src.offset(i - r + o as isize)).mul_add(T::from_f64(w[o]), acc);
    }
    acc
}

/// Canonical 2D star accumulation at `(y, x)` given the row stride.
///
/// # Safety
/// `src` must be valid at `(y ± R, x ± R)`.
#[inline(always)]
pub unsafe fn acc_star2<T: Elem, S: Star2>(
    src: *const T,
    rs: usize,
    y: isize,
    x: isize,
    s: &S,
) -> T {
    let (wx, wy) = (s.wx(), s.wy());
    let r = S::R as isize;
    let row = src.offset(y * rs as isize);
    let mut acc = T::from_f64(wx[0]) * *row.offset(x - r);
    for o in 1..=2 * S::R {
        acc = (*row.offset(x - r + o as isize)).mul_add(T::from_f64(wx[o]), acc);
    }
    for d in 1..=S::R {
        let di = d as isize;
        acc = (*src.offset((y - di) * rs as isize + x)).mul_add(T::from_f64(wy[S::R - d]), acc);
        acc = (*src.offset((y + di) * rs as isize + x)).mul_add(T::from_f64(wy[S::R + d]), acc);
    }
    acc
}

/// Canonical 2D box accumulation at `(y, x)`.
///
/// # Safety
/// `src` must be valid at `(y ± R, x ± R)`.
#[inline(always)]
pub unsafe fn acc_box2<T: Elem, S: Box2>(src: *const T, rs: usize, y: isize, x: isize, s: &S) -> T {
    let w = s.w();
    let r = S::R as isize;
    let width = 2 * S::R + 1;
    let mut acc = T::from_f64(w[0]) * *src.offset((y - r) * rs as isize + x - r);
    let mut k = 1usize;
    for dy in -r..=r {
        let row = src.offset((y + dy) * rs as isize);
        let dx0 = if dy == -r { -r + 1 } else { -r };
        for dx in dx0..=r {
            acc = (*row.offset(x + dx)).mul_add(T::from_f64(w[k]), acc);
            k += 1;
        }
    }
    debug_assert_eq!(k, width * width);
    acc
}

/// Canonical 3D star accumulation at `(z, y, x)`.
///
/// # Safety
/// `src` must be valid at `(z ± R, y ± R, x ± R)`.
#[inline(always)]
pub unsafe fn acc_star3<T: Elem, S: Star3>(
    src: *const T,
    rs: usize,
    ps: usize,
    z: isize,
    y: isize,
    x: isize,
    s: &S,
) -> T {
    let (wx, wy, wz) = (s.wx(), s.wy(), s.wz());
    let r = S::R as isize;
    let row = src.offset(z * ps as isize + y * rs as isize);
    let mut acc = T::from_f64(wx[0]) * *row.offset(x - r);
    for o in 1..=2 * S::R {
        acc = (*row.offset(x - r + o as isize)).mul_add(T::from_f64(wx[o]), acc);
    }
    for d in 1..=S::R {
        let di = d as isize;
        acc = (*src.offset(z * ps as isize + (y - di) * rs as isize + x))
            .mul_add(T::from_f64(wy[S::R - d]), acc);
        acc = (*src.offset(z * ps as isize + (y + di) * rs as isize + x))
            .mul_add(T::from_f64(wy[S::R + d]), acc);
    }
    for d in 1..=S::R {
        let di = d as isize;
        acc = (*src.offset((z - di) * ps as isize + y * rs as isize + x))
            .mul_add(T::from_f64(wz[S::R - d]), acc);
        acc = (*src.offset((z + di) * ps as isize + y * rs as isize + x))
            .mul_add(T::from_f64(wz[S::R + d]), acc);
    }
    acc
}

/// Canonical 3D box accumulation at `(z, y, x)`.
///
/// # Safety
/// `src` must be valid at `(z ± R, y ± R, x ± R)`.
#[inline(always)]
pub unsafe fn acc_box3<T: Elem, S: Box3>(
    src: *const T,
    rs: usize,
    ps: usize,
    z: isize,
    y: isize,
    x: isize,
    s: &S,
) -> T {
    let w = s.w();
    let r = S::R as isize;
    let mut acc =
        T::from_f64(w[0]) * *src.offset((z - r) * ps as isize + (y - r) * rs as isize + x - r);
    let mut k = 1usize;
    let mut first = true;
    for dz in -r..=r {
        for dy in -r..=r {
            let row = src.offset((z + dz) * ps as isize + (y + dy) * rs as isize);
            for dx in -r..=r {
                if first {
                    first = false;
                    continue; // already in acc
                }
                acc = (*row.offset(x + dx)).mul_add(T::from_f64(w[k]), acc);
                k += 1;
            }
        }
    }
    acc
}

/// One Jacobi step of a 1D star stencil over cells `[lo, hi)`.
///
/// # Safety
/// Pointers valid over the range plus radius-`R` halo; `src != dst`.
pub unsafe fn star1_range<T: Elem, S: Star1>(
    src: *const T,
    dst: *mut T,
    lo: usize,
    hi: usize,
    s: &S,
) {
    for i in lo..hi {
        *dst.add(i) = acc_star1(src, i as isize, s);
    }
}

/// One Jacobi step of a 2D star stencil over `[y0, y1) × [x0, x1)`.
///
/// # Safety
/// Pointers valid over the range plus halo; `src != dst`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn star2_range<T: Elem, S: Star2>(
    src: *const T,
    dst: *mut T,
    rs: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for y in y0..y1 {
        for x in x0..x1 {
            *dst.add(y * rs + x) = acc_star2(src, rs, y as isize, x as isize, s);
        }
    }
}

/// One Jacobi step of a 2D box stencil over `[y0, y1) × [x0, x1)`.
///
/// # Safety
/// Pointers valid over the range plus halo; `src != dst`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn box2_range<T: Elem, S: Box2>(
    src: *const T,
    dst: *mut T,
    rs: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for y in y0..y1 {
        for x in x0..x1 {
            *dst.add(y * rs + x) = acc_box2(src, rs, y as isize, x as isize, s);
        }
    }
}

/// One Jacobi step of a 3D star stencil over the given box of cells.
///
/// # Safety
/// Pointers valid over the range plus halo; `src != dst`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_range<T: Elem, S: Star3>(
    src: *const T,
    dst: *mut T,
    rs: usize,
    ps: usize,
    z0: usize,
    z1: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for z in z0..z1 {
        for y in y0..y1 {
            for x in x0..x1 {
                *dst.add(z * ps + y * rs + x) =
                    acc_star3(src, rs, ps, z as isize, y as isize, x as isize, s);
            }
        }
    }
}

/// One Jacobi step of a 3D box stencil over the given box of cells.
///
/// # Safety
/// Pointers valid over the range plus halo; `src != dst`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn box3_range<T: Elem, S: Box3>(
    src: *const T,
    dst: *mut T,
    rs: usize,
    ps: usize,
    z0: usize,
    z1: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for z in z0..z1 {
        for y in y0..y1 {
            for x in x0..x1 {
                *dst.add(z * ps + y * rs + x) =
                    acc_box3(src, rs, ps, z as isize, y as isize, x as isize, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid1;
    use crate::stencil::{S1d3p, S1d5p};

    #[test]
    fn star1_weighted_sum() {
        let g = Grid1::from_fn(8, 10.0, |i| i as f64);
        let mut out = Grid1::filled(8, 10.0);
        let s = S1d3p { w: [1.0, 2.0, 4.0] };
        unsafe { star1_range(g.ptr(), out.ptr_mut(), 0, 8, &s) };
        // cell 0: 1*halo(10) + 2*0 + 4*1 = 14
        assert_eq!(out.get(0), 14.0);
        // cell 3: 1*2 + 2*3 + 4*4 = 24
        assert_eq!(out.get(3), 24.0);
        // cell 7: 1*6 + 2*7 + 4*halo(10) = 60
        assert_eq!(out.get(7), 60.0);
    }

    #[test]
    fn star1_weighted_sum_f32() {
        let g = Grid1::<f32>::from_fn(8, 10.0, |i| i as f32);
        let mut out = Grid1::<f32>::filled(8, 10.0);
        let s = S1d3p { w: [1.0, 2.0, 4.0] };
        unsafe { star1_range(g.ptr(), out.ptr_mut(), 0, 8, &s) };
        assert_eq!(out.get(0), 14.0);
        assert_eq!(out.get(3), 24.0);
        assert_eq!(out.get(7), 60.0);
    }

    #[test]
    fn star1_r2_reaches_two_cells() {
        let g = Grid1::from_fn(6, 0.0, |i| (i + 1) as f64);
        let mut out = Grid1::filled(6, 0.0);
        let s = S1d5p {
            w: [1.0, 0.0, 0.0, 0.0, 1.0],
        };
        unsafe { star1_range(g.ptr(), out.ptr_mut(), 0, 6, &s) };
        // out[i] = in[i-2] + in[i+2]
        assert_eq!(out.get(2), 1.0 + 5.0);
        assert_eq!(out.get(0), 0.0 + 3.0);
        assert_eq!(out.get(5), 4.0 + 0.0);
    }
}
