//! Kernels on the paper's **local transpose layout** (§3.2), k = 1.
//!
//! The unit of work is a *vector set*: `vl` vectors holding one transposed
//! `vl²` block. Inside a set, the stencil's x-dependences of vector `j`
//! are vectors `j±o` of the same set — plain aligned register reuse, no
//! shuffles. Only the `2r` dependent vectors that overhang the set's ends
//! are assembled, each with the two-instruction blend+rotate `Assemble`
//! (`4r` data-reorganization ops per set, vs. per vector for the
//! data-reorganization baseline — the `vl×` saving at the heart of the
//! paper).
//!
//! y/z neighbours (2D/3D) live at the *same transposed offset* in
//! neighbouring rows, so they are single aligned loads — the layout only
//! affects the unit-stride dimension (§3.4).
//!
//! Cells past the transposed region (the row tail) are updated by a
//! scalar path through the [`crate::layout::SetGeo`] index map, the
//! "simple data reorganization method" the paper prescribes for boundary
//! sets (Fig. 5d). Sets only *partially* covered by the requested range
//! — the common case for staged tiles, whose update range shifts by `r`
//! every chunk step — still ride the full vector pipeline in the 2D/3D
//! row helpers: the set's output block is snapshotted, all `vl` vectors
//! are stored, and the out-of-range cells get their snapshot back.
//! Lane-wise vector math never mixes lanes, so the kept cells consume
//! only in-contract reads and stay bit-identical to the scalar path;
//! the 1D kernel keeps the scalar edges because parallel 1D runs split
//! the one row along x, where a store-all/restore would race. Both set
//! ends of every covered row need `±r` raw halo cells addressable (grid
//! halos, or the staging arena's pad) since the edge-set overhangs are
//! always fetched.

use stencil_simd::{Elem, Vector};

use super::orig::splat_w;
use crate::layout::{tl_read, tl_write, SetGeo};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3, MAX_R};

/// x-part of a set update: given the set's vectors plus the neighbouring
/// sets' overhanging vectors, produce the `vl` output vectors of a 1D star
/// accumulation in canonical order.
///
/// `prev_last[q]` must be the previous set's vector `vl-r+q` (or, at the
/// domain edge, a vector whose last lane is the halo cell `A[-(r-q)]`);
/// `next_first[q]` the next set's vector `q` (or a vector whose first lane
/// is the cell just past the set block).
///
/// # Safety
/// Feature context for `V`; `r = S::R ≤ V::LANES`.
#[inline(always)]
pub(crate) unsafe fn xpart_set<V: Vector>(
    v: &[V; 16],
    prev_last: &[V; MAX_R],
    next_first: &[V; MAX_R],
    wv: &[V; 2 * MAX_R + 1],
    r: usize,
    out: &mut [V; 16],
) {
    let l = V::LANES;
    // Extended window: [left_r .. left_1 | v_0 .. v_{l-1} | right_1 .. right_r]
    // so position p of the stencil maps to ext[r + p] with no lane-select
    // branches — the whole window stays in registers after unrolling.
    // Sized for the widest register file: 16 lanes (f32 AVX-512).
    let mut ext = [V::zero(); 16 + 2 * MAX_R];
    for o in 1..=r {
        ext[r - o] = V::assemble_left(prev_last[r - o], v[l - o]);
        ext[r + l + o - 1] = V::assemble_right(v[o - 1], next_first[o - 1]);
    }
    for (j, e) in ext.iter_mut().skip(r).take(l).enumerate() {
        *e = v[j];
    }
    for j in 0..l {
        let mut acc = ext[j].mul(wv[0]);
        for o in 1..=2 * r {
            acc = ext[j + o].mul_add(wv[o], acc);
        }
        out[j] = acc;
    }
}

/// Load the `vl` vectors of set `set` from a transposed row.
#[inline(always)]
unsafe fn load_set<V: Vector>(row: *const V::Elem, set: usize) -> [V; 16] {
    let l = V::LANES;
    let base = set * l * l;
    let mut v = [V::zero(); 16];
    for j in 0..l {
        v[j] = V::load(row.add(base + j * l));
    }
    v
}

/// The previous set's last `r` vectors for `set` (register-free variant:
/// loaded from memory; at the domain edge, splats of halo cells).
#[inline(always)]
pub(crate) unsafe fn prev_last_of<V: Vector>(
    row: *const V::Elem,
    set: usize,
    r: usize,
) -> [V; MAX_R] {
    let l = V::LANES;
    let bs = l * l;
    let mut p = [V::zero(); MAX_R];
    if set == 0 {
        for q in 0..r {
            // lane l-1 must be the halo cell A[-(r-q)]; a splat suffices.
            p[q] = V::splat(*row.offset(q as isize - r as isize));
        }
    } else {
        for q in 0..r {
            p[q] = V::load(row.add((set - 1) * bs + (l - r + q) * l));
        }
    }
    p
}

/// The next set's first `r` vectors for `set` (at the last set, splats of
/// the natural-layout cells just past the transposed region).
#[inline(always)]
pub(crate) unsafe fn next_first_of<V: Vector>(
    row: *const V::Elem,
    set: usize,
    nsets: usize,
    r: usize,
) -> [V; MAX_R] {
    let l = V::LANES;
    let bs = l * l;
    let base = set * bs;
    let mut nf = [V::zero(); MAX_R];
    for q in 0..r {
        nf[q] = if set + 1 < nsets {
            V::load(row.add(base + bs + q * l))
        } else {
            // lane 0 must be the cell at logical base+bs+q (tail or halo,
            // both stored naturally).
            V::splat(*row.add(base + bs + q))
        };
    }
    nf
}

/// Split `[x0, x1)` into (scalar-left, full sets, scalar-right) pieces.
#[inline(always)]
fn set_split(geo: &SetGeo, x0: usize, x1: usize) -> (usize, usize) {
    let s0 = x0.div_ceil(geo.bs);
    let s1 = (x1 / geo.bs).min(geo.nsets);
    (s0, s1)
}

/// Split `[x0, x1)` into the covered-set range `[sa, sb)` (every set
/// overlapping the transposed portion, partially or fully) and the
/// natural-tail start `ve`: the 2D/3D row helpers run *every* covered
/// set through the full vector pipeline — saving and restoring the
/// out-of-range cells of partial edge sets — so only the natural tail
/// stays scalar. (The staged tiled path shifts its range by `r` each
/// chunk step, so nearly every row-step ends in two partial sets; the
/// scalar `tl_read` path there used to dominate the whole kernel.)
#[inline(always)]
fn set_cover(geo: &SetGeo, x0: usize, x1: usize) -> (usize, usize, usize) {
    let ve = x1.min(geo.tail_start);
    if x0 >= ve {
        return (0, 0, ve);
    }
    (x0 / geo.bs, ve.div_ceil(geo.bs), ve)
}

/// Largest `vl²` block any register class produces (16 lanes, f32
/// AVX-512) — sizes the partial-set save buffer. The buffer stays
/// uninitialized (a zeroed 2 KiB stack array per row call would cost
/// more than the partial sets it serves): `save_outside` writes
/// exactly the slots `restore_outside` reads.
const MAX_BS: usize = 256;

/// Snapshot the cells of the set block at `base` whose *logical* index
/// falls outside `[lo, hi)` — only those get restored after the
/// partial-set store, so only those are saved (typically ~`r` per
/// range end per step, far cheaper than copying the whole `vl²`
/// block).
///
/// # Safety
/// `dst[base .. base + geo.bs)` addressable; `geo.bs ≤ MAX_BS`.
#[inline(always)]
unsafe fn save_outside<T: Elem>(
    dst: *const T,
    geo: &SetGeo,
    base: usize,
    lo: usize,
    hi: usize,
    saved: &mut [std::mem::MaybeUninit<T>; MAX_BS],
) {
    for i in (base..lo).chain(hi..base + geo.bs) {
        let p = geo.map(i);
        saved[p - base].write(*dst.add(p));
    }
}

/// Undo a partial set's out-of-range stores: every cell of the block at
/// `base` whose *logical* index falls outside `[lo, hi)` gets its saved
/// value back. The kept lanes are untouched — they were computed from
/// in-contract reads only (lane-wise vector math never mixes lanes), so
/// the net effect of store-all + restore is exactly the scalar path's
/// masked update, at vector speed.
///
/// # Safety
/// Same block addressability as [`save_outside`], which must have run
/// with the same `(base, lo, hi)` before the stores (that is what
/// initializes every slot read here).
#[inline(always)]
unsafe fn restore_outside<T: Elem>(
    dst: *mut T,
    geo: &SetGeo,
    base: usize,
    lo: usize,
    hi: usize,
    saved: &[std::mem::MaybeUninit<T>; MAX_BS],
) {
    for i in (base..lo).chain(hi..base + geo.bs) {
        let p = geo.map(i);
        *dst.add(p) = saved[p - base].assume_init();
    }
}

// ---------------------------------------------------------------------------
// 1D star
// ---------------------------------------------------------------------------

/// Scalar fallback over the transpose layout (mapped reads/writes).
///
/// # Safety
/// Row pointers valid with halo; `lo ≤ hi ≤ n`.
#[inline(always)]
unsafe fn star1_tl_scalar<T: Elem, S: Star1>(
    src: *const T,
    dst: *mut T,
    lo: usize,
    hi: usize,
    geo: &SetGeo,
    s: &S,
) {
    let w = s.w();
    let cv = T::from_f64;
    let r = S::R as isize;
    for i in lo..hi {
        let ii = i as isize;
        let mut acc = cv(w[0]) * tl_read(src, ii - r, geo);
        for o in 1..=2 * S::R {
            acc = tl_read(src, ii - r + o as isize, geo).mul_add(cv(w[o]), acc);
        }
        tl_write(dst, i, acc, geo);
    }
}

/// One Jacobi step of a 1D star stencil over logical cells `[x0, x1)` of a
/// row of `n` cells in transpose layout.
///
/// # Safety
/// `src`/`dst` point at interior origins of rows in transpose layout with
/// halos addressable; `src != dst`; `S::R ≤ V::LANES`.
#[inline(always)]
pub unsafe fn star1_tl<V: Vector, S: Star1>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    n: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    debug_assert!(r <= l);
    let geo = SetGeo::new(n, l);
    let (s0, s1) = set_split(&geo, x0, x1);
    if s0 >= s1 {
        star1_tl_scalar(src, dst, x0, x1, &geo, s);
        return;
    }
    star1_tl_scalar(src, dst, x0, s0 * geo.bs, &geo, s);
    star1_tl_scalar(src, dst, s1 * geo.bs, x1, &geo, s);

    let wv: [V; 2 * MAX_R + 1] = splat_w(s.w());
    // Carry the previous set's last r vectors in registers across the
    // sweep (the vrl of Algorithm 1) instead of reloading them.
    let mut carry = prev_last_of::<V>(src, s0, r);
    let mut out = [V::zero(); 16];
    for set in s0..s1 {
        let v = load_set::<V>(src, set);
        let nf = next_first_of::<V>(src, set, geo.nsets, r);
        xpart_set::<V>(&v, &carry, &nf, &wv, r, &mut out);
        let base = set * geo.bs;
        for j in 0..l {
            out[j].store(dst.add(base + j * l));
        }
        for q in 0..r {
            carry[q] = v[l - r + q];
        }
    }
}

// ---------------------------------------------------------------------------
// 2D star — row helper shared by k=1 and the k=2 ring pipeline
// ---------------------------------------------------------------------------

/// One row of a 2D star stencil in transpose layout: the x-part runs on
/// the vector-set machinery; the y-part adds aligned loads from the
/// `2r` neighbour-row pointers at identical transposed offsets.
///
/// `ym[d-1]` / `yp[d-1]` must point at the interior origin of row `y∓d`
/// (halo rows included), all in the same layout/geometry.
///
/// # Safety
/// All row pointers valid with halos; `dst` disjoint from every source row.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star2_row_tl<V: Vector, S: Star2>(
    c: *const V::Elem,
    ym: &[*const V::Elem; MAX_R],
    yp: &[*const V::Elem; MAX_R],
    dst: *mut V::Elem,
    n: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = SetGeo::new(n, l);

    // scalar partials through the index map (natural tail only)
    let scalar_part = |lo: usize, hi: usize| {
        let wx = s.wx();
        let wy = s.wy();
        let cv = <V::Elem as Elem>::from_f64;
        let ri = r as isize;
        for i in lo..hi {
            let ii = i as isize;
            let mut acc = cv(wx[0]) * tl_read(c, ii - ri, &geo);
            for o in 1..=2 * r {
                acc = tl_read(c, ii - ri + o as isize, &geo).mul_add(cv(wx[o]), acc);
            }
            for d in 1..=r {
                acc = tl_read(ym[d - 1], ii, &geo).mul_add(cv(wy[r - d]), acc);
                acc = tl_read(yp[d - 1], ii, &geo).mul_add(cv(wy[r + d]), acc);
            }
            tl_write(dst, i, acc, &geo);
        }
    };
    let (sa, sb, ve) = set_cover(&geo, x0, x1);
    if sa >= sb {
        scalar_part(x0, x1);
        return;
    }
    scalar_part(ve, x1);

    let wxv: [V; 2 * MAX_R + 1] = splat_w(s.wx());
    let wyv: [V; 2 * MAX_R + 1] = splat_w(s.wy());
    let mut carry = prev_last_of::<V>(c, sa, r);
    let mut out = [V::zero(); 16];
    let mut saved = [std::mem::MaybeUninit::<V::Elem>::uninit(); MAX_BS];
    for set in sa..sb {
        let base = set * geo.bs;
        let (lo, hi) = (x0.max(base), ve.min(base + geo.bs));
        let partial = (lo, hi) != (base, base + geo.bs);
        if partial {
            save_outside(dst, &geo, base, lo, hi, &mut saved);
        }
        let v = load_set::<V>(c, set);
        let nf = next_first_of::<V>(c, set, geo.nsets, r);
        xpart_set::<V>(&v, &carry, &nf, &wxv, r, &mut out);
        for j in 0..l {
            let mut acc = out[j];
            for d in 1..=r {
                acc = V::load(ym[d - 1].add(base + j * l)).mul_add(wyv[r - d], acc);
                acc = V::load(yp[d - 1].add(base + j * l)).mul_add(wyv[r + d], acc);
            }
            acc.store(dst.add(base + j * l));
        }
        for q in 0..r {
            carry[q] = v[l - r + q];
        }
        if partial {
            restore_outside(dst, &geo, base, lo, hi, &saved);
        }
    }
}

/// One Jacobi step of a 2D star stencil over `[y0,y1) × [x0,x1)`,
/// transpose layout.
///
/// # Safety
/// As [`star2_row_tl`], with rows `y0-R .. y1+R` addressable in `src`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star2_tl<V: Vector, S: Star2>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    nx: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for y in y0..y1 {
        let c = src.add(y * rs);
        let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, S::R);
        star2_row_tl::<V, S>(c, &ym, &yp, dst.add(y * rs), nx, x0, x1, s);
    }
}

/// Neighbour-row pointer pairs `(y-d, y+d)` for `d = 1..=r`.
#[inline(always)]
pub(crate) unsafe fn row_nbrs<T, const N: usize>(
    c: *const T,
    stride: usize,
    r: usize,
) -> ([*const T; N], [*const T; N]) {
    let mut ym = [c; N];
    let mut yp = [c; N];
    for d in 1..=r {
        ym[d - 1] = c.offset(-((d * stride) as isize));
        yp[d - 1] = c.add(d * stride);
    }
    (ym, yp)
}

// ---------------------------------------------------------------------------
// 2D box — row helper
// ---------------------------------------------------------------------------

/// One row of a 2D box stencil in transpose layout. `rows[R+dy]` points at
/// the interior origin of row `y+dy`; every row contributes x-offsets
/// `-R..=R`, with its own assembled overhang vectors at set boundaries.
///
/// # Safety
/// All row pointers valid with halos; `dst` disjoint from sources.
#[inline(always)]
pub unsafe fn box2_row_tl<V: Vector, S: Box2>(
    rows: &[*const V::Elem; 5],
    dst: *mut V::Elem,
    n: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    debug_assert!(r <= 2);
    let geo = SetGeo::new(n, l);
    let nrows = 2 * r + 1;

    let scalar_part = |lo: usize, hi: usize| {
        let w = s.w();
        let cv = <V::Elem as Elem>::from_f64;
        let ri = r as isize;
        for i in lo..hi {
            let ii = i as isize;
            let mut acc = <V::Elem as Elem>::ZERO;
            let mut k = 0usize;
            for row in rows.iter().take(nrows) {
                for dx in -ri..=ri {
                    let val = tl_read(*row, ii + dx, &geo);
                    if k == 0 {
                        acc = cv(w[0]) * val;
                    } else {
                        acc = val.mul_add(cv(w[k]), acc);
                    }
                    k += 1;
                }
            }
            tl_write(dst, i, acc, &geo);
        }
    };
    let (sa, sb, ve) = set_cover(&geo, x0, x1);
    if sa >= sb {
        scalar_part(x0, x1);
        return;
    }
    scalar_part(ve, x1);

    let wv: [V; 25] = splat_w(s.w());
    let mut saved = [std::mem::MaybeUninit::<V::Elem>::uninit(); MAX_BS];
    for set in sa..sb {
        let base = set * geo.bs;
        let (lo, hi) = (x0.max(base), ve.min(base + geo.bs));
        let partial = (lo, hi) != (base, base + geo.bs);
        if partial {
            save_outside(dst, &geo, base, lo, hi, &mut saved);
        }
        // Per neighbour row: assembled overhangs (2r assembles per row per
        // set — still vl× cheaper than per-vector reorganization).
        let mut left = [[V::zero(); MAX_R]; 5];
        let mut right = [[V::zero(); MAX_R]; 5];
        for (k, row) in rows.iter().enumerate().take(nrows) {
            let pl = prev_last_of::<V>(*row, set, r);
            let nf = next_first_of::<V>(*row, set, geo.nsets, r);
            for o in 1..=r {
                left[k][o - 1] = V::assemble_left(pl[r - o], V::load(row.add(base + (l - o) * l)));
                right[k][o - 1] =
                    V::assemble_right(V::load(row.add(base + (o - 1) * l)), nf[o - 1]);
            }
        }
        for j in 0..l {
            let mut acc = V::zero();
            let mut k = 0usize;
            for (rowk, row) in rows.iter().enumerate().take(nrows) {
                for dx in -(r as isize)..=r as isize {
                    let p = j as isize + dx;
                    let v = if p < 0 {
                        left[rowk][(-p - 1) as usize]
                    } else if (p as usize) < l {
                        V::load(row.add(base + p as usize * l))
                    } else {
                        right[rowk][p as usize - l]
                    };
                    if k == 0 {
                        acc = v.mul(wv[0]);
                    } else {
                        acc = v.mul_add(wv[k], acc);
                    }
                    k += 1;
                }
            }
            acc.store(dst.add(base + j * l));
        }
        if partial {
            restore_outside(dst, &geo, base, lo, hi, &saved);
        }
    }
}

/// One Jacobi step of a 2D box stencil over `[y0,y1) × [x0,x1)`, transpose
/// layout.
///
/// # Safety
/// As [`box2_row_tl`] with rows `y0-R..y1+R` addressable.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box2_tl<V: Vector, S: Box2>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    nx: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let r = S::R;
    for y in y0..y1 {
        let mut rows = [src; 5];
        for (k, row) in rows.iter_mut().enumerate().take(2 * r + 1) {
            *row = src.offset((y as isize + k as isize - r as isize) * rs as isize);
        }
        box2_row_tl::<V, S>(&rows, dst.add(y * rs), nx, x0, x1, s);
    }
}

// ---------------------------------------------------------------------------
// 3D star — row helper
// ---------------------------------------------------------------------------

/// One row of a 3D star stencil in transpose layout: x-part on the set
/// machinery, y- and z-parts as aligned neighbour-row loads.
///
/// # Safety
/// All row pointers valid with halos; `dst` disjoint from sources.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_row_tl<V: Vector, S: Star3>(
    c: *const V::Elem,
    ym: &[*const V::Elem; MAX_R],
    yp: &[*const V::Elem; MAX_R],
    zm: &[*const V::Elem; MAX_R],
    zp: &[*const V::Elem; MAX_R],
    dst: *mut V::Elem,
    n: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = SetGeo::new(n, l);

    let scalar_part = |lo: usize, hi: usize| {
        let wx = s.wx();
        let wy = s.wy();
        let wz = s.wz();
        let cv = <V::Elem as Elem>::from_f64;
        let ri = r as isize;
        for i in lo..hi {
            let ii = i as isize;
            let mut acc = cv(wx[0]) * tl_read(c, ii - ri, &geo);
            for o in 1..=2 * r {
                acc = tl_read(c, ii - ri + o as isize, &geo).mul_add(cv(wx[o]), acc);
            }
            for d in 1..=r {
                acc = tl_read(ym[d - 1], ii, &geo).mul_add(cv(wy[r - d]), acc);
                acc = tl_read(yp[d - 1], ii, &geo).mul_add(cv(wy[r + d]), acc);
            }
            for d in 1..=r {
                acc = tl_read(zm[d - 1], ii, &geo).mul_add(cv(wz[r - d]), acc);
                acc = tl_read(zp[d - 1], ii, &geo).mul_add(cv(wz[r + d]), acc);
            }
            tl_write(dst, i, acc, &geo);
        }
    };
    let (sa, sb, ve) = set_cover(&geo, x0, x1);
    if sa >= sb {
        scalar_part(x0, x1);
        return;
    }
    scalar_part(ve, x1);

    let wxv: [V; 2 * MAX_R + 1] = splat_w(s.wx());
    let wyv: [V; 2 * MAX_R + 1] = splat_w(s.wy());
    let wzv: [V; 2 * MAX_R + 1] = splat_w(s.wz());
    let mut carry = prev_last_of::<V>(c, sa, r);
    let mut out = [V::zero(); 16];
    let mut saved = [std::mem::MaybeUninit::<V::Elem>::uninit(); MAX_BS];
    for set in sa..sb {
        let base = set * geo.bs;
        let (lo, hi) = (x0.max(base), ve.min(base + geo.bs));
        let partial = (lo, hi) != (base, base + geo.bs);
        if partial {
            save_outside(dst, &geo, base, lo, hi, &mut saved);
        }
        let v = load_set::<V>(c, set);
        let nf = next_first_of::<V>(c, set, geo.nsets, r);
        xpart_set::<V>(&v, &carry, &nf, &wxv, r, &mut out);
        for j in 0..l {
            let mut acc = out[j];
            for d in 1..=r {
                acc = V::load(ym[d - 1].add(base + j * l)).mul_add(wyv[r - d], acc);
                acc = V::load(yp[d - 1].add(base + j * l)).mul_add(wyv[r + d], acc);
            }
            for d in 1..=r {
                acc = V::load(zm[d - 1].add(base + j * l)).mul_add(wzv[r - d], acc);
                acc = V::load(zp[d - 1].add(base + j * l)).mul_add(wzv[r + d], acc);
            }
            acc.store(dst.add(base + j * l));
        }
        for q in 0..r {
            carry[q] = v[l - r + q];
        }
        if partial {
            restore_outside(dst, &geo, base, lo, hi, &saved);
        }
    }
}

/// One Jacobi step of a 3D star stencil over a box of cells, transpose
/// layout.
///
/// # Safety
/// Rows/planes within radius addressable; `src != dst`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_tl<V: Vector, S: Star3>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    z0: usize,
    z1: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for z in z0..z1 {
        for y in y0..y1 {
            let c = src.add(z * ps + y * rs);
            let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, S::R);
            let (zm, zp) = row_nbrs::<_, MAX_R>(c, ps, S::R);
            star3_row_tl::<V, S>(
                c,
                &ym,
                &yp,
                &zm,
                &zp,
                dst.add(z * ps + y * rs),
                nx,
                x0,
                x1,
                s,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3D box — row helper
// ---------------------------------------------------------------------------

/// One row of a 3D box stencil (R ≤ 1) in transpose layout. `rows[k]` for
/// `k = (R+dz)·(2R+1) + (R+dy)` points at the interior origin of row
/// `(z+dz, y+dy)`.
///
/// # Safety
/// All row pointers valid with halos; `dst` disjoint from sources.
#[inline(always)]
pub unsafe fn box3_row_tl<V: Vector, S: Box3>(
    rows: &[*const V::Elem; 9],
    dst: *mut V::Elem,
    n: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    debug_assert!(r <= 1, "box3 kernels sized for R<=1");
    let geo = SetGeo::new(n, l);
    let nrows = (2 * r + 1) * (2 * r + 1);

    let scalar_part = |lo: usize, hi: usize| {
        let w = s.w();
        let cv = <V::Elem as Elem>::from_f64;
        let ri = r as isize;
        for i in lo..hi {
            let ii = i as isize;
            let mut acc = <V::Elem as Elem>::ZERO;
            let mut k = 0usize;
            for row in rows.iter().take(nrows) {
                for dx in -ri..=ri {
                    let val = tl_read(*row, ii + dx, &geo);
                    if k == 0 {
                        acc = cv(w[0]) * val;
                    } else {
                        acc = val.mul_add(cv(w[k]), acc);
                    }
                    k += 1;
                }
            }
            tl_write(dst, i, acc, &geo);
        }
    };
    let (sa, sb, ve) = set_cover(&geo, x0, x1);
    if sa >= sb {
        scalar_part(x0, x1);
        return;
    }
    scalar_part(ve, x1);

    let wv: [V; 27] = splat_w(s.w());
    let mut saved = [std::mem::MaybeUninit::<V::Elem>::uninit(); MAX_BS];
    for set in sa..sb {
        let base = set * geo.bs;
        let (lo, hi) = (x0.max(base), ve.min(base + geo.bs));
        let partial = (lo, hi) != (base, base + geo.bs);
        if partial {
            save_outside(dst, &geo, base, lo, hi, &mut saved);
        }
        let mut left = [[V::zero(); MAX_R]; 9];
        let mut right = [[V::zero(); MAX_R]; 9];
        for (k, row) in rows.iter().enumerate().take(nrows) {
            let pl = prev_last_of::<V>(*row, set, r);
            let nf = next_first_of::<V>(*row, set, geo.nsets, r);
            for o in 1..=r {
                left[k][o - 1] = V::assemble_left(pl[r - o], V::load(row.add(base + (l - o) * l)));
                right[k][o - 1] =
                    V::assemble_right(V::load(row.add(base + (o - 1) * l)), nf[o - 1]);
            }
        }
        for j in 0..l {
            let mut acc = V::zero();
            let mut k = 0usize;
            for (rowk, row) in rows.iter().enumerate().take(nrows) {
                for dx in -(r as isize)..=r as isize {
                    let p = j as isize + dx;
                    let v = if p < 0 {
                        left[rowk][(-p - 1) as usize]
                    } else if (p as usize) < l {
                        V::load(row.add(base + p as usize * l))
                    } else {
                        right[rowk][p as usize - l]
                    };
                    if k == 0 {
                        acc = v.mul(wv[0]);
                    } else {
                        acc = v.mul_add(wv[k], acc);
                    }
                    k += 1;
                }
            }
            acc.store(dst.add(base + j * l));
        }
        if partial {
            restore_outside(dst, &geo, base, lo, hi, &saved);
        }
    }
}

/// Collect the 9 neighbour-row pointers of `(z, y)` for a 3D box stencil.
#[inline(always)]
pub(crate) unsafe fn box3_rows<T>(
    src: *const T,
    rs: usize,
    ps: usize,
    z: isize,
    y: isize,
    r: usize,
) -> [*const T; 9] {
    let mut rows = [src; 9];
    let w = 2 * r + 1;
    for dz in 0..w {
        for dy in 0..w {
            rows[dz * w + dy] = src.offset(
                (z + dz as isize - r as isize) * ps as isize
                    + (y + dy as isize - r as isize) * rs as isize,
            );
        }
    }
    rows
}

/// One Jacobi step of a 3D box stencil over a box of cells, transpose
/// layout.
///
/// # Safety
/// Rows/planes within radius addressable; `src != dst`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box3_tl<V: Vector, S: Box3>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    z0: usize,
    z1: usize,
    y0: usize,
    y1: usize,
    x0: usize,
    x1: usize,
    s: &S,
) {
    for z in z0..z1 {
        for y in y0..y1 {
            let rows = box3_rows(src, rs, ps, z as isize, y as isize, S::R);
            box3_row_tl::<V, S>(&rows, dst.add(z * ps + y * rs), nx, x0, x1, s);
        }
    }
}
