//! Stencil kernels, one module per execution scheme.
//!
//! | module | layout | scheme (paper section) |
//! |---|---|---|
//! | [`scalar`] | natural | reference oracle |
//! | [`orig`] | natural | multiple-loads & data-reorganization (§2.1) |
//! | [`dlt`] | DLT | dimension-lifting transpose (§2.2) |
//! | [`tl`] | local transpose | the paper's scheme, k = 1 (§3.2) |
//! | [`tl2`] | local transpose | time unroll-and-jam, k = 2 (§3.3) |
//!
//! All kernels are `unsafe fn`, `#[inline(always)]`, generic over the
//! vector type, and range-based so the tiling substrate can drive them on
//! tile fragments. The safe entry points live in [`crate::api`].

pub mod dlt;
pub mod isa_entry;
pub mod orig;
pub mod scalar;
pub mod tl;
pub mod tl2;
