//! Time-loop **unroll-and-jam** kernels (paper §3.3, Algorithm 1): advance
//! the grid *two* time steps per memory round-trip.
//!
//! 1D is the paper's algorithm verbatim: a software pipeline of `k = 2`
//! vector sets held in registers. Each iteration loads one set at time
//! `t`, forwards the in-flight sets one step each (the younger one using
//! the freshly updated right neighbour), and stores one set at `t+2` — so
//! each `vl²` block is read once and written once per *two* steps,
//! doubling the in-CPU flops/byte ratio. The `vrl` vectors preserve each
//! set's left neighbour at the pre-update time level, exactly as in
//! Algorithm 1. Because input and output live at even time levels, the
//! update is legally **in place** (§3.3's space-saving observation).
//!
//! 2D/3D: Algorithm 1 is defined for one dimension; the register file
//! cannot hold the `t+1` values of all neighbouring rows. We pipeline
//! along the outermost dimension instead, keeping a ring of `2R+1` rows
//! (2D) or planes (3D) of `t+1` values in an L1/L2-resident scratch
//! buffer. Main-array traffic is still one read + one write per point per
//! two steps — the property that produces the paper's Fig. 7/8 gains —
//! while the ring stays cache-hot. This substitution is documented in
//! DESIGN.md.

use stencil_simd::{Elem, Vector};

use super::orig::splat_w;
use super::tl::{
    box2_row_tl, box3_row_tl, box3_rows, row_nbrs, star2_row_tl, star3_row_tl, xpart_set,
};
use crate::exec::halo::{fold_src, refresh2, refresh_row, Boundary, RowMap};
use crate::layout::{tl_read, SetGeo};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3, MAX_R};

/// Scalar tail scratch, sized for the widest vector set: 16 f32 lanes give
/// a `vl² = 256`-cell set block, plus an `R`-cell margin on both sides.
const TAIL_BUF: usize = 16 * 16 + 2 * MAX_R;

#[inline(always)]
unsafe fn load_set<V: Vector>(row: *const V::Elem, set: usize) -> [V; 16] {
    let l = V::LANES;
    let base = set * l * l;
    let mut v = [V::zero(); 16];
    for j in 0..l {
        v[j] = V::load(row.add(base + j * l));
    }
    v
}

#[inline(always)]
unsafe fn store_set<V: Vector>(row: *mut V::Elem, set: usize, v: &[V; 16]) {
    let l = V::LANES;
    let base = set * l * l;
    for j in 0..l {
        v[j].store(row.add(base + j * l));
    }
}

#[inline(always)]
fn first_r<V: Vector>(v: &[V; 16], r: usize) -> [V; MAX_R] {
    let mut f = [v[0]; MAX_R];
    f[..r].copy_from_slice(&v[..r]);
    f
}

#[inline(always)]
fn last_r<V: Vector>(v: &[V; 16], r: usize) -> [V; MAX_R] {
    let l = V::LANES;
    let mut f = [v[0]; MAX_R];
    for q in 0..r {
        f[q] = v[l - r + q];
    }
    f
}

/// Algorithm 1's `Compute`: update a set in place by one time step.
#[inline(always)]
unsafe fn update_set<V: Vector>(
    v: &mut [V; 16],
    prev_last: &[V; MAX_R],
    next_first: &[V; MAX_R],
    wv: &[V; 2 * MAX_R + 1],
    r: usize,
) {
    let mut out = [V::zero(); 16];
    xpart_set::<V>(v, prev_last, next_first, wv, r, &mut out);
    *v = out;
}

/// Advance a 1D star stencil **two** time steps, in place, on a transposed
/// row of `n` cells with constant halos (paper Algorithm 1, k = 2).
///
/// # Safety
/// `buf` points at the interior origin of a row in transpose layout with
/// halos addressable; `SetGeo::new(n, V::LANES).nsets >= 2` (callers fall
/// back to two k=1 steps below that); `S::R ≤ V::LANES`.
#[inline(always)]
pub unsafe fn star1_tl2<V: Vector, S: Star1>(buf: *mut V::Elem, n: usize, s: &S) {
    // Dirichlet halos are time-invariant: the halo cells' values in
    // memory serve as their own t+1 level.
    let r = S::R;
    let cbuf = buf.cast_const();
    let mut lt1 = [<V::Elem as Elem>::ZERO; MAX_R];
    let mut rt1 = [<V::Elem as Elem>::ZERO; MAX_R];
    for q in 0..r {
        lt1[q] = *cbuf.offset(q as isize - r as isize);
        rt1[q] = *cbuf.add(n + q);
    }
    star1_tl2_edges::<V, S>(buf, n, &lt1, &rt1, s)
}

/// [`star1_tl2`] with explicit **t+1 halo values**: `lt1[q]` is halo cell
/// `q - R` and `rt1[q]` halo cell `n + q`, both at time `t+1`. The first
/// (t → t+1) step still reads the halo cells from memory at time `t`; the
/// second step's halo dependences come from these arrays — which is what
/// lets a refreshed (periodic/reflect) boundary run the fused pass: the
/// caller refreshes memory to time `t` and precomputes the folds of the
/// edge-interior cells at `t+1` (see [`star1_tl2_wide`]).
///
/// # Safety
/// As [`star1_tl2`].
#[inline(always)]
pub unsafe fn star1_tl2_edges<V: Vector, S: Star1>(
    buf: *mut V::Elem,
    n: usize,
    lt1: &[V::Elem; MAX_R],
    rt1: &[V::Elem; MAX_R],
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = SetGeo::new(n, l);
    let (nsets, bs) = (geo.nsets, geo.bs);
    debug_assert!(nsets >= 2);
    debug_assert!(r <= l);
    let wv: [V; 2 * MAX_R + 1] = splat_w(s.w());
    let cbuf = buf.cast_const();
    let w = s.w();
    let cv = <V::Elem as Elem>::from_f64;

    // Virtual "set -1 last vectors" @ t: lane l-1 = halo cell A[-(r-q)].
    let mut halo_virt = [V::zero(); MAX_R];
    for q in 0..r {
        halo_virt[q] = V::splat(*cbuf.offset(q as isize - r as isize));
    }

    // Booting computation (Algorithm 1 line 30).
    let mut vs1 = load_set::<V>(cbuf, 0);
    let mut vs2 = load_set::<V>(cbuf, 1);
    let mut vrl1 = last_r(&vs1, r); // set 0 @ t
    update_set(&mut vs1, &halo_virt, &first_r(&vs2, r), &wv, r); // set 0 → t+1
    let mut vrl0 = [V::zero(); MAX_R]; // "set -1" @ t+1
    for q in 0..r {
        vrl0[q] = V::splat(lt1[q]);
    }

    // Steady state (Algorithm 1 lines 15–26): load set m, forward the two
    // in-flight sets, store the set that reached t+2.
    for m in 2..nsets {
        let vs3 = load_set::<V>(cbuf, m);
        let vrl2 = last_r(&vs2, r); // set m-1 @ t
        update_set(&mut vs2, &vrl1, &first_r(&vs3, r), &wv, r); // set m-1 → t+1
        let vrl1_new = last_r(&vs1, r); // set m-2 @ t+1
        update_set(&mut vs1, &vrl0, &first_r(&vs2, r), &wv, r); // set m-2 → t+2
        store_set(buf, m - 2, &vs1);
        vs1 = vs2;
        vs2 = vs3;
        vrl0 = vrl1_new;
        vrl1 = vrl2;
    }

    // Epilogue: vs1 = set nsets-2 @ t+1, vs2 = set nsets-1 @ t; the memory
    // of both sets and of the tail still holds time-t values.
    let ts = geo.tail_start;
    let tail_len = n - ts;
    debug_assert!(tail_len + 2 * r < TAIL_BUF);

    // Right-dependent cells of the last set @ t (tail or halo, natural).
    let mut rt_t = [V::zero(); MAX_R];
    for q in 0..r {
        rt_t[q] = V::splat(*cbuf.add(ts + q));
    }
    // Extended tail window @ t: [left r | tail | right halo r].
    let mut ext_t = [<V::Elem as Elem>::ZERO; TAIL_BUF];
    for q in 0..r {
        ext_t[q] = tl_read(cbuf, (ts + q) as isize - r as isize, &geo);
    }
    for i in 0..tail_len {
        ext_t[r + i] = *cbuf.add(ts + i);
    }
    for q in 0..r {
        ext_t[r + tail_len + q] = *cbuf.add(n + q);
    }

    // Last set → t+1.
    update_set(&mut vs2, &vrl1, &rt_t, &wv, r);

    // Tail's left neighbours @ t+1, extracted from the updated registers.
    let mut left_t1 = [<V::Elem as Elem>::ZERO; MAX_R];
    for q in 1..=r {
        let p = bs - q; // block position of logical cell ts - q
        left_t1[r - q] = vs2[p % l].lane(p / l);
    }

    // Tail @ t+1 into scratch.
    let mut tail_t1 = [<V::Elem as Elem>::ZERO; TAIL_BUF];
    for i in 0..tail_len {
        let mut acc = cv(w[0]) * ext_t[i];
        for o in 1..=2 * r {
            acc = ext_t[i + o].mul_add(cv(w[o]), acc);
        }
        tail_t1[i] = acc;
    }

    // Set nsets-2 → t+2 and store.
    let vrl1_new = last_r(&vs1, r);
    update_set(&mut vs1, &vrl0, &first_r(&vs2, r), &wv, r);
    store_set(buf, nsets - 2, &vs1);

    // Set nsets-1 → t+2 (right deps @ t+1 from the tail scratch / halo).
    let mut rt_t1 = [V::zero(); MAX_R];
    for q in 0..r {
        rt_t1[q] = V::splat(if q < tail_len {
            tail_t1[q]
        } else {
            rt1[q - tail_len]
        });
    }
    update_set(&mut vs2, &vrl1_new, &rt_t1, &wv, r);
    store_set(buf, nsets - 1, &vs2);

    // Tail → t+2 written back.
    if tail_len > 0 {
        let mut ext_t1 = [<V::Elem as Elem>::ZERO; TAIL_BUF];
        ext_t1[..r].copy_from_slice(&left_t1[..r]);
        ext_t1[r..r + tail_len].copy_from_slice(&tail_t1[..tail_len]);
        for q in 0..r {
            ext_t1[r + tail_len + q] = rt1[q];
        }
        for i in 0..tail_len {
            let mut acc = cv(w[0]) * ext_t1[i];
            for o in 1..=2 * r {
                acc = ext_t1[i + o].mul_add(cv(w[o]), acc);
            }
            *buf.add(ts + i) = acc;
        }
    }
}

/// Fused two-step pipeline over the set-aligned sub-range `[sa, sb)` of a
/// transposed row — the tiled variant of [`star1_tl2`] used inside
/// tessellation tiles (paper §3.4: "multiple time steps computation in
/// registers over the tiles").
///
/// Double-buffered tiling semantics instead of in-place halo semantics:
///
/// * `buf_a` holds time `t` at the covered cells and receives `t+2`;
/// * `buf_b` provides the `t+1` values of the margin cells just outside
///   `[sa·vl², sb·vl²)` (the tile driver computes those margins first) and
///   receives the `t+1` values of the **first and last** pipeline sets,
///   which the driver's trailing step-`s+1` margin pass needs.
///
/// # Safety
/// Both rows transposed with halos addressable; `sb - sa ≥ 2`; margin
/// cells `[a-r, a)` and `[b, b+r)` hold valid `t` / `t+1` values in
/// `buf_a` / `buf_b` respectively.
#[inline(always)]
pub unsafe fn star1_tl2_range<V: Vector, S: Star1>(
    buf_a: *mut V::Elem,
    buf_b: *mut V::Elem,
    n: usize,
    sa: usize,
    sb: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = SetGeo::new(n, l);
    debug_assert!(sb - sa >= 2 && sb <= geo.nsets);
    let bs = geo.bs;
    let (a, b) = (sa * bs, sb * bs);
    let wv: [V; 2 * MAX_R + 1] = splat_w(s.w());
    let ca = buf_a.cast_const();
    let cb = buf_b.cast_const();

    // Left margin dependence vectors at both time levels (lane l-1 = cell
    // a - (r-q); scalar reads through the index map).
    let mut virt_t = [V::zero(); MAX_R];
    let mut virt_t1 = [V::zero(); MAX_R];
    for q in 0..r {
        let i = a as isize + q as isize - r as isize;
        virt_t[q] = V::splat(tl_read(ca, i, &geo));
        virt_t1[q] = V::splat(tl_read(cb, i, &geo));
    }

    // Boot: first set to t+1 (exporting its t+1 values to buf_b).
    let mut vs1 = load_set::<V>(ca, sa);
    let mut vs2 = load_set::<V>(ca, sa + 1);
    let mut vrl1 = last_r(&vs1, r); // set sa @ t
    update_set(&mut vs1, &virt_t, &first_r(&vs2, r), &wv, r); // set sa → t+1
    store_set(buf_b, sa, &vs1);
    let mut vrl0 = virt_t1;

    for m in sa + 2..sb {
        let vs3 = load_set::<V>(ca, m);
        let vrl2 = last_r(&vs2, r);
        update_set(&mut vs2, &vrl1, &first_r(&vs3, r), &wv, r); // set m-1 → t+1
        let vrl1_new = last_r(&vs1, r);
        update_set(&mut vs1, &vrl0, &first_r(&vs2, r), &wv, r); // set m-2 → t+2
        store_set(buf_a, m - 2, &vs1);
        vs1 = vs2;
        vs2 = vs3;
        vrl0 = vrl1_new;
        vrl1 = vrl2;
    }

    // Epilogue: right margin dependences from the two parities.
    let mut rt_t = [V::zero(); MAX_R];
    let mut rt_t1 = [V::zero(); MAX_R];
    for q in 0..r {
        rt_t[q] = V::splat(tl_read(ca, (b + q) as isize, &geo));
        rt_t1[q] = V::splat(tl_read(cb, (b + q) as isize, &geo));
    }
    update_set(&mut vs2, &vrl1, &rt_t, &wv, r); // set sb-1 → t+1
    store_set(buf_b, sb - 1, &vs2); // export last set's t+1
    let vrl1_new = last_r(&vs1, r);
    update_set(&mut vs1, &vrl0, &first_r(&vs2, r), &wv, r); // set sb-2 → t+2
    store_set(buf_a, sb - 2, &vs1);
    update_set(&mut vs2, &vrl1_new, &rt_t1, &wv, r); // set sb-1 → t+2
    store_set(buf_a, sb - 1, &vs2);
}

/// Copy a row's left/right pad regions (halo cells and alignment padding).
#[inline(always)]
unsafe fn copy_pads<T: Elem>(src_row: *const T, dst_row: *mut T, nx: usize) {
    std::ptr::copy_nonoverlapping(
        src_row.offset(-(T::PAD as isize)),
        dst_row.offset(-(T::PAD as isize)),
        T::PAD,
    );
    std::ptr::copy_nonoverlapping(src_row.add(nx), dst_row.add(nx), T::PAD);
}

/// Advance a 2D star stencil two steps in place via the row-ring pipeline.
///
/// `ring` points at the interior origin of row 0 of a `(2R+1)`-row scratch
/// buffer with the grid's row stride and pad structure.
///
/// # Safety
/// `buf` is a transposed 2D grid interior origin (halos addressable);
/// `ring` valid for `2R+1` rows of `rs` doubles with pads.
#[inline(always)]
pub unsafe fn star2_tl2<V: Vector, S: Star2>(
    buf: *mut V::Elem,
    rs: usize,
    nx: usize,
    ny: usize,
    ring: *mut V::Elem,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for y in 0..ny + r {
        if y < ny {
            // ring[y] = row y @ t+1 from main rows y-R..y+R @ t
            let c = buf.offset(y as isize * rs as isize).cast_const();
            let dstrow = ring.add((y % nr) * rs);
            copy_pads(c, dstrow, nx);
            let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
            star2_row_tl::<V, S>(c, &ym, &yp, dstrow, nx, 0, nx, s);
        }
        if y >= r {
            // main[ty] = row ty @ t+2 from t+1 rows (ring or constant halo)
            let ty = y - r;
            let c = ring.add((ty % nr) * rs).cast_const();
            let mut ym = [c; MAX_R];
            let mut yp = [c; MAX_R];
            for d in 1..=r {
                let up = ty as isize - d as isize;
                ym[d - 1] = if up < 0 {
                    buf.offset(up * rs as isize).cast_const()
                } else {
                    ring.add((up as usize % nr) * rs).cast_const()
                };
                let dn = ty + d;
                yp[d - 1] = if dn >= ny {
                    buf.add(dn * rs).cast_const()
                } else {
                    ring.add((dn % nr) * rs).cast_const()
                };
            }
            star2_row_tl::<V, S>(c, &ym, &yp, buf.add(ty * rs), nx, 0, nx, s);
        }
    }
}

/// Advance a 2D box stencil two steps in place via the row-ring pipeline.
///
/// # Safety
/// As [`star2_tl2`].
#[inline(always)]
pub unsafe fn box2_tl2<V: Vector, S: Box2>(
    buf: *mut V::Elem,
    rs: usize,
    nx: usize,
    ny: usize,
    ring: *mut V::Elem,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for y in 0..ny + r {
        if y < ny {
            let c = buf.offset(y as isize * rs as isize).cast_const();
            let dstrow = ring.add((y % nr) * rs);
            copy_pads(c, dstrow, nx);
            let mut rows = [c; 5];
            for (k, row) in rows.iter_mut().enumerate().take(nr) {
                *row = buf.offset((y as isize + k as isize - r as isize) * rs as isize);
            }
            box2_row_tl::<V, S>(&rows, dstrow, nx, 0, nx, s);
        }
        if y >= r {
            let ty = y - r;
            let mut rows = [ring.cast_const(); 5];
            for (k, row) in rows.iter_mut().enumerate().take(nr) {
                let yy = ty as isize + k as isize - r as isize;
                *row = if yy < 0 || yy >= ny as isize {
                    buf.offset(yy * rs as isize).cast_const() // constant halo row
                } else {
                    ring.add((yy as usize % nr) * rs).cast_const()
                };
            }
            box2_row_tl::<V, S>(&rows, buf.add(ty * rs), nx, 0, nx, s);
        }
    }
}

/// Advance a 3D star stencil two steps in place via the plane-ring
/// pipeline. `ring` points at the `(y=0, x=0)` origin of plane 0 of a
/// `(2R+1)`-plane scratch with the grid's plane layout (halo rows
/// included).
///
/// # Safety
/// `buf` is a transposed 3D grid interior origin; `ring` valid for `2R+1`
/// planes of `ps` doubles.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_tl2<V: Vector, S: Star3>(
    buf: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    ring: *mut V::Elem,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for z in 0..nz + r {
        if z < nz {
            // ring[z] = plane z @ t+1
            let cp = buf.offset(z as isize * ps as isize).cast_const();
            let rp = ring.add((z % nr) * ps);
            // constant halo rows of the plane (full stride rows)
            let pad = <V::Elem as Elem>::PAD as isize;
            for d in 1..=r as isize {
                std::ptr::copy_nonoverlapping(
                    cp.offset(-d * rs as isize - pad),
                    rp.offset(-d * rs as isize - pad),
                    rs,
                );
                let dn = (ny as isize + d - 1) * rs as isize;
                std::ptr::copy_nonoverlapping(cp.offset(dn - pad), rp.offset(dn - pad), rs);
            }
            for y in 0..ny {
                let c = cp.add(y * rs);
                copy_pads(c, rp.add(y * rs), nx);
                let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
                let (zm, zp) = row_nbrs::<_, MAX_R>(c, ps, r);
                star3_row_tl::<V, S>(c, &ym, &yp, &zm, &zp, rp.add(y * rs), nx, 0, nx, s);
            }
        }
        if z >= r {
            let tz = z - r;
            let cp = ring.add((tz % nr) * ps).cast_const();
            for y in 0..ny {
                let c = cp.add(y * rs);
                let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
                let mut zm = [c; MAX_R];
                let mut zp = [c; MAX_R];
                for d in 1..=r {
                    let up = tz as isize - d as isize;
                    zm[d - 1] = if up < 0 {
                        buf.offset(up * ps as isize).add(y * rs).cast_const()
                    } else {
                        ring.add((up as usize % nr) * ps + y * rs).cast_const()
                    };
                    let dn = tz + d;
                    zp[d - 1] = if dn >= nz {
                        buf.add(dn * ps + y * rs).cast_const()
                    } else {
                        ring.add((dn % nr) * ps + y * rs).cast_const()
                    };
                }
                star3_row_tl::<V, S>(
                    c,
                    &ym,
                    &yp,
                    &zm,
                    &zp,
                    buf.add(tz * ps + y * rs),
                    nx,
                    0,
                    nx,
                    s,
                );
            }
        }
    }
}

/// Advance a 3D box stencil two steps in place via the plane-ring
/// pipeline.
///
/// # Safety
/// As [`star3_tl2`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box3_tl2<V: Vector, S: Box3>(
    buf: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    ring: *mut V::Elem,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for z in 0..nz + r {
        if z < nz {
            let cp = buf.offset(z as isize * ps as isize).cast_const();
            let rp = ring.add((z % nr) * ps);
            let pad = <V::Elem as Elem>::PAD as isize;
            for d in 1..=r as isize {
                std::ptr::copy_nonoverlapping(
                    cp.offset(-d * rs as isize - pad),
                    rp.offset(-d * rs as isize - pad),
                    rs,
                );
                let dn = (ny as isize + d - 1) * rs as isize;
                std::ptr::copy_nonoverlapping(cp.offset(dn - pad), rp.offset(dn - pad), rs);
            }
            for y in 0..ny {
                let c = cp.add(y * rs);
                copy_pads(c, rp.add(y * rs), nx);
                let rows = box3_rows(buf, rs, ps, z as isize, y as isize, r);
                box3_row_tl::<V, S>(&rows, rp.add(y * rs), nx, 0, nx, s);
            }
        }
        if z >= r {
            let tz = z - r;
            for y in 0..ny {
                let mut rows = [ring.cast_const(); 9];
                let w = 2 * r + 1;
                for dz in 0..w {
                    let zz = tz as isize + dz as isize - r as isize;
                    let plane = if zz < 0 || zz >= nz as isize {
                        buf.offset(zz * ps as isize).cast_const() // constant halo plane
                    } else {
                        ring.add((zz as usize % nr) * ps).cast_const()
                    };
                    for dy in 0..w {
                        let yy = y as isize + dy as isize - r as isize;
                        rows[dz * w + dy] = plane.offset(yy * rs as isize);
                    }
                }
                box3_row_tl::<V, S>(&rows, buf.add(tz * ps + y * rs), nx, 0, nx, s);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wide-halo fused kernels: k = 2 under refreshed (periodic / reflect)
// boundaries
// ---------------------------------------------------------------------------
//
// The Dirichlet kernels above read halo cells at *both* time levels and
// rely on them being constant. A refreshed boundary's halo cells change
// every step, so the fused pass needs the t+1 halo level from somewhere.
// The key identity: a refreshed halo cell at t+1 is a *bit-copy* (fold)
// of an interior cell at t+1 — never a stencil application at the halo
// position (reflect would pair the weights in reversed order and lose
// bit-equality with two k = 1 steps). So the wide kernels compute the
// fold-source interior cells at t+1 first, in the kernels' canonical
// accumulation order, and stage the folds where the second step reads
// them:
//
// * 1D keeps them in scalars/registers (`star1_tl2_edges`) — the memory
//   halo layout is untouched.
// * 2D/3D stage whole t+1 halo rows/planes in the **outer half of a
//   2R-wide halo**: halo row `-k` at t+1 lives at raw row `-(R+k)`, row
//   `ny-1+k` at `ny-1+R+k` (same for z planes). The t-level pass reads
//   ghost distance ≤ R only, so the staging never aliases it. Grids for
//   refreshed boundaries are allocated with the wide halo (see
//   `AnyGrid::from_fn_spec`).
//
// Callers refresh the (inner) halo to time t before invoking, exactly as
// for a k = 1 step.

/// [`star1_tl2`] under a refreshed boundary: precompute the t+1 values of
/// the fold-source edge cells and feed their folds to the second step via
/// [`star1_tl2_edges`]. No wide memory halo is needed in 1D.
///
/// # Safety
/// As [`star1_tl2`]; additionally the halo cells hold time-`t` values
/// (caller refreshed them) and `b` is not Dirichlet.
#[inline(always)]
pub unsafe fn star1_tl2_wide<V: Vector, S: Star1>(buf: *mut V::Elem, n: usize, b: Boundary, s: &S) {
    let r = S::R;
    let geo = SetGeo::new(n, V::LANES);
    let cbuf = buf.cast_const();
    let w = s.w();
    let cv = <V::Elem as Elem>::from_f64;
    // Edge-interior cells at t+1, scalar in the canonical accumulation
    // order — bit-identical to the value the vector pipeline stores.
    let cell_t1 = |i: usize| -> V::Elem {
        let base = i as isize - r as isize;
        let mut acc = cv(w[0]) * tl_read(cbuf, base, &geo);
        for o in 1..=2 * r {
            acc = tl_read(cbuf, base + o as isize, &geo).mul_add(cv(w[o]), acc);
        }
        acc
    };
    let mut lo_t1 = [<V::Elem as Elem>::ZERO; MAX_R]; // cells 0..r @ t+1
    let mut hi_t1 = [<V::Elem as Elem>::ZERO; MAX_R]; // cells n-r..n @ t+1
    for m in 0..r {
        lo_t1[m] = cell_t1(m);
        hi_t1[m] = cell_t1(n - r + m);
    }
    // Fold into the t+1 halo values star1_tl2_edges consumes: halo cell
    // q - R is lt1[q], halo cell n + q is rt1[q].
    let edge = |src: usize| {
        if src < r {
            lo_t1[src]
        } else {
            hi_t1[src - (n - r)]
        }
    };
    let mut lt1 = [<V::Elem as Elem>::ZERO; MAX_R];
    let mut rt1 = [<V::Elem as Elem>::ZERO; MAX_R];
    for k in 1..=r {
        lt1[r - k] = edge(fold_src(n, k, true, b));
        rt1[k - 1] = edge(fold_src(n, k, false, b));
    }
    star1_tl2_edges::<V, S>(buf, n, &lt1, &rt1, s)
}

/// [`star2_tl2`] under a refreshed boundary on a **wide-halo** grid
/// (`ry ≥ 2R`): advance the fold-source rows to t+1 into the outer halo
/// ring first, then run the usual row-ring pipeline with the second
/// step's out-of-range row reads redirected to the staged rows.
///
/// # Safety
/// As [`star2_tl2`], plus: the grid has at least `2R` halo rows per side;
/// the inner halo frame holds time-`t` values (caller ran `refresh2`);
/// `b` is not Dirichlet; `map` matches the row layout.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star2_tl2_wide<V: Vector, S: Star2>(
    buf: *mut V::Elem,
    rs: usize,
    nx: usize,
    ny: usize,
    ring: *mut V::Elem,
    b: Boundary,
    map: &RowMap,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    // Boot: halo row -k @ t+1 staged at raw row -(R+k), row ny-1+k @ t+1
    // at raw row ny-1+R+k — the fold-source row advanced one step, then
    // x-folded in place. The t-level pass below reads ghost distance ≤ R
    // only, so the staging rows are invisible to it.
    for k in 1..=r {
        for lo in [true, false] {
            let sy = fold_src(ny, k, lo, b) as isize;
            let dy = if lo {
                -((r + k) as isize)
            } else {
                (ny - 1 + r + k) as isize
            };
            let c = buf.offset(sy * rs as isize).cast_const();
            let dst = buf.offset(dy * rs as isize);
            let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
            star2_row_tl::<V, S>(c, &ym, &yp, dst, nx, 0, nx, s);
            refresh_row(dst, nx, r, b, map);
        }
    }
    for y in 0..ny + r {
        if y < ny {
            // ring[y] = row y @ t+1; its x halos are folds of its own
            // just-computed interior (not copies of the t-level pads).
            let c = buf.offset(y as isize * rs as isize).cast_const();
            let dstrow = ring.add((y % nr) * rs);
            let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
            star2_row_tl::<V, S>(c, &ym, &yp, dstrow, nx, 0, nx, s);
            refresh_row(dstrow, nx, r, b, map);
        }
        if y >= r {
            // main[ty] = row ty @ t+2 from t+1 rows (ring or staged halo)
            let ty = y - r;
            let c = ring.add((ty % nr) * rs).cast_const();
            let mut ym = [c; MAX_R];
            let mut yp = [c; MAX_R];
            for d in 1..=r {
                let up = ty as isize - d as isize;
                ym[d - 1] = if up < 0 {
                    buf.offset((up - r as isize) * rs as isize).cast_const()
                } else {
                    ring.add((up as usize % nr) * rs).cast_const()
                };
                let dn = ty + d;
                yp[d - 1] = if dn >= ny {
                    buf.add((dn + r) * rs).cast_const()
                } else {
                    ring.add((dn % nr) * rs).cast_const()
                };
            }
            star2_row_tl::<V, S>(c, &ym, &yp, buf.add(ty * rs), nx, 0, nx, s);
        }
    }
}

/// [`box2_tl2`] under a refreshed boundary on a wide-halo grid.
///
/// # Safety
/// As [`star2_tl2_wide`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box2_tl2_wide<V: Vector, S: Box2>(
    buf: *mut V::Elem,
    rs: usize,
    nx: usize,
    ny: usize,
    ring: *mut V::Elem,
    b: Boundary,
    map: &RowMap,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for k in 1..=r {
        for lo in [true, false] {
            let sy = fold_src(ny, k, lo, b) as isize;
            let dy = if lo {
                -((r + k) as isize)
            } else {
                (ny - 1 + r + k) as isize
            };
            let dst = buf.offset(dy * rs as isize);
            let mut rows = [buf.cast_const(); 5];
            for (j, row) in rows.iter_mut().enumerate().take(nr) {
                *row = buf.offset((sy + j as isize - r as isize) * rs as isize);
            }
            box2_row_tl::<V, S>(&rows, dst, nx, 0, nx, s);
            refresh_row(dst, nx, r, b, map);
        }
    }
    for y in 0..ny + r {
        if y < ny {
            let c = buf.offset(y as isize * rs as isize).cast_const();
            let dstrow = ring.add((y % nr) * rs);
            let mut rows = [c; 5];
            for (j, row) in rows.iter_mut().enumerate().take(nr) {
                *row = buf.offset((y as isize + j as isize - r as isize) * rs as isize);
            }
            box2_row_tl::<V, S>(&rows, dstrow, nx, 0, nx, s);
            refresh_row(dstrow, nx, r, b, map);
        }
        if y >= r {
            let ty = y - r;
            let mut rows = [ring.cast_const(); 5];
            for (j, row) in rows.iter_mut().enumerate().take(nr) {
                let yy = ty as isize + j as isize - r as isize;
                *row = if yy < 0 {
                    buf.offset((yy - r as isize) * rs as isize).cast_const()
                } else if yy >= ny as isize {
                    buf.offset((yy + r as isize) * rs as isize).cast_const()
                } else {
                    ring.add((yy as usize % nr) * rs).cast_const()
                };
            }
            box2_row_tl::<V, S>(&rows, buf.add(ty * rs), nx, 0, nx, s);
        }
    }
}

/// [`star3_tl2`] under a refreshed boundary on a wide-halo grid
/// (`r ≥ 2R` halo rows *and* planes): fold-source planes advance to t+1
/// into the outer halo planes, each given its own 2D halo frame; the
/// plane-ring pipeline then redirects out-of-range plane reads there.
///
/// # Safety
/// As [`star3_tl2`], plus: the grid has at least `2R` halo rows and
/// planes per side; the inner halo shell holds time-`t` values (caller
/// ran `refresh3`); `b` is not Dirichlet; `map` matches the row layout.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_tl2_wide<V: Vector, S: Star3>(
    buf: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    ring: *mut V::Elem,
    b: Boundary,
    map: &RowMap,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for k in 1..=r {
        for lo in [true, false] {
            let sz = fold_src(nz, k, lo, b) as isize;
            let dz = if lo {
                -((r + k) as isize)
            } else {
                (nz - 1 + r + k) as isize
            };
            let cp = buf.offset(sz * ps as isize).cast_const();
            let dp = buf.offset(dz * ps as isize);
            for y in 0..ny {
                let c = cp.add(y * rs);
                let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
                let (zm, zp) = row_nbrs::<_, MAX_R>(c, ps, r);
                star3_row_tl::<V, S>(c, &ym, &yp, &zm, &zp, dp.add(y * rs), nx, 0, nx, s);
            }
            // The staged plane's own 2D halo frame at t+1, folded from
            // its just-computed interior (per-axis composition).
            refresh2(dp, rs, nx, ny, r, b, map);
        }
    }
    for z in 0..nz + r {
        if z < nz {
            let cp = buf.offset(z as isize * ps as isize).cast_const();
            let rp = ring.add((z % nr) * ps);
            for y in 0..ny {
                let c = cp.add(y * rs);
                let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
                let (zm, zp) = row_nbrs::<_, MAX_R>(c, ps, r);
                star3_row_tl::<V, S>(c, &ym, &yp, &zm, &zp, rp.add(y * rs), nx, 0, nx, s);
            }
            refresh2(rp, rs, nx, ny, r, b, map);
        }
        if z >= r {
            let tz = z - r;
            let cp = ring.add((tz % nr) * ps).cast_const();
            for y in 0..ny {
                let c = cp.add(y * rs);
                let (ym, yp) = row_nbrs::<_, MAX_R>(c, rs, r);
                let mut zm = [c; MAX_R];
                let mut zp = [c; MAX_R];
                for d in 1..=r {
                    let up = tz as isize - d as isize;
                    zm[d - 1] = if up < 0 {
                        buf.offset((up - r as isize) * ps as isize)
                            .add(y * rs)
                            .cast_const()
                    } else {
                        ring.add((up as usize % nr) * ps + y * rs).cast_const()
                    };
                    let dn = tz + d;
                    zp[d - 1] = if dn >= nz {
                        buf.add((dn + r) * ps + y * rs).cast_const()
                    } else {
                        ring.add((dn % nr) * ps + y * rs).cast_const()
                    };
                }
                star3_row_tl::<V, S>(
                    c,
                    &ym,
                    &yp,
                    &zm,
                    &zp,
                    buf.add(tz * ps + y * rs),
                    nx,
                    0,
                    nx,
                    s,
                );
            }
        }
    }
}

/// [`box3_tl2`] under a refreshed boundary on a wide-halo grid.
///
/// # Safety
/// As [`star3_tl2_wide`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box3_tl2_wide<V: Vector, S: Box3>(
    buf: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    nz: usize,
    ring: *mut V::Elem,
    b: Boundary,
    map: &RowMap,
    s: &S,
) {
    let r = S::R;
    let nr = 2 * r + 1;
    for k in 1..=r {
        for lo in [true, false] {
            let sz = fold_src(nz, k, lo, b) as isize;
            let dz = if lo {
                -((r + k) as isize)
            } else {
                (nz - 1 + r + k) as isize
            };
            let dp = buf.offset(dz * ps as isize);
            for y in 0..ny {
                let rows = box3_rows(buf, rs, ps, sz, y as isize, r);
                box3_row_tl::<V, S>(&rows, dp.add(y * rs), nx, 0, nx, s);
            }
            refresh2(dp, rs, nx, ny, r, b, map);
        }
    }
    for z in 0..nz + r {
        if z < nz {
            let rp = ring.add((z % nr) * ps);
            for y in 0..ny {
                let rows = box3_rows(buf, rs, ps, z as isize, y as isize, r);
                box3_row_tl::<V, S>(&rows, rp.add(y * rs), nx, 0, nx, s);
            }
            refresh2(rp, rs, nx, ny, r, b, map);
        }
        if z >= r {
            let tz = z - r;
            let w = 2 * r + 1;
            for y in 0..ny {
                let mut rows = [ring.cast_const(); 9];
                for dz in 0..w {
                    let zz = tz as isize + dz as isize - r as isize;
                    let plane = if zz < 0 {
                        buf.offset((zz - r as isize) * ps as isize).cast_const()
                    } else if zz >= nz as isize {
                        buf.offset((zz + r as isize) * ps as isize).cast_const()
                    } else {
                        ring.add((zz as usize % nr) * ps).cast_const()
                    };
                    for dy in 0..w {
                        let yy = y as isize + dy as isize - r as isize;
                        rows[dz * w + dy] = plane.offset(yy * rs as isize);
                    }
                }
                box3_row_tl::<V, S>(&rows, buf.add(tz * ps + y * rs), nx, 0, nx, s);
            }
        }
    }
}
