//! Kernels on the **DLT layout** (dimension-lifting transpose, Henretty et
//! al. — the paper's §2.2 baseline and the vectorization scheme inside the
//! SDSL comparison).
//!
//! In DLT space, the x-neighbour of column `j` is column `j±1`, so *every*
//! steady-state input is a contiguous aligned vector load — zero shuffles.
//! The price is paid elsewhere: the `vl` lanes of one vector are `n/vl`
//! cells apart, so a spatial tile touches `vl` distant memory regions
//! (the locality loss the paper's §3.1 pins on DLT), and the 2r *seam*
//! columns at the ends of the column range need cross-lane values, which
//! we process scalar through the index map.

use stencil_simd::{Elem, Vector};

use super::orig::splat_w;
use crate::layout::{dlt_read, DltGeo};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3, MAX_R};

/// Scalar update of logical cells `[lo, hi)` of a DLT row (mapped access).
///
/// # Safety
/// Row pointers valid with halos; `lo ≤ hi ≤ n`.
#[inline(always)]
pub unsafe fn star1_dlt_scalar<T: Elem, S: Star1>(
    src: *const T,
    dst: *mut T,
    lo: usize,
    hi: usize,
    geo: &DltGeo,
    s: &S,
) {
    let w = s.w();
    let cv = T::from_f64;
    let r = S::R as isize;
    for i in lo..hi {
        let ii = i as isize;
        let mut acc = cv(w[0]) * dlt_read(src, ii - r, geo);
        for o in 1..=2 * S::R {
            acc = dlt_read(src, ii - r + o as isize, geo).mul_add(cv(w[o]), acc);
        }
        *dst.add(geo.map(i)) = acc;
    }
}

/// Vector core of a 1D star step over DLT columns `[j0, j1)`.
///
/// # Safety
/// Caller must guarantee `R ≤ j0` and `j1 ≤ cols - R` (no seam columns)
/// and the usual pointer/feature contracts.
#[inline(always)]
pub unsafe fn star1_dlt_cols<V: Vector, S: Star1>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    j0: usize,
    j1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let wv: [V; 2 * MAX_R + 1] = splat_w(s.w());
    for j in j0..j1 {
        let base = j * l;
        let mut acc = V::load(src.add(base - r * l)).mul(wv[0]);
        for o in 1..=2 * r {
            let off = base as isize + (o as isize - r as isize) * l as isize;
            acc = V::load(src.offset(off)).mul_add(wv[o], acc);
        }
        acc.store(dst.add(base));
    }
}

/// Scalar update of the seam columns (`[0, R)` and `[cols-R, cols)`) of a
/// DLT row — all `vl` lanes of each seam column, through the index map.
///
/// # Safety
/// Row pointers valid with halos.
#[inline(always)]
pub unsafe fn star1_dlt_seams<T: Elem, S: Star1>(src: *const T, dst: *mut T, geo: &DltGeo, s: &S) {
    let r = S::R;
    let cols = geo.cols;
    for lane in 0..geo.vl {
        let base = lane * cols;
        star1_dlt_scalar(src, dst, base, base + r, geo, s);
        star1_dlt_scalar(src, dst, base + cols - r, base + cols, geo, s);
    }
}

/// One Jacobi step of a 1D star stencil over a full DLT row.
///
/// # Safety
/// Row pointers valid with halos; `src != dst`.
#[inline(always)]
pub unsafe fn star1_dlt<V: Vector, S: Star1>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    n: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = DltGeo::new(n, l);
    if geo.cols <= 2 * r {
        star1_dlt_scalar(src, dst, 0, n, &geo, s);
        return;
    }
    star1_dlt_seams(src, dst, &geo, s);
    star1_dlt_cols::<V, S>(src, dst, r, geo.cols - r, s);
    star1_dlt_scalar(src, dst, geo.region, n, &geo, s); // tail
}

/// One Jacobi step of a 2D star stencil over rows `[y0, y1)` (full x) in
/// DLT layout; y-neighbours are aligned loads at identical offsets.
///
/// # Safety
/// Rows `y0-R..y1+R` addressable; `src != dst`.
#[inline(always)]
pub unsafe fn star2_dlt<V: Vector, S: Star2>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    nx: usize,
    y0: usize,
    y1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = DltGeo::new(nx, l);
    let wxv: [V; 2 * MAX_R + 1] = splat_w(s.wx());
    let wyv: [V; 2 * MAX_R + 1] = splat_w(s.wy());
    for y in y0..y1 {
        let c = src.add(y * rs);
        let d = dst.add(y * rs);
        // scalar seams + tail (x- and y-terms through the map)
        let scalar_cells = |lo: usize, hi: usize| {
            let wx = s.wx();
            let wy = s.wy();
            let cv = <V::Elem as Elem>::from_f64;
            let ri = r as isize;
            for i in lo..hi {
                let ii = i as isize;
                let mut acc = cv(wx[0]) * dlt_read(c, ii - ri, &geo);
                for o in 1..=2 * r {
                    acc = dlt_read(c, ii - ri + o as isize, &geo).mul_add(cv(wx[o]), acc);
                }
                for dd in 1..=r {
                    acc = dlt_read(c.offset(-((dd * rs) as isize)), ii, &geo)
                        .mul_add(cv(wy[r - dd]), acc);
                    acc = dlt_read(c.add(dd * rs), ii, &geo).mul_add(cv(wy[r + dd]), acc);
                }
                *d.add(geo.map(i)) = acc;
            }
        };
        if geo.cols <= 2 * r {
            scalar_cells(0, nx);
            continue;
        }
        for lane in 0..l {
            let base = lane * geo.cols;
            scalar_cells(base, base + r);
            scalar_cells(base + geo.cols - r, base + geo.cols);
        }
        scalar_cells(geo.region, nx);
        for j in r..geo.cols - r {
            let base = j * l;
            let mut acc = V::load(c.add(base - r * l)).mul(wxv[0]);
            for o in 1..=2 * r {
                let off = base as isize + (o as isize - r as isize) * l as isize;
                acc = V::load(c.offset(off)).mul_add(wxv[o], acc);
            }
            for dd in 1..=r {
                acc =
                    V::load(c.offset(base as isize - (dd * rs) as isize)).mul_add(wyv[r - dd], acc);
                acc = V::load(c.add(base + dd * rs)).mul_add(wyv[r + dd], acc);
            }
            acc.store(d.add(base));
        }
    }
}

/// One Jacobi step of a 2D box stencil over rows `[y0, y1)` in DLT layout
/// — pure aligned loads in steady state (DLT's best case).
///
/// # Safety
/// Rows `y0-R..y1+R` addressable; `src != dst`.
#[inline(always)]
pub unsafe fn box2_dlt<V: Vector, S: Box2>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    nx: usize,
    y0: usize,
    y1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = DltGeo::new(nx, l);
    let wv: [V; 25] = splat_w(s.w());
    for y in y0..y1 {
        let c = src.add(y * rs);
        let d = dst.add(y * rs);
        let scalar_cells = |lo: usize, hi: usize| {
            let w = s.w();
            let cv = <V::Elem as Elem>::from_f64;
            let ri = r as isize;
            for i in lo..hi {
                let ii = i as isize;
                let mut acc = <V::Elem as Elem>::ZERO;
                let mut k = 0usize;
                for dy in -ri..=ri {
                    let row = c.offset(dy * rs as isize);
                    for dx in -ri..=ri {
                        let val = dlt_read(row, ii + dx, &geo);
                        if k == 0 {
                            acc = cv(w[0]) * val;
                        } else {
                            acc = val.mul_add(cv(w[k]), acc);
                        }
                        k += 1;
                    }
                }
                *d.add(geo.map(i)) = acc;
            }
        };
        if geo.cols <= 2 * r {
            scalar_cells(0, nx);
            continue;
        }
        for lane in 0..l {
            let base = lane * geo.cols;
            scalar_cells(base, base + r);
            scalar_cells(base + geo.cols - r, base + geo.cols);
        }
        scalar_cells(geo.region, nx);
        for j in r..geo.cols - r {
            let base = j * l;
            let mut acc = V::zero();
            let mut k = 0usize;
            for dy in -(r as isize)..=r as isize {
                let row = c.offset(dy * rs as isize);
                for dx in -(r as isize)..=r as isize {
                    let v = V::load(row.offset(base as isize + dx * l as isize));
                    if k == 0 {
                        acc = v.mul(wv[0]);
                    } else {
                        acc = v.mul_add(wv[k], acc);
                    }
                    k += 1;
                }
            }
            acc.store(d.add(base));
        }
    }
}

/// One Jacobi step of a 3D star stencil over planes `[z0, z1)` (full x/y)
/// in DLT layout.
///
/// # Safety
/// Planes/rows within radius addressable; `src != dst`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn star3_dlt<V: Vector, S: Star3>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    z0: usize,
    z1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = DltGeo::new(nx, l);
    let wxv: [V; 2 * MAX_R + 1] = splat_w(s.wx());
    let wyv: [V; 2 * MAX_R + 1] = splat_w(s.wy());
    let wzv: [V; 2 * MAX_R + 1] = splat_w(s.wz());
    for z in z0..z1 {
        for y in 0..ny {
            let c = src.add(z * ps + y * rs);
            let d = dst.add(z * ps + y * rs);
            let scalar_cells = |lo: usize, hi: usize| {
                let (wx, wy, wz) = (s.wx(), s.wy(), s.wz());
                let cv = <V::Elem as Elem>::from_f64;
                let ri = r as isize;
                for i in lo..hi {
                    let ii = i as isize;
                    let mut acc = cv(wx[0]) * dlt_read(c, ii - ri, &geo);
                    for o in 1..=2 * r {
                        acc = dlt_read(c, ii - ri + o as isize, &geo).mul_add(cv(wx[o]), acc);
                    }
                    for dd in 1..=r {
                        acc = dlt_read(c.offset(-((dd * rs) as isize)), ii, &geo)
                            .mul_add(cv(wy[r - dd]), acc);
                        acc = dlt_read(c.add(dd * rs), ii, &geo).mul_add(cv(wy[r + dd]), acc);
                    }
                    for dd in 1..=r {
                        acc = dlt_read(c.offset(-((dd * ps) as isize)), ii, &geo)
                            .mul_add(cv(wz[r - dd]), acc);
                        acc = dlt_read(c.add(dd * ps), ii, &geo).mul_add(cv(wz[r + dd]), acc);
                    }
                    *d.add(geo.map(i)) = acc;
                }
            };
            if geo.cols <= 2 * r {
                scalar_cells(0, nx);
                continue;
            }
            for lane in 0..l {
                let base = lane * geo.cols;
                scalar_cells(base, base + r);
                scalar_cells(base + geo.cols - r, base + geo.cols);
            }
            scalar_cells(geo.region, nx);
            for j in r..geo.cols - r {
                let base = j * l;
                let mut acc = V::load(c.add(base - r * l)).mul(wxv[0]);
                for o in 1..=2 * r {
                    let off = base as isize + (o as isize - r as isize) * l as isize;
                    acc = V::load(c.offset(off)).mul_add(wxv[o], acc);
                }
                for dd in 1..=r {
                    acc = V::load(c.offset(base as isize - (dd * rs) as isize))
                        .mul_add(wyv[r - dd], acc);
                    acc = V::load(c.add(base + dd * rs)).mul_add(wyv[r + dd], acc);
                    acc = V::load(c.offset(base as isize - (dd * ps) as isize))
                        .mul_add(wzv[r - dd], acc);
                    acc = V::load(c.add(base + dd * ps)).mul_add(wzv[r + dd], acc);
                }
                acc.store(d.add(base));
            }
        }
    }
}

/// One Jacobi step of a 3D box stencil over planes `[z0, z1)` in DLT
/// layout.
///
/// # Safety
/// Planes/rows within radius addressable; `src != dst`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub unsafe fn box3_dlt<V: Vector, S: Box3>(
    src: *const V::Elem,
    dst: *mut V::Elem,
    rs: usize,
    ps: usize,
    nx: usize,
    ny: usize,
    z0: usize,
    z1: usize,
    s: &S,
) {
    let l = V::LANES;
    let r = S::R;
    let geo = DltGeo::new(nx, l);
    let wv: [V; 27] = splat_w(s.w());
    for z in z0..z1 {
        for y in 0..ny {
            let c = src.add(z * ps + y * rs);
            let d = dst.add(z * ps + y * rs);
            let scalar_cells = |lo: usize, hi: usize| {
                let w = s.w();
                let cv = <V::Elem as Elem>::from_f64;
                let ri = r as isize;
                for i in lo..hi {
                    let ii = i as isize;
                    let mut acc = <V::Elem as Elem>::ZERO;
                    let mut k = 0usize;
                    for dz in -ri..=ri {
                        for dy in -ri..=ri {
                            let row = c.offset(dz * ps as isize + dy * rs as isize);
                            for dx in -ri..=ri {
                                let val = dlt_read(row, ii + dx, &geo);
                                if k == 0 {
                                    acc = cv(w[0]) * val;
                                } else {
                                    acc = val.mul_add(cv(w[k]), acc);
                                }
                                k += 1;
                            }
                        }
                    }
                    *d.add(geo.map(i)) = acc;
                }
            };
            if geo.cols <= 2 * r {
                scalar_cells(0, nx);
                continue;
            }
            for lane in 0..l {
                let base = lane * geo.cols;
                scalar_cells(base, base + r);
                scalar_cells(base + geo.cols - r, base + geo.cols);
            }
            scalar_cells(geo.region, nx);
            for j in r..geo.cols - r {
                let base = j * l;
                let mut acc = V::zero();
                let mut k = 0usize;
                for dz in -(r as isize)..=r as isize {
                    for dy in -(r as isize)..=r as isize {
                        let row = c.offset(dz * ps as isize + dy * rs as isize);
                        for dx in -(r as isize)..=r as isize {
                            let v = V::load(row.offset(base as isize + dx * l as isize));
                            if k == 0 {
                                acc = v.mul(wv[0]);
                            } else {
                                acc = v.mul_add(wv[k], acc);
                            }
                            k += 1;
                        }
                    }
                }
                acc.store(d.add(base));
            }
        }
    }
}
