//! Explicit `#[target_feature]` entry points for the *large* kernels.
//!
//! The generic [`stencil_simd::dispatch!`] macro funnels the kernel call
//! through a closure passed into a feature-gated entry function. For small
//! kernels LLVM inlines the closure and the intrinsics compile with the
//! vector ISA; for the biggest kernels the inliner can refuse, silently
//! compiling them *without* the ISA — every fused multiply-add then
//! lowers to a libm call (a measured 39× slowdown; see DESIGN.md §5).
//!
//! `#[target_feature]` is legal on generic functions, so each big kernel
//! gets an explicit per-ISA entry here, generic over the element type
//! ([`Elem`]): the entry resolves `T`'s native vector for the register
//! width (`T::V256` / `T::V512`). Portable ISAs call the kernel directly
//! (no feature context needed).

use stencil_simd::{Elem, Isa};

use super::{tl, tl2};
use crate::exec::halo::{Boundary, RowMap};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

macro_rules! isa_entry {
    ($(#[$doc:meta])* $name:ident, $bound:ident, $km:ident :: $kf:ident,
     fn($($arg:ident : $ty:ty),* $(,)?)) => {
        $(#[$doc])*
        ///
        /// # Safety
        /// Same contract as the underlying kernel; `isa` must be
        /// available on this CPU (checked).
        #[allow(clippy::too_many_arguments)]
        pub unsafe fn $name<T: Elem, S: $bound>(isa: Isa, $($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn avx2<T: Elem, S: $bound>($($arg: $ty),*) {
                $km::$kf::<<T as Elem>::V256, S>($($arg),*)
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx512f")]
            unsafe fn avx512<T: Elem, S: $bound>($($arg: $ty),*) {
                $km::$kf::<<T as Elem>::V512, S>($($arg),*)
            }
            match isa {
                #[cfg(target_arch = "x86_64")]
                Isa::Avx2 => {
                    assert!(isa.is_available());
                    avx2::<T, S>($($arg),*)
                }
                #[cfg(target_arch = "x86_64")]
                Isa::Avx512 => {
                    assert!(isa.is_available());
                    avx512::<T, S>($($arg),*)
                }
                _ => match isa.width_bytes() {
                    32 => $km::$kf::<<T as Elem>::P256, S>($($arg),*),
                    _ => $km::$kf::<<T as Elem>::P512, S>($($arg),*),
                },
            }
        }
    };
}

isa_entry!(
    /// [`tl::star1_tl`] behind a per-ISA feature entry.
    star1_tl, Star1, tl::star1_tl,
    fn(src: *const T, dst: *mut T, n: usize, x0: usize, x1: usize, s: &S)
);
isa_entry!(
    /// [`tl::star2_tl`] behind a per-ISA feature entry.
    star2_tl, Star2, tl::star2_tl,
    fn(src: *const T, dst: *mut T, rs: usize, nx: usize,
       y0: usize, y1: usize, x0: usize, x1: usize, s: &S)
);
isa_entry!(
    /// [`tl::box2_tl`] behind a per-ISA feature entry.
    box2_tl, Box2, tl::box2_tl,
    fn(src: *const T, dst: *mut T, rs: usize, nx: usize,
       y0: usize, y1: usize, x0: usize, x1: usize, s: &S)
);
isa_entry!(
    /// [`tl::star3_tl`] behind a per-ISA feature entry.
    star3_tl, Star3, tl::star3_tl,
    fn(src: *const T, dst: *mut T, rs: usize, ps: usize, nx: usize,
       z0: usize, z1: usize, y0: usize, y1: usize, x0: usize, x1: usize, s: &S)
);
isa_entry!(
    /// [`tl::box3_tl`] behind a per-ISA feature entry.
    box3_tl, Box3, tl::box3_tl,
    fn(src: *const T, dst: *mut T, rs: usize, ps: usize, nx: usize,
       z0: usize, z1: usize, y0: usize, y1: usize, x0: usize, x1: usize, s: &S)
);
isa_entry!(
    /// [`tl2::star1_tl2`] behind a per-ISA feature entry.
    star1_tl2, Star1, tl2::star1_tl2,
    fn(buf: *mut T, n: usize, s: &S)
);
isa_entry!(
    /// [`tl2::star1_tl2_range`] behind a per-ISA feature entry.
    star1_tl2_range, Star1, tl2::star1_tl2_range,
    fn(buf_a: *mut T, buf_b: *mut T, n: usize, sa: usize, sb: usize, s: &S)
);
isa_entry!(
    /// [`tl2::star2_tl2`] behind a per-ISA feature entry.
    star2_tl2, Star2, tl2::star2_tl2,
    fn(buf: *mut T, rs: usize, nx: usize, ny: usize, ring: *mut T, s: &S)
);
isa_entry!(
    /// [`tl2::box2_tl2`] behind a per-ISA feature entry.
    box2_tl2, Box2, tl2::box2_tl2,
    fn(buf: *mut T, rs: usize, nx: usize, ny: usize, ring: *mut T, s: &S)
);
isa_entry!(
    /// [`tl2::star3_tl2`] behind a per-ISA feature entry.
    star3_tl2, Star3, tl2::star3_tl2,
    fn(buf: *mut T, rs: usize, ps: usize, nx: usize, ny: usize, nz: usize,
       ring: *mut T, s: &S)
);
isa_entry!(
    /// [`tl2::box3_tl2`] behind a per-ISA feature entry.
    box3_tl2, Box3, tl2::box3_tl2,
    fn(buf: *mut T, rs: usize, ps: usize, nx: usize, ny: usize, nz: usize,
       ring: *mut T, s: &S)
);
isa_entry!(
    /// [`tl2::star1_tl2_wide`] behind a per-ISA feature entry.
    star1_tl2_wide, Star1, tl2::star1_tl2_wide,
    fn(buf: *mut T, n: usize, b: Boundary, s: &S)
);
isa_entry!(
    /// [`tl2::star2_tl2_wide`] behind a per-ISA feature entry.
    star2_tl2_wide, Star2, tl2::star2_tl2_wide,
    fn(buf: *mut T, rs: usize, nx: usize, ny: usize, ring: *mut T,
       b: Boundary, map: &RowMap, s: &S)
);
isa_entry!(
    /// [`tl2::box2_tl2_wide`] behind a per-ISA feature entry.
    box2_tl2_wide, Box2, tl2::box2_tl2_wide,
    fn(buf: *mut T, rs: usize, nx: usize, ny: usize, ring: *mut T,
       b: Boundary, map: &RowMap, s: &S)
);
isa_entry!(
    /// [`tl2::star3_tl2_wide`] behind a per-ISA feature entry.
    star3_tl2_wide, Star3, tl2::star3_tl2_wide,
    fn(buf: *mut T, rs: usize, ps: usize, nx: usize, ny: usize, nz: usize,
       ring: *mut T, b: Boundary, map: &RowMap, s: &S)
);
isa_entry!(
    /// [`tl2::box3_tl2_wide`] behind a per-ISA feature entry.
    box3_tl2_wide, Box3, tl2::box3_tl2_wide,
    fn(buf: *mut T, rs: usize, ps: usize, nx: usize, ny: usize, nz: usize,
       ring: *mut T, b: Boundary, map: &RowMap, s: &S)
);

/// Sanity: the macro's portable fallback uses lane width to pick the
/// oracle type, so every entry must accept every ISA.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid1;
    use crate::layout::tl_grid1;
    use crate::stencil::S1d3p;

    #[test]
    fn entries_run_on_every_available_isa() {
        let s = S1d3p::heat();
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let n = 4 * isa.lanes() * isa.lanes();
            let mut g = Grid1::from_fn(n, 0.0, |i| i as f64);
            tl_grid1(&mut g, isa);
            let mut d = g.clone();
            let (sp, dp) = (g.ptr(), d.ptr_mut());
            unsafe { star1_tl::<f64, S1d3p>(isa, sp, dp, n, 0, n, &s) };
            let gp = d.ptr_mut();
            unsafe { star1_tl2::<f64, S1d3p>(isa, gp, n, &s) };
        }
    }

    #[test]
    fn entries_run_on_every_available_isa_f32() {
        let s = S1d3p::heat();
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let l = isa.lanes_for::<f32>();
            let n = 4 * l * l;
            let mut g = Grid1::<f32>::from_fn(n, 0.0, |i| i as f32);
            tl_grid1(&mut g, isa);
            let mut d = g.clone();
            let (sp, dp) = (g.ptr(), d.ptr_mut());
            unsafe { star1_tl::<f32, S1d3p>(isa, sp, dp, n, 0, n, &s) };
            let gp = d.ptr_mut();
            unsafe { star1_tl2::<f32, S1d3p>(isa, gp, n, &s) };
        }
    }
}
