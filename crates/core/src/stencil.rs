//! Stencil specifications.
//!
//! The paper evaluates six stencils (Table 1): four star stencils
//! (1D3P, 1D5P, 2D5P, 3D7P) and two box stencils (2D9P, 3D27P). Each
//! family below is generic in its weights; the radius is a compile-time
//! constant of the concrete type so kernels monomorphize their inner loops.
//!
//! All kernels in this workspace accumulate the weighted sum in one
//! **canonical order** (documented per family) using fused multiply-adds,
//! so every method — scalar reference included — produces bit-identical
//! results for the same stencil.

/// Maximum supported stencil radius (bounded by the vector length: the
/// assembled dependent vectors reach at most one neighbouring vector set).
pub const MAX_R: usize = 4;

/// 1D star stencil of radius `R`:
/// `out[i] = Σ_{o=-R..=R} w[R+o] · in[i+o]`.
///
/// Canonical accumulation: `acc = w[0]·in[i-R]`, then fma terms in
/// ascending `o`.
pub trait Star1: Copy + Send + Sync + 'static {
    /// Stencil radius (the paper's order `r`).
    const R: usize;
    /// Display name ("1d3p", ...).
    const NAME: &'static str;
    /// Weights, length `2R+1`, index `R+o` for offset `o`.
    fn w(&self) -> &[f64];
    /// Floating-point operations per updated point (fma = 2 flops).
    fn flops_per_point() -> usize {
        2 * (2 * Self::R + 1) - 1
    }
}

/// 2D star stencil of radius `R`:
/// `out[y][x] = Σ_o wx[R+o]·in[y][x+o] + Σ_{o≠0} wy[R+o]·in[y+o][x]`.
///
/// Canonical accumulation: x-terms ascending (as [`Star1`]), then y-terms
/// `o = -1..-R` interleaved as: for `d` in `1..=R`: term `y-d`, then term
/// `y+d`.
pub trait Star2: Copy + Send + Sync + 'static {
    /// Stencil radius.
    const R: usize;
    /// Display name.
    const NAME: &'static str;
    /// x-axis weights, length `2R+1` (center included).
    fn wx(&self) -> &[f64];
    /// y-axis weights, length `2R+1`; the center entry is ignored.
    fn wy(&self) -> &[f64];
    /// Floating-point operations per updated point.
    fn flops_per_point() -> usize {
        let terms = (2 * Self::R + 1) + 2 * Self::R;
        2 * terms - 1
    }
}

/// 2D box stencil of radius `R`:
/// `out[y][x] = Σ_{dy,dx ∈ -R..=R} w[(R+dy)·(2R+1) + R+dx] · in[y+dy][x+dx]`.
///
/// Canonical accumulation: row-major (`dy` outer ascending, `dx` inner
/// ascending).
pub trait Box2: Copy + Send + Sync + 'static {
    /// Stencil radius.
    const R: usize;
    /// Display name.
    const NAME: &'static str;
    /// Weights, row-major `(2R+1)²`.
    fn w(&self) -> &[f64];
    /// Floating-point operations per updated point.
    fn flops_per_point() -> usize {
        let terms = (2 * Self::R + 1) * (2 * Self::R + 1);
        2 * terms - 1
    }
}

/// 3D star stencil of radius `R` (x fastest, then y, then z).
///
/// Canonical accumulation: x-terms ascending, y pairs (−d then +d), z pairs
/// (−d then +d).
pub trait Star3: Copy + Send + Sync + 'static {
    /// Stencil radius.
    const R: usize;
    /// Display name.
    const NAME: &'static str;
    /// x-axis weights, length `2R+1` (center included).
    fn wx(&self) -> &[f64];
    /// y-axis weights, length `2R+1`; center ignored.
    fn wy(&self) -> &[f64];
    /// z-axis weights, length `2R+1`; center ignored.
    fn wz(&self) -> &[f64];
    /// Floating-point operations per updated point.
    fn flops_per_point() -> usize {
        let terms = (2 * Self::R + 1) + 4 * Self::R;
        2 * terms - 1
    }
}

/// 3D box stencil of radius `R`:
/// weights indexed `((R+dz)·(2R+1) + R+dy)·(2R+1) + R+dx`.
///
/// Canonical accumulation: `dz` outer, `dy` middle, `dx` inner, all
/// ascending.
pub trait Box3: Copy + Send + Sync + 'static {
    /// Stencil radius.
    const R: usize;
    /// Display name.
    const NAME: &'static str;
    /// Weights, length `(2R+1)³`.
    fn w(&self) -> &[f64];
    /// Floating-point operations per updated point.
    fn flops_per_point() -> usize {
        let s = 2 * Self::R + 1;
        2 * s * s * s - 1
    }
}

macro_rules! star1_type {
    ($(#[$doc:meta])* $name:ident, $r:expr, $pts:expr, $disp:expr) => {
        $(#[$doc])*
        #[derive(Copy, Clone, Debug, PartialEq)]
        pub struct $name {
            /// Weights, index `R+o` for offset `o`.
            pub w: [f64; $pts],
        }
        impl Star1 for $name {
            const R: usize = $r;
            const NAME: &'static str = $disp;
            #[inline(always)]
            fn w(&self) -> &[f64] {
                &self.w
            }
        }
    };
}

star1_type!(
    /// 1D 3-point star stencil (the paper's running example, "1D-Heat").
    S1d3p, 1, 3, "1d3p"
);
star1_type!(
    /// 1D 5-point star stencil (order 2).
    S1d5p, 2, 5, "1d5p"
);

impl S1d3p {
    /// Classic explicit heat-equation weights `a·(A[i-1]+A[i]+A[i+1])`
    /// with `a = 1/3` (stable, mass-preserving).
    pub fn heat() -> Self {
        S1d3p { w: [1.0 / 3.0; 3] }
    }
}

impl S1d5p {
    /// Fourth-order-flavoured smoothing weights (normalized).
    pub fn heat() -> Self {
        S1d5p {
            w: [-1.0 / 12.0, 4.0 / 12.0, 6.0 / 12.0, 4.0 / 12.0, -1.0 / 12.0],
        }
    }
}

/// 2D 5-point star stencil ("2D-Heat").
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct S2d5p {
    /// x-axis weights (center included at index 1).
    pub wx: [f64; 3],
    /// y-axis weights (center entry ignored).
    pub wy: [f64; 3],
}

impl Star2 for S2d5p {
    const R: usize = 1;
    const NAME: &'static str = "2d5p";
    #[inline(always)]
    fn wx(&self) -> &[f64] {
        &self.wx
    }
    #[inline(always)]
    fn wy(&self) -> &[f64] {
        &self.wy
    }
}

impl S2d5p {
    /// Jacobi weights for the 2D heat equation (each of 5 points = 1/5).
    pub fn heat() -> Self {
        S2d5p {
            wx: [0.2, 0.2, 0.2],
            wy: [0.2, 0.0, 0.2],
        }
    }
}

/// 2D 9-point box stencil.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct S2d9p {
    /// Row-major 3×3 weights.
    pub w: [f64; 9],
}

impl Box2 for S2d9p {
    const R: usize = 1;
    const NAME: &'static str = "2d9p";
    #[inline(always)]
    fn w(&self) -> &[f64] {
        &self.w
    }
}

impl S2d9p {
    /// Uniform 3×3 box blur.
    pub fn blur() -> Self {
        S2d9p { w: [1.0 / 9.0; 9] }
    }
}

/// 3D 7-point star stencil ("3D-Heat").
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct S3d7p {
    /// x-axis weights (center at index 1).
    pub wx: [f64; 3],
    /// y-axis weights (center ignored).
    pub wy: [f64; 3],
    /// z-axis weights (center ignored).
    pub wz: [f64; 3],
}

impl Star3 for S3d7p {
    const R: usize = 1;
    const NAME: &'static str = "3d7p";
    #[inline(always)]
    fn wx(&self) -> &[f64] {
        &self.wx
    }
    #[inline(always)]
    fn wy(&self) -> &[f64] {
        &self.wy
    }
    #[inline(always)]
    fn wz(&self) -> &[f64] {
        &self.wz
    }
}

impl S3d7p {
    /// Jacobi weights for the 3D heat equation (each of 7 points = 1/7).
    pub fn heat() -> Self {
        let w = 1.0 / 7.0;
        S3d7p {
            wx: [w, w, w],
            wy: [w, 0.0, w],
            wz: [w, 0.0, w],
        }
    }
}

/// 3D 27-point box stencil.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct S3d27p {
    /// Weights, `dz` outer / `dy` middle / `dx` inner, length 27.
    pub w: [f64; 27],
}

impl Box3 for S3d27p {
    const R: usize = 1;
    const NAME: &'static str = "3d27p";
    #[inline(always)]
    fn w(&self) -> &[f64] {
        &self.w
    }
}

impl S3d27p {
    /// Uniform 3×3×3 box blur.
    pub fn blur() -> Self {
        S3d27p {
            w: [1.0 / 27.0; 27],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_counts_match_paper_points() {
        assert_eq!(S1d3p::flops_per_point(), 5); // 3 terms
        assert_eq!(S1d5p::flops_per_point(), 9); // 5 terms
        assert_eq!(S2d5p::flops_per_point(), 9); // 5 terms
        assert_eq!(S2d9p::flops_per_point(), 17); // 9 terms
        assert_eq!(S3d7p::flops_per_point(), 13); // 7 terms
        assert_eq!(S3d27p::flops_per_point(), 53); // 27 terms
    }

    #[test]
    fn heat_weights_are_normalized() {
        assert!((S1d3p::heat().w.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert!((S1d5p::heat().w.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        let s = S2d5p::heat();
        let total: f64 = s.wx.iter().sum::<f64>() + s.wy[0] + s.wy[2];
        assert!((total - 1.0).abs() < 1e-15);
        assert!((S2d9p::blur().w.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        let s = S3d7p::heat();
        let total: f64 = s.wx.iter().sum::<f64>() + s.wy[0] + s.wy[2] + s.wz[0] + s.wz[2];
        assert!((total - 1.0).abs() < 1e-12);
        assert!((S3d27p::blur().w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn radii() {
        assert_eq!(S1d3p::R, 1);
        assert_eq!(S1d5p::R, 2);
        assert_eq!(S2d5p::R, 1);
        assert_eq!(S2d9p::R, 1);
        assert_eq!(S3d7p::R, 1);
        assert_eq!(S3d27p::R, 1);
    }
}
