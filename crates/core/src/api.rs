//! Legacy grid-level entry points: pick a [`Method`] and an [`Isa`], hand
//! over a grid, get `t` Jacobi steps.
//!
//! These free functions reproduce the paper's per-invocation accounting —
//! layout transformations (into/out of the transpose or DLT layout)
//! happen inside each call, exactly as the sequential experiments
//! (Fig. 7) measure them. Since the plan refactor they are **thin
//! wrappers** over [`crate::exec::Plan`]: one plan is built, used for one
//! run, and dropped — pinned to [`Parallelism::Off`], because the paper's
//! sequential experiments are exactly single-threaded. Code that steps a
//! grid repeatedly (or wants the parallel executor) should hold a `Plan`
//! (and a session) instead — see [`crate::exec`].

use stencil_simd::Isa;

pub use crate::exec::Method;
use crate::exec::{Parallelism, Plan, Shape};
use crate::grid::{Grid1, Grid2, Grid3};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// Run `t` Jacobi steps of a 1D star stencil on `g` with the given method
/// and ISA. The result (including any layout round-trips) lands back in
/// `g` in natural order.
pub fn run1_star1<S: Star1>(method: Method, isa: Isa, g: &mut Grid1, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d1(g.n()))
        .method(method)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .star1(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}

/// Run `t` Jacobi steps of a 2D star stencil (see [`run1_star1`]).
pub fn run2_star<S: Star2>(method: Method, isa: Isa, g: &mut Grid2, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d2(g.nx(), g.ny()))
        .method(method)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .star2(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}

/// Run `t` Jacobi steps of a 2D box stencil (see [`run1_star1`]).
pub fn run2_box<S: Box2>(method: Method, isa: Isa, g: &mut Grid2, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d2(g.nx(), g.ny()))
        .method(method)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .box2(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}

/// Run `t` Jacobi steps of a 3D star stencil (see [`run1_star1`]).
pub fn run3_star<S: Star3>(method: Method, isa: Isa, g: &mut Grid3, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d3(g.nx(), g.ny(), g.nz()))
        .method(method)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .star3(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}

/// Run `t` Jacobi steps of a 3D box stencil (see [`run1_star1`]).
pub fn run3_box<S: Box3>(method: Method, isa: Isa, g: &mut Grid3, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    Plan::new(Shape::d3(g.nx(), g.ny(), g.nz()))
        .method(method)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .box3(*s)
        .unwrap_or_else(|e| panic!("{e}"))
        .run(g, t);
}
