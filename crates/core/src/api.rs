//! Safe, grid-level entry points: pick a [`Method`] and an
//! [`Isa`], hand over a grid, get `t` Jacobi steps.
//!
//! Layout transformations (into/out of the transpose or DLT layout) happen
//! inside these calls, exactly as the paper accounts for them: the
//! transform cost is amortized over the time loop and is part of what the
//! sequential experiments (Fig. 7) measure.

use stencil_simd::{dispatch, AlignedBuf, Isa};

use crate::grid::{Grid1, Grid2, Grid3, HALO_PAD};
use crate::kernels::{dlt, isa_entry, orig, scalar, tl};
use crate::layout::{dlt_grid1, dlt_grid2, dlt_grid3, tl_grid1, tl_grid2, tl_grid3, SetGeo};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// A stencil execution scheme (paper §2–§3).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Scalar reference (correctness oracle).
    Scalar,
    /// Vectorized with unaligned neighbour loads (§2.1, "multiple load").
    MultiLoad,
    /// Vectorized with aligned loads + per-vector shuffles (§2.1,
    /// "data reorganization").
    Reorg,
    /// Dimension-lifting transpose (Henretty et al., §2.2).
    Dlt,
    /// The paper's local transpose layout, one step per pass (§3.2).
    TransLayout,
    /// Transpose layout + time unroll-and-jam, two steps per pass (§3.3).
    TransLayout2,
}

impl Method {
    /// All methods, cheap to iterate in tests and benches.
    pub const ALL: [Method; 6] = [
        Method::Scalar,
        Method::MultiLoad,
        Method::Reorg,
        Method::Dlt,
        Method::TransLayout,
        Method::TransLayout2,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Scalar => "scalar",
            Method::MultiLoad => "multiload",
            Method::Reorg => "reorg",
            Method::Dlt => "dlt",
            Method::TransLayout => "translayout",
            Method::TransLayout2 => "translayout2",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Method {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown method '{s}'"))
    }
}

// ---------------------------------------------------------------------------
// 1D star
// ---------------------------------------------------------------------------

/// Run `t` steps of a 1D star stencil with transposed-layout k=1 kernels
/// (grid must already be in transpose layout).
fn tl1_k1_steps<S: Star1>(isa: Isa, g: &mut Grid1, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    let n = g.n();
    let mut other = g.clone();
    let gp = g.ptr_mut();
    let op = other.ptr_mut();
    let mut in_g = true;
    for _ in 0..t {
        let (sp, dp) = if in_g { (gp as *const f64, op) } else { (op as *const f64, gp) };
        unsafe { isa_entry::star1_tl::<S>(isa, sp, dp, n, 0, n, s) };
        in_g = !in_g;
    }
    if !in_g {
        std::mem::swap(g, &mut other);
    }
}

/// Run `t` Jacobi steps of a 1D star stencil on `g` with the given method
/// and ISA. The result (including any layout round-trips) lands back in
/// `g` in natural order.
pub fn run1_star1<S: Star1>(method: Method, isa: Isa, g: &mut Grid1, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    let n = g.n();
    match method {
        Method::Scalar => {
            let mut other = g.clone();
            let mut in_g = true;
            for _ in 0..t {
                let (sp, dp) = if in_g {
                    (g.ptr(), other.ptr_mut())
                } else {
                    (other.ptr(), g.ptr_mut())
                };
                unsafe { scalar::star1_range(sp, dp, 0, n, s) };
                in_g = !in_g;
            }
            if !in_g {
                std::mem::swap(g, &mut other);
            }
        }
        Method::MultiLoad | Method::Reorg => {
            let reorg = method == Method::Reorg;
            let mut other = g.clone();
            let gp = g.ptr_mut();
            let op = other.ptr_mut();
            let in_g = dispatch!(isa, V => {
                let mut in_g = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_g { (gp as *const f64, op) } else { (op as *const f64, gp) };
                    if reorg {
                        orig::star1_orig::<V, S, true>(sp, dp, 0, n, s);
                    } else {
                        orig::star1_orig::<V, S, false>(sp, dp, 0, n, s);
                    }
                    in_g = !in_g;
                }
                in_g
            });
            if !in_g {
                std::mem::swap(g, &mut other);
            }
        }
        Method::Dlt => {
            let mut a = g.clone();
            dlt_grid1(g, &mut a, isa, false);
            let mut b = a.clone();
            let ap = a.ptr_mut();
            let bp = b.ptr_mut();
            let in_a = dispatch!(isa, V => {
                let mut in_a = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_a { (ap as *const f64, bp) } else { (bp as *const f64, ap) };
                    dlt::star1_dlt::<V, S>(sp, dp, n, s);
                    in_a = !in_a;
                }
                in_a
            });
            let res = if in_a { &a } else { &b };
            dlt_grid1(res, g, isa, true);
        }
        Method::TransLayout => {
            tl_grid1(g, isa);
            tl1_k1_steps(isa, g, s, t);
            tl_grid1(g, isa);
        }
        Method::TransLayout2 => {
            tl_grid1(g, isa);
            let pairs = t / 2;
            let nsets = SetGeo::new(n, isa.lanes()).nsets;
            if nsets >= 2 {
                let gp = g.ptr_mut();
                for _ in 0..pairs {
                    unsafe { isa_entry::star1_tl2::<S>(isa, gp, n, s) };
                }
            } else {
                tl1_k1_steps(isa, g, s, 2 * pairs);
            }
            if t % 2 == 1 {
                tl1_k1_steps(isa, g, s, 1);
            }
            tl_grid1(g, isa);
        }
    }
}

// ---------------------------------------------------------------------------
// 2D star / box
// ---------------------------------------------------------------------------

macro_rules! parity_loop2 {
    ($isa:expr, $g:expr, $t:expr, $V:ident, $sp:ident, $dp:ident => $step:expr) => {{
        let mut other = $g.clone();
        let gp = $g.ptr_mut();
        let op = other.ptr_mut();
        let in_g = dispatch!($isa, $V => {
            let mut in_g = true;
            for _ in 0..$t {
                let ($sp, $dp) =
                    if in_g { (gp as *const f64, op) } else { (op as *const f64, gp) };
                $step;
                in_g = !in_g;
            }
            in_g
        });
        if !in_g {
            std::mem::swap($g, &mut other);
        }
    }};
}

fn ring2_for(g: &Grid2, r: usize) -> (AlignedBuf, usize) {
    let nr = 2 * r + 1;
    let buf = AlignedBuf::zeroed(HALO_PAD + nr * g.row_stride());
    (buf, HALO_PAD)
}

/// Run `t` Jacobi steps of a 2D star stencil (see [`run1_star1`]).
pub fn run2_star<S: Star2>(method: Method, isa: Isa, g: &mut Grid2, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    assert!(g.ry() >= S::R, "grid halo narrower than stencil radius");
    let (nx, ny, rs) = (g.nx(), g.ny(), g.row_stride());
    match method {
        Method::Scalar => {
            let mut other = g.clone();
            let mut in_g = true;
            for _ in 0..t {
                let (sp, dp) = if in_g {
                    (g.ptr(), other.ptr_mut())
                } else {
                    (other.ptr(), g.ptr_mut())
                };
                unsafe { scalar::star2_range(sp, dp, rs, 0, ny, 0, nx, s) };
                in_g = !in_g;
            }
            if !in_g {
                std::mem::swap(g, &mut other);
            }
        }
        Method::MultiLoad => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::star2_orig::<V, S, false>(sp, dp, rs, 0, ny, 0, nx, s));
        }
        Method::Reorg => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::star2_orig::<V, S, true>(sp, dp, rs, 0, ny, 0, nx, s));
        }
        Method::Dlt => {
            let mut a = g.clone();
            dlt_grid2(g, &mut a, isa, false);
            let mut b = a.clone();
            let ap = a.ptr_mut();
            let bp = b.ptr_mut();
            let in_a = dispatch!(isa, V => {
                let mut in_a = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_a { (ap as *const f64, bp) } else { (bp as *const f64, ap) };
                    dlt::star2_dlt::<V, S>(sp, dp, rs, nx, 0, ny, s);
                    in_a = !in_a;
                }
                in_a
            });
            let res = if in_a { &a } else { &b };
            dlt_grid2(res, g, isa, true);
        }
        Method::TransLayout => {
            tl_grid2(g, isa);
            parity_loop2!(isa, g, t, V, sp, dp => tl::star2_tl::<V, S>(sp, dp, rs, nx, 0, ny, 0, nx, s));
            tl_grid2(g, isa);
        }
        Method::TransLayout2 => {
            tl_grid2(g, isa);
            let (mut ringbuf, off) = ring2_for(g, S::R);
            let ring = unsafe { ringbuf.as_mut_ptr().add(off) };
            let pairs = t / 2;
            let gp = g.ptr_mut();
            for _ in 0..pairs {
                unsafe { isa_entry::star2_tl2::<S>(isa, gp, rs, nx, ny, ring, s) };
            }
            if t % 2 == 1 {
                parity_loop2!(isa, g, 1, V, sp, dp => tl::star2_tl::<V, S>(sp, dp, rs, nx, 0, ny, 0, nx, s));
            }
            tl_grid2(g, isa);
        }
    }
}

/// Run `t` Jacobi steps of a 2D box stencil (see [`run1_star1`]).
pub fn run2_box<S: Box2>(method: Method, isa: Isa, g: &mut Grid2, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    assert!(g.ry() >= S::R, "grid halo narrower than stencil radius");
    let (nx, ny, rs) = (g.nx(), g.ny(), g.row_stride());
    match method {
        Method::Scalar => {
            let mut other = g.clone();
            let mut in_g = true;
            for _ in 0..t {
                let (sp, dp) = if in_g {
                    (g.ptr(), other.ptr_mut())
                } else {
                    (other.ptr(), g.ptr_mut())
                };
                unsafe { scalar::box2_range(sp, dp, rs, 0, ny, 0, nx, s) };
                in_g = !in_g;
            }
            if !in_g {
                std::mem::swap(g, &mut other);
            }
        }
        Method::MultiLoad => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::box2_orig::<V, S, false>(sp, dp, rs, 0, ny, 0, nx, s));
        }
        Method::Reorg => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::box2_orig::<V, S, true>(sp, dp, rs, 0, ny, 0, nx, s));
        }
        Method::Dlt => {
            let mut a = g.clone();
            dlt_grid2(g, &mut a, isa, false);
            let mut b = a.clone();
            let ap = a.ptr_mut();
            let bp = b.ptr_mut();
            let in_a = dispatch!(isa, V => {
                let mut in_a = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_a { (ap as *const f64, bp) } else { (bp as *const f64, ap) };
                    dlt::box2_dlt::<V, S>(sp, dp, rs, nx, 0, ny, s);
                    in_a = !in_a;
                }
                in_a
            });
            let res = if in_a { &a } else { &b };
            dlt_grid2(res, g, isa, true);
        }
        Method::TransLayout => {
            tl_grid2(g, isa);
            parity_loop2!(isa, g, t, V, sp, dp => tl::box2_tl::<V, S>(sp, dp, rs, nx, 0, ny, 0, nx, s));
            tl_grid2(g, isa);
        }
        Method::TransLayout2 => {
            tl_grid2(g, isa);
            let (mut ringbuf, off) = ring2_for(g, S::R);
            let ring = unsafe { ringbuf.as_mut_ptr().add(off) };
            let pairs = t / 2;
            let gp = g.ptr_mut();
            for _ in 0..pairs {
                unsafe { isa_entry::box2_tl2::<S>(isa, gp, rs, nx, ny, ring, s) };
            }
            if t % 2 == 1 {
                parity_loop2!(isa, g, 1, V, sp, dp => tl::box2_tl::<V, S>(sp, dp, rs, nx, 0, ny, 0, nx, s));
            }
            tl_grid2(g, isa);
        }
    }
}

// ---------------------------------------------------------------------------
// 3D star / box
// ---------------------------------------------------------------------------

fn ring3_for(g: &Grid3, r: usize) -> (AlignedBuf, usize) {
    let nr = 2 * r + 1;
    let buf = AlignedBuf::zeroed(nr * g.plane_stride());
    (buf, r * g.row_stride() + HALO_PAD)
}

/// Run `t` Jacobi steps of a 3D star stencil (see [`run1_star1`]).
pub fn run3_star<S: Star3>(method: Method, isa: Isa, g: &mut Grid3, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    assert!(g.r() >= S::R, "grid halo narrower than stencil radius");
    let (nx, ny, nz, rs, ps) = (g.nx(), g.ny(), g.nz(), g.row_stride(), g.plane_stride());
    match method {
        Method::Scalar => {
            let mut other = g.clone();
            let mut in_g = true;
            for _ in 0..t {
                let (sp, dp) = if in_g {
                    (g.ptr(), other.ptr_mut())
                } else {
                    (other.ptr(), g.ptr_mut())
                };
                unsafe { scalar::star3_range(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s) };
                in_g = !in_g;
            }
            if !in_g {
                std::mem::swap(g, &mut other);
            }
        }
        Method::MultiLoad => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::star3_orig::<V, S, false>(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s));
        }
        Method::Reorg => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::star3_orig::<V, S, true>(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s));
        }
        Method::Dlt => {
            let mut a = g.clone();
            dlt_grid3(g, &mut a, isa, false);
            let mut b = a.clone();
            let ap = a.ptr_mut();
            let bp = b.ptr_mut();
            let in_a = dispatch!(isa, V => {
                let mut in_a = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_a { (ap as *const f64, bp) } else { (bp as *const f64, ap) };
                    dlt::star3_dlt::<V, S>(sp, dp, rs, ps, nx, ny, 0, nz, s);
                    in_a = !in_a;
                }
                in_a
            });
            let res = if in_a { &a } else { &b };
            dlt_grid3(res, g, isa, true);
        }
        Method::TransLayout => {
            tl_grid3(g, isa);
            parity_loop2!(isa, g, t, V, sp, dp => tl::star3_tl::<V, S>(sp, dp, rs, ps, nx, 0, nz, 0, ny, 0, nx, s));
            tl_grid3(g, isa);
        }
        Method::TransLayout2 => {
            tl_grid3(g, isa);
            let (mut ringbuf, off) = ring3_for(g, S::R);
            let ring = unsafe { ringbuf.as_mut_ptr().add(off) };
            let pairs = t / 2;
            let gp = g.ptr_mut();
            for _ in 0..pairs {
                unsafe { isa_entry::star3_tl2::<S>(isa, gp, rs, ps, nx, ny, nz, ring, s) };
            }
            if t % 2 == 1 {
                parity_loop2!(isa, g, 1, V, sp, dp => tl::star3_tl::<V, S>(sp, dp, rs, ps, nx, 0, nz, 0, ny, 0, nx, s));
            }
            tl_grid3(g, isa);
        }
    }
}

/// Run `t` Jacobi steps of a 3D box stencil (see [`run1_star1`]).
pub fn run3_box<S: Box3>(method: Method, isa: Isa, g: &mut Grid3, s: &S, t: usize) {
    if t == 0 {
        return;
    }
    assert!(g.r() >= S::R, "grid halo narrower than stencil radius");
    let (nx, ny, nz, rs, ps) = (g.nx(), g.ny(), g.nz(), g.row_stride(), g.plane_stride());
    match method {
        Method::Scalar => {
            let mut other = g.clone();
            let mut in_g = true;
            for _ in 0..t {
                let (sp, dp) = if in_g {
                    (g.ptr(), other.ptr_mut())
                } else {
                    (other.ptr(), g.ptr_mut())
                };
                unsafe { scalar::box3_range(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s) };
                in_g = !in_g;
            }
            if !in_g {
                std::mem::swap(g, &mut other);
            }
        }
        Method::MultiLoad => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::box3_orig::<V, S, false>(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s));
        }
        Method::Reorg => {
            parity_loop2!(isa, g, t, V, sp, dp => orig::box3_orig::<V, S, true>(sp, dp, rs, ps, 0, nz, 0, ny, 0, nx, s));
        }
        Method::Dlt => {
            let mut a = g.clone();
            dlt_grid3(g, &mut a, isa, false);
            let mut b = a.clone();
            let ap = a.ptr_mut();
            let bp = b.ptr_mut();
            let in_a = dispatch!(isa, V => {
                let mut in_a = true;
                for _ in 0..t {
                    let (sp, dp) =
                        if in_a { (ap as *const f64, bp) } else { (bp as *const f64, ap) };
                    dlt::box3_dlt::<V, S>(sp, dp, rs, ps, nx, ny, 0, nz, s);
                    in_a = !in_a;
                }
                in_a
            });
            let res = if in_a { &a } else { &b };
            dlt_grid3(res, g, isa, true);
        }
        Method::TransLayout => {
            tl_grid3(g, isa);
            parity_loop2!(isa, g, t, V, sp, dp => tl::box3_tl::<V, S>(sp, dp, rs, ps, nx, 0, nz, 0, ny, 0, nx, s));
            tl_grid3(g, isa);
        }
        Method::TransLayout2 => {
            tl_grid3(g, isa);
            let (mut ringbuf, off) = ring3_for(g, S::R);
            let ring = unsafe { ringbuf.as_mut_ptr().add(off) };
            let pairs = t / 2;
            let gp = g.ptr_mut();
            for _ in 0..pairs {
                unsafe { isa_entry::box3_tl2::<S>(isa, gp, rs, ps, nx, ny, nz, ring, s) };
            }
            if t % 2 == 1 {
                parity_loop2!(isa, g, 1, V, sp, dp => tl::box3_tl::<V, S>(sp, dp, rs, ps, nx, 0, nz, 0, ny, 0, nx, s));
            }
            tl_grid3(g, isa);
        }
    }
}
