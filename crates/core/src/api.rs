//! Legacy grid-level entry points: pick a [`Method`] and an [`Isa`], hand
//! over a grid, get `t` Jacobi steps.
//!
//! These free functions reproduce the paper's per-invocation accounting —
//! layout transformations (into/out of the transpose or DLT layout)
//! happen inside each call, exactly as the sequential experiments
//! (Fig. 7) measure them. Since the plan refactor they are **thin
//! wrappers** over the execution engine: one plan is built, used for one
//! run, and dropped — pinned to [`Parallelism::Off`], because the paper's
//! sequential experiments are exactly single-threaded. Since the erased
//! API landed they are routed through
//! [`Plan::stencil`]/[`DynPlan`](crate::exec::DynPlan) — the stencil's
//! weights are lifted into a [`StencilSpec`] and validated there, which
//! is why they now return `Result<(), PlanError>` instead of panicking
//! on a bad configuration (e.g. a stencil whose weight slice implies a
//! radius past [`MAX_R`](crate::stencil::MAX_R)).
//!
//! These entry points **pin the paper's constant-halo (Dirichlet)
//! semantics**: the sequential experiments assume halos that never
//! change, with the boundary value carried by the grid's own halo cells
//! (conventionally 0.0 in the paper's runs). A [`StencilSpec`] that
//! requests a refreshed boundary (`Periodic` / `Reflect`) is rejected
//! with [`PlanError::Boundary`] — route such workloads through
//! [`Plan::stencil`](crate::exec::Plan::stencil) instead, where the
//! boundary subsystem (see [`crate::exec::halo`]) runs it.
//!
//! Code that steps a grid repeatedly (or wants the parallel executor)
//! should hold a plan (and a session) instead — see [`crate::exec`].

use stencil_simd::Isa;

pub use crate::exec::Method;
use crate::exec::{AnyGridMut, Parallelism, Plan, PlanError};
use crate::grid::{Grid1, Grid2, Grid3};
use crate::spec::{SpecError, StencilSpec};
use crate::stencil::{Box2, Box3, Star1, Star2, Star3};

/// The spec constructors infer the radius from a slice length; a typed
/// stencil whose `w()` length disagrees with its declared `R` (e.g.
/// zero-padded storage) would otherwise be silently reinterpreted at a
/// different radius. Reject the contract violation instead.
fn expect_len(axis: &'static str, got: usize, expected: usize) -> Result<(), PlanError> {
    if got != expected {
        return Err(PlanError::Spec(SpecError::WeightLen {
            axis,
            got,
            expected: "the length implied by the stencil's declared radius",
        }));
    }
    Ok(())
}

/// Run `t` Jacobi steps of a runtime-described stencil on any grid with
/// the legacy per-call accounting (build a plan, run once, drop it,
/// sequentially) — the erased entry the typed `run*` wrappers route
/// through.
///
/// Pins the paper's constant-halo semantics: the grid's halo cells carry
/// the (Dirichlet) boundary value and are never refreshed.
///
/// # Errors
/// [`PlanError::Boundary`] if `spec` requests a refreshed boundary
/// (`Periodic` / `Reflect`) — the legacy surface is paper-fidelity only;
/// otherwise any error [`Plan::stencil`](crate::exec::Plan::stencil)
/// reports ([`PlanError::Spec`], [`PlanError::IsaUnavailable`],
/// [`PlanError::EmptyShape`], [`PlanError::DimMismatch`]).
pub fn run_spec<'a>(
    method: Method,
    isa: Isa,
    g: impl Into<AnyGridMut<'a>>,
    spec: &StencilSpec,
    t: usize,
) -> Result<(), PlanError> {
    let g = g.into();
    let boundary = spec.boundary();
    if !boundary.is_dirichlet() {
        return Err(PlanError::Boundary {
            boundary,
            reason: crate::exec::BoundaryReason::LegacySurface,
        });
    }
    if t == 0 {
        return Ok(());
    }
    Plan::new(g.shape())
        .method(method)
        .isa(isa)
        .parallelism(Parallelism::Off)
        .stencil(spec)?
        .run(g, t);
    Ok(())
}

/// Run `t` Jacobi steps of a 1D star stencil on `g` with the given method
/// and ISA. The result (including any layout round-trips) lands back in
/// `g` in natural order.
///
/// # Errors
/// [`PlanError::Spec`] if the stencil's weights are invalid (radius >
/// `MAX_R`, wrong slice length), [`PlanError::IsaUnavailable`] if `isa`
/// is not supported on this CPU, [`PlanError::EmptyShape`] for an empty
/// grid.
pub fn run1_star1<S: Star1>(
    method: Method,
    isa: Isa,
    g: &mut Grid1,
    s: &S,
    t: usize,
) -> Result<(), PlanError> {
    if t == 0 {
        return Ok(());
    }
    expect_len("x", s.w().len(), 2 * S::R + 1)?;
    let spec = StencilSpec::star1(s.w())?;
    run_spec(method, isa, g, &spec, t)
}

/// Run `t` Jacobi steps of a 2D star stencil (see [`run1_star1`]).
///
/// # Errors
/// See [`run1_star1`].
pub fn run2_star<S: Star2>(
    method: Method,
    isa: Isa,
    g: &mut Grid2,
    s: &S,
    t: usize,
) -> Result<(), PlanError> {
    if t == 0 {
        return Ok(());
    }
    expect_len("x", s.wx().len(), 2 * S::R + 1)?;
    expect_len("y", s.wy().len(), 2 * S::R + 1)?;
    let spec = StencilSpec::star2(s.wx(), s.wy())?;
    run_spec(method, isa, g, &spec, t)
}

/// Run `t` Jacobi steps of a 2D box stencil (see [`run1_star1`]).
///
/// # Errors
/// See [`run1_star1`].
pub fn run2_box<S: Box2>(
    method: Method,
    isa: Isa,
    g: &mut Grid2,
    s: &S,
    t: usize,
) -> Result<(), PlanError> {
    if t == 0 {
        return Ok(());
    }
    expect_len("box", s.w().len(), (2 * S::R + 1) * (2 * S::R + 1))?;
    let spec = StencilSpec::box2(s.w())?;
    run_spec(method, isa, g, &spec, t)
}

/// Run `t` Jacobi steps of a 3D star stencil (see [`run1_star1`]).
///
/// # Errors
/// See [`run1_star1`].
pub fn run3_star<S: Star3>(
    method: Method,
    isa: Isa,
    g: &mut Grid3,
    s: &S,
    t: usize,
) -> Result<(), PlanError> {
    if t == 0 {
        return Ok(());
    }
    expect_len("x", s.wx().len(), 2 * S::R + 1)?;
    expect_len("y", s.wy().len(), 2 * S::R + 1)?;
    expect_len("z", s.wz().len(), 2 * S::R + 1)?;
    let spec = StencilSpec::star3(s.wx(), s.wy(), s.wz())?;
    run_spec(method, isa, g, &spec, t)
}

/// Run `t` Jacobi steps of a 3D box stencil (see [`run1_star1`]).
///
/// # Errors
/// See [`run1_star1`].
pub fn run3_box<S: Box3>(
    method: Method,
    isa: Isa,
    g: &mut Grid3,
    s: &S,
    t: usize,
) -> Result<(), PlanError> {
    if t == 0 {
        return Ok(());
    }
    expect_len(
        "box",
        s.w().len(),
        (2 * S::R + 1) * (2 * S::R + 1) * (2 * S::R + 1),
    )?;
    let spec = StencilSpec::box3(s.w())?;
    run_spec(method, isa, g, &spec, t)
}
