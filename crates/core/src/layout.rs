//! Data-layout transformations.
//!
//! Two layouts beyond the natural row-major one:
//!
//! * **Local transpose layout** (the paper's contribution, §3.2): each
//!   row's interior is partitioned into blocks of `vl²` contiguous cells;
//!   each block — viewed as a `vl × vl` matrix of `vl` contiguous rows — is
//!   transposed *in registers, in place* ([`tl_transform_row`]). After the
//!   transform, vector `j` of a block (a "vector set") holds the logical
//!   cells `{base + j + i·vl}`, so the stencil's left/right dependences of
//!   vector `j` are simply vectors `j∓1` of the same set. Cells past the
//!   last full block (the *tail*) stay in natural order.
//!
//! * **DLT** (dimension-lifting transpose, Henretty et al., §2.2): the
//!   whole row of `n` cells is viewed as a `vl × (n/vl)` matrix and
//!   globally transposed, out of place ([`dlt_transform_row`]). Lanes of
//!   one vector are `n/vl` cells apart — great for alignment, fatal for
//!   tiling locality, which is exactly the contrast the paper draws.
//!
//! Both transforms come with index maps used by the scalar boundary/tail
//! paths and by tests.

use stencil_simd::{dispatch_elem, Elem, Isa, Vector};

use crate::grid::{Grid1, Grid2, Grid3};

/// Vector-set geometry of a row of `n` interior cells for vector length `vl`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SetGeo {
    /// Vector length (lanes).
    pub vl: usize,
    /// Block size `vl²`.
    pub bs: usize,
    /// Number of full vector-set blocks.
    pub nsets: usize,
    /// First index past the transposed region (`nsets · vl²`).
    pub tail_start: usize,
    /// Interior length.
    pub n: usize,
    /// `log2(vl)` — the map is division-free (`vl` is a power of two).
    vl_shift: u32,
}

impl SetGeo {
    /// Geometry of a row of `n` cells at vector length `vl`.
    pub fn new(n: usize, vl: usize) -> Self {
        assert!(vl.is_power_of_two(), "vector length must be a power of two");
        let bs = vl * vl;
        let nsets = n / bs;
        SetGeo {
            vl,
            bs,
            nsets,
            tail_start: nsets * bs,
            n,
            vl_shift: vl.trailing_zeros(),
        }
    }

    /// Storage index of logical cell `i` under the local transpose layout.
    ///
    /// The map is an involution (a transpose swaps `(row, col)`), so it
    /// also converts storage indices back to logical ones.
    #[inline(always)]
    pub fn map(&self, i: usize) -> usize {
        if i >= self.tail_start {
            return i;
        }
        let p = i & (self.bs - 1);
        let (row, col) = (p >> self.vl_shift, p & (self.vl - 1));
        (i - p) + (col << self.vl_shift) + row
    }
}

/// Read logical cell `i` (halo allowed: `i < 0` or `i ≥ n`) from a row in
/// the local transpose layout.
///
/// # Safety
/// `ptr` must point at the row's interior origin with the full halo
/// addressable, and `i` must stay within `[-HALO_PAD, n + HALO_PAD)`.
#[inline(always)]
pub unsafe fn tl_read<T: Elem>(ptr: *const T, i: isize, g: &SetGeo) -> T {
    if i < 0 || i as usize >= g.tail_start {
        *ptr.offset(i)
    } else {
        *ptr.add(g.map(i as usize))
    }
}

/// Write logical cell `i ∈ [0, n)` of a row in the local transpose layout.
///
/// # Safety
/// Same addressability contract as [`tl_read`].
#[inline(always)]
pub unsafe fn tl_write<T: Elem>(ptr: *mut T, i: usize, v: T, g: &SetGeo) {
    if i >= g.tail_start {
        *ptr.add(i) = v;
    } else {
        *ptr.add(g.map(i)) = v;
    }
}

/// Transform one row of `n` cells into (or back out of — it is an
/// involution) the local transpose layout, in place, using the in-register
/// `vl × vl` transpose.
///
/// # Safety
/// Caller must be in a context where `V`'s ISA is enabled; `ptr` must be
/// valid for `n` reads/writes and aligned so that each block start is a
/// `vl`-vector boundary (guaranteed by [`crate::grid`] geometry).
#[inline(always)]
pub unsafe fn tl_transform_row<V: Vector>(ptr: *mut V::Elem, n: usize) {
    let l = V::LANES;
    let bs = l * l;
    let zero = V::zero();
    // Sized for the widest register file: 16 lanes (f32 AVX-512).
    let mut m = [zero; 16];
    for b in 0..n / bs {
        let base = b * bs;
        for j in 0..l {
            m[j] = V::load(ptr.add(base + j * l));
        }
        V::transpose(&mut m[..l]);
        for j in 0..l {
            m[j].store(ptr.add(base + j * l));
        }
    }
}

/// [`tl_transform_row`] with the conventional in-lane-first transpose
/// schedule — ablation baseline for the §3.5 latency-hiding claim.
///
/// # Safety
/// Same contract as [`tl_transform_row`].
#[inline(always)]
pub unsafe fn tl_transform_row_baseline<V: Vector>(ptr: *mut V::Elem, n: usize) {
    let l = V::LANES;
    let bs = l * l;
    let zero = V::zero();
    // Sized for the widest register file: 16 lanes (f32 AVX-512).
    let mut m = [zero; 16];
    for b in 0..n / bs {
        let base = b * bs;
        for j in 0..l {
            m[j] = V::load(ptr.add(base + j * l));
        }
        V::transpose_baseline(&mut m[..l]);
        for j in 0..l {
            m[j].store(ptr.add(base + j * l));
        }
    }
}

/// DLT geometry of a row of `n` interior cells for vector length `vl`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DltGeo {
    /// Vector length (lanes).
    pub vl: usize,
    /// Matrix columns `M = n / vl` (the paper's `N/vl`).
    pub cols: usize,
    /// First index past the DLT region (`vl · cols`); the rest is tail.
    pub region: usize,
    /// Interior length.
    pub n: usize,
}

impl DltGeo {
    /// Geometry of a row of `n` cells at vector length `vl`.
    pub fn new(n: usize, vl: usize) -> Self {
        let cols = n / vl;
        DltGeo {
            vl,
            cols,
            region: cols * vl,
            n,
        }
    }

    /// Storage index of logical cell `i` in the DLT layout.
    #[inline(always)]
    pub fn map(&self, i: usize) -> usize {
        if i >= self.region {
            return i;
        }
        let lane = i / self.cols;
        let j = i % self.cols;
        j * self.vl + lane
    }

    /// Logical cell stored at position `p` (inverse of [`DltGeo::map`]).
    #[inline(always)]
    pub fn unmap(&self, p: usize) -> usize {
        if p >= self.region {
            return p;
        }
        let j = p / self.vl;
        let lane = p % self.vl;
        lane * self.cols + j
    }
}

/// Read logical cell `i` (halo allowed) from a row in DLT layout.
///
/// # Safety
/// Same addressability contract as [`tl_read`].
#[inline(always)]
pub unsafe fn dlt_read<T: Elem>(ptr: *const T, i: isize, g: &DltGeo) -> T {
    if i < 0 || i as usize >= g.region {
        *ptr.offset(i)
    } else {
        *ptr.add(g.map(i as usize))
    }
}

/// Transform one row into DLT layout (`src` natural → `dst` DLT).
///
/// Uses the in-register transpose on `vl × vl` panels (strided loads from
/// the `vl` lane regions, contiguous aligned stores), with a scalar
/// remainder for `cols % vl` columns; the tail region is copied unchanged.
///
/// # Safety
/// Feature context for `V`; both pointers valid for `n` cells; `src != dst`.
#[inline(always)]
pub unsafe fn dlt_transform_row<V: Vector>(src: *const V::Elem, dst: *mut V::Elem, n: usize) {
    let l = V::LANES;
    let g = DltGeo::new(n, l);
    let cols = g.cols;
    let chunked = cols / l * l;
    let zero = V::zero();
    // Sized for the widest register file: 16 lanes (f32 AVX-512).
    let mut m = [zero; 16];
    for j0 in (0..chunked).step_by(l) {
        for lane in 0..l {
            m[lane] = V::loadu(src.add(lane * cols + j0));
        }
        V::transpose(&mut m[..l]);
        for q in 0..l {
            m[q].store(dst.add((j0 + q) * l));
        }
    }
    for j in chunked..cols {
        for lane in 0..l {
            *dst.add(j * l + lane) = *src.add(lane * cols + j);
        }
    }
    for i in g.region..n {
        *dst.add(i) = *src.add(i);
    }
}

/// Transform one row back from DLT layout (`src` DLT → `dst` natural).
///
/// # Safety
/// Same contract as [`dlt_transform_row`].
#[inline(always)]
pub unsafe fn dlt_inverse_row<V: Vector>(src: *const V::Elem, dst: *mut V::Elem, n: usize) {
    let l = V::LANES;
    let g = DltGeo::new(n, l);
    let cols = g.cols;
    let chunked = cols / l * l;
    let zero = V::zero();
    // Sized for the widest register file: 16 lanes (f32 AVX-512).
    let mut m = [zero; 16];
    for j0 in (0..chunked).step_by(l) {
        for q in 0..l {
            m[q] = V::load(src.add((j0 + q) * l));
        }
        V::transpose(&mut m[..l]);
        for lane in 0..l {
            m[lane].storeu(dst.add(lane * cols + j0));
        }
    }
    for j in chunked..cols {
        for lane in 0..l {
            *dst.add(lane * cols + j) = *src.add(j * l + lane);
        }
    }
    for i in g.region..n {
        *dst.add(i) = *src.add(i);
    }
}

// ---------------------------------------------------------------------------
// Safe, ISA-dispatched grid-level wrappers.
//
// `dispatch_elem!` is call-shaped (a single generic call per ISA arm), so
// the multi-row loops live in named generic helpers rather than in the
// macro bodies.
// ---------------------------------------------------------------------------

/// [`tl_transform_row`] over rows `[-ry, ny + ry)` of a 2D interior.
///
/// # Safety
/// Same contract as [`tl_transform_row`] for every row in the range.
unsafe fn tl_rows2<V: Vector>(p: *mut V::Elem, nx: usize, ny: usize, ry: usize, rs: usize) {
    for y in -(ry as isize)..(ny + ry) as isize {
        tl_transform_row::<V>(p.offset(y * rs as isize), nx);
    }
}

/// [`tl_transform_row`] over every row (halos included) of a 3D interior.
///
/// # Safety
/// Same contract as [`tl_transform_row`] for every row in the range.
#[allow(clippy::too_many_arguments)]
unsafe fn tl_rows3<V: Vector>(
    p: *mut V::Elem,
    nx: usize,
    ny: usize,
    nz: usize,
    r: usize,
    rs: usize,
    ps: usize,
) {
    for z in -(r as isize)..(nz + r) as isize {
        for y in -(r as isize)..(ny + r) as isize {
            tl_transform_row::<V>(p.offset(z * ps as isize + y * rs as isize), nx);
        }
    }
}

/// One row of DLT (or inverse) transform, selected at runtime.
///
/// # Safety
/// Same contract as [`dlt_transform_row`].
unsafe fn dlt_row<V: Vector>(sp: *const V::Elem, dp: *mut V::Elem, n: usize, inverse: bool) {
    if inverse {
        dlt_inverse_row::<V>(sp, dp, n)
    } else {
        dlt_transform_row::<V>(sp, dp, n)
    }
}

/// [`dlt_row`] over rows `[-ry, ny + ry)` of a 2D interior.
///
/// # Safety
/// Same contract as [`dlt_transform_row`] for every row in the range.
#[allow(clippy::too_many_arguments)]
unsafe fn dlt_rows2<V: Vector>(
    sp: *const V::Elem,
    dp: *mut V::Elem,
    nx: usize,
    ny: usize,
    ry: usize,
    rs: usize,
    inverse: bool,
) {
    for y in -(ry as isize)..(ny + ry) as isize {
        let off = y * rs as isize;
        dlt_row::<V>(sp.offset(off), dp.offset(off), nx, inverse);
    }
}

/// [`dlt_row`] over every row (halos included) of a 3D interior.
///
/// # Safety
/// Same contract as [`dlt_transform_row`] for every row in the range.
#[allow(clippy::too_many_arguments)]
unsafe fn dlt_rows3<V: Vector>(
    sp: *const V::Elem,
    dp: *mut V::Elem,
    nx: usize,
    ny: usize,
    nz: usize,
    r: usize,
    rs: usize,
    ps: usize,
    inverse: bool,
) {
    for z in -(r as isize)..(nz + r) as isize {
        for y in -(r as isize)..(ny + r) as isize {
            let off = z * ps as isize + y * rs as isize;
            dlt_row::<V>(sp.offset(off), dp.offset(off), nx, inverse);
        }
    }
}

/// Toggle a 1D grid between natural and local-transpose layout, in place.
pub fn tl_grid1<T: Elem>(g: &mut Grid1<T>, isa: Isa) {
    let n = g.n();
    let p = g.ptr_mut();
    dispatch_elem!(isa, T, tl_transform_row::<V>(p, n));
}

/// Toggle every row (halo rows included, so vertical neighbour loads see
/// the same layout) of a 2D grid between natural and transpose layout.
pub fn tl_grid2<T: Elem>(g: &mut Grid2<T>, isa: Isa) {
    let (nx, ny, ry, rs) = (g.nx(), g.ny(), g.ry(), g.row_stride());
    let p = g.ptr_mut();
    dispatch_elem!(isa, T, tl_rows2::<V>(p, nx, ny, ry, rs));
}

/// Toggle every row of a 3D grid (halo rows/planes included).
pub fn tl_grid3<T: Elem>(g: &mut Grid3<T>, isa: Isa) {
    let (nx, ny, nz, r, rs, ps) = (
        g.nx(),
        g.ny(),
        g.nz(),
        g.r(),
        g.row_stride(),
        g.plane_stride(),
    );
    let p = g.ptr_mut();
    dispatch_elem!(isa, T, tl_rows3::<V>(p, nx, ny, nz, r, rs, ps));
}

/// DLT-transform (or invert) a 1D grid out of place. `dst` must have the
/// same geometry as `src` (clone it first so halos carry over).
pub fn dlt_grid1<T: Elem>(src: &Grid1<T>, dst: &mut Grid1<T>, isa: Isa, inverse: bool) {
    assert_eq!(src.n(), dst.n());
    let n = src.n();
    let (sp, dp) = (src.ptr(), dst.ptr_mut());
    dispatch_elem!(isa, T, dlt_row::<V>(sp, dp, n, inverse));
}

/// DLT-transform (or invert) every row of a 2D grid, halo rows included.
pub fn dlt_grid2<T: Elem>(src: &Grid2<T>, dst: &mut Grid2<T>, isa: Isa, inverse: bool) {
    assert_eq!(
        (src.nx(), src.ny(), src.ry()),
        (dst.nx(), dst.ny(), dst.ry())
    );
    let (nx, ny, ry, rs) = (src.nx(), src.ny(), src.ry(), src.row_stride());
    let (sp, dp) = (src.ptr(), dst.ptr_mut());
    dispatch_elem!(isa, T, dlt_rows2::<V>(sp, dp, nx, ny, ry, rs, inverse));
}

/// DLT-transform (or invert) every row of a 3D grid, halos included.
pub fn dlt_grid3<T: Elem>(src: &Grid3<T>, dst: &mut Grid3<T>, isa: Isa, inverse: bool) {
    assert_eq!(
        (src.nx(), src.ny(), src.nz(), src.r()),
        (dst.nx(), dst.ny(), dst.nz(), dst.r())
    );
    let (nx, ny, nz, r, rs, ps) = (
        src.nx(),
        src.ny(),
        src.nz(),
        src.r(),
        src.row_stride(),
        src.plane_stride(),
    );
    let (sp, dp) = (src.ptr(), dst.ptr_mut());
    dispatch_elem!(
        isa,
        T,
        dlt_rows3::<V>(sp, dp, nx, ny, nz, r, rs, ps, inverse)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setgeo_map_is_involution() {
        for vl in [4usize, 8] {
            for n in [0usize, 5, 16, 64, 100, 257] {
                let g = SetGeo::new(n, vl);
                for i in 0..n {
                    assert_eq!(g.map(g.map(i)), i, "vl={vl} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn setgeo_matches_paper_figure2() {
        // Fig. 2: 16 cells A..P with vl=4 become A E I M | B F J N | ...
        let g = SetGeo::new(16, 4);
        let logical: Vec<usize> = (0..16).collect();
        let mut stored = vec![0usize; 16];
        for &i in &logical {
            stored[g.map(i)] = i;
        }
        assert_eq!(
            stored,
            vec![0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
        );
    }

    #[test]
    fn dltgeo_map_unmap_roundtrip() {
        for vl in [4usize, 8] {
            for n in [8usize, 16, 64, 100, 257] {
                let g = DltGeo::new(n, vl);
                for i in 0..n {
                    assert_eq!(g.unmap(g.map(i)), i, "vl={vl} n={n} i={i}");
                }
            }
        }
    }

    #[test]
    fn tl_transform_matches_map_all_isas() {
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let n = 3 * isa.lanes() * isa.lanes() + 7; // three sets + tail
            let mut g = Grid1::from_fn(n, -1.0, |i| i as f64);
            tl_grid1(&mut g, isa);
            let geo = SetGeo::new(n, isa.lanes());
            for i in 0..n {
                assert_eq!(
                    unsafe { tl_read(g.ptr(), i as isize, &geo) },
                    i as f64,
                    "isa={isa} i={i}"
                );
            }
            // involution: transform back restores natural order
            tl_grid1(&mut g, isa);
            for i in 0..n {
                assert_eq!(g.get(i as isize), i as f64, "isa={isa} i={i}");
            }
            // halo untouched
            assert_eq!(g.get(-1), -1.0);
            assert_eq!(g.get(n as isize), -1.0);
        }
    }

    #[test]
    fn dlt_transform_matches_map_all_isas() {
        for isa in Isa::ALL.into_iter().filter(|i| i.is_available()) {
            let n = 10 * isa.lanes() + 3;
            let src = Grid1::from_fn(n, -2.0, |i| (i * i) as f64);
            let mut dst = src.clone();
            dlt_grid1(&src, &mut dst, isa, false);
            let geo = DltGeo::new(n, isa.lanes());
            for i in 0..n {
                assert_eq!(
                    unsafe { dlt_read(dst.ptr(), i as isize, &geo) },
                    (i * i) as f64,
                    "isa={isa} i={i}"
                );
            }
            let mut back = src.clone();
            dlt_grid1(&dst, &mut back, isa, true);
            assert_eq!(back.interior(), src.interior(), "isa={isa}");
        }
    }

    #[test]
    fn tl_grid2_transposes_halo_rows_too() {
        let isa = Isa::Portable4;
        let nx = 16 + 5;
        let mut g = Grid2::from_fn(nx, 3, 1, 0.0, |y, x| (y * 1000 + x) as f64);
        // put a recognizable pattern into the top halo row
        for x in 0..nx {
            g.set(-1, x as isize, 5000.0 + x as f64);
        }
        tl_grid2(&mut g, isa);
        let geo = SetGeo::new(nx, 4);
        // halo row must be transposed with the same map
        assert_eq!(g.get(-1, geo.map(1) as isize), 5001.0);
        tl_grid2(&mut g, isa);
        assert_eq!(g.get(-1, 1), 5001.0);
        assert_eq!(g.get(2, 7), 2007.0);
    }
}
