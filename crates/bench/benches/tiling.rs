//! Tiling-framework comparison (tessellate vs split) and tile-size
//! ablation for the tessellate driver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::{Method, S1d3p};
use stencil_simd::Isa;
use stencil_tiling::{split1_star1, tessellate1_star1};

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let (n, t) = (2_000_000usize, 64usize);
    let threads = stencil_bench::max_threads();
    let init = grid1(n, 11);

    let mut group = c.benchmark_group("tiling_frameworks");
    group.throughput(Throughput::Elements((n * t) as u64));
    group.sample_size(10);
    group.bench_function("tessellate_translayout2", |b| {
        b.iter(|| {
            let mut g = init.clone();
            tessellate1_star1(Method::TransLayout2, isa, &mut g, &s, t, 2000, 1000, threads);
            g
        })
    });
    group.bench_function("tessellate_multiload", |b| {
        b.iter(|| {
            let mut g = init.clone();
            tessellate1_star1(Method::MultiLoad, isa, &mut g, &s, t, 2000, 1000, threads);
            g
        })
    });
    group.bench_function("split_dlt_sdsl", |b| {
        b.iter(|| {
            let mut g = init.clone();
            split1_star1(isa, &mut g, &s, t, 1000, 500, threads);
            g
        })
    });
    group.finish();

    let mut group = c.benchmark_group("tile_width_ablation");
    group.throughput(Throughput::Elements((n * t) as u64));
    group.sample_size(10);
    for w in [500usize, 2_000, 8_000, 32_000] {
        group.bench_function(format!("w{w}"), |b| {
            b.iter(|| {
                let mut g = init.clone();
                tessellate1_star1(Method::TransLayout2, isa, &mut g, &s, t, w, w / 2, threads);
                g
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
