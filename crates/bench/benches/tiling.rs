//! Tiling-framework comparison (tessellate vs split) and tile-size
//! ablation for the tessellate driver, each configuration a reused
//! [`Plan`] (pool + buffers built once per benchmark, not per iteration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::exec::{Plan, Shape, Tiling};
use stencil_core::{Method, S1d3p};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let (n, t) = (2_000_000usize, 64usize);
    let threads = stencil_bench::max_threads();
    let init = grid1(n, 11);

    let mut group = c.benchmark_group("tiling_frameworks");
    group.throughput(Throughput::Elements((n * t) as u64));
    group.sample_size(10);
    for (label, method, tiling) in [
        (
            "tessellate_translayout2",
            Method::TransLayout2,
            Tiling::Tessellate {
                w: [2000, 0, 0],
                h: 1000,
                threads,
            },
        ),
        (
            "tessellate_multiload",
            Method::MultiLoad,
            Tiling::Tessellate {
                w: [2000, 0, 0],
                h: 1000,
                threads,
            },
        ),
        (
            "split_dlt_sdsl",
            Method::Dlt,
            Tiling::Split {
                w: 1000,
                h: 500,
                threads,
            },
        ),
    ] {
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .tiling(tiling)
            .star1(s)
            .expect("valid tiled plan");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut g = init.clone();
                plan.run(&mut g, t);
                g
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tile_width_ablation");
    group.throughput(Throughput::Elements((n * t) as u64));
    group.sample_size(10);
    for w in [500usize, 2_000, 8_000, 32_000] {
        let mut plan = Plan::new(Shape::d1(n))
            .method(Method::TransLayout2)
            .isa(isa)
            .tiling(Tiling::Tessellate {
                w: [w, 0, 0],
                h: w / 2,
                threads,
            })
            .star1(s)
            .expect("valid tiled plan");
        group.bench_function(format!("w{w}"), |b| {
            b.iter(|| {
                let mut g = init.clone();
                plan.run(&mut g, t);
                g
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
