//! Data-preparation cost per scheme (§2.1 vs §3.2): unaligned loads
//! (multiload), per-vector shuffles (reorg) and per-set assembles
//! (transpose layout) on an L1-resident 1D3P row.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::kernels::{orig, tl};
use stencil_core::layout::tl_grid1;
use stencil_core::S1d3p;
use stencil_simd::{dispatch, Isa};

fn bench(c: &mut Criterion) {
    let n = 4096usize;
    let s = S1d3p::heat();
    let isa = Isa::detect_best();
    let mut group = c.benchmark_group("data_preparation");
    group.throughput(Throughput::Elements(n as u64));

    let src = grid1(n, 1);
    let mut dst = grid1(n, 2);
    let (sp, dp) = (src.ptr(), dst.ptr_mut());
    group.bench_function("multiload_unaligned", |b| {
        b.iter(|| dispatch!(isa, V => orig::star1_orig::<V, _, false>(sp, dp, 0, n, &s)))
    });
    group.bench_function("reorg_per_vector_shuffles", |b| {
        b.iter(|| dispatch!(isa, V => orig::star1_orig::<V, _, true>(sp, dp, 0, n, &s)))
    });
    let mut tsrc = grid1(n, 1);
    let mut tdst = grid1(n, 2);
    tl_grid1(&mut tsrc, isa);
    tl_grid1(&mut tdst, isa);
    let (tsp, tdp) = (tsrc.ptr(), tdst.ptr_mut());
    group.bench_function("translayout_per_set_assembles", |b| {
        b.iter(|| dispatch!(isa, V => tl::star1_tl::<V, _>(tsp, tdp, n, 0, n, &s)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
