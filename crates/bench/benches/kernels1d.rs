//! 1D kernel comparison (all methods, L1/L2/L3-resident sizes) and the
//! §3.3 unroll-and-jam ablation (k = 1 vs k = 2), driven through reused
//! [`Plan`]s (scratch allocated once per method, not once per iteration).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::{Method, S1d3p, S1d5p};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    for (label, n, steps) in [
        ("L1", 1_500usize, 64usize),
        ("L2", 40_000, 16),
        ("L3", 500_000, 4),
    ] {
        let mut group = c.benchmark_group(format!("kernels1d_1d3p_{label}"));
        group.throughput(Throughput::Elements((n * steps) as u64));
        group.sample_size(10);
        let s = S1d3p::heat();
        let init = grid1(n, 3);
        for m in Method::ALL {
            let mut plan = Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .star1(s)
                .expect("valid plan");
            group.bench_function(m.name(), |b| {
                b.iter(|| {
                    let mut g = init.clone();
                    plan.run(&mut g, steps);
                    g
                })
            });
        }
        group.finish();
    }
    // higher-order stencil
    let mut group = c.benchmark_group("kernels1d_1d5p_L2");
    let (n, steps) = (40_000usize, 16usize);
    group.throughput(Throughput::Elements((n * steps) as u64));
    group.sample_size(10);
    let s = S1d5p::heat();
    let init = grid1(n, 4);
    for m in Method::ALL {
        let mut plan = Plan::new(Shape::d1(n))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star1(s)
            .expect("valid plan");
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init.clone();
                plan.run(&mut g, steps);
                g
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
