//! Plan-reuse microbenchmark (criterion flavour of `src/bin/plan_reuse.rs`):
//! the per-call legacy free function (clone + layout round-trip every call)
//! vs a reused `Plan` (persistent scratch) vs a layout-resident `Session`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::{run1_star1, Method, S1d3p};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let (n, chunk) = (40_000usize, 8usize);
    let init = grid1(n, 21);

    let mut group = c.benchmark_group("plan_reuse_1d3p_L2");
    group.throughput(Throughput::Elements((n * chunk) as u64));
    group.sample_size(10);

    group.bench_function("free_fn_per_call", |b| {
        let mut g = init.clone();
        b.iter(|| run1_star1(Method::TransLayout2, isa, &mut g, &s, chunk))
    });

    group.bench_function("plan_run_per_call", |b| {
        let mut plan = Plan::new(Shape::d1(n))
            .method(Method::TransLayout2)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        b.iter(|| plan.run(&mut g, chunk))
    });

    group.bench_function("session_steady_state", |b| {
        let mut plan = Plan::new(Shape::d1(n))
            .method(Method::TransLayout2)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        let mut sess = plan.session(&mut g);
        b.iter(|| sess.run(chunk))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
