//! Ablation for §3.5: the paper's lane-crossing-first transpose schedule
//! vs. the conventional in-lane-first schedule, AVX2 (4×4) and AVX-512
//! (8×8), measured as in-place layout transforms of an L1-resident row.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::layout::{tl_transform_row, tl_transform_row_baseline};
use stencil_simd::{dispatch, Isa};

fn bench(c: &mut Criterion) {
    let n = 2048usize;
    let mut group = c.benchmark_group("transpose_schedule");
    group.throughput(Throughput::Elements(n as u64));
    for isa in [Isa::Avx2, Isa::Avx512] {
        if !isa.is_available() {
            continue;
        }
        let mut g = grid1(n, 1);
        let p = g.ptr_mut();
        group.bench_function(format!("{isa}/paper_lane_crossing_first"), |b| {
            b.iter(|| dispatch!(isa, V => tl_transform_row::<V>(p, n)))
        });
        group.bench_function(format!("{isa}/baseline_in_lane_first"), |b| {
            b.iter(|| dispatch!(isa, V => tl_transform_row_baseline::<V>(p, n)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
