//! Layout-transform cost ablation: the paper's in-place per-set transpose
//! vs. DLT's out-of-place global transpose (both directions), per cell.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::layout::{dlt_grid1, tl_grid1};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    for (label, n) in [("L1", 2_000usize), ("L3", 1_000_000usize)] {
        let mut group = c.benchmark_group(format!("layout_transform_{label}"));
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        let mut g = grid1(n, 1);
        group.bench_function("translayout_inplace_roundtrip", |b| {
            b.iter(|| {
                tl_grid1(&mut g, isa);
                tl_grid1(&mut g, isa);
            })
        });
        let src = grid1(n, 2);
        let mut dst = src.clone();
        let mut back = src.clone();
        group.bench_function("dlt_outofplace_roundtrip", |b| {
            b.iter(|| {
                dlt_grid1(&src, &mut dst, isa, false);
                dlt_grid1(&dst, &mut back, isa, true);
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
