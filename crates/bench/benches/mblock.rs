//! The §3.2 block-length spectrum: the local transpose block length `m`
//! interpolates between the original layout (m = 1, per-vector shuffles),
//! the paper's choice (m = vl, per-set shuffles, in-register transpose)
//! and DLT (m = N/vl, no steady-state shuffles, global transpose + no
//! locality). One benchmark per point on the spectrum, L1- and
//! memory-resident, each through a reused [`Plan`].

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::grid1;
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::{Method, S1d3p};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    for (label, n, steps) in [("L1", 1_500usize, 64usize), ("Mem", 4_000_000, 2)] {
        let mut group = c.benchmark_group(format!("mblock_spectrum_{label}"));
        group.throughput(Throughput::Elements((n * steps) as u64));
        group.sample_size(10);
        let s = S1d3p::heat();
        let init = grid1(n, 9);
        for (m, label) in [
            (Method::Reorg, "m=1_reorg"),
            (Method::TransLayout, "m=vl_translayout"),
            (Method::Dlt, "m=N_over_vl_dlt"),
        ] {
            let mut plan = Plan::new(Shape::d1(n))
                .method(m)
                .isa(isa)
                .parallelism(Parallelism::Off)
                .star1(s)
                .expect("valid plan");
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut g = init.clone();
                    plan.run(&mut g, steps);
                    g
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
