//! 2D and 3D kernel comparison across all methods.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::{grid2, grid3};
use stencil_core::{run2_box, run2_star, run3_box, run3_star, Method, S2d5p, S2d9p, S3d27p, S3d7p};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    let steps = 4usize;

    let (nx, ny) = (512usize, 128usize);
    let init2 = grid2(nx, ny, 3);
    let mut group = c.benchmark_group("kernels2d_2d5p");
    group.throughput(Throughput::Elements((nx * ny * steps) as u64));
    group.sample_size(10);
    let s = S2d5p::heat();
    for m in Method::ALL {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init2.clone();
                run2_star(m, isa, &mut g, &s, steps);
                g
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernels2d_2d9p");
    group.throughput(Throughput::Elements((nx * ny * steps) as u64));
    group.sample_size(10);
    let s = S2d9p::blur();
    for m in Method::ALL {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init2.clone();
                run2_box(m, isa, &mut g, &s, steps);
                g
            })
        });
    }
    group.finish();

    let (nx, ny, nz) = (128usize, 64usize, 32usize);
    let init3 = grid3(nx, ny, nz, 5);
    let mut group = c.benchmark_group("kernels3d_3d7p");
    group.throughput(Throughput::Elements((nx * ny * nz * steps) as u64));
    group.sample_size(10);
    let s = S3d7p::heat();
    for m in Method::ALL {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init3.clone();
                run3_star(m, isa, &mut g, &s, steps);
                g
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernels3d_3d27p");
    group.throughput(Throughput::Elements((nx * ny * nz * steps) as u64));
    group.sample_size(10);
    let s = S3d27p::blur();
    for m in Method::ALL {
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init3.clone();
                run3_box(m, isa, &mut g, &s, steps);
                g
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
