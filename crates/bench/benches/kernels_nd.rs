//! 2D and 3D kernel comparison across all methods, driven through reused
//! [`Plan`]s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stencil_bench::{grid2, grid3};
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::{Method, S2d5p, S2d9p, S3d27p, S3d7p};
use stencil_simd::Isa;

fn bench(c: &mut Criterion) {
    let isa = Isa::detect_best();
    let steps = 4usize;

    let (nx, ny) = (512usize, 128usize);
    let init2 = grid2(nx, ny, 3);
    let mut group = c.benchmark_group("kernels2d_2d5p");
    group.throughput(Throughput::Elements((nx * ny * steps) as u64));
    group.sample_size(10);
    let s = S2d5p::heat();
    for m in Method::ALL {
        let mut plan = Plan::new(Shape::d2(nx, ny))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star2(s)
            .expect("valid plan");
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init2.clone();
                plan.run(&mut g, steps);
                g
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernels2d_2d9p");
    group.throughput(Throughput::Elements((nx * ny * steps) as u64));
    group.sample_size(10);
    let s = S2d9p::blur();
    for m in Method::ALL {
        let mut plan = Plan::new(Shape::d2(nx, ny))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .box2(s)
            .expect("valid plan");
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init2.clone();
                plan.run(&mut g, steps);
                g
            })
        });
    }
    group.finish();

    let (nx, ny, nz) = (128usize, 64usize, 32usize);
    let init3 = grid3(nx, ny, nz, 5);
    let mut group = c.benchmark_group("kernels3d_3d7p");
    group.throughput(Throughput::Elements((nx * ny * nz * steps) as u64));
    group.sample_size(10);
    let s = S3d7p::heat();
    for m in Method::ALL {
        let mut plan = Plan::new(Shape::d3(nx, ny, nz))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .star3(s)
            .expect("valid plan");
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init3.clone();
                plan.run(&mut g, steps);
                g
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernels3d_3d27p");
    group.throughput(Throughput::Elements((nx * ny * nz * steps) as u64));
    group.sample_size(10);
    let s = S3d27p::blur();
    for m in Method::ALL {
        let mut plan = Plan::new(Shape::d3(nx, ny, nz))
            .method(m)
            .isa(isa)
            .parallelism(Parallelism::Off)
            .box3(s)
            .expect("valid plan");
        group.bench_function(m.name(), |b| {
            b.iter(|| {
                let mut g = init3.clone();
                plan.run(&mut g, steps);
                g
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
