//! Table 2: performance improvement over the multiple-loads method per
//! storage level, single-thread block-free (derived from the Fig. 7
//! sweep).

use stencil_bench::fig7::{sweep, table2};
use stencil_bench::Cli;
use stencil_simd::Isa;

fn main() {
    stencil_bench::banner(
        "Table 2: speedup over MultiLoad per storage level (1D3P, single thread)",
    );
    let scale = Cli::parse().scale();
    let base = if scale == stencil_bench::Scale::Smoke {
        40
    } else {
        200
    };
    let rows = sweep(Isa::detect_best(), base, scale);
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "Level", "Reorg", "DLT", "Our", "Our2"
    );
    let view = table2(&rows);
    for (level, cols) in &view {
        print!("{:<8}", level);
        for m in ["Reorg", "DLT", "Our", "Our2"] {
            let v = cols
                .iter()
                .find(|(mm, _)| mm == m)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN);
            print!(" {:>7.2}x", v);
        }
        println!();
    }
    println!("\n(paper, Xeon 6140: Reorg 1.11x / DLT 1.35x / Our 1.98x / Our2 2.81x mean)");

    let json: Vec<stencil_bench::save::Row> = view
        .into_iter()
        .flat_map(|(level, cols)| {
            cols.into_iter().map(move |(method, speedup)| {
                vec![
                    ("level", stencil_bench::save::Value::Str(level.clone())),
                    ("method", stencil_bench::save::Value::Str(method)),
                    (
                        "speedup_vs_multiload",
                        stencil_bench::save::Value::Num(speedup),
                    ),
                ]
            })
        })
        .collect();
    stencil_bench::save::maybe_save("table2", &json);
}
