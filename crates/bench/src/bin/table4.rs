//! Table 4: average performance improvement per stencil/ISA (speedup over
//! SDSL on AVX2, over Tessellation on AVX-512 — the paper's comparison
//! bases) and strong-scaling speedup over a single core at full core
//! count. Derived from the Fig. 9 sweep.
//!
//! Pass stencil names as arguments to restrict the sweep.

use stencil_bench::fig9::{sweep, table4};
use stencil_bench::Cli;

fn main() {
    stencil_bench::banner("Table 4: average improvement and strong scaling (full cores)");
    let cli = Cli::parse();
    let rows = sweep(cli.scale(), &cli.stencils());
    println!(
        "{:<16} {:<14} {:>14} {:>16}",
        "Stencil(ISA)", "Method", "Speedup/base", "Scaling vs 1core"
    );
    let mut json: Vec<stencil_bench::save::Row> = Vec::new();
    for (label, cols) in table4(&rows) {
        for (method, speedup, scaling) in cols {
            println!(
                "{:<16} {:<14} {:>13.2}x {:>15.1}x",
                label, method, speedup, scaling
            );
            json.push(vec![
                (
                    "stencil_isa",
                    stencil_bench::save::Value::Str(label.clone()),
                ),
                ("method", stencil_bench::save::Value::Str(method)),
                ("speedup_vs_base", stencil_bench::save::Value::Num(speedup)),
                ("scaling_vs_1core", stencil_bench::save::Value::Num(scaling)),
            ]);
        }
    }
    stencil_bench::save::maybe_save("table4", &json);
}
