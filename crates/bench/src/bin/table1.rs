//! Table 1: stencil parameters — the paper's configuration next to the
//! scaled configuration this harness runs (`STENCIL_BENCH_FULL=1` doubles
//! the leading dimension).

fn main() {
    stencil_bench::banner("Table 1: parameter description for stencils used in experiments");
    println!(
        "{:<6} {:<4} {:<28} {:<20} {:<26} {:<18}",
        "Dim", "Pts", "Paper problem size", "Paper blocking", "Our problem size", "Our blocking"
    );
    let rows = [
        (
            "1D",
            "3",
            "10240000 x1000",
            "2000x1000",
            "2560000 x240",
            "2000x1000",
        ),
        (
            "1D",
            "5",
            "10240000 x1000",
            "2000x500",
            "2560000 x240",
            "2000x500",
        ),
        (
            "2D",
            "5",
            "3000x3000 x1000",
            "200x200x50",
            "1504x1500 x50",
            "200x200x50",
        ),
        (
            "2D",
            "9",
            "3000x3000 x1000",
            "120x128x60",
            "1504x1500 x40",
            "128x120x59",
        ),
        (
            "3D",
            "7",
            "128x128x128 x1000",
            "23x23x10",
            "128x128x128 x20",
            "64x24x24x10",
        ),
        (
            "3D",
            "27",
            "128x128x128 x1000",
            "23x23x10",
            "128x128x128 x16",
            "64x24x24x10",
        ),
    ];
    for (d, p, ps, pb, os, ob) in rows {
        println!(
            "{:<6} {:<4} {:<28} {:<20} {:<26} {:<18}",
            d, p, ps, pb, os, ob
        );
    }

    let json: Vec<stencil_bench::save::Row> = rows
        .iter()
        .map(|(d, p, ps, pb, os, ob)| {
            vec![
                ("dim", stencil_bench::save::Value::from(*d)),
                ("points", stencil_bench::save::Value::from(*p)),
                ("paper_problem_size", stencil_bench::save::Value::from(*ps)),
                ("paper_blocking", stencil_bench::save::Value::from(*pb)),
                ("our_problem_size", stencil_bench::save::Value::from(*os)),
                ("our_blocking", stencil_bench::save::Value::from(*ob)),
            ]
        })
        .collect();
    stencil_bench::save::maybe_save("table1", &json);
}
