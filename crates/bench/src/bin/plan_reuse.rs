//! Plan-reuse microbenchmark — the measurement behind the plan refactor
//! and the erased-API acceptance gate: repeated stepping through (a) the
//! legacy free function (clone + layout round-trip every call), (b) a
//! reused typed [`Plan`] (scratch allocated once, layout round-trip per
//! call), (c) a layout-resident typed session (no per-call clone, no
//! per-call transform — the steady-state hot loop is kernels only), and
//! (d) the same session through the type-erased `DynPlan` — whose
//! `run` must stay within ~2% of the typed session, since the only
//! added cost is one virtual call per invocation.
//!
//! ```sh
//! cargo run --release --bin plan_reuse [-- --save-json] [--smoke] [--threads=N]
//! ```
//!
//! `--smoke` shrinks the sweep to CI size; `--threads=N` applies
//! `Parallelism::Threads(N)` to the plan/session variants (the free
//! function is the paper's sequential accounting and stays at 1).

use std::time::Instant;

use stencil_bench::save::{Row, Value};
use stencil_bench::{gflops, grid1, storage_level, Cli, Scale};
use stencil_core::exec::{Boundary, Parallelism, Plan, Shape};
use stencil_core::{run1_star1, Method, S1d3p, StencilSpec};
use stencil_simd::Isa;

/// Best-of-3 wall time for `calls` invocations of `f`.
fn time_calls<F: FnMut()>(calls: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    stencil_bench::banner(
        "plan_reuse: repeated stepping, free fn vs Plan vs Session vs DynSession (1D3P)",
    );
    let cli = Cli::parse();
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let spec = StencilSpec::heat_1d3p();
    let par = match cli.threads() {
        Some(n) => Parallelism::Threads(n),
        None => Parallelism::Off,
    };
    let threads = cli.threads().unwrap_or(1);
    let mut rows: Vec<Row> = Vec::new();

    println!(
        "\n{:<10} {:<6} {:>7} {:>6} {:>12} {:>12} {:>12} {:>12}  {:>9} {:>9}",
        "n",
        "level",
        "chunk",
        "calls",
        "free_fn",
        "plan.run",
        "session",
        "dyn_sess",
        "sess/free",
        "dyn/sess"
    );
    let sweep: &[(usize, usize, usize)] = if cli.scale() == Scale::Smoke {
        &[(1_500, 8, 100), (40_000, 8, 30), (500_000, 4, 6)]
    } else {
        &[
            (1_500, 8, 400),
            (40_000, 8, 100),
            (500_000, 4, 20),
            (4_000_000, 2, 6),
        ]
    };
    for &(n, chunk, calls) in sweep {
        let init = grid1(n, 21);
        let method = Method::TransLayout2;

        // (a) legacy free function: clone + transform round-trip per call
        // (now itself routed through the erased path internally).
        let mut g = init.clone();
        let free_s = time_calls(calls, || {
            run1_star1(method, isa, &mut g, &s, chunk).expect("valid run");
        });

        // (b) reused typed plan: scratch held across calls, transforms
        // per call.
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        let plan_s = time_calls(calls, || {
            plan.run(&mut g, chunk);
        });

        // (c) typed layout-resident session: transforms paid once, zero
        // allocation/transform in the timed loop body.
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        let mut sess = plan.session(&mut g);
        let sess_s = time_calls(calls, || {
            sess.run(chunk);
        });
        drop(sess);

        // (d) the same layout-resident session through the type-erased
        // DynPlan: one virtual call per `run` on top of (c).
        let mut dyn_plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .stencil(&spec)
            .expect("valid plan");
        let mut g = init.clone();
        let mut dyn_sess = dyn_plan.session(&mut g);
        let dyn_s = time_calls(calls, || {
            dyn_sess.run(chunk);
        });
        drop(dyn_sess);

        let level = storage_level(2 * 8 * n);
        println!(
            "{:<10} {:<6} {:>7} {:>6} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>9.2} ms  {:>8.2}x {:>8.3}x",
            n,
            level,
            chunk,
            calls,
            free_s * 1e3,
            plan_s * 1e3,
            sess_s * 1e3,
            dyn_s * 1e3,
            free_s / sess_s,
            dyn_s / sess_s,
        );
        for (variant, secs) in [
            ("free_fn", free_s),
            ("plan_run", plan_s),
            ("session", sess_s),
            ("dyn_session", dyn_s),
        ] {
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads)),
                ("chunk", Value::from(chunk)),
                ("calls", Value::from(calls)),
                ("variant", Value::from(variant)),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(n, chunk * calls, spec.flops_per_point(), secs)),
                ),
            ]);
        }

        // Boundary row family: the same layout-resident session under the
        // refreshed boundaries. Quantifies the O(surface) per-step halo
        // refresh (plus the k = 1 fallback of the fused pass) against
        // the Dirichlet session above.
        for boundary in [Boundary::Periodic, Boundary::Reflect] {
            let mut plan = Plan::new(Shape::d1(n))
                .method(method)
                .isa(isa)
                .parallelism(par)
                .boundary(boundary)
                .star1(s)
                .expect("valid plan");
            let mut g = init.clone();
            let mut sess = plan.session(&mut g);
            let secs = time_calls(calls, || {
                sess.run(chunk);
            });
            drop(sess);
            println!(
                "{:<10} {:<6} {:>7} {:>6} {:>9} boundary={:<8} {:>9.2} ms  {:>8.3}x vs session",
                n,
                level,
                chunk,
                calls,
                "",
                boundary.name(),
                secs * 1e3,
                secs / sess_s,
            );
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads)),
                ("chunk", Value::from(chunk)),
                ("calls", Value::from(calls)),
                ("variant", Value::from("session")),
                ("boundary", Value::from(boundary.name())),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(n, chunk * calls, spec.flops_per_point(), secs)),
                ),
            ]);
        }
    }
    println!(
        "\n(free_fn clones + transforms every call; plan.run reuses buffers; session \
         additionally stays layout-resident; dyn_session is the erased API over the \
         same session — dyn/sess is the erasure overhead)"
    );
    stencil_bench::save::maybe_save("plan_reuse", &rows);
}
