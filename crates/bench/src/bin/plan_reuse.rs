//! Plan-reuse microbenchmark — the measurement behind the plan refactor:
//! repeated stepping through (a) the legacy free function (clone + layout
//! round-trip every call), (b) a reused [`Plan`] (scratch allocated once,
//! layout round-trip per call), and (c) a layout-resident session (no
//! per-call clone, no per-call transform — the steady-state hot loop is
//! kernels only).
//!
//! ```sh
//! cargo run --release --bin plan_reuse [-- --save-json] [--smoke] [--threads=N]
//! ```
//!
//! `--smoke` shrinks the sweep to CI size; `--threads=N` applies
//! `Parallelism::Threads(N)` to the plan/session variants (the free
//! function is the paper's sequential accounting and stays at 1).

use std::time::Instant;

use stencil_bench::save::{Row, Value};
use stencil_bench::{gflops, grid1, storage_level, Scale};
use stencil_core::exec::{Parallelism, Plan, Shape};
use stencil_core::{run1_star1, Method, S1d3p, Star1};
use stencil_simd::Isa;

/// Best-of-3 wall time for `calls` invocations of `f`.
fn time_calls<F: FnMut()>(calls: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    stencil_bench::banner("plan_reuse: repeated stepping, free fn vs Plan vs Session (1D3P)");
    let isa = Isa::detect_best();
    let s = S1d3p::heat();
    let par = match stencil_bench::threads_arg() {
        Some(n) => Parallelism::Threads(n),
        None => Parallelism::Off,
    };
    let threads = stencil_bench::threads_arg().unwrap_or(1);
    let mut rows: Vec<Row> = Vec::new();

    println!(
        "\n{:<10} {:<6} {:>7} {:>6} {:>14} {:>14} {:>14}  {:>9} {:>9}",
        "n", "level", "chunk", "calls", "free_fn", "plan.run", "session", "plan/free", "sess/free"
    );
    let sweep: &[(usize, usize, usize)] = if stencil_bench::scale() == Scale::Smoke {
        &[(1_500, 8, 100), (40_000, 8, 30), (500_000, 4, 6)]
    } else {
        &[
            (1_500, 8, 400),
            (40_000, 8, 100),
            (500_000, 4, 20),
            (4_000_000, 2, 6),
        ]
    };
    for &(n, chunk, calls) in sweep {
        let init = grid1(n, 21);
        let method = Method::TransLayout2;

        // (a) legacy free function: clone + transform round-trip per call.
        let mut g = init.clone();
        let free_s = time_calls(calls, || {
            run1_star1(method, isa, &mut g, &s, chunk);
        });

        // (b) reused plan: scratch held across calls, transforms per call.
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        let plan_s = time_calls(calls, || {
            plan.run(&mut g, chunk);
        });

        // (c) layout-resident session: transforms paid once, zero
        // allocation/transform in the timed loop body.
        let mut plan = Plan::new(Shape::d1(n))
            .method(method)
            .isa(isa)
            .parallelism(par)
            .star1(s)
            .expect("valid plan");
        let mut g = init.clone();
        let mut sess = plan.session(&mut g);
        let sess_s = time_calls(calls, || {
            sess.run(chunk);
        });
        drop(sess);

        let level = storage_level(2 * 8 * n);
        println!(
            "{:<10} {:<6} {:>7} {:>6} {:>11.2} ms {:>11.2} ms {:>11.2} ms  {:>8.2}x {:>8.2}x",
            n,
            level,
            chunk,
            calls,
            free_s * 1e3,
            plan_s * 1e3,
            sess_s * 1e3,
            free_s / plan_s,
            free_s / sess_s,
        );
        for (variant, secs) in [
            ("free_fn", free_s),
            ("plan_run", plan_s),
            ("session", sess_s),
        ] {
            rows.push(vec![
                ("n", Value::from(n)),
                ("level", Value::from(level)),
                ("threads", Value::from(threads)),
                ("chunk", Value::from(chunk)),
                ("calls", Value::from(calls)),
                ("variant", Value::from(variant)),
                ("seconds", Value::from(secs)),
                (
                    "gflops",
                    Value::from(gflops(n, chunk * calls, S1d3p::flops_per_point(), secs)),
                ),
            ]);
        }
    }
    println!(
        "\n(free_fn clones + transforms every call; plan.run reuses buffers; \
         session additionally stays layout-resident)"
    );
    stencil_bench::save::maybe_save("plan_reuse", &rows);
}
