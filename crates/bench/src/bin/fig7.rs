//! Fig. 7: absolute performance, single-thread block-free experiments,
//! problem sizes from L1 to memory, two total-time-step scales
//! ((a) base and (b) 10× — the paper's T=1000 / T=10000 pair, scaled).

use stencil_bench::fig7::{json_rows, sweep};
use stencil_bench::Cli;
use stencil_simd::Isa;

fn main() {
    stencil_bench::banner("Fig. 7: sequential block-free performance (1D3P, GFLOP/s)");
    let isa = Isa::detect_best();
    let scale = Cli::parse().scale();
    let panels: &[(&str, usize)] = if scale == stencil_bench::Scale::Smoke {
        &[("a", 40)]
    } else {
        &[("a", 200), ("b", 2000)]
    };
    let mut all_rows = Vec::new();
    for &(panel, base) in panels {
        println!(
            "\n## Fig 7({panel}): base steps T={base} (scaled from paper's {})",
            base * 5
        );
        println!(
            "{:<10} {:<5} {:<7} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "n", "level", "steps", "MultiLoad", "Reorg", "DLT", "Our", "Our2"
        );
        let rows = sweep(isa, base, scale);
        all_rows.extend(rows.iter().cloned());
        let mut by_n: Vec<usize> = rows.iter().map(|r| r.n).collect();
        by_n.dedup();
        for n in by_n {
            let cells: Vec<_> = rows.iter().filter(|r| r.n == n).collect();
            let get = |m: &str| {
                cells
                    .iter()
                    .find(|r| r.method == m)
                    .map(|r| r.gflops)
                    .unwrap_or(0.0)
            };
            println!(
                "{:<10} {:<5} {:<7} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                n,
                cells[0].level,
                cells[0].steps,
                get("MultiLoad"),
                get("Reorg"),
                get("DLT"),
                get("Our"),
                get("Our2")
            );
        }
    }

    stencil_bench::save::maybe_save("fig7", &json_rows(&all_rows));
}
