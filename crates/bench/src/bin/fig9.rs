//! Fig. 9: scalability of the four tiled schemes for all six stencils,
//! AVX2 and AVX-512, across core counts.
//!
//! Pass stencil names as arguments to restrict the sweep
//! (e.g. `fig9 1d3p 2d5p`); default is all six.

use stencil_bench::fig9::{json_rows, sweep, thread_axis, METHODS};
use stencil_bench::Cli;

fn main() {
    stencil_bench::banner("Fig. 9: scalability (GFLOP/s vs cores, AVX2 & AVX-512)");
    let cli = Cli::parse();
    let stencils = cli.stencils();
    let rows = sweep(cli.scale(), &stencils);
    for spec in &stencils {
        let stencil = spec.to_string();
        for isa in ["avx2", "avx512"] {
            let cells: Vec<_> = rows
                .iter()
                .filter(|r| r.stencil == stencil && r.isa.name() == isa)
                .collect();
            if cells.is_empty() {
                continue;
            }
            println!("\n## {stencil} ({isa})");
            print!("{:<14}", "threads");
            for t in thread_axis() {
                print!(" {:>8}", t);
            }
            println!();
            for method in METHODS {
                print!("{:<14}", method);
                for t in thread_axis() {
                    let v = cells
                        .iter()
                        .find(|r| r.method == method && r.threads == t)
                        .map(|r| r.gflops)
                        .unwrap_or(f64::NAN);
                    print!(" {:>8.2}", v);
                }
                println!();
            }
        }
    }

    stencil_bench::save::maybe_save("fig9", &json_rows(&rows));
}
