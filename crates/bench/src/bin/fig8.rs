//! Fig. 8: multicore cache-blocking experiments — SDSL / Tessellation /
//! Our / Our (2 steps) with L1 and L2 blocking, sizes from L3 to memory.

use stencil_bench::fig8::{json_rows, sweep, TILED_METHODS};
use stencil_bench::Cli;
use stencil_simd::Isa;

fn main() {
    stencil_bench::banner(
        "Fig. 8: multicore cache-blocking performance (1D3P, GFLOP/s, all cores)",
    );
    let scale = Cli::parse().scale();
    let isa = Isa::detect_best();
    let panels: &[(&str, usize)] = if scale == stencil_bench::Scale::Smoke {
        &[("a", 64)]
    } else {
        &[("a", 400), ("b", 4000)]
    };
    let mut all_rows = Vec::new();
    for &(panel, base) in panels {
        println!("\n## Fig 8({panel}): base steps T={base}");
        println!(
            "{:<10} {:<5} {:<6} {:<7} {:>10} {:>13} {:>9} {:>9}",
            "n", "level", "block", "steps", "SDSL", "Tessellation", "Our", "Our2"
        );
        let rows = sweep(isa, base, scale);
        all_rows.extend(rows.iter().cloned());
        for n in rows
            .iter()
            .map(|r| r.n)
            .collect::<std::collections::BTreeSet<_>>()
        {
            for blocking in ["L1", "L2"] {
                let cells: Vec<_> = rows
                    .iter()
                    .filter(|r| r.n == n && r.blocking == blocking)
                    .collect();
                if cells.is_empty() {
                    continue;
                }
                let get = |m: &str| {
                    cells
                        .iter()
                        .find(|r| r.method == m)
                        .map(|r| r.gflops)
                        .unwrap_or(0.0)
                };
                println!(
                    "{:<10} {:<5} {:<6} {:<7} {:>10.2} {:>13.2} {:>9.2} {:>9.2}",
                    n,
                    cells[0].level,
                    blocking,
                    cells[0].steps,
                    get(TILED_METHODS[0]),
                    get(TILED_METHODS[1]),
                    get(TILED_METHODS[2]),
                    get(TILED_METHODS[3])
                );
            }
        }
    }

    stencil_bench::save::maybe_save("fig8", &json_rows(&all_rows));
}
